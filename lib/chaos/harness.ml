(* Chaos harness: seeded fault-injection trials over real workloads.

   A trial is a pair of runs of the same small, numerically-validated
   kernel: a fault-free run (ideal makespan + reference outputs), then
   a chaos run with a seeded schedule, a watchdog scaled to the ideal
   makespan, and data validation at the end.  The trial is classified
   from what the watchdog had to do:

     Clean       nothing injected needed recovery
     Recovered   the watchdog re-issued at least one lost signal
     Failed_over a rank crashed and the failover coordinator remapped
                 its unfinished tiles onto the survivors and replayed
                 them; numerics must still be bit-identical
     Degraded    at least one wait was force-released; the affected tile
                 range is re-executed on the non-overlapped baseline path
                 and its analytic cost charged on top of the makespan
     Stalled     the watchdog raised a structured Stall (Fail_stop), or
                 a crash left no survivors

   Everything — fault draws, retry coin flips, trial sub-seeds — hangs
   off one integer seed through simulation-time-only PRNGs, so the
   same seed produces byte-identical classifications and summary JSON
   on every run. *)

open Tilelink_core
open Tilelink_machine
module Obs = Tilelink_obs
module Mlp = Tilelink_workloads.Mlp
module Moe = Tilelink_workloads.Moe
module Attention = Tilelink_workloads.Attention
module Check = Tilelink_tensor.Check
module Pool = Tilelink_exec.Pool
module Stats = Tilelink_sim.Stats
module Nonoverlap = Tilelink_baselines.Nonoverlap
module Moe_baselines = Tilelink_baselines.Moe_baselines
module Attention_baselines = Tilelink_baselines.Attention_baselines

type workload = Mlp_ag_gemm | Moe_part2 | Attention_ag

let workload_to_string = function
  | Mlp_ag_gemm -> "mlp"
  | Moe_part2 -> "moe"
  | Attention_ag -> "attention"

let workload_of_string = function
  | "mlp" -> Some Mlp_ag_gemm
  | "moe" -> Some Moe_part2
  | "attention" -> Some Attention_ag
  | _ -> None

type classification = Clean | Recovered | Failed_over | Degraded | Stalled

let classification_to_string = function
  | Clean -> "clean"
  | Recovered -> "recovered"
  | Failed_over -> "failed_over"
  | Degraded -> "degraded"
  | Stalled -> "stalled"

type stall_info = {
  si_key : string;
  si_kind : string;
  si_owner : int;
  si_channel : int option;
  si_rank : int;
  si_tile_rows : (int * int) option;
}

type trial = {
  index : int;
  trial_seed : int;
  classification : classification;
  ideal_us : float;
  makespan_us : float;
  fallback_us : float;
  total_us : float;
  achieved_overlap : float;
  overlap_efficiency : float;
  recovery_overhead_us : float;
  numerics_ok : bool;
  retries : int;
  recovered_signals : (string * float) list;
  degraded_keys : string list;
  faults : (string * string) list;
  stall : stall_info option;
  (* Failover bookkeeping; all zero/empty on crash-free trials, and the
     JSON export omits the fields entirely then so pre-crash summaries
     stay byte-identical. *)
  failed_over_ranks : (int * float) list;  (* (rank, latency µs) *)
  remapped_tiles : int;
  replayed_tiles : int;
  total_tiles : int;
  (* Topology bookkeeping; [None] for the default flat cases, and the
     JSON export omits the fields then so flat summaries stay
     byte-identical. *)
  topology : string option;
  cross_island_replays : int;
}

type summary = {
  s_workload : workload;
  s_seed : int;
  s_trials : trial list;
  s_clean : int;
  s_recovered : int;
  s_failed_over : int;
  s_degraded : int;
  s_stalled : int;
  s_recovery_latencies : float list;
  s_failover_latencies : float list;
  s_overlap_efficiency : float;
  s_recovery_overhead_us : float;
  s_topology : string option;
  s_cross_island_replays : int;
}

(* One benchmark case: how to build/allocate/validate the workload,
   its analytic non-overlapped cost, and how a pc channel index maps
   back to tile rows (the coordinate a Stall diagnostic reports). *)
type case = {
  world : int;
  machine : Spec.t;
  pc_channels : int;
  tile_rows : int -> (int * int) option;
  build : unit -> Program.t;
  alloc : unit -> Memory.t;
  check : Memory.t -> bool;
  baseline_us : float;
}

(* The default cases run world 4/4/2 on the flat test machine; a
   topology run keeps the same per-rank tile volume and scales the
   global shape with the topology's natural world size, so every rank
   still owns m/world = 4 rows (mlp), 4 tokens (moe) or 8 query rows
   (attention) regardless of how many islands the world spans. *)
let mlp_case ?(world = 4) () =
  let machine = Calib.test_machine in
  let shapes = { Mlp.m = 4 * world; k = 4; n = 6; world_size = world } in
  let comm_rows = 2 in
  let config =
    {
      Design_space.comm_tile = (comm_rows, 128);
      compute_tile = (2, 2);
      comm_order = Tile.Ring_from_self { segments = world };
      compute_order = Tile.Ring_from_self { segments = world };
      binding = Design_space.Comm_on_sm 1;
      stages = 2;
      micro_block = 0;
    }
  in
  {
    world;
    machine;
    pc_channels = shapes.Mlp.m / world / comm_rows;
    tile_rows = (fun c -> Some (c * comm_rows, (c + 1) * comm_rows));
    build =
      (fun () -> Mlp.ag_gemm_program ~config shapes ~spec_gpu:machine);
    alloc = (fun () -> Mlp.ag_gemm_alloc shapes ~seed:11);
    check =
      (fun memory ->
        List.for_all
          (fun rank ->
            Check.close
              (Mlp.ag_gemm_reference memory shapes ~rank)
              (Memory.find memory ~rank ~name:"y"))
          (List.init world Fun.id));
    baseline_us =
      Nonoverlap.ag_gemm_time machine ~world_size:world ~m:shapes.Mlp.m
        ~k:shapes.Mlp.k ~n:shapes.Mlp.n;
  }

let moe_case ?(world = 4) () =
  let machine = Calib.test_machine in
  let moe =
    {
      Moe.tokens = 4 * world;
      hidden = 4;
      intermediate = 2 * world;
      experts = world;
      topk = 2;
      world_size = world;
    }
  in
  let route = Moe.routing moe ~seed:3 in
  let gg_rows = 2 in
  let config =
    {
      Moe.gg_tile_rows = gg_rows;
      reduce_tile_rows = 2;
      rs_tile_rows = 2;
      reduce_sms = 1;
      rs_sms = 1;
    }
  in
  {
    world;
    machine;
    pc_channels = Moe.permuted_rows moe / gg_rows;
    tile_rows = (fun c -> Some (c * gg_rows, (c + 1) * gg_rows));
    build = (fun () -> Moe.part2_program ~config moe route ~spec_gpu:machine);
    alloc = (fun () -> Moe.part2_alloc moe ~seed:4);
    check =
      (fun memory ->
        List.for_all
          (fun rank ->
            Check.close ~atol:1e-8
              (Moe.part2_reference memory moe route ~rank)
              (Memory.find memory ~rank ~name:"out"))
          (List.init world Fun.id));
    baseline_us = Moe_baselines.cublas_part2 machine moe route;
  }

let attention_case ?(world = 2) () =
  let machine = Calib.test_machine in
  let spec =
    {
      Attention.batch_heads = 2;
      seq = 8 * world;
      head_dim = 4;
      world_size = world;
      causal = false;
    }
  in
  let config = { Attention.q_tile = 4; kv_tile = 4 } in
  {
    world;
    machine;
    pc_channels = 1;
    tile_rows = (fun _ -> None);
    build = (fun () -> Attention.program ~config spec ~spec_gpu:machine);
    alloc = (fun () -> Attention.alloc spec ~seed:51);
    check =
      (fun memory ->
        List.for_all
          (fun rank ->
            Check.close
              (Attention.reference memory spec ~rank)
              (Memory.find memory ~rank ~name:"o"))
          (List.init world Fun.id));
    baseline_us = Attention_baselines.torch_time machine spec;
  }

let case_of ?world = function
  | Mlp_ag_gemm -> mlp_case ?world ()
  | Moe_part2 -> moe_case ?world ()
  | Attention_ag -> attention_case ?world ()

(* Scale the watchdog to the workload: suspicion after twice the ideal
   makespan (a delivered-but-slow signal can never be that late on
   these small kernels), structural give-up well beyond any straggler
   slack. *)
let scaled_watchdog ~ideal ~retry ~policy =
  {
    Chaos.poll_interval_us = Float.max 1.0 (ideal /. 50.0);
    wait_timeout_us = Float.max 20.0 (ideal *. 2.0);
    stall_timeout_us = Float.max 100.0 (ideal *. 8.0);
    max_retries = 5;
    backoff_base_us = Float.max 2.0 (ideal /. 10.0);
    retry;
    policy;
  }

let affected_fraction case degraded_keys =
  let distinct = List.length (List.sort_uniq compare degraded_keys) in
  let total = Float.max 1.0 (float_of_int (case.pc_channels * case.world)) in
  Float.min 1.0 (Float.max (float_of_int distinct /. total) (1.0 /. total))

let stall_info_of case (s : Chaos.stall) =
  {
    si_key = s.Chaos.stall_key;
    si_kind = s.Chaos.stall_kind;
    si_owner = s.Chaos.stall_owner;
    si_channel = s.Chaos.stall_channel;
    si_rank = s.Chaos.stall_rank;
    si_tile_rows = Option.bind s.Chaos.stall_channel case.tile_rows;
  }

let run_trial_impl ?(spec = Chaos.default_spec) ?(retry = true)
    ?(policy = Chaos.Degrade) ?(crash_ranks = 0) ?watchdog ?topology
    ?(trace = false) ~workload ~seed ~index () =
  let case =
    case_of ?world:(Option.map Topology.natural_world topology) workload
  in
  let layout =
    Option.map (fun t -> Topology.layout t ~world_size:case.world) topology
  in
  let trial_seed = Chaos.derive_seed ~seed ~index in
  (* Crash trials promise bit-identical numerics after replay, so the
     signal faults whose recovery path is a degraded (stale-read)
     fallback are zeroed; machine-level timing faults stay on.  The
     spec is untouched when no crashes are requested, preserving
     byte-identical crash-free schedules. *)
  let spec =
    if crash_ranks = 0 then spec
    else
      {
        spec with
        Chaos.drop_prob = 0.0;
        duplicate_prob = 0.0;
        delay_prob = 0.0;
        reissue_drop_prob = 0.0;
      }
  in
  (* Crashes are only recoverable under Failover; upgrade the default
     policy rather than making every caller remember to. *)
  let policy =
    if crash_ranks > 0 && policy = Chaos.Degrade then Chaos.Failover
    else policy
  in
  (* Fault-free run: ideal makespan, and proof the memory checker
     passes without faults. *)
  let ideal =
    let memory = case.alloc () in
    let cluster = Cluster.create ?topology case.machine ~world_size:case.world in
    let r = Runtime.run ~data:true ~memory cluster (case.build ()) in
    r.Runtime.makespan
  in
  let wd =
    match watchdog with
    | Some wd -> wd
    | None -> scaled_watchdog ~ideal ~retry ~policy
  in
  let sched =
    Chaos.plan ~spec ?layout ~seed:trial_seed ~world_size:case.world
      ~horizon_us:(Float.max 1.0 (ideal *. 1.5))
      ~crash_ranks ()
  in
  let control = Chaos.control ~schedule:sched ~watchdog:wd () in
  let telemetry = Obs.Telemetry.create () in
  let memory = case.alloc () in
  let cluster =
    Cluster.create ~trace_enabled:trace ?topology case.machine
      ~world_size:case.world
  in
  let finish ~classification ~makespan ~fallback ~numerics_ok ~stall =
    let recov = control.Chaos.c_recovery in
    let total = makespan +. fallback in
    (* Causal attribution over the chaos run's spans: the overlap
       efficiency the schedule actually achieved under faults, and the
       recovery work (retries + replays) on the critical path.  Both
       are pure functions of simulated time, so they are as
       deterministic as the rest of the trial record. *)
    let attribution =
      Obs.Attribution.of_spans ~makespan
        (Obs.Span.spans (Obs.Telemetry.spans telemetry))
    in
    {
      index;
      trial_seed;
      classification;
      ideal_us = ideal;
      makespan_us = makespan;
      fallback_us = fallback;
      total_us = total;
      achieved_overlap = (if total > 0.0 then ideal /. total else 1.0);
      overlap_efficiency = attribution.Obs.Attribution.efficiency;
      recovery_overhead_us =
        attribution.Obs.Attribution.buckets.Obs.Attribution.recovery;
      numerics_ok;
      retries = recov.Chaos.retries;
      recovered_signals = recov.Chaos.recovered;
      degraded_keys = recov.Chaos.degraded;
      faults = Chaos.injected sched;
      stall;
      failed_over_ranks = recov.Chaos.failed_over;
      remapped_tiles = recov.Chaos.remapped_tiles;
      replayed_tiles = recov.Chaos.replayed_tiles;
      total_tiles = recov.Chaos.total_tiles;
      topology = Option.map Topology.name topology;
      cross_island_replays = recov.Chaos.cross_island_replays;
    }
  in
  let trial =
    match
      (* Teardown hardening: a Stall (or any other early exit) must not
         leave the chaos disturbance installed on the cluster — later
         users of the same cluster would inherit poisoned link rates
         and straggler windows. *)
      Fun.protect
        ~finally:(fun () -> Cluster.clear_disturbance cluster)
        (fun () ->
          Runtime.run ~telemetry ~data:true ~memory ~chaos:control cluster
            ~rebuild:case.build (case.build ()))
    with
    | result ->
      let recov = control.Chaos.c_recovery in
      if recov.Chaos.degraded <> [] then begin
        (* Degradation force-released waits, so the affected consumers
           may have read stale tiles.  Model the fallback: re-execute
           the data semantics fault-free into a fresh allocation (same
           seed, hence same inputs — a non-overlapped recomputation of
           the affected range) and charge the analytic baseline cost
           for the affected fraction of tiles. *)
        let memory2 = case.alloc () in
        let cluster2 =
          Cluster.create ?topology case.machine ~world_size:case.world
        in
        ignore
          (Runtime.run ~data:true ~memory:memory2 cluster2 (case.build ()));
        let fallback =
          affected_fraction case recov.Chaos.degraded *. case.baseline_us
        in
        finish ~classification:Degraded ~makespan:result.Runtime.makespan
          ~fallback ~numerics_ok:(case.check memory2) ~stall:None
      end
      else if recov.Chaos.failed_over <> [] then
        (* Replay already re-executed the lost tiles on the survivors,
           so numerics are checked on the same memory and no fallback
           cost is charged beyond what the makespan absorbed. *)
        finish ~classification:Failed_over ~makespan:result.Runtime.makespan
          ~fallback:0.0 ~numerics_ok:(case.check memory) ~stall:None
      else
        let classification =
          if recov.Chaos.recovered <> [] || recov.Chaos.retries > 0 then
            Recovered
          else Clean
        in
        finish ~classification ~makespan:result.Runtime.makespan
          ~fallback:0.0 ~numerics_ok:(case.check memory) ~stall:None
    | exception Chaos.Stall s ->
      (* The run never completed: charge the time burned until
         detection plus a full non-overlapped restart. *)
      finish ~classification:Stalled ~makespan:s.Chaos.stall_at
        ~fallback:case.baseline_us ~numerics_ok:false
        ~stall:(Some (stall_info_of case s))
  in
  (trial, Cluster.trace cluster, telemetry)

let run_trial ?spec ?retry ?policy ?crash_ranks ?watchdog ?topology ~workload
    ~seed ~index () =
  let trial, _, _ =
    run_trial_impl ?spec ?retry ?policy ?crash_ranks ?watchdog ?topology
      ~workload ~seed ~index ()
  in
  trial

let profile_trial ?spec ?retry ?policy ?crash_ranks ?watchdog ?topology
    ~workload ~seed ~index () =
  let trial, trace, telemetry =
    run_trial_impl ?spec ?retry ?policy ?crash_ranks ?watchdog ?topology
      ~trace:true ~workload ~seed ~index ()
  in
  (trial, trace, telemetry)

let summarize ~workload ~seed trials =
  let count c =
    List.length (List.filter (fun t -> t.classification = c) trials)
  in
  {
    s_workload = workload;
    s_seed = seed;
    s_trials = trials;
    s_clean = count Clean;
    s_recovered = count Recovered;
    s_failed_over = count Failed_over;
    s_degraded = count Degraded;
    s_stalled = count Stalled;
    s_recovery_latencies =
      List.concat_map
        (fun t -> List.map snd t.recovered_signals)
        trials;
    s_failover_latencies =
      List.concat_map
        (fun t -> List.map snd t.failed_over_ranks)
        trials;
    s_overlap_efficiency =
      Stats.mean (List.map (fun t -> t.overlap_efficiency) trials);
    s_recovery_overhead_us =
      List.fold_left (fun acc t -> acc +. t.recovery_overhead_us) 0.0 trials;
    s_topology =
      (match trials with [] -> None | t :: _ -> t.topology);
    s_cross_island_replays =
      List.fold_left (fun acc t -> acc + t.cross_island_replays) 0 trials;
  }

let run_trials ?pool ?spec ?retry ?policy ?crash_ranks ?watchdog ?topology
    ~workload ~seed ~trials () =
  if trials <= 0 then invalid_arg "Harness.run_trials: trials must be > 0";
  let indices = List.init trials Fun.id in
  let results =
    Pool.map pool
      (fun index ->
        run_trial ?spec ?retry ?policy ?crash_ranks ?watchdog ?topology
          ~workload ~seed ~index ())
      indices
  in
  summarize ~workload ~seed (List.map Pool.get results)

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)
(* ------------------------------------------------------------------ *)

module Json = Obs.Json

let trial_to_json t =
  let stall =
    match t.stall with
    | None -> Json.Null
    | Some s ->
      Json.Obj
        ([
           ("key", Json.Str s.si_key);
           ("kind", Json.Str s.si_kind);
           ("owner_rank", Json.Num (float_of_int s.si_owner));
           ("waiter_rank", Json.Num (float_of_int s.si_rank));
         ]
        @ (match s.si_channel with
          | Some c -> [ ("channel", Json.Num (float_of_int c)) ]
          | None -> [])
        @
        match s.si_tile_rows with
        | Some (lo, hi) ->
          [
            ("tile_row_lo", Json.Num (float_of_int lo));
            ("tile_row_hi", Json.Num (float_of_int hi));
          ]
        | None -> [])
  in
  Json.Obj
    ([
      ("index", Json.Num (float_of_int t.index));
      ("seed", Json.Num (float_of_int t.trial_seed));
      ("classification", Json.Str (classification_to_string t.classification));
      ("ideal_us", Json.Num t.ideal_us);
      ("makespan_us", Json.Num t.makespan_us);
      ("fallback_us", Json.Num t.fallback_us);
      ("total_us", Json.Num t.total_us);
      ("achieved_overlap", Json.Num t.achieved_overlap);
      ("overlap_efficiency", Json.Num t.overlap_efficiency);
      ("recovery_overhead_us", Json.Num t.recovery_overhead_us);
      ("numerics_ok", Json.Bool t.numerics_ok);
      ("retries", Json.Num (float_of_int t.retries));
      ( "recovered",
        Json.List
          (List.map
             (fun (key, latency) ->
               Json.Obj
                 [ ("key", Json.Str key); ("latency_us", Json.Num latency) ])
             t.recovered_signals) );
      ("degraded", Json.List (List.map (fun k -> Json.Str k) t.degraded_keys));
      ( "faults",
        Json.List
          (List.map
             (fun (kind, subject) ->
               Json.Obj
                 [ ("kind", Json.Str kind); ("subject", Json.Str subject) ])
             t.faults) );
      ("stall", stall);
    ]
    @
    (* Failover fields only exist when the trial tracked a ledger
       (crashes planned) — crash-free summary JSON stays byte-identical
       to pre-failover output. *)
    (if t.total_tiles = 0 && t.failed_over_ranks = [] then []
     else
       [
         ( "failed_over",
           Json.List
             (List.map
                (fun (rank, latency) ->
                  Json.Obj
                    [
                      ("rank", Json.Num (float_of_int rank));
                      ("latency_us", Json.Num latency);
                    ])
                t.failed_over_ranks) );
         ("remapped_tiles", Json.Num (float_of_int t.remapped_tiles));
         ("replayed_tiles", Json.Num (float_of_int t.replayed_tiles));
         ("total_tiles", Json.Num (float_of_int t.total_tiles));
       ])
    @
    (* Topology fields only exist on topology trials — flat output
       (including flat crash trials) stays byte-identical. *)
    (match t.topology with
    | None -> []
    | Some name ->
      [
        ("topology", Json.Str name);
        ( "cross_island_replays",
          Json.Num (float_of_int t.cross_island_replays) );
      ]))

let summary_to_json s =
  let percentiles latencies =
    let latencies = List.sort compare latencies in
    let pct p =
      if latencies = [] then Json.Null
      else Json.Num (Stats.percentile p latencies)
    in
    Json.Obj
      [
        ("count", Json.Num (float_of_int (List.length latencies)));
        ("p50", pct 50.0);
        ("p95", pct 95.0);
        ("p99", pct 99.0);
      ]
  in
  (* Gate the failover fields exactly like the per-trial export: only
     summaries that contain crash data mention failover at all. *)
  let crashy =
    List.exists
      (fun t -> t.total_tiles > 0 || t.failed_over_ranks <> [])
      s.s_trials
  in
  Json.Obj
    ([
       ("workload", Json.Str (workload_to_string s.s_workload));
       ("seed", Json.Num (float_of_int s.s_seed));
       ("trials", Json.Num (float_of_int (List.length s.s_trials)));
       ( "classification",
         Json.Obj
           ([
              ("clean", Json.Num (float_of_int s.s_clean));
              ("recovered", Json.Num (float_of_int s.s_recovered));
            ]
           @ (if crashy then
                [ ("failed_over", Json.Num (float_of_int s.s_failed_over)) ]
              else [])
           @ [
               ("degraded", Json.Num (float_of_int s.s_degraded));
               ("stalled", Json.Num (float_of_int s.s_stalled));
             ]) );
       ("recovery_latency_us", percentiles s.s_recovery_latencies);
       ("overlap_efficiency", Json.Num s.s_overlap_efficiency);
       ("recovery_overhead_us", Json.Num s.s_recovery_overhead_us);
     ]
    @ (if crashy then
         [ ("failover_latency_us", percentiles s.s_failover_latencies) ]
       else [])
    @ (match s.s_topology with
      | None -> []
      | Some name ->
        [
          ("topology", Json.Str name);
          ( "cross_island_replays",
            Json.Num (float_of_int s.s_cross_island_replays) );
        ])
    @ [ ("trial_results", Json.List (List.map trial_to_json s.s_trials)) ])

let summary_to_string s = Json.to_string ~indent:true (summary_to_json s)
