(** Chaos trial harness: run seeded fault schedules through real
    workloads, validate numerics against fault-free runs, classify the
    outcome, and export a deterministic summary.

    Every number in a trial comes from simulation time and seeded
    PRNGs, so the same (workload, seed, trials) triple produces
    byte-identical summary JSON on every run — including under the
    parallel {!run_trials} path, whose pool returns results in input
    order. *)

open Tilelink_core
module Obs = Tilelink_obs

type workload = Mlp_ag_gemm | Moe_part2 | Attention_ag

val workload_to_string : workload -> string
val workload_of_string : string -> workload option

(** Trial outcome, in decreasing order of health: [Clean] (no recovery
    action needed), [Recovered] (watchdog re-issued lost signals),
    [Failed_over] (a rank crashed; its unfinished tiles were remapped
    onto the survivors and replayed, numerics still bit-identical),
    [Degraded] (waits force-released; fallback recomputation charged),
    [Stalled] (watchdog raised {!Chaos.Stall} under [Fail_stop], or a
    crash left no survivors). *)
type classification = Clean | Recovered | Failed_over | Degraded | Stalled

val classification_to_string : classification -> string

(** Where a stalled trial got stuck: the missing signal, its producing
    rank, channel index and (when the workload's channels map to row
    ranges) the tile rows it covers, plus the blocked rank. *)
type stall_info = {
  si_key : string;
  si_kind : string;
  si_owner : int;
  si_channel : int option;
  si_rank : int;
  si_tile_rows : (int * int) option;
}

type trial = {
  index : int;
  trial_seed : int;  (** derived from (seed, index) *)
  classification : classification;
  ideal_us : float;  (** fault-free makespan of the same program *)
  makespan_us : float;  (** chaos-run makespan (detection time if stalled) *)
  fallback_us : float;  (** analytic non-overlapped recomputation cost *)
  total_us : float;  (** makespan + fallback *)
  achieved_overlap : float;  (** ideal / total; < 1.0 when degraded *)
  overlap_efficiency : float;
      (** causal-span attribution over the chaos run: fraction of the
          run's communication hidden behind compute *)
  recovery_overhead_us : float;
      (** retry/replay time on the run's critical path *)
  numerics_ok : bool;  (** outputs match the workload reference *)
  retries : int;
  recovered_signals : (string * float) list;  (** (key, latency µs) *)
  degraded_keys : string list;
  faults : (string * string) list;  (** schedule's injection log *)
  stall : stall_info option;
  failed_over_ranks : (int * float) list;
      (** (crashed rank, detect->resume latency µs); JSON export omits
          the failover fields on crash-free trials so pre-crash
          summaries stay byte-identical *)
  remapped_tiles : int;  (** unfinished tiles rerouted to survivors *)
  replayed_tiles : int;  (** tasks actually re-executed on survivors *)
  total_tiles : int;  (** ledger size (0 when no crashes were planned) *)
  topology : string option;
      (** topology name when the trial ran on a declarative topology;
          JSON export omits the topology fields on flat trials *)
  cross_island_replays : int;
      (** replays placed outside the crashed rank's island (0 flat) *)
}

type summary = {
  s_workload : workload;
  s_seed : int;
  s_trials : trial list;
  s_clean : int;
  s_recovered : int;
  s_failed_over : int;
  s_degraded : int;
  s_stalled : int;
  s_recovery_latencies : float list;
  s_failover_latencies : float list;
  s_overlap_efficiency : float;  (** mean over trials *)
  s_recovery_overhead_us : float;  (** summed over trials *)
  s_topology : string option;
  s_cross_island_replays : int;  (** summed over trials *)
}

val run_trial :
  ?spec:Chaos.spec ->
  ?retry:bool ->
  ?policy:Chaos.policy ->
  ?crash_ranks:int ->
  ?watchdog:Chaos.watchdog ->
  ?topology:Tilelink_machine.Topology.t ->
  workload:workload ->
  seed:int ->
  index:int ->
  unit ->
  trial
(** Run one trial: a fault-free run to measure the ideal makespan,
    then the seeded chaos run with a watchdog scaled to it ([watchdog]
    overrides the scaling verbatim).  [retry] defaults to [true],
    [policy] to [Degrade], [spec] to {!Chaos.default_spec}.

    [crash_ranks] (default 0) forces that many seeded permanent rank
    crashes into the schedule.  When positive, the signal-fault
    probabilities of [spec] are zeroed (crash recovery must keep
    numerics bit-identical; degraded stale-read fallbacks would not)
    and a [Degrade] policy is upgraded to {!Chaos.Failover}.

    [topology] runs the trial on that declarative topology: the world
    becomes {!Tilelink_machine.Topology.natural_world} (the workload
    shape scales with it, keeping per-rank tile volume constant), both
    runs use the topology-compiled cluster, the fault schedule is
    drawn against the topology's layout (correlated fault domains,
    island-correlated forced crashes) and failover remaps
    intra-island-first. *)

val profile_trial :
  ?spec:Chaos.spec ->
  ?retry:bool ->
  ?policy:Chaos.policy ->
  ?crash_ranks:int ->
  ?watchdog:Chaos.watchdog ->
  ?topology:Tilelink_machine.Topology.t ->
  workload:workload ->
  seed:int ->
  index:int ->
  unit ->
  trial * Tilelink_sim.Trace.t * Obs.Telemetry.t
(** Like {!run_trial} but with tracing enabled on the chaos run and
    the telemetry handle returned, for Perfetto export with fault and
    recovery instants marked. *)

val run_trials :
  ?pool:Tilelink_exec.Pool.t ->
  ?spec:Chaos.spec ->
  ?retry:bool ->
  ?policy:Chaos.policy ->
  ?crash_ranks:int ->
  ?watchdog:Chaos.watchdog ->
  ?topology:Tilelink_machine.Topology.t ->
  workload:workload ->
  seed:int ->
  trials:int ->
  unit ->
  summary
(** Run [trials] independent trials (sub-seeded from [seed]) on the
    pool when given, sequentially otherwise; results are in trial-index
    order either way.  Raises [Invalid_argument] when [trials <= 0]. *)

val summarize : workload:workload -> seed:int -> trial list -> summary
val trial_to_json : trial -> Obs.Json.t
val summary_to_json : summary -> Obs.Json.t

val summary_to_string : summary -> string
(** Indented JSON; byte-identical for identical inputs. *)
