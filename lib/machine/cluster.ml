(* A simulated GPU cluster: per-rank resources plus the interconnect.

   Each rank owns an SM pool and a DMA channel pool; each rank also has
   an NVLink egress bandwidth server (NVSwitch gives independent lanes,
   so egress is the binding constraint) and each node has a NIC for
   inter-node traffic. *)

type rank = {
  id : int;
  node : int;
  sms : Tilelink_sim.Resource.t;
  dma : Tilelink_sim.Resource.t;
  nvlink_egress : Tilelink_sim.Bandwidth.t;
}

(* A machine-level disturbance: time-varying link/NIC rate multipliers,
   per-rank compute slowdowns, and copy-engine stall injections.  All
   functions must be pure in simulation time so that the same seed
   replays the same run. *)
type disturbance = {
  link_rate : rank:int -> now:float -> float;
  nic_rate : node:int -> now:float -> float;
  compute : rank:int -> now:float -> float;
  copy_stall_us : rank:int -> now:float -> float;
}

type t = {
  spec : Spec.t;
  world_size : int;
  engine : Tilelink_sim.Engine.t;
  trace : Tilelink_sim.Trace.t;
  ranks : rank array;
  nics : Tilelink_sim.Bandwidth.t array; (* one per node *)
  mutable disturbance : disturbance option;
  (* Topology-derived base factors.  [base_compute] is a per-rank
     duration multiplier baked in by a heterogeneous topology (all 1.0
     otherwise); [base_nic_tax] is the co-tenant background-traffic
     rate multiplier installed on NICs at creation.  Disturbances
     compose multiplicatively on top of both. *)
  topology : Topology.t option;
  base_compute : float array;
  base_nic_tax : (island:int -> now:float -> float) option;
  (* Rank liveness for crash-fault injection.  [alive] flips false when
     a rank crashes; [recovered] flips true once a failover coordinator
     has re-hosted the rank's symmetric memory on the survivors, at
     which point transfers touching the rank succeed again (they read
     the recovered shard). *)
  alive : bool array;
  recovered : bool array;
}

(* The co-tenant tax is the *base* throttle on a NIC: present with no
   disturbance installed, and multiplied into the disturbance's
   nic_rate when one is. *)
let install_base_nic_throttles ~base_nic_tax nics =
  match base_nic_tax with
  | None -> ()
  | Some tax ->
    Array.iteri
      (fun node nic ->
        Tilelink_sim.Bandwidth.set_throttle nic (fun ~now ->
            tax ~island:node ~now))
      nics

let create ?(trace_enabled = false) ?topology (spec : Spec.t) ~world_size =
  if world_size <= 0 then invalid_arg "Cluster.create: world_size";
  let engine = Tilelink_sim.Engine.create () in
  let trace = Tilelink_sim.Trace.create ~enabled:trace_enabled () in
  let layout =
    Option.map (fun topo -> Topology.layout topo ~world_size) topology
  in
  let node_of id =
    match layout with
    | None -> id / spec.gpus_per_node
    | Some l -> Topology.island_of l id
  in
  let num_nodes =
    match layout with
    | None -> Shape_math.ceil_div world_size spec.gpus_per_node
    | Some l -> Topology.islands l
  in
  let ranks_per_node =
    match layout with
    | None -> spec.gpus_per_node
    | Some l -> Topology.ranks_per_island l.Topology.l_topology
  in
  let nics =
    Array.init num_nodes (fun node ->
        (* One stream: the NIC's aggregate rate is shared, so transfers
           serialize at full rate rather than multiplying throughput. *)
        Tilelink_sim.Bandwidth.create engine
          ~name:(Printf.sprintf "nic%d" node)
          ~gbps:(spec.interconnect.nic_gbps *. float_of_int ranks_per_node)
          ~latency_us:spec.interconnect.nic_latency ~streams:1 ())
  in
  let link_scale id =
    match layout with None -> 1.0 | Some l -> l.Topology.l_link_scale.(id)
  in
  let ranks =
    Array.init world_size (fun id ->
        {
          id;
          node = node_of id;
          sms =
            Tilelink_sim.Resource.create engine
              ~name:(Printf.sprintf "sm%d" id)
              ~capacity:spec.gpu.num_sms;
          dma =
            Tilelink_sim.Resource.create engine
              ~name:(Printf.sprintf "dma%d" id)
              ~capacity:spec.gpu.dma_channels;
          nvlink_egress =
            (* Egress bandwidth is shared across all outgoing copies of
               a GPU: one stream serializes them at the full rate.  A
               heterogeneous topology narrows the attach statically. *)
            Tilelink_sim.Bandwidth.create engine
              ~name:(Printf.sprintf "nvlink%d" id)
              ~gbps:(spec.interconnect.nvlink_gbps *. link_scale id)
              ~latency_us:spec.interconnect.nvlink_latency ~streams:1 ();
        })
  in
  let base_compute =
    match layout with
    | None -> Array.make world_size 1.0
    | Some l -> Array.copy l.Topology.l_compute_scale
  in
  let base_nic_tax =
    match layout with None -> None | Some l -> l.Topology.l_nic_tax
  in
  install_base_nic_throttles ~base_nic_tax nics;
  {
    spec;
    world_size;
    engine;
    trace;
    ranks;
    nics;
    disturbance = None;
    topology;
    base_compute;
    base_nic_tax;
    alive = Array.make world_size true;
    recovered = Array.make world_size false;
  }

(* Installing a disturbance also wires the bandwidth throttles so the
   link servers themselves sample the degradation at admission time.
   The topology's base NIC tax composes multiplicatively. *)
let set_disturbance t d =
  t.disturbance <- Some d;
  Array.iter
    (fun r ->
      Tilelink_sim.Bandwidth.set_throttle r.nvlink_egress (fun ~now ->
          d.link_rate ~rank:r.id ~now))
    t.ranks;
  Array.iteri
    (fun node nic ->
      let base =
        match t.base_nic_tax with
        | None -> fun ~now:_ -> 1.0
        | Some tax -> fun ~now -> tax ~island:node ~now
      in
      Tilelink_sim.Bandwidth.set_throttle nic (fun ~now ->
          d.nic_rate ~node ~now *. base ~now))
    t.nics

let clear_disturbance t =
  t.disturbance <- None;
  Array.iter
    (fun r -> Tilelink_sim.Bandwidth.clear_throttle r.nvlink_egress)
    t.ranks;
  (* Restore the topology's base NIC tax rather than running nominal. *)
  Array.iter Tilelink_sim.Bandwidth.clear_throttle t.nics;
  install_base_nic_throttles ~base_nic_tax:t.base_nic_tax t.nics

let check_rank_id t rank_id label =
  if rank_id < 0 || rank_id >= t.world_size then
    invalid_arg (Printf.sprintf "Cluster.%s: rank %d out of range" label rank_id)

let kill_rank t ~rank_id =
  check_rank_id t rank_id "kill_rank";
  t.alive.(rank_id) <- false

let revive_rank t ~rank_id =
  check_rank_id t rank_id "revive_rank";
  t.alive.(rank_id) <- true

let is_alive t ~rank_id =
  check_rank_id t rank_id "is_alive";
  t.alive.(rank_id)

let mark_recovered t ~rank_id =
  check_rank_id t rank_id "mark_recovered";
  t.recovered.(rank_id) <- true

let is_recovered t ~rank_id =
  check_rank_id t rank_id "is_recovered";
  t.recovered.(rank_id)

let alive_ranks t =
  List.filter (fun r -> t.alive.(r)) (List.init t.world_size Fun.id)

let dead_ranks t =
  List.filter (fun r -> not t.alive.(r)) (List.init t.world_size Fun.id)

(* A transfer endpoint is unreachable while its rank is down and nobody
   has re-hosted its memory yet. *)
let unreachable t r = (not t.alive.(r)) && not t.recovered.(r)

let spec t = t.spec
let world_size t = t.world_size
let engine t = t.engine
let trace t = t.trace
let rank t id = t.ranks.(id)
let now t = Tilelink_sim.Engine.now t.engine

let same_node t src dst = t.ranks.(src).node = t.ranks.(dst).node

(* Compute-straggler multiplier for [rank_id] at the current instant:
   the topology's static heterogeneity factor times any installed
   disturbance.  1.0 on a homogeneous cluster with no disturbance.
   Sampled once per kernel issue by the runtime. *)
let compute_scale t ~rank_id =
  let base = t.base_compute.(rank_id) in
  match t.disturbance with
  | None -> base
  | Some d ->
    Float.max 1e-6
      (base *. d.compute ~rank:rank_id ~now:(Tilelink_sim.Engine.now t.engine))

let topology t = t.topology
let island_of t ~rank_id = t.ranks.(rank_id).node

(* One-line self-description for logs and --json artifacts: machine,
   world, node count, interconnect — and the topology when one is
   installed. *)
let describe t =
  let per_node =
    match t.topology with
    | None -> t.spec.gpus_per_node
    | Some topo -> Topology.ranks_per_island topo
  in
  let base =
    Printf.sprintf "%s, world %d: %d node%s x %d GPUs, NIC %.0f GB/s @%.1fus"
      t.spec.gpu.gpu_name t.world_size (Array.length t.nics)
      (if Array.length t.nics = 1 then "" else "s")
      per_node t.spec.interconnect.nic_gbps t.spec.interconnect.nic_latency
  in
  match t.topology with
  | None -> base
  | Some topo -> base ^ " [" ^ Topology.describe topo ^ "]"

let copy_stall_us t ~rank_id =
  match t.disturbance with
  | None -> 0.0
  | Some d ->
    Float.max 0.0 (d.copy_stall_us ~rank:rank_id ~now:(Tilelink_sim.Engine.now t.engine))

let num_nodes t = Array.length t.nics

let nic_bytes t ~node =
  if node < 0 || node >= num_nodes t then
    invalid_arg "Cluster.nic_bytes: node out of range";
  Tilelink_sim.Bandwidth.bytes_moved t.nics.(node)

let nvlink_bytes t ~rank_id =
  Tilelink_sim.Bandwidth.bytes_moved t.ranks.(rank_id).nvlink_egress

(* Move [bytes] from [src] to [dst].  Intra-node traffic binds on the
   source's NVLink egress; inter-node traffic binds on both nodes'
   NICs (modeled as the source node NIC, the bottleneck in practice).
   A local "transfer" is a no-op time-wise beyond HBM, which callers
   model separately. *)
let transfer ?(force = false) t ~src ~dst ~bytes =
  if src = dst then ()
  else if (not force) && (unreachable t src || unreachable t dst) then
    (* Fail fast: a transfer touching a dead, unrecovered rank returns
       immediately with no time charged and no bytes moved.  The caller
       must treat the destination contents as garbage. *)
    ()
  else if same_node t src dst then
    Tilelink_sim.Bandwidth.transfer t.ranks.(src).nvlink_egress ~bytes
  else Tilelink_sim.Bandwidth.transfer t.nics.(t.ranks.(src).node) ~bytes

let transfer_duration t ~src ~dst ~bytes =
  if src = dst then 0.0
  else if same_node t src dst then
    Tilelink_sim.Bandwidth.duration t.ranks.(src).nvlink_egress ~bytes
  else Tilelink_sim.Bandwidth.duration t.nics.(t.ranks.(src).node) ~bytes

let transfer_ok t ~src ~dst =
  src = dst || not (unreachable t src || unreachable t dst)

(* Run a kernel-shaped activity on [sms] SMs of [rank_id] for
   [duration]: acquire the SM pool, wait, trace. *)
let on_sms t ~rank_id ~sms ~label ~lane duration =
  let r = t.ranks.(rank_id) in
  Tilelink_sim.Resource.use r.sms sms (fun () ->
      let t0 = now t in
      Tilelink_sim.Process.wait duration;
      Tilelink_sim.Trace.add t.trace ~rank:rank_id ~lane ~label ~t0
        ~t1:(now t))

let on_dma t ~rank_id ~label body =
  let r = t.ranks.(rank_id) in
  Tilelink_sim.Resource.use r.dma 1 (fun () ->
      let t0 = now t in
      body ();
      Tilelink_sim.Trace.add t.trace ~rank:rank_id ~lane:Tilelink_sim.Trace.Dma
        ~label ~t0 ~t1:(now t))

(* Snapshot per-rank lane utilization into the metrics registry:
   fraction of each SM/DMA pool that was busy over the elapsed horizon,
   plus interconnect byte counts and busy time.  Called after a run so
   the gauges describe the whole simulation. *)
let record_utilization t (telemetry : Tilelink_obs.Telemetry.t) =
  let horizon = now t in
  if horizon > 0.0 && Tilelink_obs.Telemetry.enabled telemetry then begin
    let m = Tilelink_obs.Telemetry.metrics telemetry in
    let gauge fmt = Printf.ksprintf (Tilelink_obs.Metrics.set_gauge m) fmt in
    Array.iter
      (fun r ->
        gauge "util.sm.rank%d" r.id
          (Tilelink_sim.Resource.utilization r.sms ~horizon);
        gauge "util.dma.rank%d" r.id
          (Tilelink_sim.Resource.utilization r.dma ~horizon);
        gauge "nvlink.bytes.rank%d" r.id
          (Tilelink_sim.Bandwidth.bytes_moved r.nvlink_egress);
        gauge "nvlink.busy_us.rank%d" r.id
          (Tilelink_sim.Bandwidth.busy_time r.nvlink_egress))
      t.ranks;
    Array.iteri
      (fun node nic ->
        gauge "nic.bytes.node%d" node (Tilelink_sim.Bandwidth.bytes_moved nic);
        gauge "nic.busy_us.node%d" node (Tilelink_sim.Bandwidth.busy_time nic))
      t.nics
  end

(* Convenience: run a full simulation given per-rank process bodies and
   return the makespan. *)
let run_ranks t bodies =
  let open Tilelink_sim in
  if Array.length bodies <> t.world_size then
    invalid_arg "Cluster.run_ranks: need one body per rank";
  Array.iteri (fun _i body -> Process.spawn t.engine body) bodies;
  Engine.run t.engine;
  now t
