(** Hardware description records (rates in FLOP/µs and bytes/µs,
    overheads in µs). *)

type gpu = {
  gpu_name : string;
  num_sms : int;
  flops_per_sm : float;
  mac_efficiency : float;
  hbm_bw : float;
  dma_channels : int;
  tile_overhead : float;
  load_latency : float;
}

type interconnect = {
  nvlink_gbps : float;
  nvlink_latency : float;
  nic_gbps : float;
  nic_latency : float;
}

type overheads = {
  kernel_launch : float;
  host_sync : float;
  collective_setup : float;
  signal_notify : float;
  signal_wait : float;
  fusion_interference : float;
}

type t = {
  gpu : gpu;
  interconnect : interconnect;
  overheads : overheads;
  gpus_per_node : int;
}

val total_flops : t -> float
val pp : Format.formatter -> t -> unit

val fingerprint : t -> string
(** Exact textual identity of every field (floats in hex), for
    evaluation-cache keys; distinct calibrations never collide. *)
