(* Hardware description records.

   All rates are in FLOP/µs or bytes/µs; all overheads in µs; dtype is
   assumed 2-byte (bf16) unless a caller overrides byte counts. *)

type gpu = {
  gpu_name : string;
  num_sms : int;                (* streaming multiprocessors *)
  flops_per_sm : float;         (* sustained tensor-core FLOP/µs per SM *)
  mac_efficiency : float;       (* large-tile fraction of peak reached *)
  hbm_bw : float;               (* bytes/µs aggregate HBM bandwidth *)
  dma_channels : int;           (* concurrent copy-engine channels *)
  tile_overhead : float;        (* prologue/epilogue per CTA, µs *)
  load_latency : float;         (* global->shared staging latency per
                                   tile operand, µs; hidden by
                                   multi-stage pipelining *)
}

type interconnect = {
  nvlink_gbps : float;          (* per-GPU egress over NVSwitch, GB/s *)
  nvlink_latency : float;       (* µs per transfer *)
  nic_gbps : float;             (* per-GPU share of inter-node NIC, GB/s *)
  nic_latency : float;          (* µs per transfer *)
}

type overheads = {
  kernel_launch : float;        (* host -> device launch, µs *)
  host_sync : float;            (* device -> host completion sync, µs *)
  collective_setup : float;     (* NCCL-style collective entry/exit, µs *)
  signal_notify : float;        (* release atomic + membar, µs *)
  signal_wait : float;          (* acquire spin entry cost, µs *)
  fusion_interference : float;
      (* multiplier (>= 1) on compute tiles when a fused kernel also
         runs communication on the same chip: L2 pollution, scheduler
         and HBM interference *)
}

type t = {
  gpu : gpu;
  interconnect : interconnect;
  overheads : overheads;
  gpus_per_node : int;
}

let total_flops t = float_of_int t.gpu.num_sms *. t.gpu.flops_per_sm

let pp ppf t =
  (* flops_per_sm is FLOP/µs; aggregate TFLOP/s = sms * per_sm * 1e6 / 1e12. *)
  Fmt.pf ppf
    "%s: %d SMs, %.0f TFLOP/s sustained, HBM %.0f GB/s, NVLink %.0f GB/s \
     @%.1fus, NIC %.0f GB/s @%.1fus, %d GPUs/node"
    t.gpu.gpu_name t.gpu.num_sms
    (float_of_int t.gpu.num_sms *. t.gpu.flops_per_sm /. 1e6)
    (t.gpu.hbm_bw /. 1e3)
    t.interconnect.nvlink_gbps t.interconnect.nvlink_latency
    t.interconnect.nic_gbps t.interconnect.nic_latency t.gpus_per_node

(* Exact textual identity of the machine model, for cache keys: every
   field, floats in hex so distinct calibrations never collide. *)
let fingerprint t =
  Printf.sprintf
    "gpu=%s,sms=%d,fps=%h,eff=%h,hbm=%h,dma=%d,tov=%h,ll=%h|ic=%h,%h,%h,%h|\
     ov=%h,%h,%h,%h,%h,%h|gpn=%d"
    t.gpu.gpu_name t.gpu.num_sms t.gpu.flops_per_sm t.gpu.mac_efficiency
    t.gpu.hbm_bw t.gpu.dma_channels t.gpu.tile_overhead t.gpu.load_latency
    t.interconnect.nvlink_gbps t.interconnect.nvlink_latency
    t.interconnect.nic_gbps t.interconnect.nic_latency
    t.overheads.kernel_launch t.overheads.host_sync
    t.overheads.collective_setup t.overheads.signal_notify
    t.overheads.signal_wait t.overheads.fusion_interference t.gpus_per_node
