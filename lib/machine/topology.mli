(** Declarative cluster topologies: NVLink islands bridged by NICs,
    heterogeneous ranks, and co-tenant background NIC traffic —
    compiled down to the rate hooks {!Cluster} already exposes, so
    [same_node] and NIC routing become topology-driven.

    All derived quantities are pure in simulation time; a seeded run
    on any topology replays byte-identically. *)

type shape =
  | Flat of int  (** one NVLink island of [n] ranks *)
  | Islands of { islands : int; per_island : int }
      (** [islands] NVLink islands bridged by per-island NICs *)

type t = {
  name : string;
  shape : shape;
  hetero : bool;  (** per-rank SM / link-speed scale factors *)
  cotenant : bool;  (** seeded background-traffic tax on shared NICs *)
}

val flat8 : t
(** One homogeneous 8-rank NVLink island — the historical default. *)

val islands2x8 : t
(** Two 8-rank islands bridged by NICs (16 ranks). *)

val islands4x8 : t
(** Four 8-rank islands bridged by NICs (32 ranks). *)

val hetero16 : t
(** Two 8-rank islands with a repeating 4-rank SKU mix: stragglers by
    construction (compute x1.15/x1.30, NVLink x0.75 on slow parts). *)

val cotenant2x8 : t
(** Two 8-rank islands whose NICs carry seeded co-tenant background
    traffic: a piecewise-constant rate tax in [0.45, 1.0], redrawn
    every 50 µs per island. *)

val all : t list
(** Every shipped preset, in CLI order. *)

val name : t -> string

val names : unit -> string list
(** Preset names, for usage strings. *)

val of_string : string -> (t, string) result
(** Resolve a preset by name; [Error] carries a one-line usage hint. *)

val ranks_per_island : t -> int
val num_islands : t -> int

val natural_world : t -> int
(** The world size the topology was drawn for
    ([num_islands * ranks_per_island]). *)

val is_flat : t -> bool
(** True for single-island homogeneous shapes with no co-tenant tax —
    behaviourally identical to running with no topology at all. *)

val describe : t -> string
(** One-line human description for logs and [--json] artifacts. *)

(** A topology compiled against a concrete world size. *)
type layout = {
  l_topology : t;
  l_world : int;
  l_num_islands : int;
  l_island_of_rank : int array;
  l_compute_scale : float array;
      (** per-rank kernel-duration multiplier, [>= 1] *)
  l_link_scale : float array;
      (** per-rank NVLink rate multiplier, [<= 1] *)
  l_nic_tax : (island:int -> now:float -> float) option;
      (** co-tenant NIC rate multiplier, pure in [now] *)
}

val layout : t -> world_size:int -> layout
(** Lay the topology out left-to-right, [ranks_per_island] ranks per
    island; a short tail island is fine. *)

val island_of : layout -> int -> int
val islands : layout -> int
