(** A simulated GPU cluster: per-rank SM and DMA pools, NVLink egress
    servers, per-node NICs, an engine and a trace. *)

type rank = {
  id : int;
  node : int;
  sms : Tilelink_sim.Resource.t;
  dma : Tilelink_sim.Resource.t;
  nvlink_egress : Tilelink_sim.Bandwidth.t;
}

type t

(** A machine-level disturbance for fault injection: time-varying
    link/NIC rate multipliers, per-rank compute-straggler multipliers
    and copy-engine stall durations.  Every function must depend only
    on its arguments (no wall clock, no hidden mutation) so a seeded
    schedule replays identically. *)
type disturbance = {
  link_rate : rank:int -> now:float -> float;
      (** NVLink-egress rate multiplier for [rank] at sim time [now]. *)
  nic_rate : node:int -> now:float -> float;
  compute : rank:int -> now:float -> float;
      (** Kernel-duration multiplier (>= 1.0 models a straggler). *)
  copy_stall_us : rank:int -> now:float -> float;
      (** Extra stall, in µs, charged before a copy issued at [now]. *)
}

val create :
  ?trace_enabled:bool -> ?topology:Topology.t -> Spec.t -> world_size:int -> t
(** [?topology] compiles a declarative topology against [world_size]:
    node membership follows the topology's islands (overriding
    [Spec.gpus_per_node]), heterogeneous link scales narrow per-rank
    NVLink rates statically, heterogeneous compute scales feed
    {!compute_scale}, and a co-tenant NIC tax is installed as the base
    throttle on every node NIC.  Omitting it preserves the historical
    flat layout exactly. *)

val set_disturbance : t -> disturbance -> unit
(** Install a disturbance: wires {!Tilelink_sim.Bandwidth.set_throttle}
    onto every NVLink egress server and NIC, and exposes compute/copy
    factors through {!compute_scale} and {!copy_stall_us}.  Composes
    multiplicatively with the topology's base co-tenant NIC tax. *)

val clear_disturbance : t -> unit
(** Remove the disturbance; the topology's base NIC tax (if any) is
    restored, not cleared. *)

val compute_scale : t -> rank_id:int -> float
(** Straggler multiplier for [rank_id] at the current sim instant: the
    topology's static heterogeneity factor times the disturbance's
    (1.0 on a homogeneous cluster with no disturbance). *)

val topology : t -> Topology.t option
(** The topology this cluster was created with, if any. *)

val island_of : t -> rank_id:int -> int
(** The NVLink island (= node) hosting [rank_id]. *)

val describe : t -> string
(** One-line self-description: machine, world, node count, NIC rate
    and latency, plus the topology when one is installed. *)

val copy_stall_us : t -> rank_id:int -> float
(** Copy-engine stall to charge before a copy issued now (0.0 without
    a disturbance). *)

val spec : t -> Spec.t
val world_size : t -> int
val engine : t -> Tilelink_sim.Engine.t
val trace : t -> Tilelink_sim.Trace.t
val rank : t -> int -> rank
val now : t -> float
val same_node : t -> int -> int -> bool
val num_nodes : t -> int

val nic_bytes : t -> node:int -> float
(** Bytes that left the node's NIC so far. *)

val nvlink_bytes : t -> rank_id:int -> float
(** Bytes that left the rank's NVLink egress so far. *)

val kill_rank : t -> rank_id:int -> unit
(** Crash a rank: {!is_alive} flips false and transfers touching it
    fail fast until {!mark_recovered} (or {!revive_rank}). *)

val revive_rank : t -> rank_id:int -> unit
(** Transient-crash recovery: the rank is reachable again.  Processes
    that already abandoned work do not restart — replay is the failover
    coordinator's job. *)

val is_alive : t -> rank_id:int -> bool
val alive_ranks : t -> int list
val dead_ranks : t -> int list

val mark_recovered : t -> rank_id:int -> unit
(** The failover coordinator re-hosted the rank's symmetric memory on
    the survivors: transfers touching the (still dead) rank succeed
    again, modelling reads/writes of the recovered shard. *)

val is_recovered : t -> rank_id:int -> bool

val transfer : ?force:bool -> t -> src:int -> dst:int -> bytes:float -> unit
(** Blocking move over NVLink (intra-node) or NIC (inter-node); no-op
    when [src = dst].  Must run inside a process.  When either endpoint
    is dead and not recovered the transfer fails fast (returns
    immediately, no bytes moved) unless [force] is set — the replay
    path forces transfers because it executes against recovered
    memory. *)

val transfer_ok : t -> src:int -> dst:int -> bool
(** Whether a (non-forced) transfer between these endpoints would
    actually move data right now. *)

val transfer_duration : t -> src:int -> dst:int -> bytes:float -> float

val on_sms :
  t ->
  rank_id:int ->
  sms:int ->
  label:string ->
  lane:Tilelink_sim.Trace.lane ->
  float ->
  unit
(** Occupy [sms] SMs for the given duration and trace the span. *)

val on_dma : t -> rank_id:int -> label:string -> (unit -> unit) -> unit
(** Run [body] while holding one DMA channel; traces the span. *)

val record_utilization : t -> Tilelink_obs.Telemetry.t -> unit
(** Snapshot per-rank lane-utilization gauges ([util.sm.rank<r>],
    [util.dma.rank<r>]) and interconnect byte/busy gauges into the
    telemetry registry, over the elapsed simulation horizon. *)

val run_ranks : t -> (unit -> unit) array -> float
(** Spawn one process per rank, run to completion, return makespan. *)
