(* Declarative cluster topologies.

   A topology names a machine *shape* — how many NVLink islands, how
   many ranks per island, whether the ranks are heterogeneous (mixed
   SM counts / link speeds: stragglers by construction, not by
   injection) and whether co-tenant background traffic taxes the
   shared NIC links.  [layout] compiles the shape against a concrete
   world size into plain arrays and pure closures that [Cluster.create]
   wires into its existing rate hooks, so [same_node] / NIC routing
   become topology-driven instead of implicit in [gpus_per_node].

   Everything here is deterministic: the co-tenant tax is a stateless
   hash of (island, time bucket), so a seeded simulation replays
   byte-identically. *)

type shape =
  | Flat of int  (* one NVLink island of [n] ranks *)
  | Islands of { islands : int; per_island : int }
      (* [islands] NVLink islands bridged by per-island NICs *)

type t = {
  name : string;
  shape : shape;
  hetero : bool;  (* per-rank SM / link-speed scale factors *)
  cotenant : bool;  (* background traffic tax on shared NICs *)
}

let flat8 = { name = "flat8"; shape = Flat 8; hetero = false; cotenant = false }

let islands2x8 =
  {
    name = "islands2x8";
    shape = Islands { islands = 2; per_island = 8 };
    hetero = false;
    cotenant = false;
  }

let islands4x8 =
  {
    name = "islands4x8";
    shape = Islands { islands = 4; per_island = 8 };
    hetero = false;
    cotenant = false;
  }

let hetero16 =
  {
    name = "hetero16";
    shape = Islands { islands = 2; per_island = 8 };
    hetero = true;
    cotenant = false;
  }

let cotenant2x8 =
  {
    name = "cotenant2x8";
    shape = Islands { islands = 2; per_island = 8 };
    hetero = false;
    cotenant = true;
  }

let all = [ flat8; islands2x8; islands4x8; hetero16; cotenant2x8 ]
let name t = t.name
let names () = List.map name all

let of_string s =
  match List.find_opt (fun t -> t.name = s) all with
  | Some t -> Ok t
  | None ->
    Error
      (Printf.sprintf "unknown topology %S (expected one of: %s)" s
         (String.concat "|" (names ())))

let ranks_per_island t =
  match t.shape with Flat n -> n | Islands { per_island; _ } -> per_island

let num_islands t =
  match t.shape with Flat _ -> 1 | Islands { islands; _ } -> islands

let natural_world t = num_islands t * ranks_per_island t
let is_flat t = num_islands t = 1 && (not t.hetero) && not t.cotenant

(* Heterogeneous SKU mix: a repeating four-rank pattern.  Two
   full-speed parts, one with fewer effective SMs (compute 15% slower)
   and one older part with both slower compute and a narrower NVLink
   attach.  Scales are duration multipliers (compute, >= 1) and rate
   multipliers (link, <= 1). *)
let hetero_compute_scale rank =
  match rank mod 4 with 1 -> 1.15 | 3 -> 1.30 | _ -> 1.0

let hetero_link_scale rank = match rank mod 4 with 3 -> 0.75 | _ -> 1.0

(* Co-tenant background traffic: a stateless splitmix64-style hash of
   (seed, island, time bucket) drives a piecewise-constant NIC rate
   multiplier in [0.45, 1.0].  Pure in simulation time, so replays are
   exact; a fresh 50 µs bucket redraws the tax. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let hash_unit ~seed ~island ~bucket =
  let open Int64 in
  let z =
    mix64
      (add
         (mul (of_int seed) 0x9e3779b97f4a7c15L)
         (add (mul (of_int island) 0x2545f4914f6cdd1dL) (of_int bucket)))
  in
  Int64.to_float (shift_right_logical z 11) /. 9007199254740992.0 (* 2^53 *)

let cotenant_seed = 0x7313
let cotenant_bucket_us = 50.0

let cotenant_tax ~island ~now =
  let bucket = int_of_float (Float.max 0.0 now /. cotenant_bucket_us) in
  1.0 -. (0.55 *. hash_unit ~seed:cotenant_seed ~island ~bucket)

(* A topology compiled against a concrete world size: everything the
   cluster needs, as plain data.  World sizes that are not the natural
   world still lay out left-to-right, [ranks_per_island] ranks per
   island (a short tail island is fine — mirrors how [Cluster] already
   treats a partial last node). *)
type layout = {
  l_topology : t;
  l_world : int;
  l_num_islands : int;
  l_island_of_rank : int array;
  l_compute_scale : float array;  (* per-rank duration multiplier, >= 1 *)
  l_link_scale : float array;  (* per-rank NVLink rate multiplier, <= 1 *)
  l_nic_tax : (island:int -> now:float -> float) option;
}

let layout t ~world_size =
  if world_size <= 0 then invalid_arg "Topology.layout: world_size must be > 0";
  let per = ranks_per_island t in
  {
    l_topology = t;
    l_world = world_size;
    l_num_islands = (world_size + per - 1) / per;
    l_island_of_rank = Array.init world_size (fun r -> r / per);
    l_compute_scale =
      Array.init world_size (fun r ->
          if t.hetero then hetero_compute_scale r else 1.0);
    l_link_scale =
      Array.init world_size (fun r ->
          if t.hetero then hetero_link_scale r else 1.0);
    l_nic_tax = (if t.cotenant then Some cotenant_tax else None);
  }

let island_of l rank =
  if rank < 0 || rank >= l.l_world then
    invalid_arg "Topology.island_of: rank out of range";
  l.l_island_of_rank.(rank)

let islands l = l.l_num_islands

let describe t =
  let traits =
    (if t.hetero then [ "heterogeneous ranks" ] else [])
    @ (if t.cotenant then [ "co-tenant NIC traffic" ] else [])
    |> function [] -> "homogeneous" | ts -> String.concat ", " ts
  in
  match t.shape with
  | Flat n -> Printf.sprintf "%s: 1 island x %d ranks, %s" t.name n traits
  | Islands { islands; per_island } ->
    Printf.sprintf "%s: %d islands x %d ranks (%d total), %s" t.name islands
      per_island (islands * per_island) traits
