(** Dense linear algebra reference kernels. *)

val gemm :
  ?accumulate:bool ->
  ?out:Tensor.t ->
  ?block:int ->
  Tensor.t ->
  Tensor.t ->
  Tensor.t
(** [gemm a b] with [a : [m,k]], [b : [k,n]].  With [~out] writes (or
    with [~accumulate:true] adds) into the given tensor.  [~block > 0]
    runs the cache-blocked microkernel with that block edge over i and
    k; any block size is bit-identical to the default ([block = 0])
    path and to {!gemm_naive} — per output element the same additions
    happen in the same order — so the block edge is a pure speed knob
    (searched by the autotuner as {!Design_space.config.micro_block}). *)

val gemm_naive :
  ?accumulate:bool -> ?out:Tensor.t -> Tensor.t -> Tensor.t -> Tensor.t
(** The fully bounds-checked textbook i-k-j loop: the bit-level ground
    truth that [gemm] (at every block size) must reproduce exactly.
    Kept as the scalar reference for the sanity checker and as the
    baseline side of the kernel benchmarks. *)

val group_gemm : (Tensor.t * Tensor.t) list -> Tensor.t list
(** Per-group GEMMs with possibly different row counts (MoE). *)

val batch_gemm : Tensor.t -> Tensor.t -> Tensor.t
(** [a : [B,M,K]], [b : [B,K,N]] -> [B,M,N]. *)

val matvec : Tensor.t -> Tensor.t -> Tensor.t

val gemm_flops : m:int -> n:int -> k:int -> float
val attention_flops :
  batch_heads:int -> q_len:int -> kv_len:int -> head_dim:int -> float
