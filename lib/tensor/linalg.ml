(* Dense linear algebra: GEMM, batched GEMM, grouped GEMM.

   These are the reference kernels that both sides of every correctness
   test share: the overlapped tile programs must reproduce exactly what
   these plain loops compute.

   Two implementations of the same contraction live here.  [gemm_naive]
   is the fully bounds-checked textbook loop and is the bit-level
   ground truth.  [gemm] validates shapes once at entry and then runs
   an unchecked i-k-j kernel — optionally cache-blocked via [~block] —
   that performs, for every output element, the *same additions in the
   same order* as the naive loop.  Bit-identity between the two (and
   hence between every tuned block size) is what lets the autotuner
   treat the block edge as a pure speed knob. *)

let gemm_naive ?(accumulate = false) ?(out : Tensor.t option) a b =
  let m = Tensor.rows a and k = Tensor.cols a in
  if Tensor.rows b <> k then invalid_arg "Linalg.gemm: inner dim mismatch";
  let n = Tensor.cols b in
  let c =
    match out with
    | Some c ->
      if Tensor.rows c <> m || Tensor.cols c <> n then
        invalid_arg "Linalg.gemm: output shape mismatch";
      c
    | None -> Tensor.zeros (Shape.of_list [ m; n ])
  in
  let a_data = Tensor.data a
  and b_data = Tensor.data b
  and c_data = Tensor.data c in
  (* i-k-j loop order keeps the inner loop streaming over rows of b. *)
  for i = 0 to m - 1 do
    if not accumulate then
      Array.fill c_data (i * n) n 0.0;
    for kk = 0 to k - 1 do
      let aik = a_data.((i * k) + kk) in
      if aik <> 0.0 then begin
        let b_row = kk * n in
        let c_row = i * n in
        for j = 0 to n - 1 do
          c_data.(c_row + j) <-
            c_data.(c_row + j) +. (aik *. b_data.(b_row + j))
        done
      end
    done
  done;
  c

(* The k-panel [k0, k1) of row [i], accumulated into row [c_row] of c.
   Unrolled by two along k; the two products are added *sequentially*
   ([(c + p0) + p1], never a reassociated [c + (p0 + p1)]) and each k
   keeps the naive loop's zero-skip, so for every c element this emits
   exactly the additions the naive i-k-j loop emits, in its order. *)
let[@inline] k_panel a_data b_data c_data ~a_row ~c_row ~n ~k0 ~k1 =
  let kk = ref k0 in
  while !kk + 1 < k1 do
    let a0 = Array.unsafe_get a_data (a_row + !kk) in
    let a1 = Array.unsafe_get a_data (a_row + !kk + 1) in
    let b0 = !kk * n and b1 = (!kk + 1) * n in
    if a0 <> 0.0 then
      if a1 <> 0.0 then
        for j = 0 to n - 1 do
          let p0 = a0 *. Array.unsafe_get b_data (b0 + j) in
          let p1 = a1 *. Array.unsafe_get b_data (b1 + j) in
          Array.unsafe_set c_data (c_row + j)
            (Array.unsafe_get c_data (c_row + j) +. p0 +. p1)
        done
      else
        for j = 0 to n - 1 do
          Array.unsafe_set c_data (c_row + j)
            (Array.unsafe_get c_data (c_row + j)
            +. (a0 *. Array.unsafe_get b_data (b0 + j)))
        done
    else if a1 <> 0.0 then
      for j = 0 to n - 1 do
        Array.unsafe_set c_data (c_row + j)
          (Array.unsafe_get c_data (c_row + j)
          +. (a1 *. Array.unsafe_get b_data (b1 + j)))
      done;
    kk := !kk + 2
  done;
  if !kk < k1 then begin
    let aik = Array.unsafe_get a_data (a_row + !kk) in
    if aik <> 0.0 then begin
      let b_row = !kk * n in
      for j = 0 to n - 1 do
        Array.unsafe_set c_data (c_row + j)
          (Array.unsafe_get c_data (c_row + j)
          +. (aik *. Array.unsafe_get b_data (b_row + j)))
      done
    end
  end

let gemm ?(accumulate = false) ?(out : Tensor.t option) ?(block = 0) a b =
  let m = Tensor.rows a and k = Tensor.cols a in
  if Tensor.rows b <> k then invalid_arg "Linalg.gemm: inner dim mismatch";
  let n = Tensor.cols b in
  let c =
    match out with
    | Some c ->
      if Tensor.rows c <> m || Tensor.cols c <> n then
        invalid_arg "Linalg.gemm: output shape mismatch";
      c
    | None -> Tensor.zeros (Shape.of_list [ m; n ])
  in
  let a_data = Tensor.data a
  and b_data = Tensor.data b
  and c_data = Tensor.data c in
  (* One validation pass makes every unsafe access below in-bounds. *)
  if
    Array.length a_data < m * k
    || Array.length b_data < k * n
    || Array.length c_data < m * n
  then invalid_arg "Linalg.gemm: backing store shorter than shape";
  if not accumulate then Array.fill c_data 0 (m * n) 0.0;
  if block <= 0 then
    (* Plain i-k-j with the row bases hoisted out of the k loop. *)
    for i = 0 to m - 1 do
      let a_row = i * k and c_row = i * n in
      k_panel a_data b_data c_data ~a_row ~c_row ~n ~k0:0 ~k1:k
    done
  else begin
    (* Cache-blocked: i in blocks so the touched c rows stay resident,
       k in blocks so each pass streams a bounded panel of b.  Both
       block loops ascend, and within a panel k ascends, so per output
       element the addition order is unchanged. *)
    let bs = block in
    let i0 = ref 0 in
    while !i0 < m do
      let i1 = min m (!i0 + bs) in
      let k0 = ref 0 in
      while !k0 < k do
        let k1 = min k (!k0 + bs) in
        for i = !i0 to i1 - 1 do
          k_panel a_data b_data c_data ~a_row:(i * k) ~c_row:(i * n) ~n
            ~k0:!k0 ~k1
        done;
        k0 := k1
      done;
      i0 := i1
    done
  end;
  c

(* C[g] = A[g] * B[g] where the groups may have different row counts
   but share K and N — the Group GEMM of MoE layers. *)
let group_gemm groups =
  List.map (fun (a, b) -> gemm a b) groups

(* Batched GEMM over a leading batch dimension: a : [B, M, K],
   b : [B, K, N] -> [B, M, N]. *)
let batch_gemm a b =
  let sa = Tensor.shape a and sb = Tensor.shape b in
  if Shape.rank sa <> 3 || Shape.rank sb <> 3 then
    invalid_arg "Linalg.batch_gemm: rank <> 3";
  let batches = Shape.dim sa 0 in
  if Shape.dim sb 0 <> batches then
    invalid_arg "Linalg.batch_gemm: batch mismatch";
  let m = Shape.dim sa 1 and k = Shape.dim sa 2 in
  if Shape.dim sb 1 <> k then
    invalid_arg "Linalg.batch_gemm: inner dim mismatch";
  let n = Shape.dim sb 2 in
  let out = Tensor.zeros (Shape.of_list [ batches; m; n ]) in
  let slice_2d t batch rows cols =
    let copy = Tensor.zeros (Shape.of_list [ rows; cols ]) in
    Array.blit (Tensor.data t) (batch * rows * cols) (Tensor.data copy) 0
      (rows * cols);
    copy
  in
  for batch = 0 to batches - 1 do
    let c = gemm (slice_2d a batch m k) (slice_2d b batch k n) in
    Array.blit (Tensor.data c) 0 (Tensor.data out) (batch * m * n) (m * n)
  done;
  out

let matvec a x =
  let m = Tensor.rows a and k = Tensor.cols a in
  if Tensor.numel x <> k then invalid_arg "Linalg.matvec: size mismatch";
  let a_data = Tensor.data a and x_data = Tensor.data x in
  Tensor.of_array (Shape.of_list [ m ])
    (Array.init m (fun i ->
         let acc = ref 0.0 in
         for kk = 0 to k - 1 do
           acc := !acc +. (a_data.((i * k) + kk) *. x_data.(kk))
         done;
         !acc))

(* FLOP counts used by the cost model; kept next to the kernels so the
   two can never drift apart. *)
let gemm_flops ~m ~n ~k = 2.0 *. float_of_int m *. float_of_int n *. float_of_int k

let attention_flops ~batch_heads ~q_len ~kv_len ~head_dim =
  (* QK^T and PV, both [q_len, kv_len] x head_dim. *)
  4.0
  *. float_of_int batch_heads
  *. float_of_int q_len
  *. float_of_int kv_len
  *. float_of_int head_dim
