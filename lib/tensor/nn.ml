(* Neural-network reference operators: softmax, activations, top-k, and
   both monolithic and blockwise (flash) attention.

   The blockwise attention keeps explicit online-softmax state so the
   TileLink attention kernel can consume KV tiles in any arrival order
   a schedule produces and still match the monolithic reference. *)

let silu x = x /. (1.0 +. exp (-.x))

let gelu x =
  0.5 *. x
  *. (1.0 +. tanh (0.7978845608028654 *. (x +. (0.044715 *. x *. x *. x))))

type activation = Silu | Gelu

let apply_activation = function Silu -> silu | Gelu -> gelu

(* Gated MLP nonlinearity: out = act(gate) * up, where [gate_up] packs
   the two halves side by side: [m, 2*i] -> [m, i]. *)
let gated_activation act gate_up =
  let two_i = Tensor.cols gate_up in
  if two_i mod 2 <> 0 then
    invalid_arg "Nn.gated_activation: odd intermediate width";
  let i = two_i / 2 in
  let gate = Tensor.col_slice gate_up ~lo:0 ~hi:i in
  let up = Tensor.col_slice gate_up ~lo:i ~hi:two_i in
  Tensor.map2 (fun g u -> apply_activation act g *. u) gate up

let softmax_rows t =
  let m = Tensor.rows t and n = Tensor.cols t in
  let out = Tensor.zeros (Shape.of_list [ m; n ]) in
  let src = Tensor.data t and dst = Tensor.data out in
  (* Same passes in the same order as the get2/set2 version this
     replaces — only the per-element index arithmetic is hoisted. *)
  for i = 0 to m - 1 do
    let row = i * n in
    let row_max = ref neg_infinity in
    for j = 0 to n - 1 do
      row_max := Float.max !row_max src.(row + j)
    done;
    let sum = ref 0.0 in
    for j = 0 to n - 1 do
      let e = exp (src.(row + j) -. !row_max) in
      dst.(row + j) <- e;
      sum := !sum +. e
    done;
    for j = 0 to n - 1 do
      dst.(row + j) <- dst.(row + j) /. !sum
    done
  done;
  out

(* Top-k per row, ties broken toward the lower index (deterministic). *)
let topk t ~k =
  let m = Tensor.rows t and n = Tensor.cols t in
  if k <= 0 || k > n then invalid_arg "Nn.topk: bad k";
  Array.init m (fun i ->
      let order = Array.init n (fun j -> j) in
      Array.sort
        (fun a b ->
          let va = Tensor.get2 t i a and vb = Tensor.get2 t i b in
          if va = vb then compare a b else compare vb va)
        order;
      Array.sub order 0 k)

type mask = No_mask | Causal of { q_offset : int }

let masked_score mask ~q_row ~kv_col score =
  match mask with
  | No_mask -> score
  | Causal { q_offset } ->
    if kv_col > q_row + q_offset then neg_infinity else score

(* Monolithic scaled-dot-product attention for one head:
   q : [m, d], k : [s, d], v : [s, d] -> [m, d]. *)
let attention ?(mask = No_mask) q k v =
  let m = Tensor.rows q and d = Tensor.cols q in
  let s = Tensor.rows k in
  if Tensor.cols k <> d || Tensor.cols v <> d || Tensor.rows v <> s then
    invalid_arg "Nn.attention: shape mismatch";
  let inv_sqrt_d = 1.0 /. sqrt (float_of_int d) in
  let scores = Linalg.gemm q (Tensor.transpose k) in
  let masked =
    Tensor.init (Shape.of_list [ m; s ]) (fun idx ->
        let i = idx.(0) and j = idx.(1) in
        masked_score mask ~q_row:i ~kv_col:j
          (Tensor.get2 scores i j *. inv_sqrt_d))
  in
  Linalg.gemm (softmax_rows masked) v

(* Online-softmax state for blockwise (flash) attention. *)
module Flash = struct
  type t = {
    m : int;
    d : int;
    mask : mask;
    acc : Tensor.t;          (* running (unnormalized) output [m, d] *)
    row_max : float array;   (* running max of scores per query row  *)
    row_sum : float array;   (* running sum of exp(scores - max)     *)
  }

  let create ?(mask = No_mask) ~m ~d () =
    {
      m;
      d;
      mask;
      acc = Tensor.zeros (Shape.of_list [ m; d ]);
      row_max = Array.make m neg_infinity;
      row_sum = Array.make m 0.0;
    }

  (* Consume one KV block located at absolute sequence offset
     [kv_offset].  Standard flash-attention rescaling: when the running
     max changes, previously accumulated sums and outputs are scaled by
     exp(old_max - new_max). *)
  let update state q k_block v_block ~kv_offset =
    let m = state.m and d = state.d in
    if Tensor.rows q <> m || Tensor.cols q <> d then
      invalid_arg "Flash.update: q shape mismatch";
    let block = Tensor.rows k_block in
    if Tensor.cols k_block <> d || Tensor.rows v_block <> block then
      invalid_arg "Flash.update: kv shape mismatch";
    let inv_sqrt_d = 1.0 /. sqrt (float_of_int d) in
    let scores = Linalg.gemm q (Tensor.transpose k_block) in
    let scores_data = Tensor.data scores
    and acc_data = Tensor.data state.acc
    and v_data = Tensor.data v_block in
    for i = 0 to m - 1 do
      let s_row = i * block and acc_row = i * d in
      (* Block-local max for row i. *)
      let block_max = ref neg_infinity in
      let masked = Array.make block neg_infinity in
      for j = 0 to block - 1 do
        let s =
          masked_score state.mask ~q_row:i ~kv_col:(kv_offset + j)
            (scores_data.(s_row + j) *. inv_sqrt_d)
        in
        masked.(j) <- s;
        block_max := Float.max !block_max s
      done;
      if !block_max > neg_infinity then begin
        let new_max = Float.max state.row_max.(i) !block_max in
        let correction =
          if state.row_max.(i) = neg_infinity then 0.0
          else exp (state.row_max.(i) -. new_max)
        in
        state.row_sum.(i) <- state.row_sum.(i) *. correction;
        for c = 0 to d - 1 do
          acc_data.(acc_row + c) <- acc_data.(acc_row + c) *. correction
        done;
        for j = 0 to block - 1 do
          if masked.(j) > neg_infinity then begin
            let p = exp (masked.(j) -. new_max) in
            state.row_sum.(i) <- state.row_sum.(i) +. p;
            let v_row = j * d in
            for c = 0 to d - 1 do
              acc_data.(acc_row + c) <-
                acc_data.(acc_row + c) +. (p *. v_data.(v_row + c))
            done
          end
        done;
        state.row_max.(i) <- new_max
      end
    done

  let finish state =
    Tensor.init (Shape.of_list [ state.m; state.d ]) (fun idx ->
        let i = idx.(0) and c = idx.(1) in
        if state.row_sum.(i) = 0.0 then 0.0
        else Tensor.get2 state.acc i c /. state.row_sum.(i))
end

(* Convenience: full flash attention by sweeping blocks left to right —
   must equal [attention] up to float error. *)
let flash_attention ?(mask = No_mask) ?(block = 64) q k v =
  let m = Tensor.rows q and d = Tensor.cols q in
  let s = Tensor.rows k in
  let state = Flash.create ~mask ~m ~d () in
  let rec sweep offset =
    if offset < s then begin
      let hi = min s (offset + block) in
      Flash.update state q
        (Tensor.row_slice k ~lo:offset ~hi)
        (Tensor.row_slice v ~lo:offset ~hi)
        ~kv_offset:offset;
      sweep hi
    end
  in
  sweep 0;
  Flash.finish state
