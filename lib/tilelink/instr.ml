(* Low-level device instructions — the target of backend lowering.

   Tile-centric primitives compile into [Wait] (acquire) and [Notify]
   (release) instructions carrying the buffer ranges they guard, plus
   [Copy] for data movement; loads, stores and compute keep explicit
   access metadata so the software pipeliner and the memory-consistency
   verifier can reason about reordering without re-deriving aliasing.

   Data semantics ride along as closures over the rank memories: the
   same instruction stream is interpreted for timing alone or for
   timing + real data. *)

type range = int * int

type access = {
  buffer : string;
  mem_rank : int option;  (* None = the executing rank *)
  row : range;
  col : range;
}

let access ?rank ~buffer ~row ~col () = { buffer; mem_rank = rank; row; col }

let ranges_overlap (a_lo, a_hi) (b_lo, b_hi) = a_lo < b_hi && b_lo < a_hi

(* Two accesses may alias: same buffer ("*" is a wildcard matching any
   buffer), same resolved rank (a [None] rank conservatively aliases
   any rank), overlapping rectangles. *)
let accesses_overlap a b =
  (String.equal a.buffer "*" || String.equal b.buffer "*"
  || String.equal a.buffer b.buffer)
  && (match (a.mem_rank, b.mem_rank) with
     | Some r1, Some r2 -> r1 = r2
     | _ -> true)
  && ranges_overlap a.row b.row
  && ranges_overlap a.col b.col

type signal_target =
  | Pc of { rank : int; channel : int }
      (** Producer/consumer channel [channel] on [rank]. *)
  | Peer of { src : int; dst : int; channel : int }
      (** Peer channel [channel] from [src] to [dst]; channels give
          per-tile granularity to peer signalling. *)
  | Host of { src : int; dst : int }
      (** Copy-engine completion channel from [src] observed by
          kernels on [dst]. *)

let signal_target_to_string = function
  | Pc { rank; channel } -> Printf.sprintf "pc(r%d,c%d)" rank channel
  | Peer { src; dst; channel } ->
    Printf.sprintf "peer(%d->%d,c%d)" src dst channel
  | Host { src; dst } -> Printf.sprintf "host(%d->%d)" src dst

(* Canonical counter-key of a signal target — the exact name the
   runtime channel table uses, so static diagnostics line up with
   runtime deadlock/chaos output (and with [Chaos.parse_key]). *)
let key_of_target = function
  | Pc { rank; channel } -> Printf.sprintf "pc[%d][%d]" rank channel
  | Peer { src; dst; channel } -> Printf.sprintf "peer[%d<-%d][%d]" dst src channel
  | Host { src; dst } -> Printf.sprintf "host[%d<-%d]" dst src

(* The rank a wait on this target observes from — the counter's owner
   for [Pc], the producing side for [Peer]/[Host]. *)
let producer_of_target = function
  | Pc { rank; _ } -> rank
  | Peer { src; _ } -> src
  | Host { src; _ } -> src

let channel_of_target = function
  | Pc { channel; _ } | Peer { channel; _ } -> Some channel
  | Host _ -> None

type cost =
  | Gemm_tile of { tm : int; tn : int; k : int }
  | Attention_tile of { tq : int; tkv : int; d : int }
  | Memory_tile of { rows : int; cols : int; passes : int }
  | Fixed_cost of float
  | Free

(* A data action mutates the rank memories; [rank] is the executing
   rank so [mem_rank = None] accesses can be resolved. *)
type action = Memory.t -> rank:int -> unit

type t =
  | Load of { access : access }
      (** Global -> register staging; ordering token for pipelining. *)
  | Store of { access : access }
  | Compute of {
      label : string;
      cost : cost;
      reads : access list;
      writes : access list;
      action : action option;
    }
  | Copy of {
      label : string;
      src : access;
      dst : access;
      bytes : float;
      action : action option;
    }
      (** Data movement between ranks (or within one).  The executing
          resource (SM worker or DMA engine) is decided by the role
          hosting the instruction, not the instruction itself. *)
  | Wait of { target : signal_target; threshold : int; guards : access list }
      (** Acquire: no later load/compute touching [guards] may execute
          before this. *)
  | Notify of { target : signal_target; amount : int; releases : access list }
      (** Release: every earlier store/compute writing [releases] must
          complete before this. *)
  | Sleep of float
      (** Fixed latency (host gaps, launch overheads inside a role). *)

let reads_of = function
  | Load { access } -> [ access ]
  | Compute { reads; _ } -> reads
  | Copy { src; _ } -> [ src ]
  | Store _ | Wait _ | Notify _ | Sleep _ -> []

let writes_of = function
  | Store { access } -> [ access ]
  | Compute { writes; _ } -> writes
  | Copy { dst; _ } -> [ dst ]
  | Load _ | Wait _ | Notify _ | Sleep _ -> []

let to_string = function
  | Load { access } ->
    Printf.sprintf "load %s[%d:%d,%d:%d]" access.buffer (fst access.row)
      (snd access.row) (fst access.col) (snd access.col)
  | Store { access } ->
    Printf.sprintf "store %s[%d:%d,%d:%d]" access.buffer (fst access.row)
      (snd access.row) (fst access.col) (snd access.col)
  | Compute { label; _ } -> Printf.sprintf "compute %s" label
  | Copy { label; bytes; _ } -> Printf.sprintf "copy %s (%.0fB)" label bytes
  | Wait { target; threshold; _ } ->
    Printf.sprintf "wait %s >= %d" (signal_target_to_string target) threshold
  | Notify { target; amount; _ } ->
    Printf.sprintf "notify %s += %d" (signal_target_to_string target) amount
  | Sleep d -> Printf.sprintf "sleep %.2fus" d

let pp ppf t = Fmt.string ppf (to_string t)
