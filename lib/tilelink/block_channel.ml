(* BlockChannel (paper §6): the tile-centric mapping context.

   The real TileLink passes a special [BlockChannel] parameter into the
   Triton kernel; its embedded metadata (rank, world size, barrier
   configuration, producer/consumer block relationships) is decomposed
   during AST translation to construct the tile-centric mapping.  Here
   it is the record kernel builders thread through lowering. *)

type t = {
  rank : int;
  world_size : int;
  mapping : Mapping.t;
  channel_base : int;  (* offset into the rank's pc channel array *)
  peer_channels : int;
}

let create ?(channel_base = 0) ?(peer_channels = 1) ~rank ~world_size mapping
    =
  if rank < 0 || rank >= world_size then
    invalid_arg "Block_channel.create: rank out of range";
  if Mapping.ranks mapping <> world_size then
    invalid_arg "Block_channel.create: mapping/world size mismatch";
  { rank; world_size; mapping; channel_base; peer_channels }

let rank t = t.rank
let world_size t = t.world_size
let mapping t = t.mapping
let channel_base t = t.channel_base
let peer_channels t = t.peer_channels

(* Channels this link occupies: [channel_base, channel_base + extent). *)
let channel_extent t = Mapping.num_channels t.mapping

let lower_config t : Lower.config =
  { Lower.mapping = t.mapping; rank = t.rank; world_size = t.world_size }

(* Lower a statement list in this context, applying the channel-base
   offset to every producer/consumer signal target.

   With [telemetry], lowering also reports the static shape of the
   signal fabric it is about to occupy: a [Channel_acquire] journal
   event for the channel range (timestamped 0 — lowering happens before
   simulation time starts) and counters for how many wait/notify
   instructions the tile-centric primitives expanded into. *)
let lower ?telemetry t stmts =
  if Tilelink_obs.Telemetry.active telemetry then begin
    let tele = Option.get telemetry in
    Tilelink_obs.Journal.record
      (Tilelink_obs.Telemetry.journal tele)
      ~t:0.0
      (Tilelink_obs.Journal.Channel_acquire
         { rank = t.rank; base = t.channel_base; extent = channel_extent t });
    (* Zero-length marker span at t=0: makes the lowering's channel
       occupation visible to the span DAG without adding any charged
       time (never on the critical path — zero duration, no preds). *)
    Tilelink_obs.Span.record_task
      (Tilelink_obs.Telemetry.spans tele)
      ~kind:Tilelink_obs.Span.Compute
      ~label:
        (Printf.sprintf "lower.acquire[%d..%d)" t.channel_base
           (t.channel_base + channel_extent t))
      ~rank:t.rank ~worker:(-1) ~t0:0.0 ~t1:0.0
  end;
  let note_instr = function
    | Instr.Wait _ ->
      Option.iter
        (fun tele ->
          Tilelink_obs.Metrics.inc
            (Tilelink_obs.Telemetry.metrics tele)
            "lowered.waits")
        telemetry
    | Instr.Notify _ ->
      Option.iter
        (fun tele ->
          Tilelink_obs.Metrics.inc
            (Tilelink_obs.Telemetry.metrics tele)
            "lowered.notifies")
        telemetry
    | _ -> ()
  in
  let shift = function
    | Instr.Wait { target = Instr.Pc { rank; channel }; threshold; guards } ->
      Instr.Wait
        {
          target = Instr.Pc { rank; channel = channel + t.channel_base };
          threshold;
          guards;
        }
    | Instr.Notify { target = Instr.Pc { rank; channel }; amount; releases }
      ->
      Instr.Notify
        {
          target = Instr.Pc { rank; channel = channel + t.channel_base };
          amount;
          releases;
        }
    | instr -> instr
  in
  List.map
    (fun instr ->
      let shifted = shift instr in
      if Tilelink_obs.Telemetry.active telemetry then note_instr shifted;
      shifted)
    (Lower.lower (lower_config t) stmts)
