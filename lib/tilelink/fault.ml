(* Fault injection: program transformations that model signalling bugs
   and timing skew.

   The value of an overlapped-kernel compiler rests on its
   synchronization being exactly right, so the test suite does not just
   check the happy path: these transformations produce *broken or
   skewed* variants of real programs, and tests assert that the
   runtime's deadlock detector catches lost signals, that premature
   waits surface as wrong data, and that pure delays never affect
   results (only time). *)

let map_rank_tasks (program : Program.t) ~rank ~f =
  let plans =
    Array.mapi
      (fun r plan ->
        if r <> rank then plan
        else
          List.map
            (fun role -> { role with Program.tasks = f role.Program.tasks })
            plan)
      (Program.plans program)
  in
  Program.create
    ~name:(Program.name program ^ "+fault")
    ~world_size:(Program.world_size program)
    ~pc_channels:program.Program.pc_channels
    ~peer_channels:program.Program.peer_channels plans

(* Drop the [nth] Notify instruction (0-based, in task order) on
   [rank]: a lost signal.  Consumers of that signal wait forever and
   the engine reports a deadlock instead of hanging. *)
let drop_notify (program : Program.t) ~rank ~nth =
  let seen = ref 0 in
  map_rank_tasks program ~rank ~f:(fun tasks ->
      List.map
        (fun (task : Program.task) ->
          {
            task with
            Program.instrs =
              List.filter
                (fun instr ->
                  match instr with
                  | Instr.Notify _ ->
                    let keep = !seen <> nth in
                    incr seen;
                    keep
                  | _ -> true)
                task.Program.instrs;
          })
        tasks)

(* Weaken every Wait on [rank] by [delta]: the consumer stops waiting
   for the last [delta] producer signals of each channel and may read
   data that has not arrived.  On a machine where transfers are slow
   this surfaces as wrong results — which is precisely what the tests
   assert. *)
let weaken_waits (program : Program.t) ~rank ~delta =
  if delta <= 0 then invalid_arg "Fault.weaken_waits: delta must be > 0";
  map_rank_tasks program ~rank ~f:(fun tasks ->
      List.map
        (fun (task : Program.task) ->
          {
            task with
            Program.instrs =
              List.map
                (fun instr ->
                  match instr with
                  | Instr.Wait { target; threshold; guards } ->
                    Instr.Wait
                      { target; threshold = max 0 (threshold - delta); guards }
                  | instr -> instr)
                task.Program.instrs;
          })
        tasks)

(* Prepend a fixed delay to every task of the named role on [rank]:
   timing skew.  A correct program must produce identical data (only
   the makespan may change). *)
let delay_role (program : Program.t) ~rank ~role_name ~us =
  if us < 0.0 then invalid_arg "Fault.delay_role: negative delay";
  let plans =
    Array.mapi
      (fun r plan ->
        if r <> rank then plan
        else
          List.map
            (fun role ->
              if role.Program.role_name <> role_name then role
              else
                {
                  role with
                  Program.tasks =
                    List.map
                      (fun (task : Program.task) ->
                        {
                          task with
                          Program.instrs =
                            Instr.Sleep us :: task.Program.instrs;
                        })
                      role.Program.tasks;
                })
            plan)
      (Program.plans program)
  in
  Program.create
    ~name:(Program.name program ^ "+skew")
    ~world_size:(Program.world_size program)
    ~pc_channels:program.Program.pc_channels
    ~peer_channels:program.Program.peer_channels plans

(* Emit the [nth] Notify twice: a retransmitted signal.  Because waits
   are >= comparisons on monotonic counters, a correct program must
   tolerate duplication — only the counter value inflates. *)
let duplicate_notify (program : Program.t) ~rank ~nth =
  let seen = ref 0 in
  map_rank_tasks program ~rank ~f:(fun tasks ->
      List.map
        (fun (task : Program.task) ->
          {
            task with
            Program.instrs =
              List.concat_map
                (fun instr ->
                  match instr with
                  | Instr.Notify _ ->
                    let dup = !seen = nth in
                    incr seen;
                    if dup then [ instr; instr ] else [ instr ]
                  | _ -> [ instr ])
                task.Program.instrs;
          })
        tasks)

(* Swap the payloads (target and amount) of the [nth] and [nth+1]
   Notify instructions in the rank's task order, keeping their
   positions: a reordered delivery.  If the two notifies land on
   different channels, the earlier channel's consumer can be released
   before its tile has been produced — premature data visibility. *)
let reorder_notifies (program : Program.t) ~rank ~nth =
  let notifies = ref [] in
  Array.iteri
    (fun r plan ->
      if r = rank then
        List.iter
          (fun role ->
            List.iter
              (fun (task : Program.task) ->
                List.iter
                  (fun instr ->
                    match instr with
                    | Instr.Notify _ -> notifies := instr :: !notifies
                    | _ -> ())
                  task.Program.instrs)
              role.Program.tasks)
          plan)
    (Program.plans program);
  let order = Array.of_list (List.rev !notifies) in
  if nth < 0 || nth + 1 >= Array.length order then
    invalid_arg "Fault.reorder_notifies: nth out of range";
  let tmp = order.(nth) in
  order.(nth) <- order.(nth + 1);
  order.(nth + 1) <- tmp;
  let seen = ref 0 in
  map_rank_tasks program ~rank ~f:(fun tasks ->
      List.map
        (fun (task : Program.task) ->
          {
            task with
            Program.instrs =
              List.map
                (fun instr ->
                  match instr with
                  | Instr.Notify _ ->
                    let replacement = order.(!seen) in
                    incr seen;
                    replacement
                  | _ -> instr)
                task.Program.instrs;
          })
        tasks)

(* Retarget the [nth] Notify on [rank] to the next rank's counter (a
   wrong f_R resolution): [Pc] moves to the neighbouring rank's channel,
   [Peer]/[Host] to the neighbouring destination.  The intended consumer
   is never signalled and a bystander key is signalled for nothing —
   the analyzer must report both ends. *)
let swap_notify_rank (program : Program.t) ~rank ~nth =
  let world = Program.world_size program in
  let seen = ref 0 in
  map_rank_tasks program ~rank ~f:(fun tasks ->
      List.map
        (fun (task : Program.task) ->
          {
            task with
            Program.instrs =
              List.map
                (fun instr ->
                  match instr with
                  | Instr.Notify { target; amount; releases } ->
                    let hit = !seen = nth in
                    incr seen;
                    if not hit then instr
                    else
                      let target =
                        match target with
                        | Instr.Pc { rank; channel } ->
                          Instr.Pc { rank = (rank + 1) mod world; channel }
                        | Instr.Peer { src; dst; channel } ->
                          Instr.Peer { src; dst = (dst + 1) mod world; channel }
                        | Instr.Host { src; dst } ->
                          Instr.Host { src; dst = (dst + 1) mod world }
                      in
                      Instr.Notify { target; amount; releases }
                  | _ -> instr)
                task.Program.instrs;
          })
        tasks)

(* Raise the [nth] Wait threshold on [rank] by one: an off-by-one epoch
   — the consumer demands a signal no producer will ever send. *)
let bump_wait_threshold (program : Program.t) ~rank ~nth =
  let seen = ref 0 in
  map_rank_tasks program ~rank ~f:(fun tasks ->
      List.map
        (fun (task : Program.task) ->
          {
            task with
            Program.instrs =
              List.map
                (fun instr ->
                  match instr with
                  | Instr.Wait { target; threshold; guards } ->
                    let hit = !seen = nth in
                    incr seen;
                    if hit then
                      Instr.Wait { target; threshold = threshold + 1; guards }
                    else instr
                  | _ -> instr)
                task.Program.instrs;
          })
        tasks)

(* Raise the [nth] Notify amount on [rank] by one: the key advances one
   epoch further than the protocol registered waiters for. *)
let bump_notify_amount (program : Program.t) ~rank ~nth =
  let seen = ref 0 in
  map_rank_tasks program ~rank ~f:(fun tasks ->
      List.map
        (fun (task : Program.task) ->
          {
            task with
            Program.instrs =
              List.map
                (fun instr ->
                  match instr with
                  | Instr.Notify { target; amount; releases } ->
                    let hit = !seen = nth in
                    incr seen;
                    if hit then
                      Instr.Notify { target; amount = amount + 1; releases }
                    else instr
                  | _ -> instr)
                task.Program.instrs;
          })
        tasks)

(* Elastic remap after a rank crash: rewrite every [Pc] signal target
   the dead rank owns onto the survivors, mirroring
   [Mapping.remap_rank]'s per-channel scheme — dead local channel [c]
   moves to survivor [survivors.(c mod n)] at fresh local slot
   [cpr + c / n]; live targets carry rank-local coordinates and are
   unchanged.  The result's [pc_channels] grows to the remapped stride
   so the rerouted slots exist.  The survivor list's *order* is
   preserved: a topology-aware coordinator puts intra-island survivors
   first so the dead rank's channels land on NVLink-local peers, and
   the runtime's channel-alias registration must consume the identical
   ordering.  This is the *protocol-level* remap the analyzer
   re-validates before replay; peer/host channels are point-to-point
   and not part of f_C, so they stay as they are. *)
let remap_program (program : Program.t) ~dead ~survivors =
  let world = Program.world_size program in
  if dead < 0 || dead >= world then
    invalid_arg "Fault.remap_program: dead rank out of range";
  if survivors = [] then invalid_arg "Fault.remap_program: no survivors";
  let sv = Array.of_list survivors in
  if
    List.length (List.sort_uniq compare survivors) <> List.length survivors
  then invalid_arg "Fault.remap_program: duplicate survivors";
  Array.iter
    (fun s ->
      if s < 0 || s >= world then
        invalid_arg "Fault.remap_program: survivor out of range";
      if s = dead then
        invalid_arg "Fault.remap_program: dead rank listed as survivor")
    sv;
  let n = Array.length sv in
  let cpr = program.Program.pc_channels in
  let new_cpr =
    Mapping.remap_channels_per_rank ~channels_per_rank:cpr ~survivors:n
  in
  let retarget = function
    | Instr.Pc { rank; channel } when rank = dead ->
      Instr.Pc { rank = sv.(channel mod n); channel = cpr + (channel / n) }
    | t -> t
  in
  let rewrite = function
    | Instr.Notify { target; amount; releases } ->
      Instr.Notify { target = retarget target; amount; releases }
    | Instr.Wait { target; threshold; guards } ->
      Instr.Wait { target = retarget target; threshold; guards }
    | instr -> instr
  in
  let plans =
    Array.map
      (fun plan ->
        List.map
          (fun role ->
            {
              role with
              Program.tasks =
                List.map
                  (fun (task : Program.task) ->
                    {
                      task with
                      Program.instrs = List.map rewrite task.Program.instrs;
                    })
                  role.Program.tasks;
            })
          plan)
      (Program.plans program)
  in
  Program.create
    ~name:(Program.name program ^ "+remap")
    ~world_size:world ~pc_channels:new_cpr
    ~peer_channels:program.Program.peer_channels plans

let count_rank_instrs (program : Program.t) ~rank ~p =
  List.fold_left
    (fun acc role ->
      List.fold_left
        (fun acc (task : Program.task) ->
          List.fold_left
            (fun acc instr -> if p instr then acc + 1 else acc)
            acc task.Program.instrs)
        acc role.Program.tasks)
    0
    (Program.plans program).(rank)

let count_notifies (program : Program.t) ~rank =
  count_rank_instrs program ~rank ~p:(function
    | Instr.Notify _ -> true
    | _ -> false)

let count_waits (program : Program.t) ~rank =
  count_rank_instrs program ~rank ~p:(function
    | Instr.Wait _ -> true
    | _ -> false)
