(** Design-space search: evaluate candidates under the simulator and
    keep the fastest, optionally fanning out over a domain pool and
    short-circuiting through an evaluation cache. *)

type 'a evaluation = {
  candidate : 'a;
  config : Design_space.config;
  time : float;
  exposed_comm_us : float option;
      (** exposed-communication blame (µs on the critical path) from
          the causal profiler; [Some] for {!search_programs}
          candidates, [None] for scalar {!search} evaluators and
          pre-profiler cache entries *)
}

type 'a outcome = {
  best : 'a evaluation;
  evaluated : 'a evaluation list;  (** in candidate order, both paths *)
  skipped : int;
      (** total skips, [= build + invalid + deadlock + race] *)
  skipped_build : int;
      (** [Invalid_argument] while building (bad tile/extent combos) *)
  skipped_invalid : int;  (** [Invalid_argument] while evaluating *)
  skipped_deadlock : int;
      (** {!Tilelink_sim.Engine.Deadlock} while evaluating *)
  skipped_race : int;
      (** rejected by the static protocol analysis before evaluation *)
  cache_hits : int;  (** candidates served from the cache *)
  cache_misses : int;  (** candidates that had to be evaluated *)
}

val search :
  ?pool:Tilelink_exec.Pool.t ->
  ?cache:Tilelink_exec.Cache.t ->
  ?cache_key:(Design_space.config -> string) ->
  ?analyze:('a -> (unit, string) result) ->
  build:(Design_space.config -> 'a) ->
  evaluate:('a -> float) ->
  Design_space.config list ->
  'a outcome option
(** With [pool], candidates evaluate in parallel; [build]/[evaluate]
    must then confine mutable state to their own invocation (fresh
    cluster per call).  The outcome is identical to the sequential
    path: [evaluated] is in candidate order and [best] is the earliest
    strict minimum.  Caching needs both [cache] and [cache_key]; only
    successful evaluations are stored.  [analyze] runs on each built
    candidate {e before} the cache lookup: a failing candidate counts
    as [skipped_race] and is neither evaluated nor served from cache. *)

val search_programs :
  ?pool:Tilelink_exec.Pool.t ->
  ?cache:Tilelink_exec.Cache.t ->
  ?workload:string ->
  ?analyze:bool ->
  build:(Design_space.config -> Program.t) ->
  make_cluster:(unit -> Tilelink_machine.Cluster.t) ->
  Design_space.config list ->
  Program.t outcome option
(** Program-valued candidates, simulated on a fresh cluster built by
    [make_cluster] inside each evaluating task (simulated clusters are
    single-shot and must stay domain-confined).  Cache keys fingerprint
    [workload] — which must therefore identify the kernel {e and}
    shape — together with the machine spec, world size and config.
    [analyze] (default [true]) pre-flights every built program through
    {!Analyzer.check_message}; statically-broken candidates count as
    [skipped_race]. *)

val search_planned :
  ?pool:Tilelink_exec.Pool.t ->
  ?cache:Tilelink_exec.Cache.t ->
  ?workload:string ->
  ?analyze:bool ->
  fingerprint:('c -> string) ->
  config_of:('c -> Design_space.config) ->
  build:('c -> Program.t) ->
  make_cluster:(unit -> Tilelink_machine.Cluster.t) ->
  'c list ->
  ('c * Program.t) outcome option
(** The planner's entry point: candidates of an arbitrary type that
    embed a design-space point ([config_of], recorded in each
    evaluation) and synthesize to a program ([build]).  [fingerprint]
    must cover every candidate axis beyond the embedded config
    (transfer mode, chunk count, ...) so cache keys never conflate two
    schedules; [workload] must identify the operator graph and shape.
    Evaluations pair the candidate with its synthesized program.
    [analyze] (default [true]) pre-flights every synthesized program —
    no planner-derived protocol is ever scored unchecked. *)

val cache_schema_version : int
(** Version tag written into persistent cache entries.  Loads accept
    the current version, migrate untagged legacy objects that carry
    the full measurement, and invalidate anything else (bare-number
    entries in particular) so stale shapes re-evaluate instead of
    silently skewing exposed-communication scoring. *)
