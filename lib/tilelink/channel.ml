(* Barrier channels: the signal fabric the primitives compile to.

   Every rank owns [channels_per_rank] producer/consumer channels plus
   [peer_channels] peer channels per remote rank, plus one host channel.
   A channel is a monotonic counter in NVSHMEM-style symmetric memory;
   notifies are release-stores, waits are acquire-loads (the simulator
   realizes them as waitable counters). *)

(* What the fault interceptor decides about one notify.  [Delay]
   reschedules delivery after the given number of microseconds through
   the scheduler the runtime installed. *)
type decision = Deliver | Drop | Duplicate | Delay of float

type interceptor = kind:string -> key:string -> rank:int -> amount:int -> decision

type pending_wait = {
  pw_key : string;
  pw_rank : int;
  pw_threshold : int;
  pw_since : float;
}

type t = {
  world_size : int;
  channels_per_rank : int;
  (* producer/consumer channels: [rank].(channel) *)
  pc : Tilelink_sim.Counter.t array array;
  (* peer channels: [dst_rank].(src_rank).(channel) *)
  peer : Tilelink_sim.Counter.t array array array;
  (* host channels: [dst_rank].(src_rank) *)
  host : Tilelink_sim.Counter.t array array;
  (* Telemetry sink plus the simulation clock that timestamps its
     events.  [None] (the default) keeps the original zero-overhead
     signal path. *)
  telemetry : Tilelink_obs.Telemetry.t option;
  clock : unit -> float;
  (* Fault-injection hook applied to every notify; [None] delivers
     everything untouched. *)
  interceptor : interceptor option;
  (* How to defer a delayed delivery (the runtime wires this to
     [Engine.schedule]); without it delays degrade to prompt delivery. *)
  scheduler : (float -> (unit -> unit) -> unit) option;
  (* Counter lookup by name, so the watchdog can re-issue a signal
     knowing only its key. *)
  by_key : (string, Tilelink_sim.Counter.t) Hashtbl.t;
  (* Cumulative value each counter *should* have received, including
     dropped notifies: threshold <= intended means the signal was sent
     and lost in flight (retryable); threshold > intended means the
     producer never issued it (structural). *)
  intended : (string, int) Hashtbl.t;
  (* In-flight waits keyed by a unique id, so a watchdog can see who is
     blocked on what and since when. *)
  pending : (int, pending_wait) Hashtbl.t;
  mutable next_wait_id : int;
}

(* Delivery is an idempotent set-to-epoch, not an add: [epoch] is the
   intended cumulative value captured when the notify was issued.  A
   duplicate arrival, or a delayed delivery landing after the watchdog
   already force-released the wait, is then a no-op instead of an
   overshoot that would prematurely release future waits on the same
   key.  This mirrors release-stores of a monotonically increasing
   flag value (the hardware notify these channels model). *)
let deliver t ?pred ~kind ~rank counter ~epoch ~amount =
  Tilelink_sim.Counter.set_at_least counter epoch;
  if Tilelink_obs.Telemetry.active t.telemetry then begin
    let tele = Option.get t.telemetry in
    Tilelink_obs.Metrics.inc
      (Tilelink_obs.Telemetry.metrics tele)
      ("notifies." ^ kind);
    let key = Tilelink_sim.Counter.name counter in
    let value = Tilelink_sim.Counter.value counter in
    let now = t.clock () in
    Tilelink_obs.Journal.record
      (Tilelink_obs.Telemetry.journal tele)
      ~t:now
      (Tilelink_obs.Journal.Signal_set { key; rank; amount; value });
    (* The span is recorded at *delivery* (not issue): a dropped notify
       never becomes a wait-resolution candidate, and a delayed one
       carries its real arrival time.  [pred] is the issuer's causal
       cursor captured at issue time. *)
    Tilelink_obs.Span.record_notify
      (Tilelink_obs.Telemetry.spans tele)
      ?pred ~label:("notify." ^ kind) ~rank ~key ~value ~t:now
  end

let fault_mark t ~fault_kind ~key ~rank =
  if Tilelink_obs.Telemetry.active t.telemetry then begin
    let tele = Option.get t.telemetry in
    Tilelink_obs.Metrics.inc
      (Tilelink_obs.Telemetry.metrics tele)
      ("fault." ^ fault_kind);
    Tilelink_obs.Journal.record
      (Tilelink_obs.Telemetry.journal tele)
      ~t:(t.clock ())
      (Tilelink_obs.Journal.Fault_injected { kind = fault_kind; key; rank })
  end

let intended_value t ~key =
  Option.value ~default:0 (Hashtbl.find_opt t.intended key)

(* Notify with fault interception.  Intended-value bookkeeping counts
   the notify once regardless of the decision: a dropped signal was
   still *sent* (so a retry may legitimately re-issue it), a duplicate
   only entitles the consumer to one increment. *)
let notify_instr ?worker t ~kind ~rank counter ~amount =
  let key = Tilelink_sim.Counter.name counter in
  let epoch = intended_value t ~key + amount in
  Hashtbl.replace t.intended key epoch;
  (* Causal predecessor of the (eventual) delivery: the issuing
     worker's last span, captured *now* so a delayed delivery still
     points at what the producer had done when it issued the signal. *)
  let pred =
    if Tilelink_obs.Telemetry.active t.telemetry then
      match worker with
      | Some w when w >= 0 ->
        Tilelink_obs.Span.cursor
          (Tilelink_obs.Telemetry.spans (Option.get t.telemetry))
          ~worker:w
      | _ -> None
    else None
  in
  match t.interceptor with
  | None -> deliver t ?pred ~kind ~rank counter ~epoch ~amount
  | Some decide -> (
    match decide ~kind ~key ~rank ~amount with
    | Deliver -> deliver t ?pred ~kind ~rank counter ~epoch ~amount
    | Drop -> fault_mark t ~fault_kind:"drop" ~key ~rank
    | Duplicate ->
      fault_mark t ~fault_kind:"duplicate" ~key ~rank;
      deliver t ?pred ~kind ~rank counter ~epoch ~amount;
      deliver t ?pred ~kind ~rank counter ~epoch ~amount
    | Delay d -> (
      fault_mark t ~fault_kind:"delay" ~key ~rank;
      match t.scheduler with
      | Some sched ->
        sched d (fun () -> deliver t ?pred ~kind ~rank counter ~epoch ~amount)
      | None -> deliver t ?pred ~kind ~rank counter ~epoch ~amount))

(* Instrumented wait: journal begin/end (even for waits that are
   satisfied immediately — a zero-latency wait is still a pairing
   point) and feed the per-primitive wait-latency histogram.  The
   pending-wait registry is maintained unconditionally: it is what
   watchdogs and deadlock enrichment read, and must not depend on
   telemetry being on. *)
let wait_instr ?waiter ?worker t ~kind ~rank counter ~threshold =
  let key = Tilelink_sim.Counter.name counter in
  let id = t.next_wait_id in
  t.next_wait_id <- id + 1;
  (* The cancellation tag is the *executing* rank (the process that
     blocks here), which for pc waits differs from [rank] (the channel
     owner): killing a rank must wake the workers it hosts, not the
     waiters watching its channels. *)
  let tag = Option.value ~default:Tilelink_sim.Counter.no_tag waiter in
  Hashtbl.replace t.pending id
    { pw_key = key; pw_rank = rank; pw_threshold = threshold;
      pw_since = t.clock () };
  (if Tilelink_obs.Telemetry.active t.telemetry then begin
     let tele = Option.get t.telemetry in
     let journal = Tilelink_obs.Telemetry.journal tele in
     let t0 = t.clock () in
     Tilelink_obs.Journal.record journal ~t:t0
       (Tilelink_obs.Journal.Wait_begin { key; rank; threshold });
     Tilelink_sim.Counter.await_ge ~tag counter threshold;
     let t1 = t.clock () in
     Tilelink_obs.Journal.record journal ~t:t1
       (Tilelink_obs.Journal.Wait_end { key; rank; threshold; started = t0 });
     let metrics = Tilelink_obs.Telemetry.metrics tele in
     Tilelink_obs.Metrics.inc metrics ("waits." ^ kind);
     Tilelink_obs.Metrics.observe metrics ("wait_us." ^ kind) (t1 -. t0);
     (* Only a wait that actually blocked becomes a stall span; an
        immediately satisfied wait has no causal weight. *)
     if t1 > t0 then
       Tilelink_obs.Span.record_wait
         (Tilelink_obs.Telemetry.spans tele)
         ~label:("wait." ^ kind)
         ~rank:(Option.value ~default:rank waiter)
         ~worker:(Option.value ~default:(-1) worker)
         ~key ~threshold ~t0 ~t1
   end
   else Tilelink_sim.Counter.await_ge ~tag counter threshold);
  Hashtbl.remove t.pending id

let create ~world_size ~channels_per_rank ?(peer_channels = 1) ?telemetry
    ?(clock = fun () -> 0.0) ?interceptor ?scheduler () =
  if world_size <= 0 then invalid_arg "Channel.create: world_size";
  if channels_per_rank <= 0 then
    invalid_arg "Channel.create: channels_per_rank";
  let by_key = Hashtbl.create 64 in
  let mk name =
    let c = Tilelink_sim.Counter.create ~name () in
    Hashtbl.replace by_key name c;
    c
  in
  {
    world_size;
    channels_per_rank;
    telemetry;
    clock;
    interceptor;
    scheduler;
    by_key;
    intended = Hashtbl.create 64;
    pending = Hashtbl.create 16;
    next_wait_id = 0;
    pc =
      Array.init world_size (fun r ->
          Array.init channels_per_rank (fun c ->
              mk (Printf.sprintf "pc[%d][%d]" r c)));
    peer =
      Array.init world_size (fun dst ->
          Array.init world_size (fun src ->
              Array.init peer_channels (fun c ->
                  mk (Printf.sprintf "peer[%d<-%d][%d]" dst src c))));
    host =
      Array.init world_size (fun dst ->
          Array.init world_size (fun src ->
              mk (Printf.sprintf "host[%d<-%d]" dst src)));
  }

(* Deterministic ordering: oldest wait first, ties broken
   lexicographically so the watchdog's pick is reproducible. *)
let pending_waits t =
  Hashtbl.fold (fun _ pw acc -> pw :: acc) t.pending []
  |> List.sort (fun a b ->
         match compare a.pw_since b.pw_since with
         | 0 -> compare (a.pw_key, a.pw_rank, a.pw_threshold)
                  (b.pw_key, b.pw_rank, b.pw_threshold)
         | c -> c)

let key_value t ~key =
  Option.map Tilelink_sim.Counter.value (Hashtbl.find_opt t.by_key key)

(* The watchdog's re-issue path: idempotent (set-at-least, not add) and
   deliberately bypasses the interceptor — a recovery action must not
   itself be faulted away silently; the chaos schedule models lossy
   retries separately. *)
let force_signal t ~key ~target =
  match Hashtbl.find_opt t.by_key key with
  | None -> invalid_arg (Printf.sprintf "Channel.force_signal: unknown key %s" key)
  | Some c -> Tilelink_sim.Counter.set_at_least c target

(* Elastic remap support: register [alias] as another name of the
   counter behind [key].  Rerouted keys of a remapped protocol resolve
   (for force_signal / key_value / the watchdog) to the original
   counter the already-blocked consumers are waiting on. *)
let register_remap t ~key ~alias =
  match Hashtbl.find_opt t.by_key key with
  | None ->
    invalid_arg (Printf.sprintf "Channel.register_remap: unknown key %s" key)
  | Some c -> Hashtbl.replace t.by_key alias c

let world_size t = t.world_size
let channels_per_rank t = t.channels_per_rank

let check_rank t r label =
  if r < 0 || r >= t.world_size then
    invalid_arg (Printf.sprintf "Channel.%s: rank %d out of range" label r)

let check_channel t c label =
  if c < 0 || c >= t.channels_per_rank then
    invalid_arg (Printf.sprintf "Channel.%s: channel %d out of range" label c)

(* Force-release every wait a crashed rank's processes are blocked in:
   the counters keep their values (nothing is delivered), the woken
   workers observe the rank is dead and abandon their tasks.  Without
   this a dead rank's parked workers would keep the engine's live count
   up forever and a polling watchdog would spin for eternity. *)
let cancel_rank_waits t ~rank =
  check_rank t rank "cancel_rank_waits";
  (* Iterate the structured arrays, not [by_key]: remap aliases point
     at counters already visited and must not be cancelled twice. *)
  let n = ref 0 in
  let cancel c = n := !n + Tilelink_sim.Counter.cancel_tag c ~tag:rank in
  Array.iter (Array.iter cancel) t.pc;
  Array.iter (Array.iter (Array.iter cancel)) t.peer;
  Array.iter (Array.iter cancel) t.host;
  !n

(* Producer/consumer channel on [rank]. *)
let pc_notify ?worker t ~rank ~channel ~amount =
  check_rank t rank "pc_notify";
  check_channel t channel "pc_notify";
  notify_instr ?worker t ~kind:"pc" ~rank t.pc.(rank).(channel) ~amount

let pc_wait ?waiter ?worker t ~rank ~channel ~threshold =
  check_rank t rank "pc_wait";
  check_channel t channel "pc_wait";
  wait_instr ?waiter ?worker t ~kind:"pc" ~rank t.pc.(rank).(channel) ~threshold

let pc_value t ~rank ~channel =
  check_rank t rank "pc_value";
  check_channel t channel "pc_value";
  Tilelink_sim.Counter.value t.pc.(rank).(channel)

(* Peer channel: [src] signals [dst]. *)
let peer_notify ?worker t ~src ~dst ?(channel = 0) ~amount () =
  check_rank t src "peer_notify";
  check_rank t dst "peer_notify";
  notify_instr ?worker t ~kind:"peer" ~rank:src t.peer.(dst).(src).(channel)
    ~amount

let peer_wait ?waiter ?worker t ~src ~dst ?(channel = 0) ~threshold () =
  check_rank t src "peer_wait";
  check_rank t dst "peer_wait";
  wait_instr ?waiter ?worker t ~kind:"peer" ~rank:dst
    t.peer.(dst).(src).(channel) ~threshold

let peer_value t ~src ~dst ?(channel = 0) () =
  Tilelink_sim.Counter.value t.peer.(dst).(src).(channel)

(* Host channel: copy-engine completion signalled to [dst]'s kernels. *)
let host_notify ?worker t ~src ~dst ~amount =
  check_rank t src "host_notify";
  check_rank t dst "host_notify";
  notify_instr ?worker t ~kind:"host" ~rank:src t.host.(dst).(src) ~amount

let host_wait ?waiter ?worker t ~src ~dst ~threshold =
  check_rank t src "host_wait";
  check_rank t dst "host_wait";
  wait_instr ?waiter ?worker t ~kind:"host" ~rank:dst t.host.(dst).(src)
    ~threshold

let total_notifies t =
  let sum = ref 0 in
  let count c = sum := !sum + Tilelink_sim.Counter.notify_count c in
  Array.iter (Array.iter count) t.pc;
  Array.iter (Array.iter (Array.iter count)) t.peer;
  Array.iter (Array.iter count) t.host;
  !sum
