(* Barrier channels: the signal fabric the primitives compile to.

   Every rank owns [channels_per_rank] producer/consumer channels plus
   [peer_channels] peer channels per remote rank, plus one host channel.
   A channel is a monotonic counter in NVSHMEM-style symmetric memory;
   notifies are release-stores, waits are acquire-loads (the simulator
   realizes them as waitable counters). *)

type t = {
  world_size : int;
  channels_per_rank : int;
  (* producer/consumer channels: [rank].(channel) *)
  pc : Tilelink_sim.Counter.t array array;
  (* peer channels: [dst_rank].(src_rank).(channel) *)
  peer : Tilelink_sim.Counter.t array array array;
  (* host channels: [dst_rank].(src_rank) *)
  host : Tilelink_sim.Counter.t array array;
  (* Telemetry sink plus the simulation clock that timestamps its
     events.  [None] (the default) keeps the original zero-overhead
     signal path. *)
  telemetry : Tilelink_obs.Telemetry.t option;
  clock : unit -> float;
}

(* Instrumented notify: record the post-add counter value so the
   Perfetto exporter can pair each wait with the notify whose
   cumulative value first reached its threshold. *)
let notify_instr t ~kind ~rank counter ~amount =
  Tilelink_sim.Counter.add counter amount;
  if Tilelink_obs.Telemetry.active t.telemetry then begin
    let tele = Option.get t.telemetry in
    Tilelink_obs.Metrics.inc
      (Tilelink_obs.Telemetry.metrics tele)
      ("notifies." ^ kind);
    Tilelink_obs.Journal.record
      (Tilelink_obs.Telemetry.journal tele)
      ~t:(t.clock ())
      (Tilelink_obs.Journal.Signal_set
         {
           key = Tilelink_sim.Counter.name counter;
           rank;
           amount;
           value = Tilelink_sim.Counter.value counter;
         })
  end

(* Instrumented wait: journal begin/end (even for waits that are
   satisfied immediately — a zero-latency wait is still a pairing
   point) and feed the per-primitive wait-latency histogram. *)
let wait_instr t ~kind ~rank counter ~threshold =
  if Tilelink_obs.Telemetry.active t.telemetry then begin
    let tele = Option.get t.telemetry in
    let journal = Tilelink_obs.Telemetry.journal tele in
    let key = Tilelink_sim.Counter.name counter in
    let t0 = t.clock () in
    Tilelink_obs.Journal.record journal ~t:t0
      (Tilelink_obs.Journal.Wait_begin { key; rank; threshold });
    Tilelink_sim.Counter.await_ge counter threshold;
    let t1 = t.clock () in
    Tilelink_obs.Journal.record journal ~t:t1
      (Tilelink_obs.Journal.Wait_end { key; rank; threshold; started = t0 });
    let metrics = Tilelink_obs.Telemetry.metrics tele in
    Tilelink_obs.Metrics.inc metrics ("waits." ^ kind);
    Tilelink_obs.Metrics.observe metrics ("wait_us." ^ kind) (t1 -. t0)
  end
  else Tilelink_sim.Counter.await_ge counter threshold

let create ~world_size ~channels_per_rank ?(peer_channels = 1) ?telemetry
    ?(clock = fun () -> 0.0) () =
  if world_size <= 0 then invalid_arg "Channel.create: world_size";
  if channels_per_rank <= 0 then
    invalid_arg "Channel.create: channels_per_rank";
  let mk name = Tilelink_sim.Counter.create ~name () in
  {
    world_size;
    channels_per_rank;
    telemetry;
    clock;
    pc =
      Array.init world_size (fun r ->
          Array.init channels_per_rank (fun c ->
              mk (Printf.sprintf "pc[%d][%d]" r c)));
    peer =
      Array.init world_size (fun dst ->
          Array.init world_size (fun src ->
              Array.init peer_channels (fun c ->
                  mk (Printf.sprintf "peer[%d<-%d][%d]" dst src c))));
    host =
      Array.init world_size (fun dst ->
          Array.init world_size (fun src ->
              mk (Printf.sprintf "host[%d<-%d]" dst src)));
  }

let world_size t = t.world_size
let channels_per_rank t = t.channels_per_rank

let check_rank t r label =
  if r < 0 || r >= t.world_size then
    invalid_arg (Printf.sprintf "Channel.%s: rank %d out of range" label r)

let check_channel t c label =
  if c < 0 || c >= t.channels_per_rank then
    invalid_arg (Printf.sprintf "Channel.%s: channel %d out of range" label c)

(* Producer/consumer channel on [rank]. *)
let pc_notify t ~rank ~channel ~amount =
  check_rank t rank "pc_notify";
  check_channel t channel "pc_notify";
  notify_instr t ~kind:"pc" ~rank t.pc.(rank).(channel) ~amount

let pc_wait t ~rank ~channel ~threshold =
  check_rank t rank "pc_wait";
  check_channel t channel "pc_wait";
  wait_instr t ~kind:"pc" ~rank t.pc.(rank).(channel) ~threshold

let pc_value t ~rank ~channel =
  check_rank t rank "pc_value";
  check_channel t channel "pc_value";
  Tilelink_sim.Counter.value t.pc.(rank).(channel)

(* Peer channel: [src] signals [dst]. *)
let peer_notify t ~src ~dst ?(channel = 0) ~amount () =
  check_rank t src "peer_notify";
  check_rank t dst "peer_notify";
  notify_instr t ~kind:"peer" ~rank:src t.peer.(dst).(src).(channel) ~amount

let peer_wait t ~src ~dst ?(channel = 0) ~threshold () =
  check_rank t src "peer_wait";
  check_rank t dst "peer_wait";
  wait_instr t ~kind:"peer" ~rank:dst t.peer.(dst).(src).(channel) ~threshold

let peer_value t ~src ~dst ?(channel = 0) () =
  Tilelink_sim.Counter.value t.peer.(dst).(src).(channel)

(* Host channel: copy-engine completion signalled to [dst]'s kernels. *)
let host_notify t ~src ~dst ~amount =
  check_rank t src "host_notify";
  check_rank t dst "host_notify";
  notify_instr t ~kind:"host" ~rank:src t.host.(dst).(src) ~amount

let host_wait t ~src ~dst ~threshold =
  check_rank t src "host_wait";
  check_rank t dst "host_wait";
  wait_instr t ~kind:"host" ~rank:dst t.host.(dst).(src) ~threshold

let total_notifies t =
  let sum = ref 0 in
  let count c = sum := !sum + Tilelink_sim.Counter.notify_count c in
  Array.iter (Array.iter count) t.pc;
  Array.iter (Array.iter (Array.iter count)) t.peer;
  Array.iter (Array.iter count) t.host;
  !sum
