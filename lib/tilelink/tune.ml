(* Design-space search.

   TileLink's performance numbers come from picking the best point of
   the decoupled design space under the simulator — exactly the role
   autotuning plays for the real compiler.  Candidates that fail to
   build (invalid tile/extent combinations) or deadlock are skipped,
   with a per-reason count.

   Every candidate is an independent, deterministic simulator run, so
   the search fans out over a [Tilelink_exec.Pool] when given one and
   consults a [Tilelink_exec.Cache] keyed by (workload, machine spec,
   config) fingerprints.  Both paths — and any pool width — return the
   identical outcome: results come back in candidate order, the best is
   the earliest strict minimum, and cache hits replay the stored time
   bit-for-bit within a process. *)

type 'a evaluation = {
  candidate : 'a;
  config : Design_space.config;
  time : float;
  exposed_comm_us : float option;
      (* exposed-communication blame from the causal profiler, when the
         evaluator ran with telemetry (program-valued searches do) *)
}

type 'a outcome = {
  best : 'a evaluation;
  evaluated : 'a evaluation list;
  skipped : int;
  skipped_build : int;
  skipped_invalid : int;
  skipped_deadlock : int;
  skipped_race : int;
  cache_hits : int;
  cache_misses : int;
}

(* One candidate's fate, computed inside a pool task.  The four
   expected failure modes are folded into the variant here so they
   never cross a domain boundary as raw exceptions; anything else is a
   bug and propagates to the caller via [Pool.get]. *)
type 'a attempt =
  | Evaluated of 'a evaluation
  | From_cache of 'a evaluation
  | Failed_build
  | Failed_invalid
  | Failed_deadlock
  | Failed_race

(* Static analysis runs right after build — before the cache lookup —
   so a candidate with a broken protocol is rejected even when an old
   cache entry would happily replay its simulated time. *)
let attempt ?analyze ~config_of ~build ~evaluate (item, cached) =
  match build item with
  | exception Invalid_argument _ -> Failed_build
  | candidate -> (
    let config = config_of item in
    let analysis =
      match analyze with
      | None -> Ok ()
      | Some f -> (f candidate : (unit, string) result)
    in
    match analysis with
    | Error _ -> Failed_race
    | Ok () -> (
      match cached with
      | Some (time, exposed_comm_us) ->
        From_cache { candidate; config; time; exposed_comm_us }
      | None -> (
        match evaluate candidate with
        | exception Invalid_argument _ -> Failed_invalid
        | exception Tilelink_sim.Engine.Deadlock _ -> Failed_deadlock
        | time, exposed_comm_us ->
          Evaluated { candidate; config; time; exposed_comm_us })))

(* Persistent cache entries are schema-versioned: the current shape is
   {"v": 2, "time": t, "exposed_comm_us": x?}.  Two legacy shapes
   predate the tag — bare numbers (pre-profiler) and untagged objects.
   An untagged object that carries the full measurement migrates
   losslessly; a bare number (no exposed-communication blame at all)
   or an untagged object missing [exposed_comm_us] would silently skew
   any scoring that weighs exposed communication — the planner's in
   particular — so those are *invalidated* on load: treated as a miss,
   re-evaluated, and rewritten under the current schema. *)
let cache_schema_version = 2

let cached_of_json json =
  let module Json = Tilelink_obs.Json in
  let time = Option.bind (Json.member "time" json) Json.to_float in
  let exposed =
    Option.bind (Json.member "exposed_comm_us" json) Json.to_float
  in
  match Option.bind (Json.member "v" json) Json.to_float with
  | Some v when int_of_float v = cache_schema_version ->
    Option.map (fun t -> (t, exposed)) time
  | Some _ ->
    (* A future (or corrupt) schema: never guess at its semantics. *)
    None
  | None -> (
    match (time, exposed) with
    | Some t, Some x -> Some (t, Some x)
    | _ -> None)

let cached_to_json e =
  let module Json = Tilelink_obs.Json in
  Json.Obj
    (("v", Json.Num (float_of_int cache_schema_version))
    :: ("time", Json.Num e.time)
    ::
    (match e.exposed_comm_us with
    | Some x -> [ ("exposed_comm_us", Json.Num x) ]
    | None -> []))

(* The internal search, generic over the searched item: [config_of]
   projects the design-space point recorded in each evaluation (the
   planner searches richer candidates that embed one), [evaluate]
   returns the simulated time plus the optional exposed-communication
   measurement.  The public [search] keeps its scalar evaluator and
   wraps. *)
let search_items ?pool ?cache ?cache_key ?analyze ~config_of ~build ~evaluate
    items =
  let keyed =
    match (cache, cache_key) with
    | Some cache, Some key_of ->
      List.map
        (fun item ->
          let key = key_of item in
          let cached =
            Option.bind (Tilelink_exec.Cache.find cache key) cached_of_json
          in
          (item, Some key, cached))
        items
    | _ -> List.map (fun item -> (item, None, None)) items
  in
  let attempts =
    Tilelink_exec.Pool.map pool
      (fun (item, _key, cached) ->
        attempt ?analyze ~config_of ~build ~evaluate (item, cached))
      keyed
    |> List.map Tilelink_exec.Pool.get
  in
  (* Store fresh evaluations back under their keys (coordinator only,
     after the parallel section). *)
  (match cache with
  | None -> ()
  | Some cache ->
    List.iter2
      (fun (_, key, _) att ->
        match (key, att) with
        | Some key, Evaluated e ->
          Tilelink_exec.Cache.add cache key (cached_to_json e)
        | _ -> ())
      keyed attempts);
  let evaluated =
    List.filter_map
      (function Evaluated e | From_cache e -> Some e | _ -> None)
      attempts
  in
  let count p = List.length (List.filter p attempts) in
  let skipped_build = count (function Failed_build -> true | _ -> false) in
  let skipped_invalid =
    count (function Failed_invalid -> true | _ -> false)
  in
  let skipped_deadlock =
    count (function Failed_deadlock -> true | _ -> false)
  in
  let skipped_race = count (function Failed_race -> true | _ -> false) in
  let cache_hits =
    count (function From_cache _ -> true | _ -> false)
  in
  let cache_misses =
    match cache with
    | None -> 0
    | Some _ -> List.length attempts - cache_hits
  in
  match evaluated with
  | [] -> None
  | first :: _ ->
    let best =
      List.fold_left
        (fun acc e -> if e.time < acc.time then e else acc)
        first evaluated
    in
    Some
      {
        best;
        evaluated;
        skipped =
          skipped_build + skipped_invalid + skipped_deadlock + skipped_race;
        skipped_build;
        skipped_invalid;
        skipped_deadlock;
        skipped_race;
        cache_hits;
        cache_misses;
      }

let search ?pool ?cache ?cache_key ?analyze ~build ~evaluate configs =
  search_items ?pool ?cache ?cache_key ?analyze ~config_of:Fun.id ~build
    ~evaluate:(fun candidate -> (evaluate candidate, None))
    configs

(* The shared program evaluator: telemetry adds no simulated time, so
   the makespan is the one the plain evaluator would report; the spans
   additionally give each candidate its exposed-communication blame —
   the why behind its rank in the sweep. *)
let evaluate_program ~make_cluster program =
  let cluster = make_cluster () in
  let telemetry = Tilelink_obs.Telemetry.create () in
  let r = Runtime.run ~telemetry cluster program in
  let attribution =
    Tilelink_obs.Attribution.of_spans ~makespan:r.Runtime.makespan
      (Tilelink_obs.Span.spans (Tilelink_obs.Telemetry.spans telemetry))
  in
  ( r.Runtime.makespan,
    Some
      attribution.Tilelink_obs.Attribution.buckets
        .Tilelink_obs.Attribution.exposed_comm )

(* One probe cluster pins down the machine identity behind a cache
   key; simulated clusters are single-shot, so it is discarded. *)
let machine_fingerprint ~make_cluster =
  let probe = make_cluster () in
  Printf.sprintf "%s|world=%d"
    (Tilelink_machine.Spec.fingerprint (Tilelink_machine.Cluster.spec probe))
    (Tilelink_machine.Cluster.world_size probe)

(* Convenience for program-valued candidates: simulate on a fresh
   cluster per candidate, built *inside* the evaluating task so every
   engine/channel/runtime structure stays confined to the domain that
   runs it — [make_cluster] is the enforced entry point. *)
let search_programs ?pool ?cache ?(workload = "program") ?(analyze = true)
    ~build ~make_cluster configs =
  let cache_key =
    match cache with
    | None -> None
    | Some _ ->
      let machine = machine_fingerprint ~make_cluster in
      Some
        (fun config ->
          Tilelink_exec.Cache.fingerprint
            (String.concat "|"
               [ workload; machine; Design_space.fingerprint config ]))
  in
  let analyze =
    if analyze then Some Analyzer.check_message else None
  in
  search_items ?pool ?cache ?cache_key ?analyze ~config_of:Fun.id ~build
    ~evaluate:(evaluate_program ~make_cluster) configs

(* Planner entry point: candidates are arbitrary schedule descriptions
   that embed a design-space point ([config_of]) and synthesize to a
   program ([build]); [fingerprint] must cover every candidate axis
   beyond the embedded config (transfer mode, chunking, ...) so the
   cache never conflates two schedules.  Results pair the winning
   candidate with its synthesized program, because the caller needs
   both: the candidate to describe the schedule, the program to emit
   or execute it. *)
let search_planned ?pool ?cache ?(workload = "planned") ?(analyze = true)
    ~fingerprint ~config_of ~build ~make_cluster candidates =
  let cache_key =
    match cache with
    | None -> None
    | Some _ ->
      let machine = machine_fingerprint ~make_cluster in
      Some
        (fun candidate ->
          Tilelink_exec.Cache.fingerprint
            (String.concat "|" [ workload; machine; fingerprint candidate ]))
  in
  let analyze =
    if analyze then
      Some (fun ((_, program) : _ * Program.t) -> Analyzer.check_message program)
    else None
  in
  search_items ?pool ?cache ?cache_key ?analyze ~config_of
    ~build:(fun candidate -> (candidate, build candidate))
    ~evaluate:(fun (_, program) -> evaluate_program ~make_cluster program)
    candidates
