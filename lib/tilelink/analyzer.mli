(** Whole-program protocol analyzer (static race/deadlock detection).

    [Consistency] checks one task's linear stream; this pass looks at
    the entire lowered program.  It resolves every notify/wait pair
    through the channel key space the runtime uses (so diagnostics name
    the same [pc[r][c]] / [peer[d<-s][c]] / [host[d<-s]] keys as
    runtime deadlocks and chaos stalls), and reports:

    - {b unmatched waits}: a wait whose threshold exceeds everything
      producers will ever signal on its key;
    - {b unconsumed notifies}: a key that is signalled but never
      awaited (usually a wrong f_R/f_C resolution on one side);
    - {b epoch reuse}: a key re-signalled past the highest registered
      waiter threshold — a new epoch begins while the registered
      waiter set only covers earlier epochs;
    - {b deadlock cycles}: circular wait-for dependencies between task
      streams across ranks, found by running the signal protocol to a
      fixpoint under maximally-parallel task scheduling (sound for the
      runtime's monotonic [>=] counters: anything stuck in this model
      is stuck under every worker schedule);
    - {b data races}: reads ordered before their acquire wait or
      writes after their release notify ([Consistency] violations),
      resolved to the producing rank and channel — the
      [Pipeline.hoist_loads_unsafe] class of miscompile. *)

type severity = Error | Warning

(** One edge of a circular wait: [waiter] is blocked on [key] whose
    outstanding signal must come from [producer_rank]'s stream named by
    the next edge in the cycle. *)
type edge = {
  e_rank : int;  (** waiting rank *)
  e_role : string;
  e_task : string;
  e_key : string;
  e_threshold : int;
  e_producer_rank : int;
}

type kind =
  | Unmatched_wait of { threshold : int; available : int }
      (** [available] is the key's total signal supply. *)
  | Unconsumed_notify of { amount : int }
      (** Total amount signalled on a key nobody waits on. *)
  | Epoch_reuse of { available : int; max_threshold : int; waiters : int }
      (** Supply exceeds the highest registered waiter threshold. *)
  | Deadlock_cycle of { cycle : edge list }
  | Data_race of {
      race : Consistency.fence_kind;
      position : int;        (** misordered access, task-stream index *)
      fence_position : int;
      access : string;       (** rendered offending instruction *)
    }
  | Mapping_mismatch of { expected : int; actual : int }
      (** Program protocol disagrees with an explicit [Mapping.t]. *)

type diag = {
  severity : severity;
  kind : kind;
  key : string;       (** runtime counter key ([Chaos.parse_key] format) *)
  rank : int;         (** rank where the problem manifests *)
  channel : int option;
  producer : int;     (** producing rank of the key *)
  role : string;
  task : string;
  detail : string;    (** one-line human rendering *)
}

type report = {
  program : string;
  world_size : int;
  diags : diag list;  (** stable order: matching, deadlock, races *)
  keys : int;         (** distinct signal keys referenced *)
  notifies : int;
  waits : int;
}

val analyze : Program.t -> report

val errors : report -> diag list
(** Only the [Error]-severity diagnostics. *)

val ok : report -> bool
(** No [Error]-severity diagnostics ([Warning]s allowed). *)

val check : Program.t -> (unit, diag list) result
(** [Error (errors (analyze p))] when any error exists. *)

exception Protocol_violation of diag list

val check_exn : Program.t -> unit
(** Raises {!Protocol_violation} when {!check} fails. *)

val check_message : Program.t -> (unit, string) result
(** {!check} with the first few diagnostics rendered into a single
    line — the shape [Tune.search]'s [?analyze] hook wants. *)

val diag_to_string : diag -> string
val severity_to_string : severity -> string
val kind_name : kind -> string

val diag_to_json : diag -> Tilelink_obs.Json.t
val report_to_json : report -> Tilelink_obs.Json.t

val check_against_mapping : Program.t -> mapping:Mapping.t -> diag list
(** Cross-check the program's [Pc] protocol against an explicit
    mapping: wait thresholds must not exceed the mapping's registered
    producer count for the channel ([Mapping.expected]), and no local
    channel may be over-produced.  Requires the mapping's rank/channel
    layout to match the program's. *)

val mutation_corpus : seed:int -> Program.t -> (string * Program.t) list
(** Seeded protocol mutations of a clean program, each of which the
    analyzer must flag: ["dropped_notify"], ["swapped_rank"],
    ["wait_epoch_off_by_one"], ["notify_epoch_off_by_one"] (built from
    {!Fault} transforms, targets chosen so the mutation is
    statically visible) and ["unsafe_hoist"]
    ({!Pipeline.pipeline_program_unsafe}).  Mutations whose
    precondition the program cannot meet (e.g. no notify on any rank)
    are omitted. *)
