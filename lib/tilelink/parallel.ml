(* The parallel execution backend: lower a mapped program onto the
   domain-team substrate (Tilelink_exec.Backend) and really run it.

   Where the sequential interpreter advances a simulated clock and
   executes data actions from one thread, this backend executes them
   on OCaml 5 domains for real: every task of every role becomes one
   Backend stream homed on its rank's domain (rank mod team size),
   and every signal target key ("pc[r][c]" / "peer[d<-s][c]" /
   "host[d<-s]") becomes one atomic monotonic counter.  Wait/Notify
   lower to acquire loads / release fetch-and-adds on those counters —
   the Pc protocol of instr.ml executed against the real OCaml memory
   model instead of the simulated one.

   Soundness gate: the static analyzer (PR 4) pre-flights every
   program before it is admitted.  The analyzer's reachability
   fixpoint executes each task as its own maximally-parallel stream —
   exactly the stream model the substrate runs — so analyzer-clean
   programs cannot deadlock here for any team size >= 1, and its
   happens-before race check guarantees that all cross-task tensor
   traffic is ordered by the counters the waits acquire.  Any
   protocol-respecting schedule therefore computes bit-identical
   tensors to the sequential interpreter.

   Timing (Sleep) and placement (Load/Store staging tokens) are
   simulation concerns and lower to nothing. *)

module Backend = Tilelink_exec.Backend
module Obs = Tilelink_obs

type result = {
  p_wall_us : float;
  p_notifies : int;
  p_stats : Backend.stats;
  p_key_values : (string * int) list;
}

let lower ~data ~memory (program : Program.t) =
  let counters : (string, Backend.counter) Hashtbl.t = Hashtbl.create 64 in
  let counter_of target =
    let key = Instr.key_of_target target in
    match Hashtbl.find_opt counters key with
    | Some c -> c
    | None ->
      let c = Backend.counter key in
      Hashtbl.add counters key c;
      c
  in
  let streams = ref [] in
  Array.iteri
    (fun rank roles ->
      List.iter
        (fun (role : Program.role) ->
          List.iter
            (fun (task : Program.task) ->
              let ops =
                List.filter_map
                  (fun (instr : Instr.t) ->
                    match instr with
                    | Instr.Wait { target; threshold; _ } ->
                      Some
                        (Backend.Wait
                           { counter = counter_of target; threshold })
                    | Instr.Notify { target; amount; _ } ->
                      Some
                        (Backend.Notify { counter = counter_of target; amount })
                    | Instr.Compute { label; action; _ } -> (
                      match action with
                      | Some act when data ->
                        Some
                          (Backend.Exec
                             { label; run = (fun () -> act memory ~rank) })
                      | Some _ | None -> None)
                    | Instr.Copy { label; src; dst; action; _ } ->
                      if data then
                        let act =
                          match action with
                          | Some act -> act
                          | None -> Dataop.copy_action src dst
                        in
                        Some
                          (Backend.Exec
                             { label; run = (fun () -> act memory ~rank) })
                      else None
                    | Instr.Load _ | Instr.Store _ | Instr.Sleep _ -> None)
                  task.Program.instrs
              in
              let label =
                Printf.sprintf "r%d/%s/%s" rank role.Program.role_name
                  task.Program.label
              in
              streams := Backend.stream ~label ~home:rank ops :: !streams)
            role.Program.tasks)
        roles)
    program.Program.plans;
  (counters, List.rev !streams)

let record_telemetry telemetry ~domains (stats : Backend.stats) =
  if Obs.Telemetry.active telemetry then begin
    let m = Obs.Telemetry.metrics (Option.get telemetry) in
    Obs.Metrics.inc m ~by:stats.Backend.total_execs "parallel.execs";
    Obs.Metrics.inc m ~by:stats.Backend.total_notifies "parallel.notifies";
    Obs.Metrics.inc m ~by:stats.Backend.total_parks "parallel.parks";
    Obs.Metrics.set_gauge m "parallel.domains" (float_of_int domains);
    Obs.Metrics.set_gauge m "parallel.wall_us" (stats.Backend.wall_s *. 1e6);
    let busy =
      Array.fold_left
        (fun acc d -> acc +. d.Backend.d_busy_s)
        0.0 stats.Backend.per_domain
    in
    Obs.Metrics.set_gauge m "parallel.busy_us" (busy *. 1e6);
    Array.iteri
      (fun i d ->
        Obs.Metrics.set_gauge m
          (Printf.sprintf "parallel.busy_us.d%d" i)
          (d.Backend.d_busy_s *. 1e6))
      stats.Backend.per_domain
  end

let run ?telemetry ?(data = true) ?memory ~domains (program : Program.t) =
  (match Program.validate program with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Parallel.run: invalid program: " ^ msg));
  (* The soundness gate: no program reaches the domains without a
     clean static protocol analysis. *)
  Analyzer.check_exn program;
  let memory =
    match memory with
    | Some m -> m
    | None -> Memory.create ~world_size:(Program.world_size program)
  in
  let counters, streams = lower ~data ~memory program in
  let team = Backend.shared domains in
  let stats = Backend.run team streams in
  record_telemetry telemetry ~domains stats;
  let key_values =
    Hashtbl.fold
      (fun key c acc -> (key, Backend.counter_value c) :: acc)
      counters []
    |> List.sort compare
  in
  ( memory,
    {
      p_wall_us = stats.Backend.wall_s *. 1e6;
      p_notifies = stats.Backend.total_notifies;
      p_stats = stats;
      p_key_values = key_values;
    } )
