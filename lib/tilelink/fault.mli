(** Fault injection: broken or skewed variants of real programs, for
    testing that lost signals deadlock (and are detected) and pure
    delays never change results.

    Premature waits are *not* detected by the runtime itself — the
    interpreter happily reads whatever bytes are in the destination
    buffer.  They are caught by the data-validation path: tests run the
    faulted program with [Runtime.run ~data:true] on a machine whose
    links are slow enough that un-awaited tiles have not landed, then
    compare the outputs against the workload's reference; the mismatch
    is the detection. *)

val drop_notify : Program.t -> rank:int -> nth:int -> Program.t
(** Remove the [nth] Notify instruction (0-based, task order) on
    [rank]: a lost signal. *)

val weaken_waits : Program.t -> rank:int -> delta:int -> Program.t
(** Lower every Wait threshold on [rank] by [delta] (floored at 0):
    consumers stop waiting for the last [delta] signals. *)

val delay_role : Program.t -> rank:int -> role_name:string -> us:float -> Program.t
(** Prepend a fixed delay to every task of one role: timing skew that
    must not affect results. *)

val duplicate_notify : Program.t -> rank:int -> nth:int -> Program.t
(** Emit the [nth] Notify (0-based, task order) on [rank] twice: a
    retransmission.  Waits are [>=] on monotonic counters, so a correct
    program must produce identical data. *)

val reorder_notifies : Program.t -> rank:int -> nth:int -> Program.t
(** Swap the payloads of the [nth] and [nth+1] Notify on [rank],
    keeping their program positions: a reordered delivery that can
    release a consumer before its tile was produced.  Raises
    [Invalid_argument] if fewer than [nth + 2] notifies exist. *)

val swap_notify_rank : Program.t -> rank:int -> nth:int -> Program.t
(** Retarget the [nth] Notify (0-based, task order) on [rank] to the
    next rank's counter — a wrong f_R resolution: the intended consumer
    never hears the signal, a bystander key is signalled for nothing. *)

val bump_wait_threshold : Program.t -> rank:int -> nth:int -> Program.t
(** Raise the [nth] Wait threshold on [rank] by one: an off-by-one
    epoch no producer will ever satisfy. *)

val bump_notify_amount : Program.t -> rank:int -> nth:int -> Program.t
(** Raise the [nth] Notify amount on [rank] by one: the key advances
    one epoch beyond what the protocol registered waiters for. *)

val remap_program : Program.t -> dead:int -> survivors:int list -> Program.t
(** Rewrite every [Pc] target owned by [dead] onto the survivors using
    {!Mapping.remap_rank}'s per-channel scheme (dead local channel [c]
    to survivor [survivors.(c mod n)], fresh slot [cpr + c / n]) and
    grow [pc_channels] to the remapped stride.  The survivor list's
    order is preserved — a topology-aware coordinator lists intra-island
    survivors first so rerouted channels land on NVLink-local peers.
    Live targets, peer and host channels are unchanged.  This is the
    protocol the analyzer re-validates against {!Mapping.remap_rank}'s
    mapping before a failover replay.  Raises [Invalid_argument] on an
    empty, duplicated or invalid survivor list. *)

val count_notifies : Program.t -> rank:int -> int
val count_waits : Program.t -> rank:int -> int
