(* Tile-centric mapping (paper §4.1): f_S, f_R, f_C.

   Shape mapping (f_S) associates a tile id with a row range of the
   global tensor view; rank mapping (f_R) with the device rank owning
   that range; channel mapping (f_C) with the barrier channel guarding
   it.  Mappings are either *static* — affine functions of the tile id,
   resolved at compile time — or *dynamic* — lookup tables whose
   contents are produced at runtime (MoE routing), while the accesses
   to the tables are still compiled. *)

type static = {
  extent : int;             (* global rows (M) *)
  ranks : int;              (* R *)
  channels_per_rank : int;  (* C *)
  tile : int;               (* producer tile rows (Tm_p) *)
  rows_per_rank : int;
  rows_per_channel : int;
  expected : int array;     (* producer tiles per global channel *)
}

type dynamic = {
  f_s_low : int array;
  f_s_high : int array;
  f_r : int array;
  f_c : int array;          (* global channel ids *)
  f_src_low : int array option; (* shard-local source rows, if distinct *)
  dyn_expected : int array; (* per global channel *)
  dyn_ranks : int;
  dyn_channels_per_rank : int;
  row_channels : int list array;
      (* row -> channels of the tiles covering it; precomputed so
         consumer-side lookups are O(rows), not O(rows * tiles) *)
}

type t = Static of static | Dynamic of dynamic

let ceil_div a b = (a + b - 1) / b

let static ?(multiplicity = 1) ~extent ~ranks ~channels_per_rank ~tile () =
  if extent <= 0 || ranks <= 0 || channels_per_rank <= 0 || tile <= 0 then
    invalid_arg "Mapping.static: non-positive parameter";
  if multiplicity <= 0 then invalid_arg "Mapping.static: multiplicity";
  if extent mod ranks <> 0 then
    invalid_arg "Mapping.static: extent must divide evenly across ranks";
  let rows_per_rank = extent / ranks in
  if rows_per_rank mod channels_per_rank <> 0 then
    invalid_arg "Mapping.static: rank shard must divide across channels";
  let rows_per_channel = rows_per_rank / channels_per_rank in
  if tile > rows_per_channel then
    invalid_arg "Mapping.static: tile larger than a channel segment";
  let num_tiles = ceil_div extent tile in
  let num_channels = ranks * channels_per_rank in
  let expected = Array.make num_channels 0 in
  (* [multiplicity] producer notifies arrive per 1-D row tile — e.g. a
     2-D GEMM grid notifies its row channel once per column tile. *)
  for tid = 0 to num_tiles - 1 do
    let channel = tid * tile / rows_per_channel in
    expected.(channel) <- expected.(channel) + multiplicity
  done;
  Static
    {
      extent;
      ranks;
      channels_per_rank;
      tile;
      rows_per_rank;
      rows_per_channel;
      expected;
    }

let dynamic ?f_src_low ~ranks ~channels_per_rank ~f_s_low ~f_s_high ~f_r ~f_c
    () =
  let n = Array.length f_s_low in
  if
    Array.length f_s_high <> n || Array.length f_r <> n
    || Array.length f_c <> n
    || (match f_src_low with Some t -> Array.length t <> n | None -> false)
  then invalid_arg "Mapping.dynamic: table lengths differ";
  let num_channels = ranks * channels_per_rank in
  let dyn_expected = Array.make num_channels 0 in
  Array.iter
    (fun c ->
      if c < 0 || c >= num_channels then
        invalid_arg "Mapping.dynamic: channel id out of range";
      dyn_expected.(c) <- dyn_expected.(c) + 1)
    f_c;
  Array.iter
    (fun r ->
      if r < 0 || r >= ranks then
        invalid_arg "Mapping.dynamic: rank id out of range")
    f_r;
  let max_row = Array.fold_left max 0 f_s_high in
  let row_channels = Array.make max_row [] in
  Array.iteri
    (fun tid c ->
      for row = f_s_low.(tid) to f_s_high.(tid) - 1 do
        row_channels.(row) <- c :: row_channels.(row)
      done)
    f_c;
  Dynamic
    {
      f_s_low;
      f_s_high;
      f_r;
      f_c;
      f_src_low;
      dyn_expected;
      dyn_ranks = ranks;
      dyn_channels_per_rank = channels_per_rank;
      row_channels;
    }

let is_dynamic = function Dynamic _ -> true | Static _ -> false

let num_tiles = function
  | Static s -> ceil_div s.extent s.tile
  | Dynamic d -> Array.length d.f_s_low

let num_channels = function
  | Static s -> s.ranks * s.channels_per_rank
  | Dynamic d -> d.dyn_ranks * d.dyn_channels_per_rank

let ranks = function
  | Static s -> s.ranks
  | Dynamic d -> d.dyn_ranks

let channels_per_rank = function
  | Static s -> s.channels_per_rank
  | Dynamic d -> d.dyn_channels_per_rank

let check_tid t tid =
  if tid < 0 || tid >= num_tiles t then
    invalid_arg (Printf.sprintf "Mapping: tile id %d out of range" tid)

(* f_S *)
let shape_range t ~tid =
  check_tid t tid;
  match t with
  | Static s -> (tid * s.tile, min s.extent ((tid * s.tile) + s.tile))
  | Dynamic d -> (d.f_s_low.(tid), d.f_s_high.(tid))

(* f_R *)
let rank_of t ~tid =
  check_tid t tid;
  match t with
  | Static s -> tid * s.tile / s.rows_per_rank
  | Dynamic d -> d.f_r.(tid)

(* f_C: global channel id in [0, ranks * channels_per_rank). *)
let channel_of t ~tid =
  check_tid t tid;
  match t with
  | Static s -> tid * s.tile / s.rows_per_channel
  | Dynamic d -> d.f_c.(tid)

(* Global channel -> (owning rank, local channel index). *)
let split_channel t channel =
  if channel < 0 || channel >= num_channels t then
    invalid_arg "Mapping.split_channel: out of range";
  let c = channels_per_rank t in
  (channel / c, channel mod c)

(* (owning rank, local channel index) -> global channel: the inverse of
   [split_channel], used when resolving a lowered [Pc] signal target —
   which carries rank-local coordinates — back to the mapping's channel
   space. *)
let global_channel t ~rank ~local =
  let c = channels_per_rank t in
  if rank < 0 || rank >= ranks t then
    invalid_arg "Mapping.global_channel: rank out of range";
  if local < 0 || local >= c then
    invalid_arg "Mapping.global_channel: local channel out of range";
  (rank * c) + local

(* Completion threshold of a channel: the number of producer tiles it
   guards. *)
let expected t ~channel =
  if channel < 0 || channel >= num_channels t then
    invalid_arg "Mapping.expected: out of range";
  match t with
  | Static s -> s.expected.(channel)
  | Dynamic d -> d.dyn_expected.(channel)

(* Channels a consumer must wait on to safely read rows [lo, hi) of
   the global view, with the completion threshold of each.  Static
   mappings resolve this by affine arithmetic; dynamic mappings scan
   their tables (the runtime "table lookup" of the paper). *)
let channels_for_range t ~lo ~hi =
  if lo < 0 || hi < lo then invalid_arg "Mapping.channels_for_range";
  if lo = hi then []
  else
    match t with
    | Static s ->
      if hi > s.extent then invalid_arg "Mapping.channels_for_range: range";
      let first = lo / s.rows_per_channel in
      let last = (hi - 1) / s.rows_per_channel in
      List.init (last - first + 1) (fun i ->
          let channel = first + i in
          (channel, s.expected.(channel)))
    | Dynamic d ->
      (* Any channel guarding a tile intersecting [lo, hi) must be
         complete; the row index makes this O(hi - lo). *)
      let needed = Hashtbl.create 8 in
      for row = lo to min hi (Array.length d.row_channels) - 1 do
        List.iter
          (fun c -> Hashtbl.replace needed c d.dyn_expected.(c))
          d.row_channels.(row)
      done;
      Hashtbl.fold (fun c e acc -> (c, e) :: acc) needed []
      |> List.sort compare

(* Shard-local source rows of a producer tile on its owning rank: what
   a pull-mode copy reads from the remote shard buffer. *)
let src_shard_range t ~tid =
  let lo, hi = shape_range t ~tid in
  match t with
  | Static s ->
    let r = tid * s.tile / s.rows_per_rank in
    (lo - (r * s.rows_per_rank), hi - (r * s.rows_per_rank))
  | Dynamic d -> (
    match d.f_src_low with
    | Some table -> (table.(tid), table.(tid) + (hi - lo))
    | None -> (lo, hi))

(* Ranks owning any row of [lo, hi): the pull set of a consumer tile. *)
let ranks_for_range t ~lo ~hi =
  match t with
  | Static s ->
    if lo < 0 || hi > s.extent || lo >= hi then
      invalid_arg "Mapping.ranks_for_range";
    let first = lo / s.rows_per_rank in
    let last = (hi - 1) / s.rows_per_rank in
    List.init (last - first + 1) (fun i -> first + i)
  | Dynamic d ->
    let seen = Hashtbl.create 8 in
    Array.iteri
      (fun tid r ->
        let tlo = d.f_s_low.(tid) and thi = d.f_s_high.(tid) in
        if tlo < hi && thi > lo then Hashtbl.replace seen r ())
      d.f_r;
    Hashtbl.fold (fun r () acc -> r :: acc) seen [] |> List.sort compare

(* Elastic remap after a rank crash: reroute every channel the dead
   rank owned onto the survivors, round-robin, and return the resulting
   (necessarily dynamic) mapping.

   The scheme is per-CHANNEL, not per-tile: dead rank's local channel
   [c] moves to survivor [survivors.(c mod n)] at local slot
   [cpr + c / n] — a fresh slot range so rerouted channels can never
   collide with the survivor's own channels.  Live ranks keep their
   local indices; only the channels-per-rank stride grows to
   [cpr + ceil(cpr / n)].  Completion thresholds transfer unchanged
   (the old per-channel expected counts, multiplicity included, move
   with the channel), so a replayed producer satisfies exactly the
   same number of notifies the consumers were promised. *)
let remap_rank t ~dead ~survivors =
  let r = ranks t and cpr = channels_per_rank t in
  if dead < 0 || dead >= r then
    invalid_arg "Mapping.remap_rank: dead rank out of range";
  if survivors = [] then invalid_arg "Mapping.remap_rank: no survivors";
  (* Order is preserved (not sorted): a topology-aware caller lists
     intra-island survivors first, and [Fault.remap_program] must agree
     slot for slot. *)
  let sv = Array.of_list survivors in
  if
    List.length (List.sort_uniq compare survivors) <> List.length survivors
  then invalid_arg "Mapping.remap_rank: duplicate survivors";
  Array.iter
    (fun s ->
      if s < 0 || s >= r then
        invalid_arg "Mapping.remap_rank: survivor out of range";
      if s = dead then
        invalid_arg "Mapping.remap_rank: dead rank listed as survivor")
    sv;
  let n = Array.length sv in
  let new_cpr = cpr + ceil_div cpr n in
  let reroute rank local =
    if rank = dead then (sv.(local mod n), cpr + (local / n))
    else (rank, local)
  in
  let nt = num_tiles t in
  let f_s_low = Array.init nt (fun tid -> fst (shape_range t ~tid)) in
  let f_s_high = Array.init nt (fun tid -> snd (shape_range t ~tid)) in
  let f_src_low = Array.init nt (fun tid -> fst (src_shard_range t ~tid)) in
  let f_r = Array.make nt 0 in
  let f_c = Array.make nt 0 in
  for tid = 0 to nt - 1 do
    let old_rank, old_local = split_channel t (channel_of t ~tid) in
    let nr, nl = reroute old_rank old_local in
    f_r.(tid) <- nr;
    f_c.(tid) <- (nr * new_cpr) + nl
  done;
  (* Transfer per-channel completion thresholds (not a recount from the
     tile tables: static multiplicity must survive the remap). *)
  let dyn_expected = Array.make (r * new_cpr) 0 in
  for ch = 0 to num_channels t - 1 do
    let old_rank, old_local = split_channel t ch in
    let nr, nl = reroute old_rank old_local in
    let nch = (nr * new_cpr) + nl in
    dyn_expected.(nch) <- dyn_expected.(nch) + expected t ~channel:ch
  done;
  let max_row = Array.fold_left max 0 f_s_high in
  let row_channels = Array.make max_row [] in
  Array.iteri
    (fun tid c ->
      for row = f_s_low.(tid) to f_s_high.(tid) - 1 do
        row_channels.(row) <- c :: row_channels.(row)
      done)
    f_c;
  Dynamic
    {
      f_s_low;
      f_s_high;
      f_r;
      f_c;
      f_src_low = Some f_src_low;
      dyn_expected;
      dyn_ranks = r;
      dyn_channels_per_rank = new_cpr;
      row_channels;
    }

(* The channel-space stride a remapped protocol uses: mirrors
   [remap_rank] so runtimes and program rewriters agree without
   constructing a mapping. *)
let remap_channels_per_rank ~channels_per_rank ~survivors =
  if survivors <= 0 then invalid_arg "Mapping.remap_channels_per_rank";
  channels_per_rank + ceil_div channels_per_rank survivors

let pp ppf = function
  | Static s ->
    Fmt.pf ppf
      "static(extent=%d ranks=%d channels/rank=%d tile=%d)" s.extent s.ranks
      s.channels_per_rank s.tile
  | Dynamic d ->
    Fmt.pf ppf "dynamic(tiles=%d ranks=%d channels/rank=%d)"
      (Array.length d.f_s_low) d.dyn_ranks d.dyn_channels_per_rank
