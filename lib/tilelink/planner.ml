(* Auto-overlap planner.

   Hand-written overlapped kernels (lib/workloads) encode the Pc
   notify/wait protocol by construction; this module derives it.  An
   operator graph — one AllGather producer feeding tiled row-range
   consumers — plus one candidate point of the (decoupled design space
   x transfer direction x chunk count) space is synthesized into an
   ordinary [Program.t] using only [Primitive] statements lowered
   through a [Mapping.static]: every notify and wait in the result
   comes out of the tile-centric lowering, none is written by hand.

   Candidate pruning and scoring run through [Tune.search_planned]:
   the analyzer rejects statically-broken protocols before any
   simulation (and before the cache), survivors are simulated for
   makespan plus exposed-communication blame, and the planner picks
   the makespan minimum with exposed communication as the tiebreak. *)

open Tilelink_tensor

(* ------------------------------------------------------------------ *)
(* Operator graph                                                      *)
(* ------------------------------------------------------------------ *)

type consumer_kind =
  | Gemm of { weights : string; n : int }
  | Softmax_rows

type consumer = { co_name : string; co_out : string; co_kind : consumer_kind }

let consumer ~name ~out kind = { co_name = name; co_out = out; co_kind = kind }

type graph = {
  g_name : string;
  g_rows : int;
  g_cols : int;
  g_world : int;
  g_shard : string;
  g_gathered : string;
  g_consumers : consumer list;
}

let graph ~name ~rows ~cols ~world ?(shard = "x_shard") ?(gathered = "x_full")
    consumers =
  if world < 2 then invalid_arg "Planner.graph: world must be >= 2";
  if rows mod world <> 0 then
    invalid_arg "Planner.graph: rows must divide over the world";
  if cols < 1 then invalid_arg "Planner.graph: cols must be >= 1";
  if consumers = [] then invalid_arg "Planner.graph: no consumers";
  let outs = List.map (fun c -> c.co_out) consumers in
  if List.length (List.sort_uniq compare outs) <> List.length outs then
    invalid_arg "Planner.graph: consumers share an output buffer";
  {
    g_name = name;
    g_rows = rows;
    g_cols = cols;
    g_world = world;
    g_shard = shard;
    g_gathered = gathered;
    g_consumers = consumers;
  }

let consumer_kind_fingerprint = function
  | Gemm { weights; n } -> Printf.sprintf "gemm(%s,n=%d)" weights n
  | Softmax_rows -> "softmax_rows"

let graph_fingerprint g =
  Printf.sprintf "%s;m=%d;k=%d;w=%d;%s->%s;[%s]" g.g_name g.g_rows g.g_cols
    g.g_world g.g_shard g.g_gathered
    (String.concat ";"
       (List.map
          (fun c ->
            Printf.sprintf "%s:%s:%s" c.co_name c.co_out
              (consumer_kind_fingerprint c.co_kind))
          g.g_consumers))

let out_cols g c =
  match c.co_kind with Gemm { n; _ } -> n | Softmax_rows -> g.g_cols

(* ------------------------------------------------------------------ *)
(* Candidates                                                          *)
(* ------------------------------------------------------------------ *)

type transfer = Push | Pull

let transfer_to_string = function Push -> "push" | Pull -> "pull"

type candidate = {
  pl_config : Design_space.config;
  pl_transfer : transfer;
  pl_chunks : int;
}

let candidate_to_string c =
  Printf.sprintf "%s | %s | chunks=%d"
    (Design_space.config_to_string c.pl_config)
    (transfer_to_string c.pl_transfer)
    c.pl_chunks

let fingerprint c =
  Printf.sprintf "%s;transfer=%s;chunks=%d"
    (Design_space.fingerprint c.pl_config)
    (transfer_to_string c.pl_transfer)
    c.pl_chunks

type space = {
  sp_design : Design_space.space;
  sp_transfers : transfer list;
  sp_chunks : int list;
}

(* Keep the [n] largest entries of an ascending ladder. *)
let keep_largest n xs =
  let rec drop k = function
    | l when k <= 0 -> l
    | _ :: tl -> drop (k - 1) tl
    | [] -> []
  in
  drop (List.length xs - n) xs

let ladder = [ 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 ]

(* Communication tile rows must divide the shard; compute tiles only
   need to fit the extents (grids are ragged at the edge).  The ladder
   is clipped so toy test shapes and bench shapes both get a sensible,
   small space. *)
let default_space g =
  let shard_rows = g.g_rows / g.g_world in
  let comm_rows =
    match
      keep_largest 3 (List.filter (fun d -> shard_rows mod d = 0) ladder)
    with
    | [] -> [ shard_rows ]
    | ds -> ds
  in
  let compute_rows =
    match keep_largest 2 (List.filter (fun d -> d <= shard_rows) ladder) with
    | [] -> [ shard_rows ]
    | ds -> ds
  in
  let min_width =
    List.fold_left (fun acc c -> min acc (out_cols g c)) max_int g.g_consumers
  in
  let compute_cols =
    List.sort_uniq compare [ max 1 (min_width / 2); min_width ]
  in
  let compute_tiles =
    List.concat_map
      (fun tm -> List.map (fun tn -> (tm, tn)) compute_cols)
      compute_rows
  in
  {
    sp_design =
      {
        Design_space.comm_tiles =
          List.map (fun tm -> (tm, g.g_cols)) comm_rows;
        compute_tiles;
        comm_orders =
          [ Tile.Ring_from_self { segments = g.g_world }; Tile.Row_major ];
        compute_orders = [ Tile.Ring_from_self { segments = g.g_world } ];
        bindings = [ Design_space.Comm_on_sm 1; Design_space.Comm_on_dma ];
        stage_choices = [ 2 ];
        micro_blocks = [ 0 ];
      };
    sp_transfers = [ Pull; Push ];
    sp_chunks = [ 1; 2 ];
  }

let enumerate space =
  List.concat_map
    (fun pl_config ->
      List.concat_map
        (fun pl_transfer ->
          List.map
            (fun pl_chunks -> { pl_config; pl_transfer; pl_chunks })
            space.sp_chunks)
        space.sp_transfers)
    (Design_space.enumerate space.sp_design)

let size space = List.length (enumerate space)

(* ------------------------------------------------------------------ *)
(* Synthesis                                                           *)
(* ------------------------------------------------------------------ *)

let access = Instr.access
let ceil_div a b = (a + b - 1) / b

(* Row softmax, max-subtracted, strictly row by row and left to right:
   the single definition shared by synthesized programs and reference
   checks, so tiling can never change bits (rows are independent). *)
let softmax_rows x =
  let rows = Tensor.rows x and cols = Tensor.cols x in
  let out = Tensor.zeros (Tensor.shape x) in
  for i = 0 to rows - 1 do
    let m = ref neg_infinity in
    for j = 0 to cols - 1 do
      let v = Tensor.get2 x i j in
      if v > !m then m := v
    done;
    let s = ref 0.0 in
    for j = 0 to cols - 1 do
      let e = exp (Tensor.get2 x i j -. !m) in
      Tensor.set2 out i j e;
      s := !s +. e
    done;
    for j = 0 to cols - 1 do
      Tensor.set2 out i j (Tensor.get2 out i j /. !s)
    done
  done;
  out

let split_fraction fraction tasks =
  let cut = int_of_float (fraction *. float_of_int (List.length tasks)) in
  let rec take i = function
    | [] -> ([], [])
    | x :: rest ->
      if i = 0 then ([], x :: rest)
      else begin
        let front, back = take (i - 1) rest in
        (x :: front, back)
      end
  in
  take cut tasks

(* The gather side of one rank: pull mode fetches every producer tile
   into the local gathered buffer and signals the local consumers;
   push mode broadcasts this rank's own shard tiles into every rank's
   gathered buffer and notifies all of them. *)
let comm_tasks g cand ~rank ~bc ~mapping ~comm_grid =
  let pull_task tile =
    let tid = Tile.linearize comm_grid tile in
    let lo, hi = Mapping.shape_range mapping ~tid in
    let stmts =
      [
        Primitive.Tile_pull_data
          {
            tid;
            src_buffer = g.g_shard;
            src_view = `Shard;
            col = (0, g.g_cols);
            dst =
              access ~buffer:g.g_gathered ~row:(lo, hi) ~col:(0, g.g_cols) ();
            action = None;
          };
        Primitive.Producer_tile_notify { tid; mode = Primitive.P2p };
      ]
    in
    {
      Program.label = Printf.sprintf "gather[%d]" tid;
      instrs = Block_channel.lower bc stmts;
    }
  in
  let push_task tile =
    let tid = Tile.linearize comm_grid tile in
    let glo, ghi = Mapping.shape_range mapping ~tid in
    let slo, shi = Mapping.src_shard_range mapping ~tid in
    let pushes =
      List.init g.g_world (fun dst_rank ->
          Primitive.Tile_push_data
            {
              src =
                access ~buffer:g.g_shard ~row:(slo, shi) ~col:(0, g.g_cols) ();
              dst_rank;
              dst =
                access ~buffer:g.g_gathered ~row:(glo, ghi) ~col:(0, g.g_cols)
                  ();
            })
    in
    let stmts =
      pushes
      @ [ Primitive.Producer_tile_notify { tid; mode = Primitive.Broadcast } ]
    in
    {
      Program.label = Printf.sprintf "gather-push[%d]" tid;
      instrs = Block_channel.lower bc stmts;
    }
  in
  let tiles =
    Tile.enumerate ~rank comm_grid cand.pl_config.Design_space.comm_order
  in
  match cand.pl_transfer with
  | Pull -> List.map pull_task tiles
  | Push ->
    List.filter_map
      (fun tile ->
        let tid = Tile.linearize comm_grid tile in
        if Mapping.rank_of mapping ~tid = rank then Some (push_task tile)
        else None)
      tiles

(* One consumer tile: wait for the gathered rows it reads, loop over
   [pl_chunks] column chunks of the gathered buffer, run the kind's
   compute (the data action rides on the last non-empty chunk), store
   the output tile. *)
let consumer_task g cand co ~bc ~grid tile =
  let config = cand.pl_config in
  let lo, hi = Tile.rows grid tile in
  let clo, chi = Tile.cols grid tile in
  let chunk = ceil_div g.g_cols cand.pl_chunks in
  let live_chunks = ceil_div g.g_cols chunk in
  let chunk_range kc = (kc * chunk, min g.g_cols ((kc + 1) * chunk)) in
  let body =
    match co.co_kind with
    | Gemm { weights; n = _ } ->
      let action memory ~rank =
        let x = Memory.find memory ~rank ~name:g.g_gathered in
        let w = Memory.find memory ~rank ~name:weights in
        let y = Memory.find memory ~rank ~name:co.co_out in
        let block =
          Linalg.gemm ~block:config.Design_space.micro_block
            (Tensor.row_slice x ~lo ~hi)
            (Tensor.col_slice w ~lo:clo ~hi:chi)
        in
        Tensor.set_block y ~row_lo:lo ~col_lo:clo block
      in
      List.concat
        (List.init live_chunks (fun kc ->
             let klo, khi = chunk_range kc in
             if klo >= khi then []
             else
               [
                 Primitive.Load
                   (access ~buffer:g.g_gathered ~row:(lo, hi) ~col:(klo, khi)
                      ());
                 Primitive.Load
                   (access ~buffer:weights ~row:(klo, khi) ~col:(clo, chi) ());
                 Primitive.Compute
                   {
                     label =
                       Printf.sprintf "%s[%d,%d]k%d" co.co_name tile.Tile.tid_m
                         tile.Tile.tid_n kc;
                     cost =
                       Instr.Gemm_tile
                         { tm = hi - lo; tn = chi - clo; k = khi - klo };
                     reads =
                       [
                         access ~buffer:g.g_gathered ~row:(lo, hi)
                           ~col:(klo, khi) ();
                       ];
                     writes = [];
                     action =
                       (if kc = live_chunks - 1 then Some action else None);
                   };
               ]))
    | Softmax_rows ->
      (* Full-width tiles (the grid guarantees clo = 0, chi = cols):
         chunked loads for pipelining, one compute pass. *)
      let action memory ~rank =
        let x = Memory.find memory ~rank ~name:g.g_gathered in
        let out = Memory.find memory ~rank ~name:co.co_out in
        Tensor.set_block out ~row_lo:lo ~col_lo:0
          (softmax_rows (Tensor.row_slice x ~lo ~hi))
      in
      List.concat
        (List.init live_chunks (fun kc ->
             let klo, khi = chunk_range kc in
             if klo >= khi then []
             else
               [
                 Primitive.Load
                   (access ~buffer:g.g_gathered ~row:(lo, hi) ~col:(klo, khi)
                      ());
               ]))
      @ [
          Primitive.Compute
            {
              label =
                Printf.sprintf "%s[%d,%d]" co.co_name tile.Tile.tid_m
                  tile.Tile.tid_n;
              cost =
                Instr.Memory_tile
                  { rows = hi - lo; cols = chi - clo; passes = 3 };
              reads =
                [ access ~buffer:g.g_gathered ~row:(lo, hi) ~col:(clo, chi) () ];
              writes = [];
              action = Some action;
            };
        ]
  in
  let stmts =
    Primitive.Consumer_tile_wait
      { lo; hi; buffer = g.g_gathered; col = (0, g.g_cols) }
    :: body
    @ [
        Primitive.Store (access ~buffer:co.co_out ~row:(lo, hi) ~col:(clo, chi) ());
      ]
  in
  {
    Program.label =
      Printf.sprintf "%s[%d,%d]" co.co_name tile.Tile.tid_m tile.Tile.tid_n;
    instrs =
      Pipeline.hoist_loads ~stages:config.Design_space.stages
        (Block_channel.lower bc stmts);
  }

let synthesize g cand ~spec_gpu =
  let r = g.g_world in
  let config = cand.pl_config in
  if cand.pl_chunks < 1 then
    invalid_arg "Planner.synthesize: chunks must be >= 1";
  let comm_tm = fst config.Design_space.comm_tile in
  let shard_rows = g.g_rows / r in
  if shard_rows mod comm_tm <> 0 then
    invalid_arg "Planner.synthesize: comm tile must divide the shard";
  let channels_per_rank = shard_rows / comm_tm in
  let mapping =
    Mapping.static ~extent:g.g_rows ~ranks:r ~channels_per_rank ~tile:comm_tm
      ()
  in
  let comm_grid =
    Tile.grid ~extent_m:g.g_rows ~extent_n:g.g_cols ~tile_m:comm_tm
      ~tile_n:g.g_cols
  in
  let compute_tm, compute_tn = config.Design_space.compute_tile in
  let consumer_grid co =
    match co.co_kind with
    | Gemm _ ->
      Tile.grid ~extent_m:g.g_rows ~extent_n:(out_cols g co)
        ~tile_m:compute_tm ~tile_n:compute_tn
    | Softmax_rows ->
      (* Row softmax needs whole rows in one tile. *)
      Tile.grid ~extent_m:g.g_rows ~extent_n:g.g_cols ~tile_m:compute_tm
        ~tile_n:g.g_cols
  in
  let n_consumers = List.length g.g_consumers in
  let plans =
    Array.init r (fun rank ->
        let bc = Block_channel.create ~rank ~world_size:r mapping in
        let gather = comm_tasks g cand ~rank ~bc ~mapping ~comm_grid in
        let comm_roles =
          match config.Design_space.binding with
          | Design_space.Comm_on_sm sms ->
            [
              {
                Program.role_name = "gather-sm";
                resource = Program.Sm_partition sms;
                lane = Tilelink_sim.Trace.Comm_sm;
                tasks = gather;
              };
            ]
          | Design_space.Comm_on_dma ->
            [
              {
                Program.role_name = "gather-dma";
                resource =
                  Program.Dma_engines
                    (min 2 spec_gpu.Tilelink_machine.Spec.gpu.dma_channels);
                lane = Tilelink_sim.Trace.Dma;
                tasks = gather;
              };
            ]
          | Design_space.Comm_hybrid { dma_fraction; sms } ->
            let dma_tasks, sm_tasks = split_fraction dma_fraction gather in
            [
              {
                Program.role_name = "gather-dma";
                resource =
                  Program.Dma_engines
                    (min 2 spec_gpu.Tilelink_machine.Spec.gpu.dma_channels);
                lane = Tilelink_sim.Trace.Dma;
                tasks = dma_tasks;
              };
              {
                Program.role_name = "gather-sm";
                resource = Program.Sm_partition sms;
                lane = Tilelink_sim.Trace.Comm_sm;
                tasks = sm_tasks;
              };
            ]
        in
        let comm_sms =
          match config.Design_space.binding with
          | Design_space.Comm_on_sm sms -> sms
          | Design_space.Comm_on_dma -> 0
          | Design_space.Comm_hybrid { sms; _ } -> sms
        in
        let compute_sms =
          max 1 (spec_gpu.Tilelink_machine.Spec.gpu.num_sms - comm_sms)
        in
        let per_consumer_sms = max 1 (compute_sms / n_consumers) in
        let consumer_roles =
          List.map
            (fun co ->
              let grid = consumer_grid co in
              let tasks =
                List.map
                  (consumer_task g cand co ~bc ~grid)
                  (Tile.enumerate ~rank grid
                     config.Design_space.compute_order)
              in
              {
                Program.role_name = co.co_name;
                resource = Program.Sm_partition per_consumer_sms;
                lane = Tilelink_sim.Trace.Compute_sm;
                tasks;
              })
            g.g_consumers
        in
        comm_roles @ consumer_roles)
  in
  Program.create ~name:g.g_name ~world_size:r
    ~pc_channels:(Mapping.num_channels mapping)
    ~peer_channels:1 plans

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

type plan = {
  p_candidate : candidate;
  p_program : Program.t;
  p_time : float;
  p_exposed_comm_us : float option;
  p_outcome : (candidate * Program.t) Tune.outcome;
}

(* [Tune] minimizes time only; the planner additionally breaks makespan
   ties toward less exposed communication (missing blame sorts last),
   keeping the earliest candidate on a full tie so the winner is
   deterministic across pool widths. *)
let better (a : _ Tune.evaluation) (b : _ Tune.evaluation) =
  let blame e =
    match e.Tune.exposed_comm_us with Some x -> x | None -> infinity
  in
  a.Tune.time < b.Tune.time
  || (a.Tune.time = b.Tune.time && blame a < blame b)

let search ?pool ?cache ?candidates g ~spec_gpu ~make_cluster () =
  let candidates =
    match candidates with
    | Some cs -> cs
    | None -> enumerate (default_space g)
  in
  match
    Tune.search_planned ?pool ?cache
      ~workload:("plan:" ^ graph_fingerprint g)
      ~fingerprint
      ~config_of:(fun c -> c.pl_config)
      ~build:(fun c -> synthesize g c ~spec_gpu)
      ~make_cluster candidates
  with
  | None -> None
  | Some outcome ->
    let best =
      match outcome.Tune.evaluated with
      | [] -> assert false (* Tune returns None on no evaluations *)
      | first :: rest ->
        List.fold_left (fun acc e -> if better e acc then e else acc) first
          rest
    in
    let p_candidate, p_program = best.Tune.candidate in
    Some
      {
        p_candidate;
        p_program;
        p_time = best.Tune.time;
        p_exposed_comm_us = best.Tune.exposed_comm_us;
        p_outcome = outcome;
      }
