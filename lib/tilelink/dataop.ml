(* Default data semantics shared by the sequential interpreter
   (runtime.ml) and the parallel backend (parallel.ml): what a [Copy]
   instruction without an explicit action closure does to the rank
   memories.  Kept in its own module so both interpreters execute the
   byte-identical blit and can never drift apart. *)

let resolve_rank ~self = function Some r -> r | None -> self

(* Blit the source block into the destination block. *)
let copy_action (src : Instr.access) (dst : Instr.access) : Instr.action =
 fun memory ~rank ->
  let open Tilelink_tensor in
  let src_rank = resolve_rank ~self:rank src.Instr.mem_rank in
  let dst_rank = resolve_rank ~self:rank dst.Instr.mem_rank in
  let src_tensor = Memory.find memory ~rank:src_rank ~name:src.Instr.buffer in
  let dst_tensor = Memory.find memory ~rank:dst_rank ~name:dst.Instr.buffer in
  let block =
    Tensor.block src_tensor ~row_lo:(fst src.Instr.row)
      ~row_hi:(snd src.Instr.row) ~col_lo:(fst src.Instr.col)
      ~col_hi:(snd src.Instr.col)
  in
  Tensor.set_block dst_tensor ~row_lo:(fst dst.Instr.row)
    ~col_lo:(fst dst.Instr.col) block
