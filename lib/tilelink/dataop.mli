(** Default data semantics of instructions, shared by the sequential
    interpreter and the parallel backend. *)

val resolve_rank : self:int -> int option -> int
(** Resolve an access's [mem_rank] ([None] = the executing rank). *)

val copy_action : Instr.access -> Instr.access -> Instr.action
(** What a [Copy] without an action closure does: blit the source
    block into the destination block. *)
