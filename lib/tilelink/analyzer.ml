(* Whole-program protocol analyzer.

   The lowered protocol is a set of monotonic counters: every Notify
   adds to one, every Wait blocks until one reaches a threshold.  Three
   static views of that protocol catch the classic signalling bugs
   before a simulation (or a real kernel) wedges:

   1. *Accounting* — per key, compare the total supply producers will
      ever signal against every registered waiter threshold.  A wait
      demanding more than the supply can never complete (unmatched); a
      signalled key with no waiter is a wrong f_R/f_C resolution on the
      consumer side (unconsumed); supply past the highest registered
      threshold starts an epoch no registered waiter covers (reuse).

   2. *Reachability* — run the protocol to a fixpoint with every task
      stream maximally parallel.  Because counters are monotonic and
      waits are [>=] comparisons, executing everything eagerly is the
      most permissive schedule: any stream still blocked at the
      fixpoint is blocked under *every* worker schedule, so a reported
      cycle is a true deadlock, never a scheduling artifact.

   3. *Ordering* — per-task acquire/release violations from
      [Consistency], resolved through the key space so the diagnostic
      names the producing rank and channel of the fence that was
      crossed (the [hoist_loads_unsafe] class of miscompile).

   Diagnostics use the runtime's counter-key naming ([pc[r][c]],
   [peer[d<-s][c]], [host[d<-s]]) so static reports line up with
   runtime deadlock enrichment and chaos stall output. *)

type severity = Error | Warning

type edge = {
  e_rank : int;
  e_role : string;
  e_task : string;
  e_key : string;
  e_threshold : int;
  e_producer_rank : int;
}

type kind =
  | Unmatched_wait of { threshold : int; available : int }
  | Unconsumed_notify of { amount : int }
  | Epoch_reuse of { available : int; max_threshold : int; waiters : int }
  | Deadlock_cycle of { cycle : edge list }
  | Data_race of {
      race : Consistency.fence_kind;
      position : int;
      fence_position : int;
      access : string;
    }
  | Mapping_mismatch of { expected : int; actual : int }

type diag = {
  severity : severity;
  kind : kind;
  key : string;
  rank : int;
  channel : int option;
  producer : int;
  role : string;
  task : string;
  detail : string;
}

type report = {
  program : string;
  world_size : int;
  diags : diag list;
  keys : int;
  notifies : int;
  waits : int;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let kind_name = function
  | Unmatched_wait _ -> "unmatched_wait"
  | Unconsumed_notify _ -> "unconsumed_notify"
  | Epoch_reuse _ -> "epoch_reuse"
  | Deadlock_cycle _ -> "deadlock_cycle"
  | Data_race _ -> "data_race"
  | Mapping_mismatch _ -> "mapping_mismatch"

let diag_to_string d =
  Printf.sprintf "[%s] %s %s: %s" (severity_to_string d.severity)
    (kind_name d.kind) d.key d.detail

(* ------------------------------------------------------------------ *)
(* Signal inventory                                                    *)
(* ------------------------------------------------------------------ *)

(* One signalling endpoint: who, from where, how much. *)
type endpoint = {
  ep_amount : int; (* notify amount or wait threshold *)
  ep_rank : int;
  ep_role : string;
  ep_task : string;
}

type key_info = {
  k_target : Instr.signal_target;
  mutable k_notifies : endpoint list; (* reverse traversal order *)
  mutable k_waits : endpoint list;
}

type inventory = {
  inv_keys : (string, key_info) Hashtbl.t;
  mutable inv_order : string list; (* reverse first-touch order *)
  mutable inv_notifies : int;
  mutable inv_waits : int;
}

let inventory_of (p : Program.t) =
  let inv =
    {
      inv_keys = Hashtbl.create 64;
      inv_order = [];
      inv_notifies = 0;
      inv_waits = 0;
    }
  in
  let info target =
    let key = Instr.key_of_target target in
    match Hashtbl.find_opt inv.inv_keys key with
    | Some ki -> ki
    | None ->
      let ki = { k_target = target; k_notifies = []; k_waits = [] } in
      Hashtbl.add inv.inv_keys key ki;
      inv.inv_order <- key :: inv.inv_order;
      ki
  in
  Program.iter_tasks p ~f:(fun ~rank role task ->
      List.iter
        (fun instr ->
          match instr with
          | Instr.Notify { target; amount; _ } ->
            let ki = info target in
            ki.k_notifies <-
              {
                ep_amount = amount;
                ep_rank = rank;
                ep_role = role.Program.role_name;
                ep_task = task.Program.label;
              }
              :: ki.k_notifies;
            inv.inv_notifies <- inv.inv_notifies + 1
          | Instr.Wait { target; threshold; _ } ->
            let ki = info target in
            ki.k_waits <-
              {
                ep_amount = threshold;
                ep_rank = rank;
                ep_role = role.Program.role_name;
                ep_task = task.Program.label;
              }
              :: ki.k_waits;
            inv.inv_waits <- inv.inv_waits + 1
          | _ -> ())
        task.Program.instrs);
  inv.inv_order <- List.rev inv.inv_order;
  Hashtbl.iter
    (fun _ ki ->
      ki.k_notifies <- List.rev ki.k_notifies;
      ki.k_waits <- List.rev ki.k_waits)
    inv.inv_keys;
  inv

let supply ki = List.fold_left (fun a ep -> a + ep.ep_amount) 0 ki.k_notifies

let max_threshold ki =
  List.fold_left (fun a ep -> max a ep.ep_amount) 0 ki.k_waits

let mk_diag severity kind key (ki : key_info) (ep : endpoint) detail =
  {
    severity;
    kind;
    key;
    rank = ep.ep_rank;
    channel = Instr.channel_of_target ki.k_target;
    producer = Instr.producer_of_target ki.k_target;
    role = ep.ep_role;
    task = ep.ep_task;
    detail;
  }

(* ------------------------------------------------------------------ *)
(* 1. Accounting: unmatched / unconsumed / epoch reuse                 *)
(* ------------------------------------------------------------------ *)

let accounting_diags inv =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  List.iter
    (fun key ->
      let ki = Hashtbl.find inv.inv_keys key in
      let avail = supply ki in
      let unmatched =
        List.filter (fun ep -> ep.ep_amount > avail) ki.k_waits
      in
      (match unmatched with
      | [] -> ()
      | first :: _ ->
        emit
          (mk_diag Error
             (Unmatched_wait { threshold = first.ep_amount; available = avail })
             key ki first
             (Printf.sprintf
                "rank %d %s/%s waits %s >= %d but producers only ever signal \
                 %d%s"
                first.ep_rank first.ep_role first.ep_task key first.ep_amount
                avail
                (match List.length unmatched with
                | 1 -> ""
                | n -> Printf.sprintf " (%d waits affected)" n))));
      (match (ki.k_notifies, ki.k_waits) with
      | first :: _, [] ->
        emit
          (mk_diag Warning
             (Unconsumed_notify { amount = avail })
             key ki first
             (Printf.sprintf
                "rank %d %s/%s signals %s (+%d total) but no task ever waits \
                 on it"
                first.ep_rank first.ep_role first.ep_task key avail))
      | _ -> ());
      match ki.k_waits with
      | first_wait :: _ when ki.k_notifies <> [] ->
        let t_max = max_threshold ki in
        if avail > t_max then
          emit
            (mk_diag Error
               (Epoch_reuse
                  {
                    available = avail;
                    max_threshold = t_max;
                    waiters = List.length ki.k_waits;
                  })
               key ki first_wait
               (Printf.sprintf
                  "%s is signalled to %d but the highest of its %d registered \
                   waiter thresholds is %d: the key is re-signalled past \
                   every registered waiter's epoch"
                  key avail (List.length ki.k_waits) t_max))
      | _ -> ())
    inv.inv_order;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* 2. Reachability: eager fixpoint + wait-for cycles                   *)
(* ------------------------------------------------------------------ *)

type stream = {
  s_id : int;
  s_rank : int;
  s_role : string;
  s_task : string;
  s_instrs : Instr.t array;
  mutable s_pc : int;
}

let streams_of (p : Program.t) =
  let streams = ref [] in
  let id = ref 0 in
  Program.iter_tasks p ~f:(fun ~rank role task ->
      streams :=
        {
          s_id = !id;
          s_rank = rank;
          s_role = role.Program.role_name;
          s_task = task.Program.label;
          s_instrs = Array.of_list task.Program.instrs;
          s_pc = 0;
        }
        :: !streams;
      incr id);
  Array.of_list (List.rev !streams)

(* Run every stream eagerly until all are finished or blocked on a
   wait.  Monotone counters make this schedule maximally permissive,
   so the blocked set is exactly the statically-doomed set. *)
let run_fixpoint streams =
  let avail : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let blocked : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let runnable = Queue.create () in
  Array.iter (fun s -> Queue.add s.s_id runnable) streams;
  let value key = Option.value ~default:0 (Hashtbl.find_opt avail key) in
  let wake key =
    match Hashtbl.find_opt blocked key with
    | None -> ()
    | Some ids ->
      List.iter (fun id -> Queue.add id runnable) !ids;
      ids := []
  in
  let block key id =
    match Hashtbl.find_opt blocked key with
    | Some ids -> ids := id :: !ids
    | None -> Hashtbl.add blocked key (ref [ id ])
  in
  while not (Queue.is_empty runnable) do
    let s = streams.(Queue.pop runnable) in
    let len = Array.length s.s_instrs in
    let running = ref true in
    while !running && s.s_pc < len do
      match s.s_instrs.(s.s_pc) with
      | Instr.Wait { target; threshold; _ } ->
        let key = Instr.key_of_target target in
        if value key >= threshold then s.s_pc <- s.s_pc + 1
        else begin
          block key s.s_id;
          running := false
        end
      | Instr.Notify { target; amount; _ } ->
        let key = Instr.key_of_target target in
        Hashtbl.replace avail key (value key + amount);
        s.s_pc <- s.s_pc + 1;
        wake key
      | _ -> s.s_pc <- s.s_pc + 1
    done
  done

(* Wait-for cycles among statically-matched blocked streams: streams
   stuck on a key whose supply is short are already reported as
   unmatched waits; the rest are blocked on signals that exist but
   cannot be emitted — the circular part of the graph is the root
   cause. *)
let deadlock_diags inv streams =
  let stuck =
    Array.to_list streams
    |> List.filter (fun s -> s.s_pc < Array.length s.s_instrs)
  in
  if stuck = [] then []
  else begin
    let wait_of s =
      match s.s_instrs.(s.s_pc) with
      | Instr.Wait { target; threshold; _ } ->
        (Instr.key_of_target target, threshold, target)
      | _ -> assert false (* fixpoint only blocks on waits *)
    in
    let statically_matched s =
      let key, threshold, _ = wait_of s in
      match Hashtbl.find_opt inv.inv_keys key with
      | None -> false
      | Some ki -> threshold <= supply ki
    in
    let nodes = List.filter statically_matched stuck in
    let node_ids = List.map (fun s -> s.s_id) nodes in
    let by_id = Hashtbl.create 16 in
    List.iter (fun s -> Hashtbl.replace by_id s.s_id s) nodes;
    (* key -> stuck matched streams still holding a notify to it *)
    let producers : (string, int list ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun s ->
        let seen = Hashtbl.create 8 in
        for i = s.s_pc to Array.length s.s_instrs - 1 do
          match s.s_instrs.(i) with
          | Instr.Notify { target; _ } ->
            let key = Instr.key_of_target target in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.add seen key ();
              match Hashtbl.find_opt producers key with
              | Some ids -> ids := s.s_id :: !ids
              | None -> Hashtbl.add producers key (ref [ s.s_id ])
            end
          | _ -> ()
        done)
      nodes;
    let succs id =
      let s = Hashtbl.find by_id id in
      let key, _, _ = wait_of s in
      match Hashtbl.find_opt producers key with
      | None -> []
      | Some ids -> List.rev !ids
    in
    (* DFS with colors; every back edge closes one cycle. *)
    let color = Hashtbl.create 16 in
    let col id = Option.value ~default:`White (Hashtbl.find_opt color id) in
    let stack = ref [] in
    let cycles = ref [] in
    let rec dfs id =
      Hashtbl.replace color id `Grey;
      stack := id :: !stack;
      List.iter
        (fun next ->
          match col next with
          | `Grey ->
            (* !stack = id :: ... :: next :: _; the prefix down to
               [next] is the cycle, oldest first. *)
            let rec take acc = function
              | [] -> acc
              | x :: rest -> if x = next then x :: acc else take (x :: acc) rest
            in
            cycles := take [] !stack :: !cycles
          | `White -> dfs next
          | `Black -> ())
        (succs id);
      Hashtbl.replace color id `Black;
      stack := List.tl !stack
    in
    List.iter (fun id -> if col id = `White then dfs id) node_ids;
    let cycles = List.rev !cycles in
    (* Cap the report: one diag per cycle, at most four cycles — a
       wedged collective usually repeats one pattern per rank pair. *)
    let rec cap n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: cap (n - 1) rest
    in
    let cycle_diag ids =
      let streams_in = List.map (Hashtbl.find by_id) ids in
      let n = List.length streams_in in
      let edges =
        List.mapi
          (fun i s ->
            let key, threshold, _ = wait_of s in
            let next = List.nth streams_in ((i + 1) mod n) in
            {
              e_rank = s.s_rank;
              e_role = s.s_role;
              e_task = s.s_task;
              e_key = key;
              e_threshold = threshold;
              e_producer_rank = next.s_rank;
            })
          streams_in
      in
      let first = List.hd streams_in in
      let key, threshold, target = wait_of first in
      let rendered =
        String.concat " -> "
          (List.map
             (fun e ->
               Printf.sprintf "rank %d %s/%s waits %s >= %d" e.e_rank e.e_role
                 e.e_task e.e_key e.e_threshold)
             edges)
      in
      {
        severity = Error;
        kind = Deadlock_cycle { cycle = edges };
        key;
        rank = first.s_rank;
        channel = Instr.channel_of_target target;
        producer = Instr.producer_of_target target;
        role = first.s_role;
        task = first.s_task;
        detail =
          Printf.sprintf
            "circular wait among %d task streams (threshold %d): %s -> back \
             to rank %d"
            n threshold rendered first.s_rank;
      }
    in
    let norm ids = List.sort compare ids in
    let seen = Hashtbl.create 4 in
    let distinct =
      List.filter
        (fun ids ->
          let k = norm ids in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
        cycles
    in
    List.map cycle_diag (cap 4 distinct)
  end

(* ------------------------------------------------------------------ *)
(* 3. Ordering: per-task fence violations, resolved to keys            *)
(* ------------------------------------------------------------------ *)

let race_diags (p : Program.t) =
  let diags = ref [] in
  Program.iter_tasks p ~f:(fun ~rank role task ->
      List.iter
        (fun (fv : Consistency.fence_violation) ->
          let target =
            match fv.Consistency.fv_fence with
            | Instr.Wait { target; _ } | Instr.Notify { target; _ } -> target
            | _ -> assert false (* fences are waits/notifies by construction *)
          in
          let key = Instr.key_of_target target in
          let verb =
            match fv.Consistency.fv_kind with
            | Consistency.Read_before_acquire ->
              "reads before the acquire wait on"
            | Consistency.Write_after_release ->
              "writes after the release notify on"
          in
          diags :=
            {
              severity = Error;
              kind =
                Data_race
                  {
                    race = fv.Consistency.fv_kind;
                    position = fv.Consistency.fv_position;
                    fence_position = fv.Consistency.fv_fence_position;
                    access = Instr.to_string fv.Consistency.fv_instr;
                  };
              key;
              rank;
              channel = Instr.channel_of_target target;
              producer = Instr.producer_of_target target;
              role = role.Program.role_name;
              task = task.Program.label;
              detail =
                Printf.sprintf
                  "rank %d %s/%s instr %d (%s) %s %s (instr %d): data race \
                   with the producing rank %d"
                  rank role.Program.role_name task.Program.label
                  fv.Consistency.fv_position
                  (Instr.to_string fv.Consistency.fv_instr)
                  verb key fv.Consistency.fv_fence_position
                  (Instr.producer_of_target target);
            }
            :: !diags)
        (Consistency.task_fence_violations task.Program.instrs));
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let analyze (p : Program.t) =
  let inv = inventory_of p in
  let streams = streams_of p in
  run_fixpoint streams;
  let diags =
    accounting_diags inv @ deadlock_diags inv streams @ race_diags p
  in
  {
    program = Program.name p;
    world_size = Program.world_size p;
    diags;
    keys = Hashtbl.length inv.inv_keys;
    notifies = inv.inv_notifies;
    waits = inv.inv_waits;
  }

let errors report =
  List.filter (fun d -> d.severity = Error) report.diags

let ok report = errors report = []

let check p =
  match errors (analyze p) with [] -> Ok () | diags -> Error diags

exception Protocol_violation of diag list

let () =
  Printexc.register_printer (function
    | Protocol_violation diags ->
      Some
        (Printf.sprintf "Analyzer.Protocol_violation (%d diagnostics):\n%s"
           (List.length diags)
           (String.concat "\n"
              (List.map (fun d -> "  " ^ diag_to_string d) diags)))
    | _ -> None)

let check_exn p =
  match check p with Ok () -> () | Error diags -> raise (Protocol_violation diags)

let check_message p =
  match check p with
  | Ok () -> Ok ()
  | Error diags ->
    let shown =
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      take 3 diags
    in
    let suffix =
      match List.length diags - List.length shown with
      | 0 -> ""
      | more -> Printf.sprintf " (+%d more)" more
    in
    Error
      (String.concat "; " (List.map diag_to_string shown) ^ suffix)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

module Json = Tilelink_obs.Json

let num i = Json.Num (float_of_int i)

let edge_to_json e =
  Json.Obj
    [
      ("rank", num e.e_rank);
      ("role", Json.Str e.e_role);
      ("task", Json.Str e.e_task);
      ("key", Json.Str e.e_key);
      ("threshold", num e.e_threshold);
      ("producer_rank", num e.e_producer_rank);
    ]

let kind_fields = function
  | Unmatched_wait { threshold; available } ->
    [ ("threshold", num threshold); ("available", num available) ]
  | Unconsumed_notify { amount } -> [ ("amount", num amount) ]
  | Epoch_reuse { available; max_threshold; waiters } ->
    [
      ("available", num available);
      ("max_threshold", num max_threshold);
      ("waiters", num waiters);
    ]
  | Deadlock_cycle { cycle } ->
    [ ("cycle", Json.List (List.map edge_to_json cycle)) ]
  | Data_race { race; position; fence_position; access } ->
    [
      ( "race",
        Json.Str
          (match race with
          | Consistency.Read_before_acquire -> "read_before_acquire"
          | Consistency.Write_after_release -> "write_after_release") );
      ("position", num position);
      ("fence_position", num fence_position);
      ("access", Json.Str access);
    ]
  | Mapping_mismatch { expected; actual } ->
    [ ("expected", num expected); ("actual", num actual) ]

let diag_to_json d =
  Json.Obj
    ([
       ("severity", Json.Str (severity_to_string d.severity));
       ("kind", Json.Str (kind_name d.kind));
       ("key", Json.Str d.key);
       ("rank", num d.rank);
       ( "channel",
         match d.channel with None -> Json.Null | Some c -> num c );
       ("producer", num d.producer);
       ("role", Json.Str d.role);
       ("task", Json.Str d.task);
       ("detail", Json.Str d.detail);
     ]
    @ kind_fields d.kind)

let report_to_json r =
  Json.Obj
    [
      ("program", Json.Str r.program);
      ("world_size", num r.world_size);
      ("keys", num r.keys);
      ("notifies", num r.notifies);
      ("waits", num r.waits);
      ("errors", num (List.length (errors r)));
      ( "warnings",
        num
          (List.length (List.filter (fun d -> d.severity = Warning) r.diags))
      );
      ("diags", Json.List (List.map diag_to_json r.diags));
    ]

(* ------------------------------------------------------------------ *)
(* Mapping cross-check                                                 *)
(* ------------------------------------------------------------------ *)

let check_against_mapping (p : Program.t) ~mapping =
  if
    Mapping.ranks mapping <> Program.world_size p
    || Mapping.channels_per_rank mapping <> p.Program.pc_channels
  then
    invalid_arg
      "Analyzer.check_against_mapping: mapping layout does not match program";
  let inv = inventory_of p in
  let diags = ref [] in
  List.iter
    (fun key ->
      let ki = Hashtbl.find inv.inv_keys key in
      match ki.k_target with
      | Instr.Pc { rank; channel } ->
        let expected =
          Mapping.expected mapping
            ~channel:(Mapping.global_channel mapping ~rank ~local:channel)
        in
        let over_waits =
          List.filter (fun ep -> ep.ep_amount > expected) ki.k_waits
        in
        (match over_waits with
        | [] -> ()
        | first :: _ ->
          diags :=
            mk_diag Error
              (Mapping_mismatch { expected; actual = first.ep_amount })
              key ki first
              (Printf.sprintf
                 "rank %d %s/%s waits %s >= %d but the mapping registers only \
                  %d producer tiles for this channel"
                 first.ep_rank first.ep_role first.ep_task key first.ep_amount
                 expected)
            :: !diags);
        let total = supply ki in
        if total > expected then
          let first = List.hd ki.k_notifies in
          diags :=
            mk_diag Error
              (Mapping_mismatch { expected; actual = total })
              key ki first
              (Printf.sprintf
                 "%s receives %d signals but the mapping registers only %d \
                  producer tiles for this channel"
                 key total expected)
            :: !diags
      | Instr.Peer _ | Instr.Host _ -> ())
    inv.inv_order;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Mutation corpus                                                     *)
(* ------------------------------------------------------------------ *)

(* [rank]'s Notify/Wait instructions in [Fault]'s task order, paired
   with their resolved key. *)
let rank_signals (p : Program.t) ~rank =
  let notifies = ref [] and waits = ref [] in
  List.iter
    (fun role ->
      List.iter
        (fun (task : Program.task) ->
          List.iter
            (fun instr ->
              match instr with
              | Instr.Notify { target; amount; _ } ->
                notifies := (Instr.key_of_target target, amount) :: !notifies
              | Instr.Wait { target; threshold; _ } ->
                waits := (Instr.key_of_target target, threshold) :: !waits
              | _ -> ())
            task.Program.instrs)
        role.Program.tasks)
    (Program.plans p).(rank);
  (List.rev !notifies, List.rev !waits)

let mutation_corpus ~seed (p : Program.t) =
  let world = Program.world_size p in
  let inv = inventory_of p in
  let key_stats key =
    match Hashtbl.find_opt inv.inv_keys key with
    | None -> (0, 0, 0)
    | Some ki -> (supply ki, max_threshold ki, List.length ki.k_waits)
  in
  (* All (rank, nth) whose mutation is statically visible, across the
     whole program; the seed picks one deterministically. *)
  let eligible ~signals ~keep =
    List.concat_map
      (fun rank ->
        signals rank
        |> List.mapi (fun nth item -> (nth, item))
        |> List.filter_map (fun (nth, item) ->
               if keep item then Some (rank, nth) else None))
      (List.init world Fun.id)
  in
  let pick ~salt = function
    | [] -> None
    | candidates ->
      Some (List.nth candidates ((seed + salt) mod List.length candidates))
  in
  let notify_signals rank = fst (rank_signals p ~rank) in
  let wait_signals rank = snd (rank_signals p ~rank) in
  (* Losing this notify leaves some registered waiter short. *)
  let drop_visible (key, amount) =
    let avail, t_max, waiters = key_stats key in
    waiters > 0 && t_max > avail - amount
  in
  (* Demanding one more than this wait does must exceed the supply. *)
  let bump_wait_visible (key, threshold) =
    let avail, _, _ = key_stats key in
    threshold + 1 > avail
  in
  (* One extra signal must pass every registered threshold. *)
  let bump_notify_visible (key, _) =
    let avail, t_max, waiters = key_stats key in
    waiters > 0 && avail + 1 > t_max
  in
  let corpus = ref [] in
  let add name mutant = corpus := (name, mutant) :: !corpus in
  (match pick ~salt:1 (eligible ~signals:notify_signals ~keep:drop_visible) with
  | Some (rank, nth) -> add "dropped_notify" (Fault.drop_notify p ~rank ~nth)
  | None -> ());
  (if world > 1 then
     match pick ~salt:2 (eligible ~signals:notify_signals ~keep:drop_visible) with
     | Some (rank, nth) ->
       add "swapped_rank" (Fault.swap_notify_rank p ~rank ~nth)
     | None -> ());
  (match
     pick ~salt:3 (eligible ~signals:wait_signals ~keep:bump_wait_visible)
   with
  | Some (rank, nth) ->
    add "wait_epoch_off_by_one" (Fault.bump_wait_threshold p ~rank ~nth)
  | None -> ());
  (match
     pick ~salt:4 (eligible ~signals:notify_signals ~keep:bump_notify_visible)
   with
  | Some (rank, nth) ->
    add "notify_epoch_off_by_one" (Fault.bump_notify_amount p ~rank ~nth)
  | None -> ());
  add "unsafe_hoist" (Pipeline.pipeline_program_unsafe ~stages:4 p);
  List.rev !corpus
