(** Auto-overlap planner: derive the full Pc notify/wait protocol for a
    gather-producer operator graph instead of hand-writing it.

    The input is a small operator-graph IR — one AllGather producer
    feeding one or more tiled row-range consumers — plus the decoupled
    design space.  The planner enumerates candidate overlap schedules
    (transfer direction, chunking, tile shapes, orders, bindings),
    synthesizes each candidate into an ordinary {!Program.t} built
    purely from {!Primitive} statements lowered through a
    {!Mapping.static} (no hand-written notify/wait code), rejects
    statically-broken candidates through {!Analyzer.check}, and scores
    the survivors under the simulator via {!Tune.search_planned} —
    makespan first, exposed-communication blame as the tiebreak. *)

(** {1 Operator graph} *)

type consumer_kind =
  | Gemm of { weights : string; n : int }
      (** [out[m, n] = gathered[m, k] @ weights[k, n]]; [weights] is a
          per-rank buffer of shape [k x n]. *)
  | Softmax_rows
      (** [out[m, k] = row_softmax (gathered[m, k])]; compute tiles
          span the full gathered width (a row's max and sum need every
          column). *)

type consumer = {
  co_name : string;  (** role and task naming *)
  co_out : string;  (** output buffer, [m x width] per rank *)
  co_kind : consumer_kind;
}

val consumer : name:string -> out:string -> consumer_kind -> consumer

type graph = {
  g_name : string;
  g_rows : int;  (** global gathered rows (m) *)
  g_cols : int;  (** gather width (k) *)
  g_world : int;
  g_shard : string;  (** per-rank input shard, [m/world x k] *)
  g_gathered : string;  (** gather destination, [m x k] *)
  g_consumers : consumer list;
}

val graph :
  name:string ->
  rows:int ->
  cols:int ->
  world:int ->
  ?shard:string ->
  ?gathered:string ->
  consumer list ->
  graph
(** Validated constructor ([shard] defaults to ["x_shard"], [gathered]
    to ["x_full"]).  Raises [Invalid_argument] when [rows] does not
    divide over [world], the consumer list is empty, or two consumers
    share an output buffer. *)

val graph_fingerprint : graph -> string
(** Stable identity of the operator graph and shape — the workload
    component of the planner's cache keys. *)

val out_cols : graph -> consumer -> int

(** {1 Candidates} *)

type transfer = Push | Pull

val transfer_to_string : transfer -> string

type candidate = {
  pl_config : Design_space.config;
  pl_transfer : transfer;
      (** producer pushes its shard to every rank vs each rank pulls *)
  pl_chunks : int;  (** consumer inner-loop chunk count over [k] *)
}

val candidate_to_string : candidate -> string

val fingerprint : candidate -> string
(** Extends {!Design_space.fingerprint} with the planner-only axes so
    cache keys never conflate two schedules. *)

type space = {
  sp_design : Design_space.space;
  sp_transfers : transfer list;
  sp_chunks : int list;
}

val default_space : graph -> space
(** A shape-adapted candidate space: communication tile rows are drawn
    from divisors of the shard, compute tiles from a ladder clipped to
    the extents, both transfer directions and chunk counts [1; 2]. *)

val enumerate : space -> candidate list
val size : space -> int

(** {1 Synthesis} *)

val softmax_rows : Tilelink_tensor.Tensor.t -> Tilelink_tensor.Tensor.t
(** Numerically-deterministic row softmax (max-subtracted, row by
    row) — the single definition both the synthesized programs and
    reference checks share, so bit-identity is by construction. *)

val synthesize :
  graph -> candidate -> spec_gpu:Tilelink_machine.Spec.t -> Program.t
(** Build the full overlapped program for one candidate: the gather
    protocol (push or pull), every consumer's waits, chunked loads,
    compute actions and stores, and the resource roles the binding
    asks for.  Raises [Invalid_argument] on infeasible tile/shape
    combinations — {!Tune} counts those as skipped builds. *)

(** {1 Search} *)

type plan = {
  p_candidate : candidate;
  p_program : Program.t;  (** the winning synthesized program *)
  p_time : float;  (** simulated makespan, µs *)
  p_exposed_comm_us : float option;
  p_outcome : (candidate * Program.t) Tune.outcome;
      (** full search statistics (skips, cache hits, all evaluations) *)
}

val search :
  ?pool:Tilelink_exec.Pool.t ->
  ?cache:Tilelink_exec.Cache.t ->
  ?candidates:candidate list ->
  graph ->
  spec_gpu:Tilelink_machine.Spec.t ->
  make_cluster:(unit -> Tilelink_machine.Cluster.t) ->
  unit ->
  plan option
(** Enumerate (or take [candidates]), synthesize, analyzer-prune and
    score every candidate; [None] when nothing both built and passed
    the protocol analysis.  The winner minimizes makespan with
    exposed-communication blame as the tiebreak (earliest candidate on
    a full tie, so the result is deterministic across pool widths). *)
