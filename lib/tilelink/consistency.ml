(* Memory-consistency verification (paper §4.2).

   The notify primitives carry release semantics: no write to a
   released range may appear after the notify.  The wait primitives
   carry acquire semantics: no read of a guarded range may appear
   before the wait.  Compiler passes (pipelining in particular) reorder
   instructions; this verifier checks that a transformed stream still
   honors both rules, so a broken pass is caught at compile time
   instead of as silent data corruption. *)

type violation = {
  position : int;
  instr : string;
  rule : string;
}

let pp_violation ppf v =
  Fmt.pf ppf "instr %d (%s): %s" v.position v.instr v.rule

type fence_kind = Read_before_acquire | Write_after_release

type fence_violation = {
  fv_position : int;       (* the misordered access *)
  fv_fence_position : int; (* the fence it crossed *)
  fv_instr : Instr.t;
  fv_fence : Instr.t;
  fv_kind : fence_kind;
}

(* Acquire rule: a read of access [a] at position [i] must come after
   every Wait guarding an overlapping range.  Release rule: a write of
   access [a] at position [i] must come before every Notify releasing
   an overlapping range.  All violations are collected in scan order
   (ascending access position; reads before writes at equal position;
   ascending fence position) so [verify_task]'s head is the same first
   violation it has always reported, while the whole-program analyzer
   can resolve every one through the channel mappings. *)
let task_fence_violations (instrs : Instr.t list) : fence_violation list =
  let arr = Array.of_list instrs in
  let n = Array.length arr in
  let found = ref [] in
  let record i j kind =
    found :=
      {
        fv_position = i;
        fv_fence_position = j;
        fv_instr = arr.(i);
        fv_fence = arr.(j);
        fv_kind = kind;
      }
      :: !found
  in
  for i = 0 to n - 1 do
    (* Reads before a later guarding Wait. *)
    let reads = Instr.reads_of arr.(i) in
    if reads <> [] then
      for j = i + 1 to n - 1 do
        match arr.(j) with
        | Instr.Wait { guards; _ } ->
          if
            List.exists
              (fun g ->
                List.exists (fun r -> Instr.accesses_overlap g r) reads)
              guards
          then record i j Read_before_acquire
        | _ -> ()
      done;
    (* Writes after an earlier releasing Notify. *)
    let writes = Instr.writes_of arr.(i) in
    if writes <> [] then
      for j = 0 to i - 1 do
        match arr.(j) with
        | Instr.Notify { releases; _ } ->
          if
            List.exists
              (fun rel ->
                List.exists (fun w -> Instr.accesses_overlap rel w) writes)
              releases
          then record i j Write_after_release
        | _ -> ()
      done
  done;
  List.rev !found

let violation_of_fence fv =
  let rule =
    match fv.fv_kind with
    | Read_before_acquire ->
      Printf.sprintf "read executes before its acquire fence at instr %d (%s)"
        fv.fv_fence_position
        (Instr.to_string fv.fv_fence)
    | Write_after_release ->
      Printf.sprintf "write executes after its release fence at instr %d (%s)"
        fv.fv_fence_position
        (Instr.to_string fv.fv_fence)
  in
  { position = fv.fv_position; instr = Instr.to_string fv.fv_instr; rule }

let verify_task (instrs : Instr.t list) : (unit, violation) result =
  match task_fence_violations instrs with
  | [] -> Ok ()
  | fv :: _ -> Error (violation_of_fence fv)

let verify_role (role : Program.role) =
  let rec check = function
    | [] -> Ok ()
    | (task : Program.task) :: rest -> (
      match verify_task task.Program.instrs with
      | Ok () -> check rest
      | Error v ->
        Error { v with rule = task.Program.label ^ ": " ^ v.rule })
  in
  check role.Program.tasks

let verify_program (p : Program.t) =
  let result = ref (Ok ()) in
  Array.iter
    (fun plan ->
      List.iter
        (fun role ->
          match !result with
          | Error _ -> ()
          | Ok () -> (
            match verify_role role with
            | Ok () -> ()
            | Error v ->
              result :=
                Error
                  { v with rule = role.Program.role_name ^ ": " ^ v.rule }))
        plan)
    (Program.plans p);
  !result
