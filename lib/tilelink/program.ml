(* Overlapped-kernel programs: lowered per-rank, per-role instruction
   streams plus the channel-space layout they synchronize through.

   A *role* is one resource-bound component of a fused kernel — e.g.
   "communication on 20 SMs", "computation on the remaining SMs",
   "AllGather on the copy engine", "host stream".  Each role executes a
   list of *tasks* (one per tile) in order, spread over its workers. *)

type resource =
  | Sm_partition of int   (* dedicated SMs inside the fused kernel *)
  | Dma_engines of int    (* copy-engine channels *)
  | Host_stream           (* host-driven sequence *)

let resource_to_string = function
  | Sm_partition n -> Printf.sprintf "sm(%d)" n
  | Dma_engines n -> Printf.sprintf "dma(%d)" n
  | Host_stream -> "host"

type task = { label : string; instrs : Instr.t list }

type role = {
  role_name : string;
  resource : resource;
  lane : Tilelink_sim.Trace.lane;
  tasks : task list;
}

type t = {
  name : string;
  world_size : int;
  pc_channels : int;    (* producer/consumer channels per rank *)
  peer_channels : int;  (* peer channels per (src, dst) pair *)
  plans : role list array;  (* one role list per rank *)
}

let create ~name ~world_size ~pc_channels ~peer_channels plans =
  if Array.length plans <> world_size then
    invalid_arg "Program.create: need one plan per rank";
  if pc_channels <= 0 || peer_channels <= 0 then
    invalid_arg "Program.create: channel counts must be positive";
  { name; world_size; pc_channels; peer_channels; plans }

let name t = t.name
let world_size t = t.world_size
let plans t = t.plans

let role_count t =
  Array.fold_left (fun acc plan -> acc + List.length plan) 0 t.plans

let task_count t =
  Array.fold_left
    (fun acc plan ->
      acc + List.fold_left (fun a role -> a + List.length role.tasks) 0 plan)
    0 t.plans

(* Every whole-program pass (validation, the protocol analyzer, fault
   transforms) walks the same rank / role / task nesting; one iterator
   keeps the traversal order — rank-major, roles then tasks in plan
   order — consistent across them. *)
let iter_tasks t ~f =
  Array.iteri
    (fun rank plan ->
      List.iter
        (fun role -> List.iter (fun task -> f ~rank role task) role.tasks)
        plan)
    t.plans

let fold_tasks t ~init ~f =
  let acc = ref init in
  iter_tasks t ~f:(fun ~rank role task -> acc := f !acc ~rank role task);
  !acc

let instr_count t =
  Array.fold_left
    (fun acc plan ->
      acc
      + List.fold_left
          (fun a role ->
            a
            + List.fold_left
                (fun b task -> b + List.length task.instrs)
                0 role.tasks)
          0 plan)
    0 t.plans

(* Validate every signal target against the program's channel layout;
   catches builder bugs before a simulation deadlocks. *)
let validate t =
  let check_target = function
    | Instr.Pc { rank; channel } ->
      if rank < 0 || rank >= t.world_size then
        Error (Printf.sprintf "pc target rank %d out of range" rank)
      else if channel < 0 || channel >= t.pc_channels then
        Error (Printf.sprintf "pc channel %d out of range" channel)
      else Ok ()
    | Instr.Peer { src; dst; channel } ->
      if src < 0 || src >= t.world_size || dst < 0 || dst >= t.world_size
      then Error "peer target rank out of range"
      else if channel < 0 || channel >= t.peer_channels then
        Error (Printf.sprintf "peer channel %d out of range" channel)
      else Ok ()
    | Instr.Host { src; dst } ->
      if src < 0 || src >= t.world_size || dst < 0 || dst >= t.world_size
      then Error "host target rank out of range"
      else Ok ()
  in
  let check_instr = function
    | Instr.Wait { target; _ } | Instr.Notify { target; _ } ->
      check_target target
    | Instr.Load _ | Instr.Store _ | Instr.Compute _ | Instr.Copy _
    | Instr.Sleep _ ->
      Ok ()
  in
  let rec first_error = function
    | [] -> Ok ()
    | x :: rest -> ( match check_instr x with Ok () -> first_error rest | e -> e)
  in
  let result = ref (Ok ()) in
  iter_tasks t ~f:(fun ~rank:_ _role task ->
      match !result with
      | Error _ -> ()
      | Ok () -> result := first_error task.instrs);
  !result

let pp ppf t =
  Fmt.pf ppf "program %s: %d ranks, %d roles, %d tasks, %d instrs" t.name
    t.world_size (role_count t) (task_count t) (instr_count t)
