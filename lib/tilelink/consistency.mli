(** Memory-consistency verification: acquire/release ordering of
    instruction streams (catches broken compiler passes). *)

type violation = {
  position : int;
  instr : string;
  rule : string;
}

val pp_violation : Format.formatter -> violation -> unit

type fence_kind = Read_before_acquire | Write_after_release

type fence_violation = {
  fv_position : int;        (** the misordered access *)
  fv_fence_position : int;  (** the fence it crossed *)
  fv_instr : Instr.t;
  fv_fence : Instr.t;
  fv_kind : fence_kind;
}

val task_fence_violations : Instr.t list -> fence_violation list
(** Every acquire/release ordering violation of one task's stream, in
    scan order; [verify_task] reports the head.  The whole-program
    analyzer resolves each violation's fence through the channel
    mappings to name the racing producer. *)

val verify_task : Instr.t list -> (unit, violation) result
val verify_role : Program.role -> (unit, violation) result
val verify_program : Program.t -> (unit, violation) result
