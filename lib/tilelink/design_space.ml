(* The decoupled design space (paper §3.1).

   Communication and computation choose *independently* in three
   subspaces: tile size, tile order, resource binding.  FLUX-style
   coupled fusion corresponds to the diagonal of this space (same tile
   size, same order, comm on SMs); the paper's claim — and what the
   autotuner exploits — is that the off-diagonal contains better
   points. *)

type resource_binding =
  | Comm_on_sm of int     (* communication CTAs on this many SMs *)
  | Comm_on_dma           (* copy engine, host-triggered *)
  | Comm_hybrid of { dma_fraction : float; sms : int }
      (* bulk data on the copy engine, epilogue (e.g. reduction) on SMs *)

let resource_binding_to_string = function
  | Comm_on_sm n -> Printf.sprintf "sm(%d)" n
  | Comm_on_dma -> "dma"
  | Comm_hybrid { dma_fraction; sms } ->
    Printf.sprintf "hybrid(dma=%.0f%%,sm=%d)" (dma_fraction *. 100.0) sms

type config = {
  comm_tile : int * int;
  compute_tile : int * int;
  comm_order : Tile.order;
  compute_order : Tile.order;
  binding : resource_binding;
  stages : int;  (* software pipeline depth *)
  micro_block : int;
      (* GEMM microkernel cache-block edge; 0 = plain streaming kernel.
         Bit-identical numerics either way — a pure speed knob for the
         parallel backend. *)
}

let config_to_string c =
  Printf.sprintf "comm=%dx%d %s | compute=%dx%d %s | %s | stages=%d%s"
    (fst c.comm_tile) (snd c.comm_tile)
    (Tile.order_to_string c.comm_order)
    (fst c.compute_tile) (snd c.compute_tile)
    (Tile.order_to_string c.compute_order)
    (resource_binding_to_string c.binding)
    c.stages
    (if c.micro_block = 0 then ""
     else Printf.sprintf " | mb=%d" c.micro_block)

(* Exact textual identity of a config, for evaluation-cache keys.
   [config_to_string] is for humans and rounds the hybrid DMA fraction
   to whole percent; here floats go out in hex so distinct configs
   never collide. *)
let fingerprint c =
  let binding =
    match c.binding with
    | Comm_on_sm n -> Printf.sprintf "sm:%d" n
    | Comm_on_dma -> "dma"
    | Comm_hybrid { dma_fraction; sms } ->
      Printf.sprintf "hybrid:%h:%d" dma_fraction sms
  in
  Printf.sprintf "ct=%dx%d;kt=%dx%d;co=%s;ko=%s;bind=%s;stages=%d;mb=%d"
    (fst c.comm_tile) (snd c.comm_tile) (fst c.compute_tile)
    (snd c.compute_tile)
    (Tile.order_to_string c.comm_order)
    (Tile.order_to_string c.compute_order)
    binding c.stages c.micro_block

(* FLUX-style coupled point: communication inherits everything from
   computation. *)
let coupled ~tile ~order ~comm_sms ~stages =
  {
    comm_tile = tile;
    compute_tile = tile;
    comm_order = order;
    compute_order = order;
    binding = Comm_on_sm comm_sms;
    stages;
    micro_block = 0;
  }

type space = {
  comm_tiles : (int * int) list;
  compute_tiles : (int * int) list;
  comm_orders : Tile.order list;
  compute_orders : Tile.order list;
  bindings : resource_binding list;
  stage_choices : int list;
  micro_blocks : int list;
}

let default_space ~world_size =
  {
    comm_tiles = [ (128, 128); (256, 128); (512, 128) ];
    compute_tiles = [ (128, 128); (128, 256); (256, 128) ];
    comm_orders =
      [ Tile.Row_major; Tile.Ring_from_self { segments = world_size } ];
    compute_orders =
      [ Tile.Row_major; Tile.Ring_from_self { segments = world_size } ];
    bindings =
      [
        Comm_on_sm 20;
        Comm_on_dma;
        Comm_hybrid { dma_fraction = 0.5; sms = 16 };
      ];
    stage_choices = [ 1; 2 ];
    (* [0] alone keeps the default enumeration size unchanged; the
       microkernel block is a parallel-backend speed knob that never
       affects numerics, so searching it only pays off when tuning for
       real wall-clock. *)
    micro_blocks = [ 0 ];
  }

let enumerate space =
  List.concat_map
    (fun comm_tile ->
      List.concat_map
        (fun compute_tile ->
          List.concat_map
            (fun comm_order ->
              List.concat_map
                (fun compute_order ->
                  List.concat_map
                    (fun binding ->
                      List.concat_map
                        (fun stages ->
                          List.map
                            (fun micro_block ->
                              {
                                comm_tile;
                                compute_tile;
                                comm_order;
                                compute_order;
                                binding;
                                stages;
                                micro_block;
                              })
                            space.micro_blocks)
                        space.stage_choices)
                    space.bindings)
                space.compute_orders)
            space.comm_orders)
        space.compute_tiles)
    space.comm_tiles

let size space = List.length (enumerate space)
