(** Parallel execution backend: run a mapped program for real on an
    OCaml 5 domain team, with tile channels lowered to atomic
    monotonic counters (notify = fetch-and-add, release; wait =
    spin-then-park, acquire).

    Usually reached through [Runtime.run ~backend:(`Parallel n)],
    which wraps the result back into the interpreter's result type. *)

type result = {
  p_wall_us : float;  (** wall-clock µs, the parallel "makespan" *)
  p_notifies : int;
  p_stats : Tilelink_exec.Backend.stats;
      (** per-domain busy/park/exec accounting *)
  p_key_values : (string * int) list;
      (** final counter value per channel key, sorted *)
}

val run :
  ?telemetry:Tilelink_obs.Telemetry.t ->
  ?data:bool ->
  ?memory:Memory.t ->
  domains:int ->
  Program.t ->
  Memory.t * result
(** Execute the program on [domains] worker domains (a memoized
    persistent team).  The static analyzer pre-flights every program
    — {!Analyzer.Protocol_violation} is raised before any domain
    runs; this is the soundness gate that makes the backend
    deadlock-free and race-free (see DESIGN.md §13).  With
    [~data:true] (the default here), Compute/Copy actions mutate
    [memory] exactly as the sequential interpreter would — the
    protocol orders them, so the resulting tensors are bit-identical.
    With [~data:false] only the signal protocol runs.

    Raises [Tilelink_exec.Backend.Stream_failure] if an action
    raises, and [Tilelink_exec.Backend.Deadlock] as a backstop —
    unreachable for analyzer-clean programs. *)
