(* Seeded chaos: machine-level fault injection plus the runtime's
   recovery machinery.

   Everything here is a pure function of an integer seed and simulation
   state: fault windows, straggler picks and per-notify drop decisions
   come from a splitmix64-style hash, never a wall clock, so the same
   seed replays the same faults and the same recovery — trial
   classifications and summary artifacts are byte-identical across
   runs.

   Two halves:
   - the *schedule*: which faults exist (link degradation/outage
     windows, compute stragglers, copy-engine stalls, dropped /
     duplicated / delayed signals) — installed as a channel interceptor
     and a cluster disturbance;
   - the *watchdog*: a simulation process that polls pending waits,
     distinguishes lost-in-flight signals (threshold <= intended value)
     from structurally missing ones, re-issues idempotent notifies with
     exponential backoff, and on exhaustion either raises a structured
     {!Stall} or force-releases the wait and marks the tile range for
     the non-overlapped fallback (the Degrade policy). *)

module Obs = Tilelink_obs
module Cluster = Tilelink_machine.Cluster

(* splitmix64: tiny, fast, and sequence-splittable — the canonical
   choice for reproducible fault schedules. *)
module Prng = struct
  type t = { mutable state : int64 }

  let golden = 0x9E3779B97F4A7C15L

  let mix z =
    let open Int64 in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  let create ~seed = { state = mix (Int64.add (Int64.of_int seed) golden) }

  let next t =
    t.state <- Int64.add t.state golden;
    mix t.state

  (* 53-bit mantissa in [0, 1). *)
  let float t =
    Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0

  let range t lo hi = lo +. (float t *. (hi -. lo))
end

let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

(* Stateless decision hash: a float in [0, 1) determined only by the
   seed and the mixed-in parts.  Per-notify fault decisions use
   (key, occurrence#) so they survive any interleaving the engine
   happens to execute. *)
let hash_float ~seed parts =
  let z =
    List.fold_left
      (fun acc p -> Prng.mix (Int64.logxor acc p))
      (Prng.mix (Int64.of_int seed))
      parts
  in
  Int64.to_float (Int64.shift_right_logical (Prng.mix z) 11)
  /. 9007199254740992.0

(* Per-trial sub-seed, kept positive so it round-trips through CLIs. *)
let derive_seed ~seed ~index =
  Int64.to_int
    (Int64.logand
       (Prng.mix
          (Int64.logxor (Prng.mix (Int64.of_int seed)) (Int64.of_int (index + 1))))
       0x3FFFFFFFFFFFFFFFL)

(* ------------------------------------------------------------------ *)
(* Fault schedule                                                      *)
(* ------------------------------------------------------------------ *)

type spec = {
  link_degrade_prob : float;
  link_degrade_factor : float;
  link_outage_prob : float;
  link_outage_factor : float;
  straggler_prob : float;
  straggler_factor : float;
  copy_stall_prob : float;
  copy_stall_us : float;
  drop_prob : float;
  duplicate_prob : float;
  delay_prob : float;
  delay_us : float;
  reissue_drop_prob : float;
  crash_prob : float;
  crash_transient_prob : float;
  (* Correlated fault domains (topology runs only; all draws come from
     dedicated per-island sub-streams, so flat schedules planned before
     these fields existed replay byte-identically). *)
  node_crash_prob : float;  (* island dies wholesale: every rank at once *)
  nic_outage_prob : float;  (* severe rate window on an island's NIC *)
  nic_outage_factor : float;
  island_degrade_prob : float;  (* island-wide compute degrade *)
  island_degrade_factor : float;  (* duration multiplier, >= 1 *)
  partition_prob : float;  (* island NIC cut off for a window *)
}

let default_spec =
  {
    link_degrade_prob = 0.3;
    link_degrade_factor = 0.25;
    link_outage_prob = 0.05;
    (* An "outage" is a 100x slowdown, not a zero rate: transfers
       admitted inside the window must still finish within the
       watchdog's structural-stall budget. *)
    link_outage_factor = 0.01;
    straggler_prob = 0.25;
    straggler_factor = 2.0;
    copy_stall_prob = 0.15;
    copy_stall_us = 5.0;
    drop_prob = 0.02;
    duplicate_prob = 0.02;
    delay_prob = 0.04;
    delay_us = 20.0;
    reissue_drop_prob = 0.2;
    (* Crash faults are opt-in: a zero probability consumes no RNG
       draws, so schedules planned before crashes existed replay
       byte-identically. *)
    crash_prob = 0.0;
    crash_transient_prob = 0.0;
    (* Correlated domains are opt-in, like crashes. *)
    node_crash_prob = 0.0;
    nic_outage_prob = 0.0;
    nic_outage_factor = 0.02;
    island_degrade_prob = 0.0;
    island_degrade_factor = 1.5;
    partition_prob = 0.0;
  }

(* Moderate correlated-fault intensities for topology chaos runs:
   NIC outages and island-wide compute degrades, no wholesale node
   crashes (those are forced via [crash_ranks] or pinned in tests). *)
let correlated_faults spec =
  {
    spec with
    nic_outage_prob = 0.3;
    nic_outage_factor = 0.02;
    island_degrade_prob = 0.25;
    island_degrade_factor = 1.5;
  }

let no_machine_faults spec =
  {
    spec with
    link_degrade_prob = 0.0;
    link_outage_prob = 0.0;
    straggler_prob = 0.0;
    copy_stall_prob = 0.0;
    crash_prob = 0.0;
    node_crash_prob = 0.0;
    nic_outage_prob = 0.0;
    island_degrade_prob = 0.0;
    partition_prob = 0.0;
  }

let signal_faults_only ~drop_prob =
  {
    (no_machine_faults default_spec) with
    drop_prob;
    duplicate_prob = 0.0;
    delay_prob = 0.0;
    reissue_drop_prob = 0.0;
  }

type window = { w_from : float; w_until : float; w_factor : float }

(* A rank-crash fault: the rank dies at [cr_at]; [cr_until = Some t]
   models a transient crash (process restart) after which the rank is
   reachable again — its lost work is still the failover coordinator's
   to replay. *)
type crash = { cr_at : float; cr_until : float option }

type schedule = {
  seed : int;
  spec : spec;
  horizon_us : float;
  (* The topology layout the schedule was drawn against, if any:
     correlated (per-island) faults need to know island membership. *)
  layout : Tilelink_machine.Topology.layout option;
  link_windows : window list array;
  copy_windows : window list array;
  straggler : float array;
  (* Per-island NIC fault windows: severe-rate outages and full
     partitions.  Empty (zero-length arrays) on flat schedules. *)
  nic_windows : window list array;
  nic_partitions : window list array;
  mutable crash_faults : (int * crash) list;
  (* Occurrence counter per signal key: the n-th notify on a key gets a
     decision hashed from (seed, key, n). *)
  counts : (string, int) Hashtbl.t;
  mutable reissues : int;
  (* Injection log, newest first: (fault kind, subject). *)
  mutable injected : (string * string) list;
}

let note sched kind subject = sched.injected <- (kind, subject) :: sched.injected

(* Sub-stream index for island-level draws: a prime far above any
   rank-stream index (rank * 7919, world <= 64) and distinct from the
   forced-crash stream (104729), so correlated draws can never collide
   with — or perturb — the existing streams. *)
let island_stream_index island = 15485863 + island

let plan ?(spec = default_spec) ?(horizon_us = 2000.0) ?(crash_ranks = 0)
    ?layout ~seed ~world_size () =
  if world_size <= 0 then invalid_arg "Chaos.plan: world_size";
  if horizon_us <= 0.0 then invalid_arg "Chaos.plan: horizon_us";
  if crash_ranks < 0 || crash_ranks > world_size then
    invalid_arg "Chaos.plan: crash_ranks out of range";
  let num_islands =
    match layout with
    | None -> 0
    | Some l -> Tilelink_machine.Topology.islands l
  in
  let sched =
    {
      seed;
      spec;
      horizon_us;
      layout;
      link_windows = Array.make world_size [];
      copy_windows = Array.make world_size [];
      straggler = Array.make world_size 1.0;
      nic_windows = Array.make num_islands [];
      nic_partitions = Array.make num_islands [];
      crash_faults = [];
      counts = Hashtbl.create 64;
      reissues = 0;
      injected = [];
    }
  in
  for rank = world_size - 1 downto 0 do
    let rng = Prng.create ~seed:(derive_seed ~seed ~index:(rank * 7919)) in
    let mk_window factor =
      let a = Prng.range rng 0.0 horizon_us in
      let b = Prng.range rng a horizon_us in
      { w_from = a; w_until = Float.max b (a +. (0.05 *. horizon_us)); w_factor = factor }
    in
    let subj = Printf.sprintf "rank%d" rank in
    if Prng.float rng < spec.link_degrade_prob then begin
      sched.link_windows.(rank) <-
        mk_window spec.link_degrade_factor :: sched.link_windows.(rank);
      note sched "link_degrade" subj
    end;
    if Prng.float rng < spec.link_outage_prob then begin
      sched.link_windows.(rank) <-
        mk_window spec.link_outage_factor :: sched.link_windows.(rank);
      note sched "link_outage" subj
    end;
    if Prng.float rng < spec.straggler_prob then begin
      sched.straggler.(rank) <- spec.straggler_factor;
      note sched "straggler" subj
    end;
    if Prng.float rng < spec.copy_stall_prob then begin
      sched.copy_windows.(rank) <- [ mk_window 0.0 ];
      note sched "copy_stall" subj
    end;
    (* Crash draws come last and only when enabled, so a crash-free
       spec consumes exactly the pre-crash RNG stream — existing seeded
       schedules (and the CLI's --check byte-identity contract) are
       untouched. *)
    if spec.crash_prob > 0.0 && Prng.float rng < spec.crash_prob then begin
      let at = Prng.range rng (0.1 *. horizon_us) (0.6 *. horizon_us) in
      let transient = Prng.float rng < spec.crash_transient_prob in
      let cr_until =
        if transient then
          Some (at +. Prng.range rng (0.1 *. horizon_us) (0.3 *. horizon_us))
        else None
      in
      sched.crash_faults <- (rank, { cr_at = at; cr_until }) :: sched.crash_faults;
      note sched "rank_crash" subj
    end
  done;
  (* Correlated fault domains: one dedicated sub-stream per island, so
     these draws neither perturb the per-rank streams above nor the
     forced-crash stream below.  Only meaningful with a layout. *)
  (match layout with
   | None -> ()
   | Some l ->
     let ranks_of_island isl =
       List.filter
         (fun r -> l.Tilelink_machine.Topology.l_island_of_rank.(r) = isl)
         (List.init world_size Fun.id)
     in
     for island = 0 to num_islands - 1 do
       let rng =
         Prng.create ~seed:(derive_seed ~seed ~index:(island_stream_index island))
       in
       let mk_window factor =
         let a = Prng.range rng 0.0 horizon_us in
         let b = Prng.range rng a horizon_us in
         {
           w_from = a;
           w_until = Float.max b (a +. (0.05 *. horizon_us));
           w_factor = factor;
         }
       in
       let subj = Printf.sprintf "island%d" island in
       if spec.nic_outage_prob > 0.0 && Prng.float rng < spec.nic_outage_prob
       then begin
         sched.nic_windows.(island) <-
           mk_window spec.nic_outage_factor :: sched.nic_windows.(island);
         note sched "nic_outage" subj
       end;
       if
         spec.island_degrade_prob > 0.0
         && Prng.float rng < spec.island_degrade_prob
       then begin
         (* Correlated compute degrade: every rank of the island slows
            down together, composing with any per-rank straggler. *)
         List.iter
           (fun r ->
             sched.straggler.(r) <-
               sched.straggler.(r) *. spec.island_degrade_factor)
           (ranks_of_island island);
         note sched "island_degrade" subj
       end;
       if spec.partition_prob > 0.0 && Prng.float rng < spec.partition_prob
       then begin
         sched.nic_partitions.(island) <-
           mk_window 0.0 :: sched.nic_partitions.(island);
         note sched "nic_partition" subj
       end;
       if spec.node_crash_prob > 0.0 && Prng.float rng < spec.node_crash_prob
       then begin
         (* Node crash: the whole island dies at one instant. *)
         let at = Prng.range rng (0.1 *. horizon_us) (0.6 *. horizon_us) in
         List.iter
           (fun r ->
             if not (List.mem_assoc r sched.crash_faults) then
               sched.crash_faults <-
                 (r, { cr_at = at; cr_until = None }) :: sched.crash_faults)
           (ranks_of_island island);
         note sched "node_crash" subj
       end
     done);
  (* Forced deterministic crashes for [crash_ranks]: victims and crash
     instants are drawn from a dedicated sub-stream so they neither
     perturb the per-rank draws above nor depend on them.  On a
     topology run the forced crashes are *correlated*: victims fill
     whole islands (drawn without replacement), every rank of an
     island dying at the same instant — [--crash-ranks 8] on
     islands2x8 is exactly "one island dies". *)
  if crash_ranks > 0 then begin
    let crng = Prng.create ~seed:(derive_seed ~seed ~index:104729) in
    let crashed = Hashtbl.create 4 in
    List.iter (fun (r, _) -> Hashtbl.replace crashed r ()) sched.crash_faults;
    let draw_mod m =
      Int64.to_int
        (Int64.rem (Int64.logand (Prng.next crng) Int64.max_int) (Int64.of_int m))
    in
    let forced = ref 0 in
    match layout with
    | Some l when num_islands > 1 ->
      let visited = Hashtbl.create 4 in
      while !forced < crash_ranks && Hashtbl.length crashed < world_size do
        let island = draw_mod num_islands in
        if not (Hashtbl.mem visited island) then begin
          Hashtbl.replace visited island ();
          let at = Prng.range crng (0.15 *. horizon_us) (0.45 *. horizon_us) in
          List.iter
            (fun r ->
              if
                !forced < crash_ranks
                && l.Tilelink_machine.Topology.l_island_of_rank.(r) = island
                && not (Hashtbl.mem crashed r)
              then begin
                Hashtbl.replace crashed r ();
                sched.crash_faults <-
                  (r, { cr_at = at; cr_until = None }) :: sched.crash_faults;
                note sched "rank_crash" (Printf.sprintf "rank%d" r);
                incr forced
              end)
            (List.init world_size Fun.id)
        end
      done
    | _ ->
      while !forced < crash_ranks && Hashtbl.length crashed < world_size do
        let r = draw_mod world_size in
        if not (Hashtbl.mem crashed r) then begin
          Hashtbl.replace crashed r ();
          let at = Prng.range crng (0.15 *. horizon_us) (0.45 *. horizon_us) in
          sched.crash_faults <-
            (r, { cr_at = at; cr_until = None }) :: sched.crash_faults;
          note sched "rank_crash" (Printf.sprintf "rank%d" r);
          incr forced
        end
      done
  end;
  sched

(* Crash faults ordered by crash instant (rank breaks ties) — the order
   the runtime schedules the kill thunks in. *)
let crashes sched =
  List.sort
    (fun (r1, c1) (r2, c2) ->
      match compare c1.cr_at c2.cr_at with 0 -> compare r1 r2 | c -> c)
    sched.crash_faults

(* Replace the planned crash faults wholesale.  The seeded draws cannot
   pin exact crash instants; tests and reproductions that need them
   (e.g. "second crash lands mid-replay of the first") build a schedule
   with [plan] and then install the crash list explicitly. *)
let with_crashes sched faults =
  sched.crash_faults <- faults;
  sched

let injected sched = List.rev sched.injected

(* Interceptor: per-notify decisions hashed from (seed, key,
   occurrence).  The occurrence counter is the only mutable state and
   advances identically on every replay because the engine itself is
   deterministic. *)
let decision sched ~kind:_ ~key ~rank:_ ~amount:_ =
  let n = Option.value ~default:0 (Hashtbl.find_opt sched.counts key) in
  Hashtbl.replace sched.counts key (n + 1);
  let u = hash_float ~seed:sched.seed [ fnv1a key; Int64.of_int n; 11L ] in
  let s = sched.spec in
  if u < s.drop_prob then begin
    note sched "drop" key;
    Channel.Drop
  end
  else if u < s.drop_prob +. s.duplicate_prob then begin
    note sched "duplicate" key;
    Channel.Duplicate
  end
  else if u < s.drop_prob +. s.duplicate_prob +. s.delay_prob then begin
    note sched "delay" key;
    let jitter = hash_float ~seed:sched.seed [ fnv1a key; Int64.of_int n; 13L ] in
    Channel.Delay (s.delay_us *. (0.5 +. jitter))
  end
  else Channel.Deliver

let interceptor sched : Channel.interceptor =
 fun ~kind ~key ~rank ~amount -> decision sched ~kind ~key ~rank ~amount

(* Even recovery is lossy under chaos: each watchdog re-issue flips a
   seeded coin, which is what makes bounded retry + backoff observable
   rather than always succeeding on the first attempt. *)
let reissue_ok sched =
  let n = sched.reissues in
  sched.reissues <- n + 1;
  hash_float ~seed:sched.seed [ Int64.of_int n; 17L ] >= sched.spec.reissue_drop_prob

let window_factor windows ~now =
  List.fold_left
    (fun acc w ->
      if now >= w.w_from && now < w.w_until then Float.min acc w.w_factor
      else acc)
    1.0 windows

(* Whether [node]'s NIC sits inside a planned partition window at
   [now]: the island is cut off from the bridged fabric.  Transfers
   admitted inside the window crawl (the Bandwidth clamp keeps the
   rate nonzero) and the failover coordinator uses this to triage an
   unbridgeable cut as structural. *)
let partitioned sched ~node ~now =
  node >= 0
  && node < Array.length sched.nic_partitions
  && List.exists
       (fun w -> now >= w.w_from && now < w.w_until)
       sched.nic_partitions.(node)

(* Pin explicit partition windows per node, like [with_crashes] pins
   crash instants — the seeded draws cannot. *)
let with_nic_partitions sched windows =
  Array.fill sched.nic_partitions 0 (Array.length sched.nic_partitions) [];
  List.iter
    (fun (node, w) ->
      if node < 0 || node >= Array.length sched.nic_partitions then
        invalid_arg "Chaos.with_nic_partitions: node out of range";
      sched.nic_partitions.(node) <- w :: sched.nic_partitions.(node))
    windows;
  sched

let schedule_layout sched = sched.layout

let disturbance sched =
  let link rank =
    if rank >= 0 && rank < Array.length sched.link_windows then
      sched.link_windows.(rank)
    else []
  in
  let nic node =
    if node >= 0 && node < Array.length sched.nic_windows then
      sched.nic_windows.(node)
    else []
  in
  {
    Cluster.link_rate = (fun ~rank ~now -> window_factor (link rank) ~now);
    (* Per-island NIC outage windows and partitions; nominal on flat
       schedules (empty arrays), exactly as before.  A partition is a
       zero factor — the Bandwidth clamp turns it into a crawl, and
       the watchdog/coordinator decide what counts as stalled. *)
    nic_rate =
      (fun ~node ~now ->
        let w = window_factor (nic node) ~now in
        if partitioned sched ~node ~now then 0.0 else w);
    compute =
      (fun ~rank ~now:_ ->
        if rank >= 0 && rank < Array.length sched.straggler then
          sched.straggler.(rank)
        else 1.0);
    copy_stall_us =
      (fun ~rank ~now ->
        let windows =
          if rank >= 0 && rank < Array.length sched.copy_windows then
            sched.copy_windows.(rank)
          else []
        in
        if window_factor windows ~now < 1.0 then sched.spec.copy_stall_us
        else 0.0);
  }

let apply_to_cluster sched cluster =
  Cluster.set_disturbance cluster (disturbance sched)

(* ------------------------------------------------------------------ *)
(* Watchdog                                                            *)
(* ------------------------------------------------------------------ *)

type policy = Fail_stop | Degrade | Failover

type watchdog = {
  poll_interval_us : float;
  wait_timeout_us : float;
      (* age after which a wait whose signal was sent-but-lost is
         suspected and retried *)
  stall_timeout_us : float;
      (* age after which a wait whose signal was never sent is declared
         structural — longer, so slow producers are not misdiagnosed *)
  max_retries : int;
  backoff_base_us : float;
  retry : bool;
  policy : policy;
}

let default_watchdog =
  {
    poll_interval_us = 25.0;
    wait_timeout_us = 500.0;
    stall_timeout_us = 2000.0;
    max_retries = 5;
    backoff_base_us = 50.0;
    retry = true;
    policy = Fail_stop;
  }

type stall = {
  stall_key : string;
  stall_kind : string;
  stall_owner : int;
  stall_channel : int option;
  stall_rank : int;
  stall_threshold : int;
  stall_value : int;
  stall_intended : int;
  stall_since : float;
  stall_at : float;
  stall_waiters : (string * int * int) list;
}

exception Stall of stall

(* Decompose a counter key into (kind, producing rank, channel):
   "pc[3][7]" is rank 3's producer/consumer channel 7 (the tile
   coordinate under the program's channel mapping); "peer[2<-1][0]" is
   produced by rank 1; "host[2<-0]" by rank 0's copy engine. *)
let parse_key key =
  let try_scan fmt f = try Some (Scanf.sscanf key fmt f) with _ -> None in
  match try_scan "pc[%d][%d]" (fun r c -> ("pc", r, Some c)) with
  | Some v -> v
  | None -> (
    match
      try_scan "peer[%d<-%d][%d]" (fun _dst src c -> ("peer", src, Some c))
    with
    | Some v -> v
    | None -> (
      match try_scan "host[%d<-%d]" (fun _dst src -> ("host", src, None)) with
      | Some v -> v
      | None -> ("unknown", -1, None)))

let stall_to_string s =
  let channel =
    match s.stall_channel with
    | Some c -> Printf.sprintf " channel/tile %d" c
    | None -> ""
  in
  let waiters =
    String.concat "; "
      (List.map
         (fun (key, rank, threshold) ->
           Printf.sprintf "rank %d waits %s >= %d" rank key threshold)
         s.stall_waiters)
  in
  Printf.sprintf
    "stalled wait on %s (%s signal produced by rank %d%s): waiter rank %d \
     needs >= %d, value %d, intended %d; blocked since t=%.1f, detected \
     t=%.1f; waiters-for: [%s]"
    s.stall_key s.stall_kind s.stall_owner channel s.stall_rank
    s.stall_threshold s.stall_value s.stall_intended s.stall_since s.stall_at
    waiters

type recovery = {
  mutable retries : int;
  mutable recovered : (string * float) list;  (* key, latency µs; in order *)
  mutable degraded : string list;  (* keys force-released, in order *)
  mutable stalls : stall list;
  (* Elastic-failover bookkeeping, filled by the runtime's recovery
     coordinator (not the watchdog loop itself). *)
  mutable failed_over : (int * float) list;
      (* (crashed rank, detect->resume latency µs), in crash order *)
  mutable remapped_tiles : int;
  mutable replayed_tiles : int;
  mutable total_tiles : int;
  mutable cross_island_replays : int;
      (* replays the coordinator had to place on a survivor outside
         the crashed rank's NVLink island (0 on flat topologies) *)
}

let fresh_recovery () =
  {
    retries = 0;
    recovered = [];
    degraded = [];
    stalls = [];
    failed_over = [];
    remapped_tiles = 0;
    replayed_tiles = 0;
    total_tiles = 0;
    cross_island_replays = 0;
  }

type control = {
  c_schedule : schedule option;
  c_watchdog : watchdog option;
  c_recovery : recovery;
}

let control ?schedule ?watchdog () =
  { c_schedule = schedule; c_watchdog = watchdog; c_recovery = fresh_recovery () }

(* Oldest overdue wait per key, carrying the largest threshold anybody
   on that key is blocked on.  Input is already sorted oldest-first. *)
let group_overdue overdue =
  List.fold_left
    (fun acc (pw : Channel.pending_wait) ->
      match List.assoc_opt pw.Channel.pw_key acc with
      | None -> acc @ [ (pw.Channel.pw_key, pw) ]
      | Some rep when pw.Channel.pw_threshold > rep.Channel.pw_threshold ->
        List.map
          (fun (k, r) ->
            if k = pw.Channel.pw_key then
              (k, { r with Channel.pw_threshold = pw.Channel.pw_threshold })
            else (k, r))
          acc
      | Some _ -> acc)
    [] overdue

(* The watchdog process: spawned by the runtime alongside the role
   processes, polls while anything else is alive, and turns overdue
   waits into retries, degradations or a structured Stall.  All timing
   is simulation time; all randomness is the schedule's seeded coin. *)
let watchdog_body ?hooks ?quiesce ~engine ~channels ~telemetry
    ~(control : control) ~wd () =
  let open Tilelink_sim in
  let recov = control.c_recovery in
  let retry_state : (string, int * float) Hashtbl.t = Hashtbl.create 8 in
  let journal_ev ev =
    if Obs.Telemetry.active telemetry then
      Obs.Journal.record
        (Obs.Telemetry.journal (Option.get telemetry))
        ~t:(Engine.now engine) ev
  in
  let metric name =
    if Obs.Telemetry.active telemetry then
      Obs.Metrics.inc (Obs.Telemetry.metrics (Option.get telemetry)) name
  in
  let observe name v =
    if Obs.Telemetry.active telemetry then
      Obs.Metrics.observe (Obs.Telemetry.metrics (Option.get telemetry)) name v
  in
  (* The watchdog is its own sequential causal stream; its re-issue
     spans must be recorded *before* the force_signal wakes the blocked
     wait, so the wait's resolution finds the delivery candidate. *)
  let span_worker =
    if Obs.Telemetry.active telemetry then
      Obs.Span.fresh_worker (Obs.Telemetry.spans (Option.get telemetry))
    else -1
  in
  let span_retry ~label ~key ~rank ~value ~t0 ~t1 =
    if Obs.Telemetry.active telemetry then
      Obs.Span.record_retry
        (Obs.Telemetry.spans (Option.get telemetry))
        ~label ~rank ~worker:span_worker ~key ~value ~t0 ~t1
  in
  let give_up ~now (rep : Channel.pending_wait) ~value ~intended =
    match wd.policy with
    (* Failover handles *crash* faults through the hooks; an exhausted
       signal-fault retry under Failover degrades gracefully rather than
       fail-stopping the whole run. *)
    | Degrade | Failover ->
      recov.degraded <- recov.degraded @ [ rep.Channel.pw_key ];
      journal_ev
        (Obs.Journal.Degraded
           { key = rep.Channel.pw_key; rank = rep.Channel.pw_rank });
      metric "recovery.degraded";
      Hashtbl.remove retry_state rep.Channel.pw_key;
      span_retry ~label:"watchdog.degrade" ~key:rep.Channel.pw_key
        ~rank:rep.Channel.pw_rank ~value:rep.Channel.pw_threshold
        ~t0:rep.Channel.pw_since ~t1:now;
      Channel.force_signal channels ~key:rep.Channel.pw_key
        ~target:rep.Channel.pw_threshold
    | Fail_stop ->
      let kind, owner, chan = parse_key rep.Channel.pw_key in
      let stall =
        {
          stall_key = rep.Channel.pw_key;
          stall_kind = kind;
          stall_owner = owner;
          stall_channel = chan;
          stall_rank = rep.Channel.pw_rank;
          stall_threshold = rep.Channel.pw_threshold;
          stall_value = value;
          stall_intended = intended;
          stall_since = rep.Channel.pw_since;
          stall_at = now;
          stall_waiters =
            List.map
              (fun (pw : Channel.pending_wait) ->
                (pw.Channel.pw_key, pw.Channel.pw_rank, pw.Channel.pw_threshold))
              (Channel.pending_waits channels);
        }
      in
      recov.stalls <- recov.stalls @ [ stall ];
      journal_ev
        (Obs.Journal.Stall_detected
           {
             key = stall.stall_key;
             rank = stall.stall_rank;
             threshold = stall.stall_threshold;
             value = stall.stall_value;
           });
      metric "recovery.stalls";
      raise (Stall stall)
  in
  let attempt_retry ~now (rep : Channel.pending_wait) ~intended =
    let key = rep.Channel.pw_key in
    let attempts, next_at =
      Option.value ~default:(0, 0.0) (Hashtbl.find_opt retry_state key)
    in
    if attempts >= wd.max_retries then `Exhausted
    else if now < next_at then `Waiting
    else begin
      recov.retries <- recov.retries + 1;
      journal_ev
        (Obs.Journal.Retry
           { key; rank = rep.Channel.pw_rank; attempt = attempts + 1 });
      metric "recovery.retries";
      let delivered =
        match control.c_schedule with
        | Some sched -> reissue_ok sched
        | None -> true
      in
      if delivered then begin
        span_retry ~label:"watchdog.retry" ~key ~rank:rep.Channel.pw_rank
          ~value:intended ~t0:rep.Channel.pw_since ~t1:now;
        Channel.force_signal channels ~key ~target:intended;
        let latency = now -. rep.Channel.pw_since in
        recov.recovered <- recov.recovered @ [ (key, latency) ];
        journal_ev
          (Obs.Journal.Recovered
             { key; rank = rep.Channel.pw_rank; latency });
        metric "recovery.recovered";
        observe "recovery.latency_us" latency;
        Hashtbl.remove retry_state key;
        `Recovered
      end
      else begin
        Hashtbl.replace retry_state key
          ( attempts + 1,
            now +. (wd.backoff_base_us *. (2.0 ** float_of_int attempts)) );
        `Backoff
      end
    end
  in
  let rec tick () =
    Process.wait wd.poll_interval_us;
    (* Failover hooks run first, and *before* the live-process check:
       a crash can drain every worker (they all abandon), leaving only
       the watchdog live — the recovery coordinator must still get its
       chance to remap and replay before the watchdog exits.  They also
       must run before overdue-wait retry processing so a dead rank's
       channels are remapped before any force_signal touches them. *)
    (match hooks with Some h -> h () | None -> ());
    (* The watchdog itself counts as one live process: anything beyond
       that is real work still running (or blocked). *)
    if Engine.live_processes engine > 1 then begin
      let now = Engine.now engine in
      (* While failover replay is in flight, a never-sent signal is most
         likely one the replay is about to produce: deferring structural
         triage until recovery settles keeps the watchdog from
         force-releasing waits whose data is en route.  Recoverable
         waits (signal issued, then lost) are still retried — the remap
         already happened, so the force-signal lands on the right
         counter. *)
      let defer_structural =
        match quiesce with Some q -> q () | None -> false
      in
      let overdue =
        List.filter
          (fun (pw : Channel.pending_wait) ->
            now -. pw.Channel.pw_since >= wd.wait_timeout_us)
          (Channel.pending_waits channels)
      in
      List.iter
        (fun (key, (rep : Channel.pending_wait)) ->
          let value = Option.value ~default:0 (Channel.key_value channels ~key) in
          let intended = Channel.intended_value channels ~key in
          let recoverable = intended >= rep.Channel.pw_threshold in
          if recoverable then begin
            if wd.retry then begin
              match attempt_retry ~now rep ~intended with
              | `Recovered | `Waiting | `Backoff -> ()
              | `Exhausted -> give_up ~now rep ~value ~intended
            end
            else give_up ~now rep ~value ~intended
          end
          else if
            (not defer_structural)
            && now -. rep.Channel.pw_since >= wd.stall_timeout_us
          then
            (* Never-sent signal: only declared structural once even a
               pathological straggler would have produced it. *)
            give_up ~now rep ~value ~intended)
        (group_overdue overdue);
      tick ()
    end
  in
  tick ()
