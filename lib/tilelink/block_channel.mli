(** BlockChannel: the tile-centric mapping context threaded through
    kernel builders (rank, world size, mapping, channel layout). *)

type t

val create :
  ?channel_base:int ->
  ?peer_channels:int ->
  rank:int ->
  world_size:int ->
  Mapping.t ->
  t

val rank : t -> int
val world_size : t -> int
val mapping : t -> Mapping.t
val channel_base : t -> int
val peer_channels : t -> int
val channel_extent : t -> int
val lower_config : t -> Lower.config

val lower :
  ?telemetry:Tilelink_obs.Telemetry.t -> t -> Primitive.t list -> Instr.t list
(** Lower statements in this context, offsetting producer/consumer
    channel ids by [channel_base].  With [telemetry], records a
    [Channel_acquire] journal event for the occupied channel range and
    counts the wait/notify instructions the primitives lowered into
    ([lowered.waits] / [lowered.notifies]). *)
