(** Overlapped-kernel programs: lowered per-rank, per-role instruction
    streams plus the channel-space layout. *)

type resource =
  | Sm_partition of int
  | Dma_engines of int
  | Host_stream

val resource_to_string : resource -> string

type task = { label : string; instrs : Instr.t list }

type role = {
  role_name : string;
  resource : resource;
  lane : Tilelink_sim.Trace.lane;
  tasks : task list;
}

type t = {
  name : string;
  world_size : int;
  pc_channels : int;
  peer_channels : int;
  plans : role list array;
}

val create :
  name:string ->
  world_size:int ->
  pc_channels:int ->
  peer_channels:int ->
  role list array ->
  t

val name : t -> string
val world_size : t -> int
val plans : t -> role list array
val role_count : t -> int
val task_count : t -> int
val instr_count : t -> int

val iter_tasks : t -> f:(rank:int -> role -> task -> unit) -> unit
(** Visit every task rank-major, roles then tasks in plan order — the
    shared traversal of validation, the protocol analyzer and fault
    transforms. *)

val fold_tasks : t -> init:'a -> f:('a -> rank:int -> role -> task -> 'a) -> 'a

val validate : t -> (unit, string) result
(** Check every signal target against the channel layout. *)

val pp : Format.formatter -> t -> unit
