(** The decoupled design space: independent tile sizes, tile orders and
    resource bindings for communication and computation. *)

type resource_binding =
  | Comm_on_sm of int
  | Comm_on_dma
  | Comm_hybrid of { dma_fraction : float; sms : int }

val resource_binding_to_string : resource_binding -> string

type config = {
  comm_tile : int * int;
  compute_tile : int * int;
  comm_order : Tile.order;
  compute_order : Tile.order;
  binding : resource_binding;
  stages : int;
  micro_block : int;
      (** Cache-block edge of the GEMM microkernel executing each
          compute tile ([Linalg.gemm ~block]); [0] = the plain
          streaming kernel.  Purely an execution-speed knob: the
          blocked kernel is bit-identical to the plain one, so this
          subspace never changes numerics, only wall-clock on the
          parallel backend. *)
}

val config_to_string : config -> string

val fingerprint : config -> string
(** Exact textual identity of the config (floats in hex), for
    evaluation-cache keys; distinct configs never collide. *)

val coupled :
  tile:int * int -> order:Tile.order -> comm_sms:int -> stages:int -> config
(** The FLUX-style coupled point: communication inherits the
    computation's tiling and order. *)

type space = {
  comm_tiles : (int * int) list;
  compute_tiles : (int * int) list;
  comm_orders : Tile.order list;
  compute_orders : Tile.order list;
  bindings : resource_binding list;
  stage_choices : int list;
  micro_blocks : int list;
      (** Microkernel cache-block choices; the default space ships
          [[0]] (plain kernel only) so the enumeration size is
          unchanged — widen it to let [Tune] search block sizes. *)
}

val default_space : world_size:int -> space
val enumerate : space -> config list
val size : space -> int
