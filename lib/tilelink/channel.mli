(** Barrier channels: the signal fabric tile-centric primitives compile
    to (NVSHMEM-style symmetric counters with release/acquire
    semantics). *)

type t

(** Fault-interception verdict for one notify.  [Delay d] delivers the
    signal [d] µs later (through the scheduler installed at
    {!create}); [Duplicate] delivers it twice (the intended value only
    counts it once, so duplicates inflate the counter harmlessly —
    waits are [>= threshold]). *)
type decision = Deliver | Drop | Duplicate | Delay of float

type interceptor =
  kind:string -> key:string -> rank:int -> amount:int -> decision
(** Called on every notify with the channel kind ([pc]/[peer]/[host]),
    the counter key, the signalling rank and the amount. *)

(** A wait currently blocked inside {!pc_wait}/{!peer_wait}/{!host_wait}:
    which counter, which rank is waiting, for what threshold, since
    when (simulation time). *)
type pending_wait = {
  pw_key : string;
  pw_rank : int;
  pw_threshold : int;
  pw_since : float;
}

val create :
  world_size:int ->
  channels_per_rank:int ->
  ?peer_channels:int ->
  ?telemetry:Tilelink_obs.Telemetry.t ->
  ?clock:(unit -> float) ->
  ?interceptor:interceptor ->
  ?scheduler:(float -> (unit -> unit) -> unit) ->
  unit ->
  t
(** With [telemetry], every notify/wait records a journal event
    ([clock] supplies the simulation time) and feeds per-primitive
    counters and wait-latency histograms ([wait_us.pc] / [.peer] /
    [.host]).  Without it the signal path is unchanged.

    [interceptor] sees every notify and may drop, duplicate or delay
    it; injected faults are counted under [fault.*] metrics and
    journalled as [Fault_injected].  [scheduler delay thunk] is how a
    delayed delivery is deferred (the runtime passes
    [Engine.schedule]); without one, [Delay] degrades to prompt
    delivery. *)

val world_size : t -> int
val channels_per_rank : t -> int

val pc_notify :
  ?worker:int -> t -> rank:int -> channel:int -> amount:int -> unit
(** [worker] is the span-recorder worker id of the issuing execution
    stream; when telemetry is on, the delivery span's causal
    predecessor is that worker's last span at issue time. *)

val pc_wait :
  ?waiter:int ->
  ?worker:int ->
  t ->
  rank:int ->
  channel:int ->
  threshold:int ->
  unit
(** [waiter] is the *executing* rank blocking in the wait (which for pc
    channels differs from [rank], the channel owner); it tags the parked
    process so {!cancel_rank_waits} can force-wake it if that rank
    crashes.  [worker] chains the stall span (if the wait blocks) into
    that execution stream's program order. *)

val pc_value : t -> rank:int -> channel:int -> int

val peer_notify :
  ?worker:int ->
  t ->
  src:int ->
  dst:int ->
  ?channel:int ->
  amount:int ->
  unit ->
  unit

val peer_wait :
  ?waiter:int ->
  ?worker:int ->
  t ->
  src:int ->
  dst:int ->
  ?channel:int ->
  threshold:int ->
  unit ->
  unit

val peer_value : t -> src:int -> dst:int -> ?channel:int -> unit -> int

val host_notify : ?worker:int -> t -> src:int -> dst:int -> amount:int -> unit

val host_wait :
  ?waiter:int -> ?worker:int -> t -> src:int -> dst:int -> threshold:int -> unit

val cancel_rank_waits : t -> rank:int -> int
(** Force-wake every wait whose executing rank (the [waiter] tag) is
    [rank], without delivering anything: counters keep their values and
    the resumed processes see their thresholds unsatisfied.  Returns the
    number of waits released.  This is how a crash stops a dead rank's
    workers from parking forever. *)

val register_remap : t -> key:string -> alias:string -> unit
(** Make [alias] resolve (for {!force_signal}, {!key_value},
    {!intended_value} consumers going through [key_value]) to the same
    counter as [key] — the elastic-remap hook that reroutes a dead
    rank's channel keys onto survivor-owned counters.  Raises
    [Invalid_argument] when [key] is unknown. *)

val total_notifies : t -> int

val pending_waits : t -> pending_wait list
(** Waits currently blocked, oldest first (deterministic order).
    Maintained whether or not telemetry is enabled: this is the
    waiters-for edge list watchdogs and deadlock enrichment read. *)

val key_value : t -> key:string -> int option
(** Current value of the counter named [key], if it exists. *)

val intended_value : t -> key:string -> int
(** Cumulative amount every producer *attempted* to deliver to [key],
    including notifies the interceptor dropped.  [threshold <=
    intended_value] means a lost-in-flight signal (retryable);
    [threshold > intended_value] means the producer never issued it. *)

val force_signal : t -> key:string -> target:int -> unit
(** Idempotently raise the counter named [key] to at least [target],
    waking satisfied waiters.  Bypasses the interceptor — this is the
    watchdog's recovery path.  Raises [Invalid_argument] on an unknown
    key. *)
