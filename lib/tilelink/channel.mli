(** Barrier channels: the signal fabric tile-centric primitives compile
    to (NVSHMEM-style symmetric counters with release/acquire
    semantics). *)

type t

val create :
  world_size:int ->
  channels_per_rank:int ->
  ?peer_channels:int ->
  ?telemetry:Tilelink_obs.Telemetry.t ->
  ?clock:(unit -> float) ->
  unit ->
  t
(** With [telemetry], every notify/wait records a journal event
    ([clock] supplies the simulation time) and feeds per-primitive
    counters and wait-latency histograms ([wait_us.pc] / [.peer] /
    [.host]).  Without it the signal path is unchanged. *)

val world_size : t -> int
val channels_per_rank : t -> int

val pc_notify : t -> rank:int -> channel:int -> amount:int -> unit
val pc_wait : t -> rank:int -> channel:int -> threshold:int -> unit
val pc_value : t -> rank:int -> channel:int -> int

val peer_notify :
  t -> src:int -> dst:int -> ?channel:int -> amount:int -> unit -> unit

val peer_wait :
  t -> src:int -> dst:int -> ?channel:int -> threshold:int -> unit -> unit

val peer_value : t -> src:int -> dst:int -> ?channel:int -> unit -> int

val host_notify : t -> src:int -> dst:int -> amount:int -> unit
val host_wait : t -> src:int -> dst:int -> threshold:int -> unit

val total_notifies : t -> int
