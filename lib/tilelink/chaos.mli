(** Seeded chaos: deterministic machine-level fault injection plus the
    runtime watchdog that recovers from it.

    Every fault — link degradation/outage windows, compute stragglers,
    copy-engine stalls, dropped/duplicated/delayed signals — derives
    from a single integer seed through a splitmix64-style hash, never a
    wall clock, so a seed replays the exact same faults and recovery
    actions.  The watchdog half converts overdue waits into bounded
    retries (idempotent re-issued notifies with exponential backoff), a
    graceful degradation (force-release + non-overlapped fallback for
    the affected tile range) or a structured {!Stall} diagnostic. *)

(** Splittable deterministic PRNG (splitmix64). *)
module Prng : sig
  type t

  val create : seed:int -> t
  val next : t -> int64
  val float : t -> float
  (** Uniform in [0, 1), 53-bit. *)

  val range : t -> float -> float -> float
end

val derive_seed : seed:int -> index:int -> int
(** Stable per-trial sub-seed, non-negative. *)

(** {1 Fault schedule} *)

(** Fault intensities.  Window probabilities are per rank; signal
    probabilities are per notify. *)
type spec = {
  link_degrade_prob : float;
  link_degrade_factor : float;  (** link rate multiplier in a window *)
  link_outage_prob : float;
  link_outage_factor : float;
      (** severe multiplier for outage windows — small but nonzero, so
          in-flight transfers finish within the stall budget *)
  straggler_prob : float;
  straggler_factor : float;  (** compute-duration multiplier, >= 1 *)
  copy_stall_prob : float;
  copy_stall_us : float;  (** stall charged per copy inside a window *)
  drop_prob : float;
  duplicate_prob : float;
  delay_prob : float;
  delay_us : float;  (** nominal delivery delay (jittered 0.5–1.5x) *)
  reissue_drop_prob : float;
      (** probability a watchdog re-issue is itself lost *)
  crash_prob : float;
      (** per-rank probability of a crash fault; 0 (the default)
          consumes no RNG, keeping pre-crash schedules byte-identical *)
  crash_transient_prob : float;
      (** given a crash, probability it is transient (rank restarts) *)
  node_crash_prob : float;
      (** per-island probability the whole island dies at one instant;
          drawn from dedicated per-island sub-streams (topology runs
          only), so flat schedules replay byte-identically *)
  nic_outage_prob : float;
      (** per-island probability of a severe NIC rate window *)
  nic_outage_factor : float;
  island_degrade_prob : float;
      (** per-island probability of a correlated compute degrade across
          every rank of the island *)
  island_degrade_factor : float;  (** duration multiplier, >= 1 *)
  partition_prob : float;
      (** per-island probability of a NIC partition window: the island
          is cut off from the bridged fabric for the window *)
}

val default_spec : spec

val correlated_faults : spec -> spec
(** Enable moderate correlated fault domains (NIC outages, island-wide
    compute degrades) for topology chaos runs; node crashes stay
    opt-in via [crash_ranks] or explicit probabilities. *)

val no_machine_faults : spec -> spec
(** Zero out the machine-level windows/stragglers, keeping signal
    faults — for tests that must not perturb timing. *)

val signal_faults_only : drop_prob:float -> spec
(** Only dropped notifies at the given rate; reliable re-issue. *)

(** A rank-crash fault: the rank dies at [cr_at]; [cr_until = Some t]
    makes it transient (reachable again at [t], lost work still needs
    replay). *)
type crash = { cr_at : float; cr_until : float option }

(** A fault window: [w_factor] applies while [w_from <= now < w_until]. *)
type window = { w_from : float; w_until : float; w_factor : float }

type schedule

val plan :
  ?spec:spec ->
  ?horizon_us:float ->
  ?crash_ranks:int ->
  ?layout:Tilelink_machine.Topology.layout ->
  seed:int ->
  world_size:int ->
  unit ->
  schedule
(** Draw the full fault schedule for one run.  [horizon_us] bounds the
    fault windows (default 2000).  [crash_ranks] (default 0) forces
    that many deterministic, seed-chosen permanent crashes mid-horizon
    on top of any probabilistic crash draws; it may equal [world_size]
    (no survivors) — triaging that is the runtime's job.  [layout]
    enables correlated fault domains (per-island sub-streams: node
    crashes, NIC outages/partitions, island degrades) and makes the
    forced crashes island-correlated: victims fill whole islands, every
    rank of an island dying at the same instant. *)

val partitioned : schedule -> node:int -> now:float -> bool
(** Whether [node]'s NIC sits inside a planned partition window at
    [now]. *)

val with_nic_partitions : schedule -> (int * window) list -> schedule
(** Replace the planned NIC partition windows with explicit
    (node, window) pairs — for tests that must pin exact cuts. *)

val schedule_layout : schedule -> Tilelink_machine.Topology.layout option
(** The layout the schedule was drawn against, if any. *)

val crashes : schedule -> (int * crash) list
(** Planned crash faults ordered by crash instant (then rank). *)

val with_crashes : schedule -> (int * crash) list -> schedule
(** Replace the schedule's planned crash faults with an explicit
    (rank, crash) list — for tests and reproductions that must pin
    exact crash instants (e.g. a second crash landing mid-replay of
    the first), which the seeded draws cannot. *)

val injected : schedule -> (string * string) list
(** Injection log, oldest first: (fault kind, subject) where subject is
    a ["rank<i>"] for machine faults or the signal key for channel
    faults.  Channel entries appear as the run executes. *)

val interceptor : schedule -> Channel.interceptor
(** Per-notify fault decisions, hashed from (seed, key, occurrence). *)

val reissue_ok : schedule -> bool
(** Seeded coin for one watchdog re-issue attempt; advances the
    schedule's re-issue counter. *)

val disturbance : schedule -> Tilelink_machine.Cluster.disturbance
val apply_to_cluster : schedule -> Tilelink_machine.Cluster.t -> unit

(** {1 Watchdog} *)

(** What to do once retries are exhausted (or disabled): [Fail_stop]
    raises {!Stall}; [Degrade] force-releases the wait and records the
    key so the harness can charge the non-overlapped fallback for the
    affected tile range.  [Failover] additionally arms the runtime's
    crash-recovery coordinator (elastic remap + replay); for exhausted
    signal-fault retries it behaves like [Degrade]. *)
type policy = Fail_stop | Degrade | Failover

type watchdog = {
  poll_interval_us : float;
  wait_timeout_us : float;
      (** age at which a sent-but-lost signal is suspected *)
  stall_timeout_us : float;
      (** age at which a never-sent signal is declared structural;
          keep well above worst-case straggler slack *)
  max_retries : int;
  backoff_base_us : float;  (** backoff = base * 2^attempt *)
  retry : bool;
  policy : policy;
}

val default_watchdog : watchdog

(** A structured stall diagnostic: which signal, who produces it
    (rank + channel/tile coordinate), who is blocked on it, counter
    value vs intended value, and the full waiters-for edge list. *)
type stall = {
  stall_key : string;
  stall_kind : string;  (** "pc" | "peer" | "host" | "unknown" *)
  stall_owner : int;  (** rank producing the missing signal *)
  stall_channel : int option;  (** channel / tile coordinate *)
  stall_rank : int;  (** waiting rank *)
  stall_threshold : int;
  stall_value : int;
  stall_intended : int;
  stall_since : float;
  stall_at : float;
  stall_waiters : (string * int * int) list;
      (** every blocked wait as (key, rank, threshold) *)
}

exception Stall of stall

val parse_key : string -> string * int * int option
(** Decompose a counter key into (kind, producing rank, channel);
    [("unknown", -1, None)] if it matches no known shape. *)

val stall_to_string : stall -> string

(** Mutable record of what the watchdog (and, for the failover fields,
    the runtime's crash-recovery coordinator) did during one run. *)
type recovery = {
  mutable retries : int;
  mutable recovered : (string * float) list;
      (** (key, recovery latency µs), in detection order *)
  mutable degraded : string list;  (** force-released keys, in order *)
  mutable stalls : stall list;
  mutable failed_over : (int * float) list;
      (** (crashed rank, detect->resume latency µs), in crash order *)
  mutable remapped_tiles : int;  (** unfinished tiles rerouted to survivors *)
  mutable replayed_tiles : int;  (** tasks actually re-executed *)
  mutable total_tiles : int;  (** ledger size: all tracked tasks *)
  mutable cross_island_replays : int;
      (** replays placed on a survivor outside the crashed rank's
          NVLink island (0 on flat topologies) *)
}

val fresh_recovery : unit -> recovery

(** Everything {!Runtime.run} needs to run under chaos: an optional
    fault schedule, an optional watchdog, and the recovery record the
    watchdog fills in. *)
type control = {
  c_schedule : schedule option;
  c_watchdog : watchdog option;
  c_recovery : recovery;
}

val control : ?schedule:schedule -> ?watchdog:watchdog -> unit -> control

val watchdog_body :
  ?hooks:(unit -> unit) ->
  ?quiesce:(unit -> bool) ->
  engine:Tilelink_sim.Engine.t ->
  channels:Channel.t ->
  telemetry:Tilelink_obs.Telemetry.t option ->
  control:control ->
  wd:watchdog ->
  unit ->
  unit
(** The watchdog process body; spawned by the runtime after the role
    processes.  Polls every [poll_interval_us] while other processes
    are live; raises {!Stall} under [Fail_stop].  [hooks] (the
    runtime's crash-failover coordinator) runs at the top of every
    tick, before the live-process check and before overdue-wait
    processing — a crash that drains every worker must still be
    recovered, and remap must precede any retry force-signals.
    [quiesce] (also the coordinator's) defers *structural* stall triage
    while it returns [true]: during failover replay a never-sent signal
    is usually one the replay is about to produce, so only recoverable
    (sent-then-lost) waits are retried until recovery settles. *)
