(** Program interpreter on a simulated cluster: timing always, real
    tensor data optionally. *)

type result = {
  makespan : float;  (** µs from run start to completion *)
  channels : Channel.t;
  memory : Memory.t;
  notifies : int;
}

(** A flag combination that is wrong by construction, independent of
    the program's content: which backend refused, which feature, why,
    and what to use instead.  Today the only producer is
    [~backend:(`Parallel _)] combined with [~chaos] — fault schedules
    and the watchdog live on the simulated clock, which the real
    domain-per-rank backend does not run. *)
type unsupported = {
  u_backend : string;  (** backend that refused, e.g. ["parallel"] *)
  u_feature : string;  (** the unsupported feature, e.g. ["chaos"] *)
  u_reason : string;  (** why the combination cannot work *)
  u_hint : string;  (** what to do instead *)
}

exception Unsupported of unsupported

val unsupported_to_string : unsupported -> string
(** One-line human rendering; also installed as an exception printer. *)

val run :
  ?telemetry:Tilelink_obs.Telemetry.t ->
  ?data:bool -> ?memory:Memory.t -> ?chaos:Chaos.control ->
  ?analyze:bool ->
  ?rebuild:(unit -> Program.t) ->
  ?backend:[ `Sequential | `Parallel of int ] ->
  Tilelink_machine.Cluster.t -> Program.t -> result
(** Execute the program to completion.

    With [~backend:(`Parallel n)] (default [`Sequential]), the program
    is not simulated at all: it runs for real on a persistent team of
    [n] OCaml 5 domains ({!Parallel.run}), with tile channels lowered
    to atomic monotonic counters (notify = fetch-and-add, release;
    wait = spin-then-park, acquire) and data actions executed
    concurrently on the domains.  The static analyzer pre-flights
    every program admitted to the parallel path (regardless of
    [analyze]) — that gate makes the backend deadlock-free, and the
    protocol's happens-before edges make the resulting tensors
    bit-identical to the sequential interpreter's.  In the result,
    [makespan] is wall-clock µs, [channels] mirrors the final counter
    values, and [notifies] counts real atomic signals.  Chaos controls
    are rejected with a structured {!Unsupported} (fault schedules
    live on the simulated clock).

    With [~analyze:true] (default
    false), the static protocol analyzer pre-flights the program and a
    would-be runtime deadlock raises {!Analyzer.Protocol_violation} —
    with key/rank/channel diagnostics — before the simulation starts.
    With [~data:true], [Copy] and
    [Compute] instructions also mutate [memory] (defaults to a fresh
    empty memory).  With [~telemetry], the run records per-primitive
    wait-latency histograms, tile/copy counters, journal events for
    every signal and remote tile movement, engine-level gauges
    (events executed, blocked time), and per-rank lane-utilization
    gauges; disabled or absent telemetry adds no events.

    With [~chaos], the control's schedule is installed as a channel
    interceptor plus cluster disturbance, and its watchdog runs as an
    extra sim process: overdue waits are retried / degraded per its
    policy, and hangs surface as {!Chaos.Stall} instead of
    [Engine.Deadlock], with actions recorded in
    [chaos.Chaos.c_recovery].

    When the chaos schedule plans rank crashes, the runtime keeps a
    tile-completion ledger (one entry per task, producers checkpoint
    issued notifies) and kills the scheduled ranks mid-run: their
    parked waits are force-released, their workers drain, and
    transfers touching the dead shard fail fast.  Under the
    {!Chaos.Failover} policy a recovery coordinator hooked into the
    watchdog validates the remapped protocol
    ({!Fault.remap_program} + {!Analyzer.check_exn}), aliases the
    rerouted channel keys, marks the shard recovered, and replays only
    the ledger's lost tiles round-robin over the survivors — recorded
    as [failed_over] / [remapped_tiles] / [replayed_tiles] in the
    recovery.  A crash with no survivors raises a structured
    {!Chaos.Stall} naming the unrecoverable channel, never a hang.
    [rebuild] supplies a fresh build of the program for replay — pass
    it whenever task closures hold accumulator state (flash-attention
    online softmax) that a partial first execution already advanced.

    Raises on invalid programs; a schedule with missing signals and no
    watchdog raises {!Tilelink_sim.Engine.Deadlock} whose message now
    includes the pending-waiter set and the last journal events
    (recorded in the journal first when telemetry is on). *)
