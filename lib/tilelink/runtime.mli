(** Program interpreter on a simulated cluster: timing always, real
    tensor data optionally. *)

type result = {
  makespan : float;  (** µs from run start to completion *)
  channels : Channel.t;
  memory : Memory.t;
  notifies : int;
}

val run :
  ?telemetry:Tilelink_obs.Telemetry.t ->
  ?data:bool -> ?memory:Memory.t -> Tilelink_machine.Cluster.t ->
  Program.t -> result
(** Execute the program to completion.  With [~data:true], [Copy] and
    [Compute] instructions also mutate [memory] (defaults to a fresh
    empty memory).  With [~telemetry], the run records per-primitive
    wait-latency histograms, tile/copy counters, journal events for
    every signal and remote tile movement, engine-level gauges
    (events executed, blocked time), and per-rank lane-utilization
    gauges; disabled or absent telemetry adds no events.  Raises on
    invalid programs; a schedule with missing signals raises
    {!Tilelink_sim.Engine.Deadlock} (recorded in the journal first
    when telemetry is on). *)
