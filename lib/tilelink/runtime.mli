(** Program interpreter on a simulated cluster: timing always, real
    tensor data optionally. *)

type result = {
  makespan : float;  (** µs from run start to completion *)
  channels : Channel.t;
  memory : Memory.t;
  notifies : int;
}

val run :
  ?telemetry:Tilelink_obs.Telemetry.t ->
  ?data:bool -> ?memory:Memory.t -> ?chaos:Chaos.control ->
  ?analyze:bool ->
  Tilelink_machine.Cluster.t -> Program.t -> result
(** Execute the program to completion.  With [~analyze:true] (default
    false), the static protocol analyzer pre-flights the program and a
    would-be runtime deadlock raises {!Analyzer.Protocol_violation} —
    with key/rank/channel diagnostics — before the simulation starts.
    With [~data:true], [Copy] and
    [Compute] instructions also mutate [memory] (defaults to a fresh
    empty memory).  With [~telemetry], the run records per-primitive
    wait-latency histograms, tile/copy counters, journal events for
    every signal and remote tile movement, engine-level gauges
    (events executed, blocked time), and per-rank lane-utilization
    gauges; disabled or absent telemetry adds no events.

    With [~chaos], the control's schedule is installed as a channel
    interceptor plus cluster disturbance, and its watchdog runs as an
    extra sim process: overdue waits are retried / degraded per its
    policy, and hangs surface as {!Chaos.Stall} instead of
    [Engine.Deadlock], with actions recorded in
    [chaos.Chaos.c_recovery].

    Raises on invalid programs; a schedule with missing signals and no
    watchdog raises {!Tilelink_sim.Engine.Deadlock} whose message now
    includes the pending-waiter set and the last journal events
    (recorded in the journal first when telemetry is on). *)
