(** Software pipelining: hoist loads for multi-stage execution without
    crossing acquire fences or true dependencies. *)

val hoist_loads : stages:int -> Instr.t list -> Instr.t list
(** Move each load up by at most [stages - 1] eligible slots,
    respecting acquire fences and write conflicts. *)

val hoist_loads_unsafe : stages:int -> Instr.t list -> Instr.t list
(** Broken variant that ignores acquire fences — exists so tests can
    demonstrate the consistency verifier catching it. *)

val pipeline_task : stages:int -> Program.task -> Program.task
val pipeline_role : stages:int -> Program.role -> Program.role
val pipeline_program : stages:int -> Program.t -> Program.t

val pipeline_program_unsafe : stages:int -> Program.t -> Program.t
(** [pipeline_program] with the fence-ignoring hoist: the
    deliberately-broken whole-program miscompile used to exercise the
    protocol analyzer's happens-before check. *)
