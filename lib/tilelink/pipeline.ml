(* Software pipelining (paper §4.2).

   Multi-stage pipelines hoist [Load] instructions earlier in a task's
   instruction stream so data for iteration k+1 is in flight while
   iteration k computes.  A hoisted load must never cross:

   - a [Wait] whose guards overlap the load's access (the acquire fence
     that makes the data valid), nor
   - any instruction that *writes* an overlapping access (true
     dependency), nor
   - a [Copy] whose destination overlaps (same reason).

   [hoist_loads ~stages] moves each load up by at most [stages - 1]
   eligible slots.  [hoist_loads_unsafe] ignores acquire fences — the
   deliberately broken pipeliner the consistency verifier must catch
   (see test_consistency.ml). *)

let blocks_load ~respect_fences load_access instr =
  let writes = Instr.writes_of instr in
  let write_conflict =
    List.exists (fun w -> Instr.accesses_overlap w load_access) writes
  in
  let fence_conflict =
    respect_fences
    &&
    match instr with
    | Instr.Wait { guards; _ } ->
      List.exists (fun g -> Instr.accesses_overlap g load_access) guards
    | _ -> false
  in
  write_conflict || fence_conflict

(* Move one instruction at index [i] up by at most [budget] positions,
   stopping at the first blocking instruction. *)
let hoist_one ~respect_fences arr i budget =
  let access =
    match arr.(i) with
    | Instr.Load { access } -> Some access
    | _ -> None
  in
  match access with
  | None -> ()
  | Some access ->
    let j = ref i in
    let moved = ref 0 in
    while
      !j > 0 && !moved < budget
      && not (blocks_load ~respect_fences access arr.(!j - 1))
    do
      let tmp = arr.(!j - 1) in
      arr.(!j - 1) <- arr.(!j);
      arr.(!j) <- tmp;
      decr j;
      incr moved
    done

let hoist ~respect_fences ~stages instrs =
  if stages < 1 then invalid_arg "Pipeline: stages must be >= 1";
  let budget = stages - 1 in
  if budget = 0 then instrs
  else begin
    let arr = Array.of_list instrs in
    for i = 0 to Array.length arr - 1 do
      hoist_one ~respect_fences arr i budget
    done;
    Array.to_list arr
  end

let hoist_loads ~stages instrs = hoist ~respect_fences:true ~stages instrs

let hoist_loads_unsafe ~stages instrs =
  hoist ~respect_fences:false ~stages instrs

let pipeline_task ~stages (task : Program.task) =
  { task with Program.instrs = hoist_loads ~stages task.Program.instrs }

let pipeline_role ~stages (role : Program.role) =
  { role with Program.tasks = List.map (pipeline_task ~stages) role.Program.tasks }

let pipeline_program ~stages (p : Program.t) =
  Program.create ~name:(Program.name p) ~world_size:(Program.world_size p)
    ~pc_channels:p.Program.pc_channels ~peer_channels:p.Program.peer_channels
    (Array.map (List.map (pipeline_role ~stages)) (Program.plans p))

(* The fence-ignoring pipeliner applied program-wide: the miscompile the
   protocol analyzer's happens-before check must flag.  Kept next to
   [pipeline_program] so the two stay structurally identical — only the
   per-task hoist differs. *)
let pipeline_program_unsafe ~stages (p : Program.t) =
  let unsafe_task (task : Program.task) =
    { task with Program.instrs = hoist_loads_unsafe ~stages task.Program.instrs }
  in
  let unsafe_role (role : Program.role) =
    { role with Program.tasks = List.map unsafe_task role.Program.tasks }
  in
  Program.create ~name:(Program.name p ^ "+unsafe_hoist")
    ~world_size:(Program.world_size p) ~pc_channels:p.Program.pc_channels
    ~peer_channels:p.Program.peer_channels
    (Array.map (List.map unsafe_role) (Program.plans p))
