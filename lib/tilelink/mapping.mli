(** Tile-centric mapping (f_S, f_R, f_C): static affine or dynamic
    lookup-table mappings from tile ids to shape ranges, ranks and
    barrier channels. *)

type t

val static :
  ?multiplicity:int ->
  extent:int ->
  ranks:int ->
  channels_per_rank:int ->
  tile:int ->
  unit ->
  t
(** Affine mapping for an [extent]-row tensor sharded evenly over
    [ranks], with producer tiles of [tile] rows.  Requires the shard to
    divide across channels and the tile to fit inside one channel
    segment.  [multiplicity] (default 1) scales the per-channel
    completion threshold — use it when a 2-D producer grid notifies its
    row channel once per column tile. *)

val dynamic :
  ?f_src_low:int array ->
  ranks:int ->
  channels_per_rank:int ->
  f_s_low:int array ->
  f_s_high:int array ->
  f_r:int array ->
  f_c:int array ->
  unit ->
  t
(** Lookup-table mapping (values filled at runtime by e.g. MoE
    routing); [f_c] holds global channel ids. *)

val is_dynamic : t -> bool
val num_tiles : t -> int
val num_channels : t -> int
val ranks : t -> int
val channels_per_rank : t -> int

val shape_range : t -> tid:int -> int * int
val rank_of : t -> tid:int -> int
val channel_of : t -> tid:int -> int
val split_channel : t -> int -> int * int

val global_channel : t -> rank:int -> local:int -> int
(** Inverse of [split_channel]: the global channel id of a rank-local
    [Pc] signal target under this mapping. *)

val expected : t -> channel:int -> int

val src_shard_range : t -> tid:int -> int * int
(** Shard-local rows of a producer tile on its owning rank. *)

val channels_for_range : t -> lo:int -> hi:int -> (int * int) list
(** Channels (with completion thresholds) a consumer of global rows
    [lo, hi) must wait on. *)

val ranks_for_range : t -> lo:int -> hi:int -> int list
(** Ranks owning any row of [lo, hi). *)

val remap_rank : t -> dead:int -> survivors:int list -> t
(** Elastic remap after [dead] crashes: reroute every channel [dead]
    owned round-robin over [survivors] (dead local channel [c] moves to
    survivor [survivors.(c mod n)] at fresh local slot
    [cpr + c / n]); live ranks keep their local indices under the grown
    stride [cpr + ceil(cpr / n)].  The survivor list's order is
    preserved (intra-island-first callers rely on it); per-channel
    completion thresholds (multiplicity included) transfer unchanged.
    The result is always dynamic and keeps the original rank count —
    the dead rank simply owns no tiles.  Raises [Invalid_argument] on
    an empty, duplicated or invalid survivor list. *)

val remap_channels_per_rank : channels_per_rank:int -> survivors:int -> int
(** The channels-per-rank stride of a remapped protocol — what
    {!remap_rank} produces, exposed so program rewriters agree without
    building a mapping. *)

val pp : Format.formatter -> t -> unit
