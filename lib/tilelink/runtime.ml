(* Program interpreter: executes a lowered program on a simulated
   cluster.

   One interpreter serves both backends of the reproduction:
   - timing: every instruction charges its cost model duration, SM and
     DMA workers contend for their pools, copies queue on links — the
     makespan is the kernel time reported in benchmarks;
   - data (optional): [Copy] and [Compute] instructions additionally
     mutate the per-rank tensor memories, so the same schedule is
     checked for numerical correctness against references.

   Crash-fault tolerance rides on three mechanisms layered over the
   plain interpreter:
   - a tile-completion *ledger*: one entry per task, marked done on
     completion and checkpointing how many of its notifies were issued,
     so after a crash the recovery coordinator knows exactly which
     tiles are lost versus already delivered;
   - liveness-aware execution: every instruction boundary (and every
     return from a blocking operation) re-checks that the executing
     rank is still alive and abandons the task otherwise — paired with
     {!Channel.cancel_rank_waits} this guarantees a dead rank's workers
     drain instead of parking forever;
   - a failover coordinator hooked into the watchdog tick: on a crash
     it validates the remapped protocol, re-registers rerouted channel
     keys, marks the dead shard recovered, and replays only the lost
     tiles round-robin on the survivors. *)

open Tilelink_sim
open Tilelink_machine

type result = {
  makespan : float;
  channels : Channel.t;
  memory : Memory.t;
  notifies : int;
}

let resolve_rank = Dataop.resolve_rank

let cost_duration (spec : Spec.t) ~sms = function
  | Instr.Gemm_tile { tm; tn; k } -> Cost.gemm_tile_time spec ~tm ~tn ~k
  | Instr.Attention_tile { tq; tkv; d } ->
    Cost.attention_tile_time spec ~tq ~tkv ~d
  | Instr.Memory_tile { rows; cols; passes } ->
    Cost.memory_tile_time spec ~sms ~rows ~cols ~passes
  | Instr.Fixed_cost d -> d
  | Instr.Free -> 0.0

let exec_wait channels ~waiter ~worker (target : Instr.signal_target)
    ~threshold =
  match target with
  | Instr.Pc { rank; channel } ->
    Channel.pc_wait ~waiter ~worker channels ~rank ~channel ~threshold
  | Instr.Peer { src; dst; channel } ->
    Channel.peer_wait ~waiter ~worker channels ~src ~dst ~channel ~threshold ()
  | Instr.Host { src; dst } ->
    Channel.host_wait ~waiter ~worker channels ~src ~dst ~threshold

let exec_notify channels ~rank:_ ~worker (target : Instr.signal_target)
    ~amount =
  match target with
  | Instr.Pc { rank; channel } ->
    Channel.pc_notify ~worker channels ~rank ~channel ~amount
  | Instr.Peer { src; dst; channel } ->
    Channel.peer_notify ~worker channels ~src ~dst ~channel ~amount ()
  | Instr.Host { src; dst } ->
    Channel.host_notify ~worker channels ~src ~dst ~amount

module Obs = Tilelink_obs

(* Replayed tasks run under "<label>+replay"; their spans are recorded
   as [Replay] so attribution charges them to recovery, not compute.
   A replay executed on a survivor *outside* the dead rank's NVLink
   island runs under "<label>+replay@x" — same Replay kind, but the
   "@x" marker flows into the span labels so the causal profiler can
   surface cross-island replay as its own recovery sub-bucket. *)
let has_suffix label suf =
  let n = String.length label and m = String.length suf in
  n >= m && String.sub label (n - m) m = suf

let is_replay_label label =
  has_suffix label "+replay" || has_suffix label "+replay@x"

let is_cross_replay_label label = has_suffix label "+replay@x"

(* ------------------------------------------------------------------ *)
(* Tile-completion ledger                                              *)
(* ------------------------------------------------------------------ *)

(* One entry per task.  [le_notified] is the producer-side checkpoint:
   how many of the task's Notify instructions were actually issued —
   on replay those epochs are skipped so counters never overshoot.
   [le_poisoned] marks a task whose execution was cut short (its rank
   died mid-task, or one of its copies touched a dead shard). *)
type ledger_entry = {
  le_rank : int;
  le_role : string;
  le_label : string;
  mutable le_notified : int;
  mutable le_done : bool;
  mutable le_poisoned : bool;
  mutable le_replaying : bool;
      (* claimed by an in-flight replay process: the coordinator's sweep
         must not spawn a second replay of the same tile *)
}

(* Raised inside instruction execution when the executing rank is found
   dead (or a copy endpoint is unreachable); caught by the worker loop,
   which poisons the ledger entry and either moves on (survivor rank,
   one lost copy) or drains (the worker's own rank crashed). *)
exception Abandoned

(* Per-execution context threaded through the interpreter.  The
   executing rank [ec_exec_rank] differs from the task's owning rank on
   the replay path (a survivor executes the dead rank's task: data
   semantics keep the owner, timing and trace attribution follow the
   executor). *)
type exec_ctx = {
  ec_exec_rank : int;
  ec_live : unit -> bool;
  ec_force_copy : bool;  (* replay: transfers against recovered memory *)
  ec_on_notify : unit -> unit;  (* ledger checkpoint hook *)
}

let check_live ctx = if not (ctx.ec_live ()) then raise Abandoned

(* Execute one instruction on behalf of [rank], on a worker of a role
   bound to [lane].  [worker_sms] is how many SMs this worker stands
   for (1 for an SM worker, irrelevant for DMA/host).  [interference]
   multiplies compute durations when a fused kernel also runs
   communication on the same chip. *)
let exec_instr cluster channels memory ~telemetry ~data ~rank ~ctx ~lane
    ~worker_sms ~comm_active ~pending_loads ~worker ~label instr =
  let spec = Cluster.spec cluster in
  let trace = Cluster.trace cluster in
  let now () = Cluster.now cluster in
  check_live ctx;
  match instr with
  | Instr.Load { access } ->
    (* Loads issue asynchronously (cp.async / TMA): they complete
       [load_latency] after issue.  A consumer stalls only if it reads
       the data before then — which multi-stage pipelining avoids by
       hoisting the load ahead of the previous tile's compute. *)
    if spec.Spec.gpu.load_latency > 0.0 then begin
      let t = now () in
      pending_loads :=
        (access, t +. spec.Spec.gpu.load_latency)
        :: List.filter (fun (_, ready) -> ready > t) !pending_loads
    end
  | Instr.Store _ -> ()
  | Instr.Sleep d ->
    Process.wait d;
    check_live ctx
  | Instr.Compute { label = clabel; cost; reads; action; _ } ->
    let ready =
      List.fold_left
        (fun acc (access, ready) ->
          if List.exists (Instr.accesses_overlap access) reads then
            Float.max acc ready
          else acc)
        (now ()) !pending_loads
    in
    let issue = now () in
    if ready > issue then Process.wait (ready -. issue);
    (* Fusion interference applies only while a communication role is
       actually running on this rank: L2 pollution, scheduler and HBM
       contention vanish once the comm side drains. *)
    let interference =
      if !comm_active > 0 then spec.Spec.overheads.fusion_interference
      else 1.0
    in
    (* Straggler multiplier sampled at issue: a chaos disturbance can
       slow this rank's kernels; 1.0 when none is installed. *)
    let duration =
      cost_duration spec ~sms:worker_sms cost
      *. interference
      *. Cluster.compute_scale cluster ~rank_id:ctx.ec_exec_rank
    in
    let t0 = now () in
    if duration > 0.0 then Process.wait duration;
    (* A kernel that was mid-tile when its rank died produced nothing:
       no trace span, no data mutation — the ledger marks the tile
       lost and the coordinator replays it. *)
    check_live ctx;
    Trace.add trace ~rank:ctx.ec_exec_rank ~lane ~label:clabel ~t0
      ~t1:(now ());
    if Obs.Telemetry.active telemetry then begin
      let tele = Option.get telemetry in
      let m = Obs.Telemetry.metrics tele in
      Obs.Metrics.inc m "tiles.compute";
      Obs.Metrics.observe m "compute_us" (now () -. t0);
      if ready > issue then
        Obs.Metrics.observe m "load_stall_us" (ready -. issue);
      Obs.Span.record_task
        (Obs.Telemetry.spans tele)
        ~kind:(if is_replay_label label then Obs.Span.Replay else Obs.Span.Compute)
        ~label:(if is_cross_replay_label label then clabel ^ "@x" else clabel)
        ~rank:ctx.ec_exec_rank ~worker ~t0 ~t1:(now ())
    end;
    if data then Option.iter (fun act -> act memory ~rank) action
  | Instr.Copy { label = clabel; src; dst; bytes; action } ->
    let src_rank = resolve_rank ~self:rank src.Instr.mem_rank in
    let dst_rank = resolve_rank ~self:rank dst.Instr.mem_rank in
    (* Fail fast on a dead endpoint: the copy moves nothing, charges
       nothing, and poisons the task so the coordinator replays it
       against recovered memory.  The replay path forces transfers. *)
    if
      (not ctx.ec_force_copy)
      && src_rank <> dst_rank
      && not (Cluster.transfer_ok cluster ~src:src_rank ~dst:dst_rank)
    then raise Abandoned;
    let t0 = now () in
    (* Copy-engine stall injection: charged before the copy admits, so
       it shows up inside the traced copy span. *)
    let stall = Cluster.copy_stall_us cluster ~rank_id:ctx.ec_exec_rank in
    if stall > 0.0 then Process.wait stall;
    check_live ctx;
    if src_rank = dst_rank then begin
      (* Local move: a round trip through HBM at full bandwidth share —
         bulk copies saturate HBM regardless of the issuing unit. *)
      let duration =
        Cost.memory_pass_time spec ~sms:spec.Spec.gpu.num_sms
          ~bytes:(2.0 *. bytes)
      in
      if duration > 0.0 then Process.wait duration
    end
    else
      Cluster.transfer ~force:ctx.ec_force_copy cluster ~src:src_rank
        ~dst:dst_rank ~bytes;
    check_live ctx;
    Trace.add trace ~rank:ctx.ec_exec_rank ~lane ~label:clabel ~t0
      ~t1:(now ());
    if Obs.Telemetry.active telemetry then begin
      let tele = Option.get telemetry in
      let m = Obs.Telemetry.metrics tele in
      Obs.Metrics.inc m "tiles.copy";
      Obs.Metrics.add_gauge m "bytes.copied" bytes;
      Obs.Metrics.observe m "copy_us" (now () -. t0);
      if src_rank <> dst_rank then
        (* A copy whose destination is the executing rank fetched a
           remote tile (pull); one that lands remotely pushed ours. *)
        Obs.Journal.record
          (Obs.Telemetry.journal tele)
          ~t:(now ())
          (if dst_rank = rank then
             Obs.Journal.Tile_pull
               { label = clabel; src = src_rank; dst = dst_rank; bytes }
           else
             Obs.Journal.Tile_push
               { label = clabel; src = src_rank; dst = dst_rank; bytes });
      Obs.Span.record_task
        (Obs.Telemetry.spans tele)
        ~kind:(if is_replay_label label then Obs.Span.Replay else Obs.Span.Copy)
        ~label:(if is_cross_replay_label label then clabel ^ "@x" else clabel)
        ~rank:ctx.ec_exec_rank ~worker ~t0 ~t1:(now ())
    end;
    if data then begin
      match action with
      | Some act -> act memory ~rank
      | None -> Dataop.copy_action src dst memory ~rank
    end
  | Instr.Wait { target; threshold; _ } ->
    let t0 = now () in
    if spec.Spec.overheads.signal_wait > 0.0 then
      Process.wait spec.Spec.overheads.signal_wait;
    exec_wait channels ~waiter:ctx.ec_exec_rank ~worker target ~threshold;
    (* A force-woken wait (the rank died while parked) returns with its
       threshold unsatisfied — abandon before touching anything. *)
    check_live ctx;
    let t1 = now () in
    if t1 > t0 then
      Trace.add trace ~rank:ctx.ec_exec_rank ~lane:Trace.Wait ~label ~t0 ~t1
  | Instr.Notify { target; amount; _ } ->
    (* Release atomic + memory fence before the signal is visible. *)
    if spec.Spec.overheads.signal_notify > 0.0 then
      Process.wait spec.Spec.overheads.signal_notify;
    (* Dying inside the fence means the signal never became visible. *)
    check_live ctx;
    exec_notify channels ~rank ~worker target ~amount;
    (* Producer-side checkpoint: this epoch is now delivered (or at
       least issued); replay will skip it. *)
    ctx.ec_on_notify ()

(* A task's leading waits/loads execute before the worker occupies an
   execution unit: a CTA is only scheduled once its dependencies are
   satisfied (stream-ordered concurrent kernels), so a blocked consumer
   does not hold an SM hostage while its producer needs one. *)
let split_leading_waits instrs =
  let rec go prefix = function
    | (Instr.Wait _ | Instr.Sleep _ | Instr.Load _) as instr :: rest ->
      go (instr :: prefix) rest
    | rest -> (List.rev prefix, rest)
  in
  go [] instrs

(* A worker repeatedly takes the next task from the role's shared
   queue, acquiring one unit of [unit_pool] per task; wave scheduling
   (ceil(tiles / workers) waves) and dynamic sharing of idle units
   across roles both emerge.  Each queue item carries its optional
   ledger entry; a task abandoned mid-flight poisons its entry, and the
   worker drains if its own rank is the casualty. *)
let worker_body cluster channels memory ~telemetry ~data ~rank ~live ~lane
    ~worker_sms ~comm_active ~unit_pool queue () =
  let pending_loads = ref [] in
  let current : ledger_entry option ref = ref None in
  (* One causal worker id per sequential execution stream: spans it
     records chain in program order, and its notifies carry its cursor
     as the delivery's predecessor.  -1 (telemetry off) skips chaining. *)
  let worker =
    if Obs.Telemetry.active telemetry then
      Obs.Span.fresh_worker (Obs.Telemetry.spans (Option.get telemetry))
    else -1
  in
  let ctx =
    {
      ec_exec_rank = rank;
      ec_live = live;
      ec_force_copy = false;
      ec_on_notify =
        (fun () ->
          match !current with
          | Some e -> e.le_notified <- e.le_notified + 1
          | None -> ());
    }
  in
  let exec =
    exec_instr cluster channels memory ~telemetry ~data ~rank ~ctx ~lane
      ~worker_sms ~comm_active ~pending_loads ~worker
  in
  let rec loop () =
    match
      match !queue with
      | [] -> None
      | task :: rest ->
        queue := rest;
        Some task
    with
    | None -> ()
    | Some ((task : Program.task), entry) -> (
      current := entry;
      let label = task.Program.label in
      let leading, body = split_leading_waits task.Program.instrs in
      match
        List.iter (exec ~label) leading;
        (match unit_pool with
        | None -> List.iter (exec ~label) body
        | Some pool ->
          Resource.use pool 1 (fun () -> List.iter (exec ~label) body))
      with
      | () ->
        Option.iter (fun e -> e.le_done <- true) entry;
        current := None;
        loop ()
      | exception Abandoned ->
        Option.iter (fun e -> e.le_poisoned <- true) entry;
        current := None;
        (* A survivor that lost one copy to a dead shard keeps going —
           only its own rank dying drains the worker. *)
        if live () then loop ())
  in
  loop ()

let is_comm_lane = function
  | Trace.Comm_sm | Trace.Dma | Trace.Host | Trace.Link -> true
  | Trace.Compute_sm | Trace.Wait -> false

let run_role cluster channels memory ~telemetry ~data ~rank ~live
    ~comm_active ~tracked (role : Program.role) () =
  let spec = Cluster.spec cluster in
  let cluster_rank = Cluster.rank cluster rank in
  (* Kernel launch latency before the role's work becomes visible. *)
  Process.wait spec.overheads.kernel_launch;
  let comm_role = is_comm_lane role.Program.lane in
  if comm_role then incr comm_active;
  Fun.protect ~finally:(fun () -> if comm_role then decr comm_active)
  @@ fun () ->
  let run_workers count unit_pool =
    let queue = ref tracked in
    let join =
      Process.spawn_all (Cluster.engine cluster)
        (List.init count (fun _ ->
             worker_body cluster channels memory ~telemetry ~data ~rank ~live
               ~lane:role.Program.lane ~worker_sms:1 ~comm_active ~unit_pool
               queue))
    in
    Process.Join.wait join
  in
  match role.Program.resource with
  | Program.Sm_partition count ->
    run_workers count (Some cluster_rank.Cluster.sms)
  | Program.Dma_engines count ->
    run_workers count (Some cluster_rank.Cluster.dma)
  | Program.Host_stream ->
    let queue = ref tracked in
    worker_body cluster channels memory ~telemetry ~data ~rank ~live
      ~lane:role.Program.lane ~worker_sms:1 ~comm_active ~unit_pool:None
      queue ()

(* Append the pending-waiter edge list and the tail of the journal to a
   deadlock message, so even un-hardened callers get an actionable
   diagnostic instead of a bare process count. *)
let enrich_deadlock channels ~telemetry msg =
  let take n xs =
    let rec go n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: go (n - 1) rest
    in
    go n xs
  in
  let pending = Channel.pending_waits channels in
  let waiter_lines =
    List.map
      (fun (pw : Channel.pending_wait) ->
        Printf.sprintf "  rank %d waits %s >= %d (since t=%.1f)"
          pw.Channel.pw_rank pw.Channel.pw_key pw.Channel.pw_threshold
          pw.Channel.pw_since)
      (take 16 pending)
  in
  let journal_lines =
    if Obs.Telemetry.active telemetry then
      let entries =
        Obs.Journal.entries (Obs.Telemetry.journal (Option.get telemetry))
      in
      let tail = take 8 (List.rev entries) in
      List.rev_map (fun e -> "  " ^ Obs.Journal.entry_summary e) tail
    else []
  in
  String.concat "\n"
    ((msg
     :: Printf.sprintf "pending waiters (%d):" (List.length pending)
     :: waiter_lines)
    @
    if journal_lines = [] then []
    else "recent journal events:" :: journal_lines)

(* ------------------------------------------------------------------ *)
(* Failover coordinator                                                *)
(* ------------------------------------------------------------------ *)

(* Lost entries of a crash: the dead rank's unfinished tasks plus any
   survivor task poisoned by a copy into the dead shard.  Tasks still
   in flight on live ranks are neither — they complete normally. *)
let lost_entries ledger ~dead =
  List.filter
    (fun e ->
      (not e.le_done) && (e.le_rank = dead || e.le_poisoned))
    ledger

(* The structural no-survivor diagnostic: name the first channel whose
   producer died with undelivered epochs — the unrecoverable channel. *)
let no_survivor_stall ~dead ~lost ~t_crash ~now channels program =
  let first_notify_key =
    List.fold_left
      (fun acc (e : ledger_entry) ->
        match acc with
        | Some _ -> acc
        | None ->
          Program.fold_tasks program ~init:None
            ~f:(fun acc ~rank (role : Program.role) (task : Program.task) ->
              match acc with
              | Some _ -> acc
              | None ->
                if
                  rank = e.le_rank
                  && role.Program.role_name = e.le_role
                  && task.Program.label = e.le_label
                then
                  List.find_map
                    (function
                      | Instr.Notify { target; _ } ->
                        Some (Instr.key_of_target target)
                      | _ -> None)
                    task.Program.instrs
                else acc))
      None lost
  in
  let key =
    Option.value ~default:(Printf.sprintf "pc[%d][0]" dead) first_notify_key
  in
  let kind, owner, chan = Chaos.parse_key key in
  let value = Option.value ~default:0 (Channel.key_value channels ~key) in
  let intended = Channel.intended_value channels ~key in
  {
    Chaos.stall_key = key;
    stall_kind = kind;
    stall_owner = owner;
    stall_channel = chan;
    stall_rank = dead;
    stall_threshold = intended + 1;
    stall_value = value;
    stall_intended = intended;
    stall_since = t_crash;
    stall_at = now;
    stall_waiters =
      List.map
        (fun (pw : Channel.pending_wait) ->
          (pw.Channel.pw_key, pw.Channel.pw_rank, pw.Channel.pw_threshold))
        (Channel.pending_waits channels);
  }

(* A structured "this combination does not exist" diagnostic: which
   backend, which feature, why, and what to do instead.  Raised for
   flag combinations that are wrong by construction (not by program
   content), so callers — the CLI in particular — can render it
   without a backtrace. *)
type unsupported = {
  u_backend : string;
  u_feature : string;
  u_reason : string;
  u_hint : string;
}

exception Unsupported of unsupported

let unsupported_to_string u =
  Printf.sprintf
    "the %s backend does not support %s: %s (hint: %s)" u.u_backend
    u.u_feature u.u_reason u.u_hint

let () =
  Printexc.register_printer (function
    | Unsupported u -> Some ("Runtime.Unsupported: " ^ unsupported_to_string u)
    | _ -> None)

let run ?telemetry ?(data = false) ?memory ?chaos ?(analyze = false) ?rebuild
    ?(backend = `Sequential) cluster (program : Program.t) =
  (match Program.validate program with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Runtime.run: invalid program: " ^ msg));
  (* Optional static pre-flight: a protocol that can never complete is
     reported as a structured [Analyzer.Protocol_violation] here, with
     key/rank/channel diagnostics, instead of wedging mid-simulation as
     a generic [Engine.Deadlock].  The parallel backend always
     analyzes — that is its admission gate — so [analyze] only
     matters for the sequential interpreter. *)
  if analyze && backend = `Sequential then Analyzer.check_exn program;
  if Cluster.world_size cluster <> Program.world_size program then
    invalid_arg "Runtime.run: cluster/program world size mismatch";
  match backend with
  | `Parallel domains ->
    (* Real execution on a domain team.  Chaos fault injection is a
       simulated-clock concept (schedules, watchdog ticks, crash
       windows are all in sim time) — reject it loudly rather than
       silently ignoring the control. *)
    if chaos <> None then
      raise
        (Unsupported
           {
             u_backend = "parallel";
             u_feature = "chaos fault injection";
             u_reason =
               "fault schedules and the watchdog live on the simulated \
                clock, which the domain-per-rank backend does not run";
             u_hint =
               "use the sequential interpreter (drop ~backend / pass \
                `Sequential) for chaos runs";
           });
    ignore rebuild;
    let memory =
      match memory with
      | Some m -> m
      | None -> Memory.create ~world_size:(Program.world_size program)
    in
    let memory, p = Parallel.run ?telemetry ~data ~memory ~domains program in
    (* Mirror the final counter values into a Channel.t so result
       consumers ([pc_value], reporting) see the same interface as the
       sequential interpreter. *)
    let channels =
      Channel.create
        ~world_size:(Program.world_size program)
        ~channels_per_rank:program.Program.pc_channels
        ~peer_channels:program.Program.peer_channels ()
    in
    List.iter
      (fun (key, v) ->
        if v > 0 then Channel.force_signal channels ~key ~target:v)
      p.Parallel.p_key_values;
    {
      makespan = p.Parallel.p_wall_us;
      channels;
      memory;
      notifies = p.Parallel.p_notifies;
    }
  | `Sequential ->
  let memory =
    match memory with
    | Some m -> m
    | None -> Memory.create ~world_size:(Program.world_size program)
  in
  let interceptor =
    match chaos with
    | Some { Chaos.c_schedule = Some sched; _ } ->
      Chaos.apply_to_cluster sched cluster;
      Some (Chaos.interceptor sched)
    | _ -> None
  in
  let channels =
    Channel.create
      ~world_size:(Program.world_size program)
      ~channels_per_rank:program.Program.pc_channels
      ~peer_channels:program.Program.peer_channels ?telemetry
      ~clock:(fun () -> Cluster.now cluster)
      ?interceptor
      ~scheduler:(fun delay thunk ->
        Engine.schedule (Cluster.engine cluster) ~delay thunk)
      ()
  in
  let engine = Cluster.engine cluster in
  let start = Cluster.now cluster in
  let journal_ev ev =
    if Obs.Telemetry.active telemetry then
      Obs.Journal.record
        (Obs.Telemetry.journal (Option.get telemetry))
        ~t:(Cluster.now cluster) ev
  in
  let metrics_set name v =
    if Obs.Telemetry.active telemetry then
      Obs.Metrics.set_gauge
        (Obs.Telemetry.metrics (Option.get telemetry))
        name v
  in
  let metrics_observe name v =
    if Obs.Telemetry.active telemetry then
      Obs.Metrics.observe
        (Obs.Telemetry.metrics (Option.get telemetry))
        name v
  in
  let metric_inc name =
    if Obs.Telemetry.active telemetry then
      Obs.Metrics.inc (Obs.Telemetry.metrics (Option.get telemetry)) name
  in
  (* Crash faults, ledger and failover arming. *)
  let crashes =
    match chaos with
    | Some { Chaos.c_schedule = Some sched; _ } -> Chaos.crashes sched
    | _ -> []
  in
  let failover_armed =
    crashes <> []
    &&
    match chaos with
    | Some { Chaos.c_watchdog = Some wd; _ } ->
      wd.Chaos.policy = Chaos.Failover
    | _ -> false
  in
  let recovery =
    match chaos with
    | Some control -> Some control.Chaos.c_recovery
    | None -> None
  in
  (* Ledger: one entry per task, built in deterministic rank-major
     order before anything runs.  [tracked_for rank role] hands each
     role its (task, entry) queue.  Entries exist only when a crash is
     planned — plain runs keep the zero-bookkeeping path. *)
  let ledger : ledger_entry list ref = ref [] in
  let tracked_tbl : (int * string, (Program.task * ledger_entry option) list)
      Hashtbl.t =
    Hashtbl.create 16
  in
  Array.iteri
    (fun rank plan ->
      List.iter
        (fun (role : Program.role) ->
          let tracked =
            List.map
              (fun (task : Program.task) ->
                if crashes = [] then (task, None)
                else begin
                  let e =
                    {
                      le_rank = rank;
                      le_role = role.Program.role_name;
                      le_label = task.Program.label;
                      le_notified = 0;
                      le_done = false;
                      le_poisoned = false;
                      le_replaying = false;
                    }
                  in
                  ledger := e :: !ledger;
                  (task, Some e)
                end)
              role.Program.tasks
          in
          Hashtbl.replace tracked_tbl (rank, role.Program.role_name) tracked)
        plan)
    (Program.plans program);
  let ledger = List.rev !ledger in
  (match recovery with
  | Some r when crashes <> [] -> r.Chaos.total_tiles <- List.length ledger
  | _ -> ());
  (* Liveness: once a rank has crashed its in-flight kernel state is
     gone for good — a transient restart makes the rank *reachable*
     again but does not resurrect the work, so [live] stays false for
     the rest of the run and the coordinator replays the loss. *)
  let crashed_once : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let live_for rank () = not (Hashtbl.mem crashed_once rank) in
  (* Crashes pending failover handling, in kill order. *)
  let pending_crashes : (int * float) Queue.t = Queue.create () in
  List.iter
    (fun (crash_rank, { Chaos.cr_at; cr_until }) ->
      Engine.schedule engine ~delay:cr_at (fun () ->
          if not (Hashtbl.mem crashed_once crash_rank) then begin
            Hashtbl.replace crashed_once crash_rank ();
            Cluster.kill_rank cluster ~rank_id:crash_rank;
            Queue.add (crash_rank, Cluster.now cluster) pending_crashes;
            journal_ev
              (Obs.Journal.Rank_crashed
                 { rank = crash_rank; transient = cr_until <> None });
            (* Force-wake the dead rank's parked workers so they drain
               instead of holding the engine live forever. *)
            ignore (Channel.cancel_rank_waits channels ~rank:crash_rank)
          end);
      Option.iter
        (fun until ->
          Engine.schedule engine ~delay:until (fun () ->
              Cluster.revive_rank cluster ~rank_id:crash_rank))
        cr_until)
    crashes;
  Array.iteri
    (fun rank plan ->
      (* Tracks how many communication roles are live on this rank;
         compute tiles pay the interference factor while it is > 0. *)
      let comm_active = ref 0 in
      List.iter
        (fun (role : Program.role) ->
          let tracked =
            Hashtbl.find tracked_tbl (rank, role.Program.role_name)
          in
          Process.spawn (Cluster.engine cluster)
            (run_role cluster channels memory ~telemetry ~data ~rank
               ~live:(live_for rank) ~comm_active ~tracked role))
        plan)
    (Program.plans program);
  (* The failover coordinator: runs at the top of every watchdog tick
     and must *return without blocking* — a second crash landing while
     the first crash's tiles are still replaying is only detected on a
     later tick, so parking the tick in a join would wedge recovery
     (and the whole run) for good.  Each tick makes three bounded,
     non-blocking passes:
     1. newly detected crashes: validate the remapped protocol, alias
        the rerouted channel keys, mark the dead shard recovered;
     2. replay sweep: spawn replay processes for lost tiles nobody is
        replaying yet, without joining them.  A replay whose executing
        survivor dies mid-task abandons, re-poisons its entry and
        releases the claim, so the next sweep re-replays it on a
        remaining survivor;
     3. settle: once a crash's lost tiles are all done, record the
        detect->resume latency and journal the resume. *)
  let cpr = program.Program.pc_channels in
  (* Fresh alias slots per survivor, allocated monotonically across
     crashes: a second crash must not reuse slots the first already
     aliased, or two logical channels would share one counter. *)
  let next_slot = Array.make (Program.world_size program) cpr in
  (* Crashes remapped but not yet settled, in crash order. *)
  let settling : (int * float) Queue.t = Queue.create () in
  let replayed_total = ref 0 in
  let settled_replayed = ref 0 in
  let survivors_now () =
    List.filter
      (fun r -> not (Hashtbl.mem crashed_once r))
      (List.init (Program.world_size program) Fun.id)
  in
  let island_of r = Cluster.island_of cluster ~rank_id:r in
  (* Topology-aware survivor ordering: intra-island survivors first
     (rank ascending), then cross-island (rank ascending), so the dead
     rank's channels and replays land on NVLink-local peers whenever
     any exist.  On a single-island cluster every survivor is
     intra-island and the order degenerates to plain ascending —
     byte-identical to the historical behaviour. *)
  let ordered_survivors ~relative_to =
    let home = island_of relative_to in
    let intra, cross =
      List.partition (fun r -> island_of r = home) (survivors_now ())
    in
    intra @ cross
  in
  let island_partitioned isl ~now =
    match chaos with
    | Some { Chaos.c_schedule = Some sched; _ } ->
      Chaos.partitioned sched ~node:isl ~now
    | _ -> false
  in
  let handle_crash (dead, t_crash) =
    let now = Cluster.now cluster in
    let lost = lost_entries ledger ~dead in
    let survivors = ordered_survivors ~relative_to:dead in
    if survivors = [] then begin
      let stall =
        no_survivor_stall ~dead ~lost ~t_crash ~now channels program
      in
      (match recovery with
      | Some r -> r.Chaos.stalls <- r.Chaos.stalls @ [ stall ]
      | None -> ());
      journal_ev
        (Obs.Journal.Stall_detected
           {
             key = stall.Chaos.stall_key;
             rank = stall.Chaos.stall_rank;
             threshold = stall.Chaos.stall_threshold;
             value = stall.Chaos.stall_value;
           });
      raise (Chaos.Stall stall)
    end;
    (* Unbridgeable partition: survivors exist, but every one sits
       across a NIC cut from the dead rank's island — re-hosting the
       dead shard would have to cross the partitioned fabric.  Triage
       as a *structural* stall naming the cut, not a hang. *)
    let home = island_of dead in
    if
      (not (List.exists (fun r -> island_of r = home) survivors))
      && island_partitioned home ~now
    then begin
      let stall =
        {
          Chaos.stall_key = Printf.sprintf "nic[%d]" home;
          stall_kind = "partition";
          stall_owner = dead;
          stall_channel = None;
          stall_rank = dead;
          stall_threshold = 0;
          stall_value = 0;
          stall_intended = 0;
          stall_since = t_crash;
          stall_at = now;
          stall_waiters =
            List.map
              (fun (pw : Channel.pending_wait) ->
                (pw.Channel.pw_key, pw.Channel.pw_rank, pw.Channel.pw_threshold))
              (Channel.pending_waits channels);
        }
      in
      (match recovery with
      | Some r -> r.Chaos.stalls <- r.Chaos.stalls @ [ stall ]
      | None -> ());
      journal_ev
        (Obs.Journal.Stall_detected
           {
             key = stall.Chaos.stall_key;
             rank = stall.Chaos.stall_rank;
             threshold = stall.Chaos.stall_threshold;
             value = stall.Chaos.stall_value;
           });
      raise (Chaos.Stall stall)
    end;
    (* Re-validate the remapped protocol before touching anything:
       the rewritten program must still be statically complete. *)
    let remapped = Fault.remap_program program ~dead ~survivors in
    Analyzer.check_exn remapped;
    (* Alias each rerouted key to the counter the blocked consumers
       are already parked on, so force-signals and watchdog retries
       under the new names land on the right counter. *)
    let n = List.length survivors in
    let sv = Array.of_list survivors in
    for c = 0 to cpr - 1 do
      let target = sv.(c mod n) in
      let slot = next_slot.(target) in
      next_slot.(target) <- slot + 1;
      Channel.register_remap channels
        ~key:(Printf.sprintf "pc[%d][%d]" dead c)
        ~alias:(Printf.sprintf "pc[%d][%d]" target slot)
    done;
    (* The survivors re-host the dead shard: transfers touching it
       succeed again, reading recovered memory. *)
    Cluster.mark_recovered cluster ~rank_id:dead;
    journal_ev (Obs.Journal.Remapped { rank = dead; tiles = List.length lost });
    (match recovery with
    | Some r ->
      r.Chaos.remapped_tiles <- r.Chaos.remapped_tiles + List.length lost
    | None -> ());
    metrics_set "recovery.remapped_tiles" (float_of_int (List.length lost));
    Queue.add (dead, t_crash) settling
  in
  let spawn_replays () =
    let pending =
      List.filter
        (fun e ->
          (not e.le_done)
          && (not e.le_replaying)
          && (Hashtbl.mem crashed_once e.le_rank || e.le_poisoned))
        ledger
    in
    match (pending, survivors_now ()) with
    | [], _ | _, [] -> ()
    | pending, _ ->
      (* Replay from a *fresh* build of the program when the caller
         provides one: task closures can hold accumulator state
         (flash-attention online softmax), so re-running a partially
         executed closure would double-count. *)
      let source = match rebuild with Some f -> f () | None -> program in
      let fresh_task : (int * string * string, Program.task) Hashtbl.t =
        Hashtbl.create 64
      in
      Program.iter_tasks source ~f:(fun ~rank role task ->
          let key = (rank, role.Program.role_name, task.Program.label) in
          if not (Hashtbl.mem fresh_task key) then
            Hashtbl.replace fresh_task key task);
      (* Group by (rank, role) preserving ledger order; one replay
         process per group keeps intra-role task order. *)
      let groups : ((int * string) * ledger_entry list) list =
        List.fold_left
          (fun acc e ->
            let key = (e.le_rank, e.le_role) in
            match List.assoc_opt key acc with
            | None -> acc @ [ (key, [ e ]) ]
            | Some _ ->
              List.map
                (fun (k, v) -> if k = key then (k, v @ [ e ]) else (k, v))
                acc)
          [] pending
      in
      (* Claim every entry inside the tick, before any replay runs, so
         the next tick's sweep cannot spawn a duplicate replay. *)
      List.iter (fun e -> e.le_replaying <- true) pending;
      let next_exec = ref 0 in
      List.iter
        (fun (((owner_rank : int), _role), entries) ->
          (* Executing survivors for this group, intra-island-first
             relative to the entries' owner: NVLink-local survivors
             absorb the replays before any cross-island peer does. *)
          let sv = Array.of_list (ordered_survivors ~relative_to:owner_rank) in
          let n = Array.length sv in
          let owner_island = island_of owner_rank in
          Process.spawn engine (fun () ->
              (* Each replay group is one sequential stream: its own
                 causal worker keeps replayed spans chained in order. *)
              let worker =
                if Obs.Telemetry.active telemetry then
                  Obs.Span.fresh_worker
                    (Obs.Telemetry.spans (Option.get telemetry))
                else -1
              in
              List.iter
                (fun (e : ledger_entry) ->
                  match
                    Hashtbl.find_opt fresh_task
                      (e.le_rank, e.le_role, e.le_label)
                  with
                  | None ->
                    (* The rebuild lost this task: nothing to replay —
                       release the claim and count it done so the crash
                       can settle instead of wedging accounting. *)
                    e.le_done <- true;
                    e.le_replaying <- false
                  | Some task -> (
                    (* Round-robin the executing survivor per tile. *)
                    let exec_rank = sv.(!next_exec mod n) in
                    incr next_exec;
                    let cross_island = island_of exec_rank <> owner_island in
                    if cross_island then begin
                      (match recovery with
                      | Some r ->
                        r.Chaos.cross_island_replays <-
                          r.Chaos.cross_island_replays + 1
                      | None -> ());
                      metric_inc "recovery.cross_island_replays"
                    end;
                    let skip = ref e.le_notified in
                    let ctx =
                      {
                        ec_exec_rank = exec_rank;
                        (* A replay is only as alive as its executor: a
                           survivor dying mid-replay must abandon, not
                           plough on against a dead rank's resources. *)
                        ec_live = live_for exec_rank;
                        ec_force_copy = true;
                        (* Checkpoint replayed notifies too, so a replay
                           cut short by a second crash resumes past the
                           epochs it already delivered. *)
                        ec_on_notify =
                          (fun () -> e.le_notified <- e.le_notified + 1);
                      }
                    in
                    let pending_loads = ref [] in
                    let comm_active = ref 0 in
                    let exec =
                      exec_instr cluster channels memory ~telemetry ~data
                        ~rank:owner_rank ~ctx ~lane:Trace.Comm_sm ~worker_sms:1
                        ~comm_active ~pending_loads ~worker
                        ~label:
                          (task.Program.label
                          ^ if cross_island then "+replay@x" else "+replay")
                    in
                    match
                      List.iter
                        (fun instr ->
                          match instr with
                          | Instr.Notify _ when !skip > 0 ->
                            (* Checkpointed epoch: already delivered
                               before the crash; re-issuing would
                               overshoot the counter past epochs other
                               waits rely on. *)
                            decr skip
                          | instr -> exec instr)
                        task.Program.instrs
                    with
                    | () ->
                      e.le_done <- true;
                      e.le_replaying <- false;
                      incr replayed_total;
                      (match recovery with
                      | Some r ->
                        r.Chaos.replayed_tiles <- r.Chaos.replayed_tiles + 1
                      | None -> ())
                    | exception Abandoned ->
                      (* The executing survivor died mid-replay: poison
                         and release the entry; the next sweep replays
                         it on a remaining survivor. *)
                      e.le_poisoned <- true;
                      e.le_replaying <- false))
                entries))
        groups
  in
  let settle () =
    let rec go () =
      match Queue.peek_opt settling with
      | Some (dead, t_crash) when lost_entries ledger ~dead = [] ->
        ignore (Queue.pop settling);
        let latency = Cluster.now cluster -. t_crash in
        let replayed = !replayed_total - !settled_replayed in
        settled_replayed := !replayed_total;
        (match recovery with
        | Some r ->
          r.Chaos.failed_over <- r.Chaos.failed_over @ [ (dead, latency) ]
        | None -> ());
        metrics_set "recovery.replayed_tiles" (float_of_int replayed);
        metrics_observe "recovery.latency_us" latency;
        journal_ev (Obs.Journal.Resumed { rank = dead; replayed; latency });
        go ()
      | _ -> ()
    in
    go ()
  in
  let failover_hook () =
    while not (Queue.is_empty pending_crashes) do
      handle_crash (Queue.pop pending_crashes)
    done;
    spawn_replays ();
    settle ()
  in
  (* Structural stall triage pauses while a crash is mid-recovery: the
     never-sent signals it would trip on are the ones replay delivers. *)
  let recovering () = not (Queue.is_empty settling) in
  (* The watchdog is just another sim process; while it lives, the
     event queue never drains, so a genuine hang surfaces as a
     structured Chaos.Stall rather than Engine.Deadlock. *)
  (match chaos with
  | Some ({ Chaos.c_watchdog = Some wd; _ } as control) ->
    let hooks = if failover_armed then Some failover_hook else None in
    let quiesce = if failover_armed then Some recovering else None in
    Process.spawn engine
      (Chaos.watchdog_body ?hooks ?quiesce ~engine ~channels ~telemetry
         ~control ~wd)
  | _ -> ());
  (try Engine.run engine with
   | Engine.Deadlock msg ->
     (* Preserve the context the engine had when the run wedged: the
        journal keeps it next to the signal history that explains it,
        and the exception payload carries the pending-waiter set plus
        the journal tail for callers without telemetry access. *)
     if Obs.Telemetry.active telemetry then
       Obs.Journal.record
         (Obs.Telemetry.journal (Option.get telemetry))
         ~t:(Cluster.now cluster)
         (Obs.Journal.Deadlock
            { message = msg; blocked = Engine.blocked_processes engine });
     raise (Engine.Deadlock (enrich_deadlock channels ~telemetry msg)));
  if Obs.Telemetry.active telemetry then begin
    let tele = Option.get telemetry in
    let m = Obs.Telemetry.metrics tele in
    Obs.Metrics.set_gauge m "engine.events_executed"
      (float_of_int (Engine.executed_events engine));
    Obs.Metrics.set_gauge m "engine.blocked_time_us"
      (Engine.blocked_time engine);
    Obs.Metrics.set_gauge m "engine.makespan_us"
      (Cluster.now cluster -. start);
    Cluster.record_utilization cluster tele
  end;
  {
    makespan = Cluster.now cluster -. start;
    channels;
    memory;
    notifies = Channel.total_notifies channels;
  }
