(* Program interpreter: executes a lowered program on a simulated
   cluster.

   One interpreter serves both backends of the reproduction:
   - timing: every instruction charges its cost model duration, SM and
     DMA workers contend for their pools, copies queue on links — the
     makespan is the kernel time reported in benchmarks;
   - data (optional): [Copy] and [Compute] instructions additionally
     mutate the per-rank tensor memories, so the same schedule is
     checked for numerical correctness against references. *)

open Tilelink_sim
open Tilelink_machine

type result = {
  makespan : float;
  channels : Channel.t;
  memory : Memory.t;
  notifies : int;
}

let resolve_rank ~self = function Some r -> r | None -> self

(* Default data semantics of a Copy: blit the source block into the
   destination block. *)
let default_copy_action (src : Instr.access) (dst : Instr.access) memory
    ~rank =
  let open Tilelink_tensor in
  let src_rank = resolve_rank ~self:rank src.Instr.mem_rank in
  let dst_rank = resolve_rank ~self:rank dst.Instr.mem_rank in
  let src_tensor = Memory.find memory ~rank:src_rank ~name:src.Instr.buffer in
  let dst_tensor = Memory.find memory ~rank:dst_rank ~name:dst.Instr.buffer in
  let block =
    Tensor.block src_tensor ~row_lo:(fst src.Instr.row)
      ~row_hi:(snd src.Instr.row) ~col_lo:(fst src.Instr.col)
      ~col_hi:(snd src.Instr.col)
  in
  Tensor.set_block dst_tensor ~row_lo:(fst dst.Instr.row)
    ~col_lo:(fst dst.Instr.col) block

let cost_duration (spec : Spec.t) ~sms = function
  | Instr.Gemm_tile { tm; tn; k } -> Cost.gemm_tile_time spec ~tm ~tn ~k
  | Instr.Attention_tile { tq; tkv; d } ->
    Cost.attention_tile_time spec ~tq ~tkv ~d
  | Instr.Memory_tile { rows; cols; passes } ->
    Cost.memory_tile_time spec ~sms ~rows ~cols ~passes
  | Instr.Fixed_cost d -> d
  | Instr.Free -> 0.0

let exec_wait channels ~rank:_ (target : Instr.signal_target) ~threshold =
  match target with
  | Instr.Pc { rank; channel } ->
    Channel.pc_wait channels ~rank ~channel ~threshold
  | Instr.Peer { src; dst; channel } ->
    Channel.peer_wait channels ~src ~dst ~channel ~threshold ()
  | Instr.Host { src; dst } -> Channel.host_wait channels ~src ~dst ~threshold

let exec_notify channels ~rank:_ (target : Instr.signal_target) ~amount =
  match target with
  | Instr.Pc { rank; channel } ->
    Channel.pc_notify channels ~rank ~channel ~amount
  | Instr.Peer { src; dst; channel } ->
    Channel.peer_notify channels ~src ~dst ~channel ~amount ()
  | Instr.Host { src; dst } -> Channel.host_notify channels ~src ~dst ~amount

module Obs = Tilelink_obs

(* Execute one instruction on behalf of [rank], on a worker of a role
   bound to [lane].  [worker_sms] is how many SMs this worker stands
   for (1 for an SM worker, irrelevant for DMA/host).  [interference]
   multiplies compute durations when a fused kernel also runs
   communication on the same chip. *)
let exec_instr cluster channels memory ~telemetry ~data ~rank ~lane
    ~worker_sms ~comm_active ~pending_loads ~label instr =
  let spec = Cluster.spec cluster in
  let trace = Cluster.trace cluster in
  let now () = Cluster.now cluster in
  match instr with
  | Instr.Load { access } ->
    (* Loads issue asynchronously (cp.async / TMA): they complete
       [load_latency] after issue.  A consumer stalls only if it reads
       the data before then — which multi-stage pipelining avoids by
       hoisting the load ahead of the previous tile's compute. *)
    if spec.Spec.gpu.load_latency > 0.0 then begin
      let t = now () in
      pending_loads :=
        (access, t +. spec.Spec.gpu.load_latency)
        :: List.filter (fun (_, ready) -> ready > t) !pending_loads
    end
  | Instr.Store _ -> ()
  | Instr.Sleep d -> Process.wait d
  | Instr.Compute { label = clabel; cost; reads; action; _ } ->
    let ready =
      List.fold_left
        (fun acc (access, ready) ->
          if List.exists (Instr.accesses_overlap access) reads then
            Float.max acc ready
          else acc)
        (now ()) !pending_loads
    in
    let issue = now () in
    if ready > issue then Process.wait (ready -. issue);
    (* Fusion interference applies only while a communication role is
       actually running on this rank: L2 pollution, scheduler and HBM
       contention vanish once the comm side drains. *)
    let interference =
      if !comm_active > 0 then spec.Spec.overheads.fusion_interference
      else 1.0
    in
    (* Straggler multiplier sampled at issue: a chaos disturbance can
       slow this rank's kernels; 1.0 when none is installed. *)
    let duration =
      cost_duration spec ~sms:worker_sms cost
      *. interference
      *. Cluster.compute_scale cluster ~rank_id:rank
    in
    let t0 = now () in
    if duration > 0.0 then Process.wait duration;
    Trace.add trace ~rank ~lane ~label:clabel ~t0 ~t1:(now ());
    if Obs.Telemetry.active telemetry then begin
      let m = Obs.Telemetry.metrics (Option.get telemetry) in
      Obs.Metrics.inc m "tiles.compute";
      Obs.Metrics.observe m "compute_us" (now () -. t0);
      if ready > issue then
        Obs.Metrics.observe m "load_stall_us" (ready -. issue)
    end;
    if data then Option.iter (fun act -> act memory ~rank) action
  | Instr.Copy { label = clabel; src; dst; bytes; action } ->
    let src_rank = resolve_rank ~self:rank src.Instr.mem_rank in
    let dst_rank = resolve_rank ~self:rank dst.Instr.mem_rank in
    let t0 = now () in
    (* Copy-engine stall injection: charged before the copy admits, so
       it shows up inside the traced copy span. *)
    let stall = Cluster.copy_stall_us cluster ~rank_id:rank in
    if stall > 0.0 then Process.wait stall;
    if src_rank = dst_rank then begin
      (* Local move: a round trip through HBM at full bandwidth share —
         bulk copies saturate HBM regardless of the issuing unit. *)
      let duration =
        Cost.memory_pass_time spec ~sms:spec.Spec.gpu.num_sms
          ~bytes:(2.0 *. bytes)
      in
      if duration > 0.0 then Process.wait duration
    end
    else Cluster.transfer cluster ~src:src_rank ~dst:dst_rank ~bytes;
    Trace.add trace ~rank ~lane ~label:clabel ~t0 ~t1:(now ());
    if Obs.Telemetry.active telemetry then begin
      let tele = Option.get telemetry in
      let m = Obs.Telemetry.metrics tele in
      Obs.Metrics.inc m "tiles.copy";
      Obs.Metrics.add_gauge m "bytes.copied" bytes;
      Obs.Metrics.observe m "copy_us" (now () -. t0);
      if src_rank <> dst_rank then
        (* A copy whose destination is the executing rank fetched a
           remote tile (pull); one that lands remotely pushed ours. *)
        Obs.Journal.record
          (Obs.Telemetry.journal tele)
          ~t:(now ())
          (if dst_rank = rank then
             Obs.Journal.Tile_pull
               { label = clabel; src = src_rank; dst = dst_rank; bytes }
           else
             Obs.Journal.Tile_push
               { label = clabel; src = src_rank; dst = dst_rank; bytes })
    end;
    if data then begin
      match action with
      | Some act -> act memory ~rank
      | None -> default_copy_action src dst memory ~rank
    end
  | Instr.Wait { target; threshold; _ } ->
    let t0 = now () in
    if spec.Spec.overheads.signal_wait > 0.0 then
      Process.wait spec.Spec.overheads.signal_wait;
    exec_wait channels ~rank target ~threshold;
    let t1 = now () in
    if t1 > t0 then
      Trace.add trace ~rank ~lane:Trace.Wait ~label ~t0 ~t1
  | Instr.Notify { target; amount; _ } ->
    (* Release atomic + memory fence before the signal is visible. *)
    if spec.Spec.overheads.signal_notify > 0.0 then
      Process.wait spec.Spec.overheads.signal_notify;
    exec_notify channels ~rank target ~amount

(* A task's leading waits/loads execute before the worker occupies an
   execution unit: a CTA is only scheduled once its dependencies are
   satisfied (stream-ordered concurrent kernels), so a blocked consumer
   does not hold an SM hostage while its producer needs one. *)
let split_leading_waits instrs =
  let rec go prefix = function
    | (Instr.Wait _ | Instr.Sleep _ | Instr.Load _) as instr :: rest ->
      go (instr :: prefix) rest
    | rest -> (List.rev prefix, rest)
  in
  go [] instrs

(* A worker repeatedly takes the next task from the role's shared
   queue, acquiring one unit of [unit_pool] per task; wave scheduling
   (ceil(tiles / workers) waves) and dynamic sharing of idle units
   across roles both emerge. *)
let worker_body cluster channels memory ~telemetry ~data ~rank ~lane
    ~worker_sms ~comm_active ~unit_pool queue () =
  let pending_loads = ref [] in
  let exec =
    exec_instr cluster channels memory ~telemetry ~data ~rank ~lane
      ~worker_sms ~comm_active ~pending_loads
  in
  let rec loop () =
    match
      match !queue with
      | [] -> None
      | task :: rest ->
        queue := rest;
        Some task
    with
    | None -> ()
    | Some (task : Program.task) ->
      let label = task.Program.label in
      let leading, body = split_leading_waits task.Program.instrs in
      List.iter (exec ~label) leading;
      (match unit_pool with
      | None -> List.iter (exec ~label) body
      | Some pool ->
        Resource.use pool 1 (fun () -> List.iter (exec ~label) body));
      loop ()
  in
  loop ()

let is_comm_lane = function
  | Trace.Comm_sm | Trace.Dma | Trace.Host | Trace.Link -> true
  | Trace.Compute_sm | Trace.Wait -> false

let run_role cluster channels memory ~telemetry ~data ~rank ~comm_active
    (role : Program.role) () =
  let spec = Cluster.spec cluster in
  let cluster_rank = Cluster.rank cluster rank in
  (* Kernel launch latency before the role's work becomes visible. *)
  Process.wait spec.overheads.kernel_launch;
  let comm_role = is_comm_lane role.Program.lane in
  if comm_role then incr comm_active;
  Fun.protect ~finally:(fun () -> if comm_role then decr comm_active)
  @@ fun () ->
  let run_workers count unit_pool =
    let queue = ref role.Program.tasks in
    let join =
      Process.spawn_all (Cluster.engine cluster)
        (List.init count (fun _ ->
             worker_body cluster channels memory ~telemetry ~data ~rank
               ~lane:role.Program.lane ~worker_sms:1 ~comm_active
               ~unit_pool queue))
    in
    Process.Join.wait join
  in
  match role.Program.resource with
  | Program.Sm_partition count ->
    run_workers count (Some cluster_rank.Cluster.sms)
  | Program.Dma_engines count ->
    run_workers count (Some cluster_rank.Cluster.dma)
  | Program.Host_stream ->
    let queue = ref role.Program.tasks in
    worker_body cluster channels memory ~telemetry ~data ~rank
      ~lane:role.Program.lane ~worker_sms:1 ~comm_active ~unit_pool:None
      queue ()

(* Append the pending-waiter edge list and the tail of the journal to a
   deadlock message, so even un-hardened callers get an actionable
   diagnostic instead of a bare process count. *)
let enrich_deadlock channels ~telemetry msg =
  let take n xs =
    let rec go n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: go (n - 1) rest
    in
    go n xs
  in
  let pending = Channel.pending_waits channels in
  let waiter_lines =
    List.map
      (fun (pw : Channel.pending_wait) ->
        Printf.sprintf "  rank %d waits %s >= %d (since t=%.1f)"
          pw.Channel.pw_rank pw.Channel.pw_key pw.Channel.pw_threshold
          pw.Channel.pw_since)
      (take 16 pending)
  in
  let journal_lines =
    if Obs.Telemetry.active telemetry then
      let entries =
        Obs.Journal.entries (Obs.Telemetry.journal (Option.get telemetry))
      in
      let tail = take 8 (List.rev entries) in
      List.rev_map (fun e -> "  " ^ Obs.Journal.entry_summary e) tail
    else []
  in
  String.concat "\n"
    ((msg
     :: Printf.sprintf "pending waiters (%d):" (List.length pending)
     :: waiter_lines)
    @
    if journal_lines = [] then []
    else "recent journal events:" :: journal_lines)

let run ?telemetry ?(data = false) ?memory ?chaos ?(analyze = false) cluster
    (program : Program.t) =
  (match Program.validate program with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Runtime.run: invalid program: " ^ msg));
  (* Optional static pre-flight: a protocol that can never complete is
     reported as a structured [Analyzer.Protocol_violation] here, with
     key/rank/channel diagnostics, instead of wedging mid-simulation as
     a generic [Engine.Deadlock]. *)
  if analyze then Analyzer.check_exn program;
  if Cluster.world_size cluster <> Program.world_size program then
    invalid_arg "Runtime.run: cluster/program world size mismatch";
  let memory =
    match memory with
    | Some m -> m
    | None -> Memory.create ~world_size:(Program.world_size program)
  in
  let interceptor =
    match chaos with
    | Some { Chaos.c_schedule = Some sched; _ } ->
      Chaos.apply_to_cluster sched cluster;
      Some (Chaos.interceptor sched)
    | _ -> None
  in
  let channels =
    Channel.create
      ~world_size:(Program.world_size program)
      ~channels_per_rank:program.Program.pc_channels
      ~peer_channels:program.Program.peer_channels ?telemetry
      ~clock:(fun () -> Cluster.now cluster)
      ?interceptor
      ~scheduler:(fun delay thunk ->
        Engine.schedule (Cluster.engine cluster) ~delay thunk)
      ()
  in
  let start = Cluster.now cluster in
  Array.iteri
    (fun rank plan ->
      (* Tracks how many communication roles are live on this rank;
         compute tiles pay the interference factor while it is > 0. *)
      let comm_active = ref 0 in
      List.iter
        (fun role ->
          Process.spawn (Cluster.engine cluster)
            (run_role cluster channels memory ~telemetry ~data ~rank
               ~comm_active role))
        plan)
    (Program.plans program);
  let engine = Cluster.engine cluster in
  (* The watchdog is just another sim process; while it lives, the
     event queue never drains, so a genuine hang surfaces as a
     structured Chaos.Stall rather than Engine.Deadlock. *)
  (match chaos with
  | Some ({ Chaos.c_watchdog = Some wd; _ } as control) ->
    Process.spawn engine
      (Chaos.watchdog_body ~engine ~channels ~telemetry ~control ~wd)
  | _ -> ());
  (try Engine.run engine with
   | Engine.Deadlock msg ->
     (* Preserve the context the engine had when the run wedged: the
        journal keeps it next to the signal history that explains it,
        and the exception payload carries the pending-waiter set plus
        the journal tail for callers without telemetry access. *)
     if Obs.Telemetry.active telemetry then
       Obs.Journal.record
         (Obs.Telemetry.journal (Option.get telemetry))
         ~t:(Cluster.now cluster)
         (Obs.Journal.Deadlock
            { message = msg; blocked = Engine.blocked_processes engine });
     raise (Engine.Deadlock (enrich_deadlock channels ~telemetry msg)));
  if Obs.Telemetry.active telemetry then begin
    let tele = Option.get telemetry in
    let m = Obs.Telemetry.metrics tele in
    Obs.Metrics.set_gauge m "engine.events_executed"
      (float_of_int (Engine.executed_events engine));
    Obs.Metrics.set_gauge m "engine.blocked_time_us"
      (Engine.blocked_time engine);
    Obs.Metrics.set_gauge m "engine.makespan_us"
      (Cluster.now cluster -. start);
    Cluster.record_utilization cluster tele
  end;
  {
    makespan = Cluster.now cluster -. start;
    channels;
    memory;
    notifies = Channel.total_notifies channels;
  }
