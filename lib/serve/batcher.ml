open Tilelink_machine
module Chaos = Tilelink_core.Chaos
module Runtime = Tilelink_core.Runtime
module Attention = Tilelink_workloads.Attention
module Attention_baselines = Tilelink_baselines.Attention_baselines

type entry = {
  e_req : Trace_gen.request;
  mutable e_kv : int;
  mutable e_remaining : int;
  mutable e_first_us : float option;
}

type t = {
  machine : Spec.t;
  topology : Topology.t option;
  mutable world : int;
  head_dim : int;
  kv_capacity : int;
  mutable running : entry list;  (** newest first *)
  sim_cache : (int * int * int, float) Hashtbl.t;
      (** (world, batch_q, kv_q) -> overlapped step makespan µs *)
}

let tile = 8
let config = { Attention.q_tile = tile; kv_tile = tile }

let create ?topology ~machine ~world_size ~head_dim ~kv_capacity () =
  if world_size < 2 then invalid_arg "Batcher.create: world_size must be >= 2";
  if head_dim < 1 then invalid_arg "Batcher.create: head_dim must be >= 1";
  if kv_capacity < 1 then invalid_arg "Batcher.create: kv_capacity must be >= 1";
  {
    machine;
    topology;
    world = world_size;
    head_dim;
    kv_capacity;
    running = [];
    sim_cache = Hashtbl.create 32;
  }

let world t = t.world
let topology t = t.topology
let running t = List.rev t.running
let batch_size t = List.length t.running
let kv_used t = List.fold_left (fun acc e -> acc + e.e_kv) 0 t.running

let fits t r = kv_used t + r.Trace_gen.rq_prompt <= t.kv_capacity

let admit t r =
  if not (fits t r) then invalid_arg "Batcher.admit: KV residency exceeded";
  t.running <-
    { e_req = r; e_kv = r.Trace_gen.rq_prompt; e_remaining = r.Trace_gen.rq_decode;
      e_first_us = None }
    :: t.running

let evict t r =
  t.running <-
    List.filter (fun e -> e.e_req.Trace_gen.rq_id <> r.Trace_gen.rq_id) t.running

(* Quantize a batch to a simulation signature: batch to the next power
   of two, KV length to the tile lattice (seq mod (world * kv_tile) = 0
   with seq/world >= kv_tile, i.e. at least one KV tile per rank) —
   the divisibility invariants Attention.program enforces. *)
let pow2_ceil n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let quantize t ~batch ~max_kv =
  let lattice = t.world * tile in
  let kv_q = ((max max_kv 1 + lattice - 1) / lattice) * lattice in
  (pow2_ceil (max batch 1), max lattice kv_q)

let spec_of t ~batch_q ~kv_q =
  {
    Attention.batch_heads = batch_q;
    seq = kv_q;
    head_dim = t.head_dim;
    world_size = t.world;
    causal = false;
  }

let max_kv t = List.fold_left (fun acc e -> max acc e.e_kv) 0 t.running

(* Overlapped step cost: simulate the tile program once per signature
   (timing only — no tensor data), memoized for the serve's lifetime. *)
let overlapped_cost t ~batch_q ~kv_q =
  let key = (t.world, batch_q, kv_q) in
  match Hashtbl.find_opt t.sim_cache key with
  | Some c -> c
  | None ->
    let spec = spec_of t ~batch_q ~kv_q in
    let program = Attention.program ~config spec ~spec_gpu:t.machine in
    let cluster =
      Cluster.create ?topology:t.topology t.machine ~world_size:t.world
    in
    let r = Runtime.run cluster program in
    Hashtbl.replace t.sim_cache key r.Runtime.makespan;
    r.Runtime.makespan

let serialized_cost t ~batch_q ~kv_q =
  Attention_baselines.torch_time t.machine (spec_of t ~batch_q ~kv_q)

let est_step_us t ~tier ~extra =
  let batch_q, kv_q =
    quantize t ~batch:(batch_size t + extra) ~max_kv:(max_kv t)
  in
  let spec = spec_of t ~batch_q ~kv_q in
  match (tier : Degrade.tier) with
  | Overlapped | Shrunk ->
    (* Ideal overlap: the longer of the two phases hides the other. *)
    Float.max
      (Attention.flash_only_time t.machine spec ~config)
      (Attention.comm_only_time t.machine spec)
  | Nonoverlap -> Attention_baselines.torch_time t.machine spec

type crash_config = { ck_seed : int; ck_ranks : int }

type outcome = {
  o_cost_us : float;
  o_faulted : bool;
  o_fell_back : bool;
  o_failed_over : int;
  o_replayed_tiles : int;
  o_retries : int;
  o_completed : entry list;
}

(* The fault harness's watchdog scaling: poll well inside the ideal
   makespan, suspect lost signals at 2x, declare structural stalls at
   8x, bounded retries with backoff. *)
let scaled_watchdog ~ideal =
  {
    Chaos.poll_interval_us = Float.max 1.0 (ideal /. 50.0);
    wait_timeout_us = Float.max 20.0 (ideal *. 2.0);
    stall_timeout_us = Float.max 100.0 (ideal *. 8.0);
    max_retries = 5;
    backoff_base_us = Float.max 2.0 (ideal /. 10.0);
    retry = true;
    policy = Chaos.Failover;
  }

(* One step under a planned rank crash: seeded schedule, failover
   watchdog, data run with a rebuild hook so replayed flash tasks get
   fresh accumulators.  Chaos.Stall (no survivors, unrecoverable
   channel) falls back to the serialized baseline — the step always
   completes. *)
let crash_step t ~crash ~batch_q ~kv_q =
  let ideal = overlapped_cost t ~batch_q ~kv_q in
  let spec = spec_of t ~batch_q ~kv_q in
  let build () = Attention.program ~config spec ~spec_gpu:t.machine in
  let layout =
    Option.map (fun topo -> Topology.layout topo ~world_size:t.world) t.topology
  in
  let schedule =
    Chaos.plan
      ~spec:(Chaos.no_machine_faults Chaos.default_spec)
      ?layout
      ~horizon_us:(Float.max 1.0 (ideal *. 1.5))
      ~crash_ranks:crash.ck_ranks ~seed:crash.ck_seed ~world_size:t.world ()
  in
  let control =
    Chaos.control ~schedule ~watchdog:(scaled_watchdog ~ideal) ()
  in
  let cluster =
    Cluster.create ?topology:t.topology t.machine ~world_size:t.world
  in
  let memory = Attention.alloc spec ~seed:crash.ck_seed in
  let result =
    Fun.protect
      ~finally:(fun () -> Cluster.clear_disturbance cluster)
      (fun () ->
        match
          Runtime.run ~data:true ~memory ~chaos:control ~rebuild:build cluster
            (build ())
        with
        | r -> Ok r.Runtime.makespan
        (* Chaos.Stall is the one legitimate bail-out: no survivors
           left (or an unrecoverable channel).  Multi-rank crashes —
           including a second crash mid-replay of the first — are the
           failover coordinator's job and must complete the step. *)
        | exception Chaos.Stall _ -> Error ())
  in
  let rec_ = control.Chaos.c_recovery in
  let failed_over = List.length rec_.Chaos.failed_over in
  let cost, fell_back =
    match result with
    | Ok makespan -> (makespan, false)
    | Error () -> (serialized_cost t ~batch_q ~kv_q, true)
  in
  (* The crashed ranks stay dead: later steps run on the survivors. *)
  t.world <- max 2 (t.world - crash.ck_ranks);
  {
    o_cost_us = cost;
    o_faulted = true;
    o_fell_back = fell_back;
    o_failed_over = failed_over;
    o_replayed_tiles = rec_.Chaos.replayed_tiles;
    o_retries = rec_.Chaos.retries + (if fell_back then 1 else 0);
    o_completed = [];
  }

let step ?crash t ~tier =
  if t.running = [] then invalid_arg "Batcher.step: empty batch";
  let batch_q, kv_q = quantize t ~batch:(batch_size t) ~max_kv:(max_kv t) in
  let outcome =
    match crash with
    | Some ck -> crash_step t ~crash:ck ~batch_q ~kv_q
    | None ->
      let cost =
        match (tier : Degrade.tier) with
        | Overlapped | Shrunk -> overlapped_cost t ~batch_q ~kv_q
        | Nonoverlap -> serialized_cost t ~batch_q ~kv_q
      in
      {
        o_cost_us = cost;
        o_faulted = false;
        o_fell_back = false;
        o_failed_over = 0;
        o_replayed_tiles = 0;
        o_retries = 0;
        o_completed = [];
      }
  in
  (* Advance every sequence by one output token. *)
  List.iter
    (fun e ->
      e.e_kv <- e.e_kv + 1;
      e.e_remaining <- e.e_remaining - 1)
    t.running;
  let completed, still = List.partition (fun e -> e.e_remaining <= 0) t.running in
  t.running <- still;
  { outcome with o_completed = List.rev completed }

let sim_cache_size t = Hashtbl.length t.sim_cache
