module Json = Tilelink_obs.Json

type spec = { ttft_us : float; tpot_us : float }
type sample = { s_ttft_us : float; s_tpot_us : float }

let meets spec s = s.s_ttft_us <= spec.ttft_us && s.s_tpot_us <= spec.tpot_us

type digest = {
  d_count : int;
  d_p50 : float;
  d_p99 : float;
  d_mean : float;
  d_max : float;
}

let digest = function
  | [] -> { d_count = 0; d_p50 = 0.; d_p99 = 0.; d_mean = 0.; d_max = 0. }
  | xs ->
    let n = List.length xs in
    {
      d_count = n;
      d_p50 = Tilelink_sim.Stats.percentile 50. xs;
      d_p99 = Tilelink_sim.Stats.percentile 99. xs;
      d_mean = List.fold_left ( +. ) 0. xs /. float_of_int n;
      d_max = List.fold_left max neg_infinity xs;
    }

let digest_to_json d =
  Json.Obj
    [
      ("count", Json.Num (float_of_int d.d_count));
      ("p50_us", Json.Num d.d_p50);
      ("p99_us", Json.Num d.d_p99);
      ("mean_us", Json.Num d.d_mean);
      ("max_us", Json.Num d.d_max);
    ]
