module Chaos = Tilelink_core.Chaos

type request = {
  rq_id : int;
  rq_arrival_us : float;
  rq_prompt : int;
  rq_decode : int;
}

type arrival =
  | Poisson of { rate_rps : float }
  | Bursty of { rate_rps : float; burst : float; on_fraction : float }

(* Exponential inter-arrival draw via inverse CDF; [rate] is per µs. *)
let exponential prng ~rate =
  let u = Chaos.Prng.float prng in
  -.log1p (-.u) /. rate

let us_per_s = 1_000_000.

let length prng ~mean =
  (* Uniform in [1, 2*mean) keeps the mean while exercising short and
     long requests; mean 1 degenerates to the constant 1. *)
  let hi = (2 * mean) - 1 in
  if hi <= 1 then 1 else 1 + (Int64.to_int (Chaos.Prng.next prng) land max_int) mod hi

let validate ~requests arrival =
  if requests <= 0 then invalid_arg "Trace_gen.generate: requests must be > 0";
  match arrival with
  | Poisson { rate_rps } ->
    if rate_rps <= 0. then invalid_arg "Trace_gen.generate: rate must be > 0"
  | Bursty { rate_rps; burst; on_fraction } ->
    if rate_rps <= 0. then invalid_arg "Trace_gen.generate: rate must be > 0";
    if burst < 1. then invalid_arg "Trace_gen.generate: burst must be >= 1";
    if on_fraction <= 0. || on_fraction >= 1. then
      invalid_arg "Trace_gen.generate: on_fraction must be in (0, 1)"

(* Two-state MMPP arrival times.  The ON state arrives at burst * rate;
   the OFF state at the rate that keeps the long-run average equal to
   the nominal rate given the ON duty cycle:
     on_fraction * burst * rate + (1 - on_fraction) * rate_off = rate.
   When the burst factor eats the whole budget (burst >= 1/on_fraction)
   the OFF state is silent and the trace is purely ON-state arrivals. *)
let bursty_times prng ~requests ~rate_rps ~burst ~on_fraction =
  let rate = rate_rps /. us_per_s in
  let rate_on = burst *. rate in
  let rate_off =
    max 0. ((rate -. (on_fraction *. rate_on)) /. (1. -. on_fraction))
  in
  (* Mean state holding times: bursts of ~20 arrivals at the ON rate. *)
  let hold_on = 20. /. rate_on in
  let hold_off = hold_on *. (1. -. on_fraction) /. on_fraction in
  let times = Array.make requests 0. in
  let t = ref 0. and produced = ref 0 in
  let on = ref true in
  let state_end = ref (exponential prng ~rate:(1. /. hold_on)) in
  while !produced < requests do
    let rate_now = if !on then rate_on else rate_off in
    let next_arrival =
      if rate_now <= 0. then infinity else !t +. exponential prng ~rate:rate_now
    in
    if next_arrival <= !state_end then begin
      t := next_arrival;
      times.(!produced) <- !t;
      incr produced
    end
    else begin
      t := !state_end;
      on := not !on;
      let hold = if !on then hold_on else hold_off in
      state_end := !t +. exponential prng ~rate:(1. /. hold)
    end
  done;
  times

let generate ?(prompt_mean = 128) ?(decode_mean = 16) ~seed ~requests arrival =
  if prompt_mean <= 0 || decode_mean <= 0 then
    invalid_arg "Trace_gen.generate: token means must be > 0";
  validate ~requests arrival;
  let arrivals_prng = Chaos.Prng.create ~seed:(Chaos.derive_seed ~seed ~index:0) in
  let lengths_prng = Chaos.Prng.create ~seed:(Chaos.derive_seed ~seed ~index:1) in
  let times =
    match arrival with
    | Poisson { rate_rps } ->
      let rate = rate_rps /. us_per_s in
      let t = ref 0. in
      Array.init requests (fun _ ->
          t := !t +. exponential arrivals_prng ~rate;
          !t)
    | Bursty { rate_rps; burst; on_fraction } ->
      bursty_times arrivals_prng ~requests ~rate_rps ~burst ~on_fraction
  in
  List.init requests (fun i ->
      let rq_prompt = length lengths_prng ~mean:prompt_mean in
      let rq_decode = length lengths_prng ~mean:decode_mean in
      { rq_id = i; rq_arrival_us = times.(i); rq_prompt; rq_decode })

(* CSV traces arrive from whatever tool produced them: Windows editors
   emit CRLF endings and sometimes a UTF-8 BOM, old exports use bare
   CR.  Normalize once up front — CRLF and CR each collapse to a
   single '\n', so line numbers in error messages still match what the
   user's editor shows. *)
let normalize_newlines text =
  let n = String.length text in
  let start =
    if n >= 3 && String.sub text 0 3 = "\xef\xbb\xbf" then 3 else 0
  in
  let buf = Buffer.create (n - start) in
  let i = ref start in
  while !i < n do
    (match text.[!i] with
    | '\r' ->
      Buffer.add_char buf '\n';
      if !i + 1 < n && text.[!i + 1] = '\n' then incr i
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let parse_trace text =
  let lines = String.split_on_char '\n' (normalize_newlines text) in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go (lineno + 1) acc rest
      else begin
        match String.split_on_char ',' line |> List.map String.trim with
        | [ a; p; d ] -> begin
          match (float_of_string_opt a, int_of_string_opt p, int_of_string_opt d) with
          | Some arrival, Some prompt, Some decode
            when arrival >= 0. && prompt > 0 && decode > 0 ->
            go (lineno + 1) ((arrival, prompt, decode) :: acc) rest
          | _ ->
            Error
              (Printf.sprintf
                 "trace line %d: expected arrival_us >= 0, prompt > 0, \
                  decode > 0, got %S"
                 lineno line)
        end
        | _ ->
          Error
            (Printf.sprintf
               "trace line %d: expected 'arrival_us,prompt,decode', got %S"
               lineno line)
      end
  in
  match go 1 [] lines with
  | Error _ as e -> e
  | Ok [] -> Error "trace contains no requests"
  | Ok rows ->
    let rows =
      List.stable_sort (fun (a, _, _) (b, _, _) -> compare a b) rows
    in
    Ok
      (List.mapi
         (fun i (rq_arrival_us, rq_prompt, rq_decode) ->
           { rq_id = i; rq_arrival_us; rq_prompt; rq_decode })
         rows)

let load_trace path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_trace text
  | exception Sys_error msg -> Error msg

let total_tokens reqs =
  List.fold_left (fun acc r -> acc + r.rq_prompt + r.rq_decode) 0 reqs
