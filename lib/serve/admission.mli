(** Bounded admission queue with backpressure and deadline-aware load
    shedding.

    The queue is the server's only buffer between the open-loop
    arrival process and the batcher.  When it is full, new arrivals
    are shed immediately ([Queue_full] — backpressure).  When a queued
    request has already waited so long that even an immediately
    scheduled first token would miss its TTFT deadline, it is shed at
    dequeue time ([Deadline]) rather than wasting a batch slot.
    [Timeout] is the server-side per-request bound, applied by the
    batcher to running requests. *)

type shed_reason = Queue_full | Deadline | Timeout

val shed_reason_to_string : shed_reason -> string

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] when [capacity <= 0]. *)

val length : t -> int
val capacity : t -> int

val pressure : t -> float
(** Occupancy in [0, 1] — the degradation controller's input. *)

val offer : t -> Trace_gen.request -> (unit, shed_reason) result
(** [Error Queue_full] when the queue is at capacity. *)

val poll :
  t ->
  now_us:float ->
  ttft_deadline_us:float ->
  est_first_token_us:float ->
  (Trace_gen.request, Trace_gen.request * shed_reason) result option
(** Next admissible request.  [None] when empty.  [Error (r, Deadline)]
    pops and sheds [r] because [now_us +. est_first_token_us] already
    exceeds its arrival time plus [ttft_deadline_us]; callers loop
    until [Ok] or [None], accounting each shed. *)
