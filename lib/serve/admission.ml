type shed_reason = Queue_full | Deadline | Timeout

let shed_reason_to_string = function
  | Queue_full -> "queue_full"
  | Deadline -> "deadline"
  | Timeout -> "timeout"

type t = { q : Trace_gen.request Queue.t; cap : int }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Admission.create: capacity must be > 0";
  { q = Queue.create (); cap = capacity }

let length t = Queue.length t.q
let capacity t = t.cap
let pressure t = float_of_int (Queue.length t.q) /. float_of_int t.cap

let offer t r =
  if Queue.length t.q >= t.cap then Error Queue_full
  else begin
    Queue.add r t.q;
    Ok ()
  end

let poll t ~now_us ~ttft_deadline_us ~est_first_token_us =
  match Queue.take_opt t.q with
  | None -> None
  | Some r ->
    if
      now_us +. est_first_token_us
      > r.Trace_gen.rq_arrival_us +. ttft_deadline_us
    then Some (Error (r, Deadline))
    else Some (Ok r)
