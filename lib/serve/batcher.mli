(** Continuous batching over the simulated cluster: KV-cache
    residency, per-step tile-program costing, and the chaos crash
    step.

    Each running request is one sequence with a resident KV cache of
    [prompt + decoded-so-far] tokens.  A scheduler step performs one
    decode iteration for every running sequence (an entering prefill's
    first step attends over its whole prompt, producing its first
    token); its cost is the makespan of the AG-KV attention tile
    program ({!Tilelink_workloads.Attention.program}) run on a fresh
    simulated cluster, with the batch quantized to a power of two and
    the KV length to the tile lattice ([world * 8]) so distinct
    signatures stay few enough to memoize.  The [Nonoverlap]
    degradation tier charges the serialized comm-then-compute baseline
    ({!Tilelink_baselines.Attention_baselines.torch_time}) instead of
    simulating.

    A crash step composes the chaos machinery exactly as the fault
    harness does: seeded schedule with [crash_ranks] permanent
    crashes, [Failover] watchdog scaled to the fault-free ideal, and a
    rebuild hook for replay.  An unrecoverable run — a structured
    {!Tilelink_core.Chaos.Stall} (e.g. no survivors) or the
    coordinator wedging under overlapping multi-rank crashes
    ({!Tilelink_sim.Engine.Deadlock}) — falls back to the serialized
    baseline cost: the step always completes, never hangs.  After a
    crash step the
    batcher's world shrinks to the survivors for the rest of the
    serve. *)

type entry = {
  e_req : Trace_gen.request;
  mutable e_kv : int;  (** resident KV tokens: prompt + decoded *)
  mutable e_remaining : int;  (** output tokens still to generate *)
  mutable e_first_us : float option;  (** first-token completion time *)
}

type t

val create :
  ?topology:Tilelink_machine.Topology.t ->
  machine:Tilelink_machine.Spec.t ->
  world_size:int ->
  head_dim:int ->
  kv_capacity:int ->
  unit ->
  t
(** [kv_capacity] is the cluster-wide KV residency bound in tokens.
    [topology] runs every step's tile program on the topology-compiled
    cluster (island-bridged NICs, heterogeneous rank scales, co-tenant
    NIC tax) and draws crash-step fault schedules against its layout.
    Raises [Invalid_argument] unless [world_size >= 2], [head_dim >= 1]
    and [kv_capacity >= 1]. *)

val world : t -> int
(** Current world size (shrinks after a crash step). *)

val topology : t -> Tilelink_machine.Topology.t option

val running : t -> entry list
val batch_size : t -> int
val kv_used : t -> int

val fits : t -> Trace_gen.request -> bool
(** KV-residency check for one more prefill. *)

val admit : t -> Trace_gen.request -> unit
(** Raises [Invalid_argument] when the request does not {!fits}. *)

val evict : t -> Trace_gen.request -> unit
(** Remove a running request without completing it (timeout shed). *)

val est_step_us : t -> tier:Degrade.tier -> extra:int -> float
(** Analytic (sim-free) cost estimate of the next step with [extra]
    more sequences — the admission deadline check's input. *)

type crash_config = { ck_seed : int; ck_ranks : int }

type outcome = {
  o_cost_us : float;
  o_faulted : bool;  (** the step hit a fault (crash or stall) *)
  o_fell_back : bool;  (** completed on the serialized fallback path *)
  o_failed_over : int;  (** ranks failed over by the coordinator *)
  o_replayed_tiles : int;
  o_retries : int;
  o_completed : entry list;  (** requests that emitted their last token *)
}

val step : ?crash:crash_config -> t -> tier:Degrade.tier -> outcome
(** One decode iteration for the whole batch.  Raises
    [Invalid_argument] on an empty batch.  With [crash], runs under
    the chaos schedule and shrinks the world afterwards. *)

val sim_cache_size : t -> int
(** Distinct simulated step signatures so far (introspection). *)
