(** Graceful-degradation controller: a three-tier ladder the server
    climbs under pressure and walks back down when load clears.

    - [Overlapped]: full batch, overlapped tile programs (the TileLink
      fast path).
    - [Shrunk]: batch capped at half, still overlapped — trades
      throughput for shorter, more preemptible steps so queued
      requests reach their first token sooner.
    - [Nonoverlap]: serialized comm-then-compute fallback
      (the {!Tilelink_baselines} cost model) with the small batch —
      the most conservative schedule, used under sustained overload
      or repeated step faults where predictability beats speed.

    Escalation triggers on queue pressure (>= 0.5 one step, >= 0.9
    straight to the top) or on consecutive faulted steps; recovery
    requires the pressure to stay below 0.25 for [quiet_steps]
    consecutive steps, one tier at a time.  Time spent per tier is
    tracked for the report. *)

type tier = Overlapped | Shrunk | Nonoverlap

val tier_to_string : tier -> string
val tier_rank : tier -> int
(** 0, 1, 2 — monotone in severity. *)

type t

val create : ?quiet_steps:int -> unit -> t
(** [quiet_steps] defaults to 8. *)

val tier : t -> tier

val max_batch : t -> full:int -> int
(** Effective batch cap at the current tier ([full] halved when
    degraded, never below 1). *)

val observe :
  t -> now_us:float -> pressure:float -> faulted:bool -> tier option
(** Feed one scheduler step; returns [Some new_tier] on a transition
    (for journaling), [None] otherwise.  [now_us] closes the time
    accounting of the previous tier. *)

val finish : t -> now_us:float -> unit
(** Close the open tier interval at drain time. *)

val time_in : t -> tier -> float
(** Accumulated µs at [tier] (after {!finish} or the latest
    {!observe}). *)
