(** The serving layer's driver: an open-loop trace in, a conservation
    report out.

    The server runs a virtual clock over the trace: arrivals enter the
    bounded admission queue (overflow is shed — backpressure), the
    batcher is filled up to the degradation tier's cap subject to KV
    residency (a request whose prompt can never fit is shed at offer
    time), stale queue heads are deadline-shed, running requests past
    the per-request timeout are evicted, and each scheduler step
    advances the clock by the tile program's simulated makespan.  With
    [chaos], one seeded rank-crash fires mid-trace (at a seed-chosen
    fraction of the arrival span) and the serve continues on the
    survivors.

    Everything derives from the trace, the seeds and the simulated
    clock — a fixed (trace, config) pair produces a byte-identical
    {!report_to_string}. *)

type chaos = { ch_seed : int; ch_crash_ranks : int }

type config = {
  machine : Tilelink_machine.Spec.t;
  topology : Tilelink_machine.Topology.t option;
      (** serve on a declarative topology: island-bridged NICs,
          heterogeneous rank scales, correlated crash-step faults *)
  world_size : int;
  head_dim : int;
  slo : Slo.spec;
  queue_capacity : int;
  max_batch : int;  (** full-tier batch cap; degraded tiers halve it *)
  kv_capacity : int;  (** resident KV tokens across the batch *)
  timeout_us : float;  (** per-request server-side bound *)
  chaos : chaos option;
}

type report = {
  r_offered : int;
  r_accepted : int;  (** admitted past backpressure *)
  r_completed : int;
  r_shed_queue_full : int;
  r_shed_deadline : int;
  r_shed_timeout : int;
  r_failed : int;  (** aborted by unrecoverable faults *)
  r_in_flight : int;  (** queued + running at drain; 0 when conserved *)
  r_slo_met : int;  (** completions inside both SLOs *)
  r_goodput_rps : float;  (** SLO-met completions per second *)
  r_makespan_us : float;
  r_steps : int;
  r_faulted_steps : int;
  r_fallback_steps : int;  (** steps completed on the serialized path *)
  r_retries : int;
  r_failovers : int;  (** ranks failed over by the crash coordinator *)
  r_replayed_tiles : int;
  r_tier_changes : int;
  r_tier_us : (string * float) list;  (** µs per degradation tier *)
  r_ttft : Slo.digest;  (** completed requests only *)
  r_tpot : Slo.digest;  (** completed requests only *)
  r_world_end : int;  (** surviving ranks *)
  r_topology : string option;
      (** topology name; JSON export omits the topology fields when
          absent so flat reports stay byte-identical *)
  r_nodes : int;  (** islands the serve started on; 1 when flat *)
}

val run :
  ?telemetry:Tilelink_obs.Telemetry.t ->
  config ->
  Trace_gen.request list ->
  report
(** Serve the trace to drain.  With [telemetry], sheds and tier
    changes are journaled ({!Tilelink_obs.Journal.Request_shed},
    {!Tilelink_obs.Journal.Tier_change}) at server-clock time and so
    reach the Perfetto export.  Raises [Invalid_argument] on an empty
    trace or a non-positive config bound. *)

val conservation_ok : report -> bool
(** offered = completed + shed + failed + in-flight, and in-flight is
    0 at drain. *)

val report_to_json : report -> Tilelink_obs.Json.t
val report_to_string : report -> string
(** Stable indented JSON — the byte-identity surface. *)
