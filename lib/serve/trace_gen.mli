(** Open-loop request generation: seeded Poisson, bursty (two-state
    MMPP) and replayed-trace arrivals.

    Open-loop means arrival times are fixed up front and never react
    to the server — an overloaded server keeps receiving requests,
    which is exactly the regime admission control and backpressure
    exist for.  Every draw comes from the splitmix64 PRNG
    ({!Tilelink_core.Chaos.Prng}), so a (seed, arrival, requests)
    triple always produces the identical trace. *)

type request = {
  rq_id : int;  (** dense, 0-based, in arrival order *)
  rq_arrival_us : float;
  rq_prompt : int;  (** prompt (prefill) tokens, >= 1 *)
  rq_decode : int;  (** output tokens to generate, >= 1 *)
}

(** Arrival process.  [Bursty] is a two-state Markov-modulated Poisson
    process: exponential holding times alternate between an ON state
    arriving at [burst] times the nominal rate and an OFF state slowed
    so the long-run average stays [rate_rps]; [on_fraction] is the
    fraction of time spent ON. *)
type arrival =
  | Poisson of { rate_rps : float }
  | Bursty of { rate_rps : float; burst : float; on_fraction : float }

val generate :
  ?prompt_mean:int ->
  ?decode_mean:int ->
  seed:int ->
  requests:int ->
  arrival ->
  request list
(** [requests] arrivals in time order.  Prompt/decode lengths are
    uniform in [[1, 2*mean)] ([prompt_mean] default 128, [decode_mean]
    default 16).  Raises [Invalid_argument] on non-positive rates,
    counts or means, [burst < 1] or [on_fraction] outside (0, 1). *)

val parse_trace : string -> (request list, string) result
(** Replayed trace from CSV text: one [arrival_us,prompt,decode] line
    per request ('#' comments and blank lines skipped).  Requests are
    re-sorted by arrival time and re-numbered.  Errors name the
    offending line. *)

val load_trace : string -> (request list, string) result
(** {!parse_trace} on a file's contents. *)

val total_tokens : request list -> int
(** Σ (prompt + decode) — the work the trace offers. *)
