type tier = Overlapped | Shrunk | Nonoverlap

let tier_to_string = function
  | Overlapped -> "overlapped"
  | Shrunk -> "shrunk"
  | Nonoverlap -> "nonoverlap"

let tier_rank = function Overlapped -> 0 | Shrunk -> 1 | Nonoverlap -> 2
let of_rank = function 0 -> Overlapped | 1 -> Shrunk | _ -> Nonoverlap

type t = {
  quiet_steps : int;
  mutable current : tier;
  mutable quiet : int;  (** consecutive low-pressure steps *)
  mutable faults : int;  (** consecutive faulted steps *)
  mutable since_us : float;  (** when [current] was entered *)
  times : float array;  (** accumulated µs per tier rank *)
}

let create ?(quiet_steps = 8) () =
  if quiet_steps <= 0 then invalid_arg "Degrade.create: quiet_steps must be > 0";
  {
    quiet_steps;
    current = Overlapped;
    quiet = 0;
    faults = 0;
    since_us = 0.;
    times = Array.make 3 0.;
  }

let tier t = t.current

let max_batch t ~full =
  match t.current with
  | Overlapped -> max 1 full
  | Shrunk | Nonoverlap -> max 1 (full / 2)

let set t ~now_us target =
  t.times.(tier_rank t.current) <-
    t.times.(tier_rank t.current) +. (now_us -. t.since_us);
  t.since_us <- now_us;
  t.current <- target

let observe t ~now_us ~pressure ~faulted =
  if faulted then t.faults <- t.faults + 1 else t.faults <- 0;
  let cur = tier_rank t.current in
  let want =
    if pressure >= 0.9 then 2
    else if pressure >= 0.5 || t.faults >= 2 then min 2 (cur + 1)
    else cur
  in
  if want > cur then begin
    t.quiet <- 0;
    set t ~now_us (of_rank want);
    Some t.current
  end
  else if cur > 0 && pressure < 0.25 && not faulted then begin
    t.quiet <- t.quiet + 1;
    if t.quiet >= t.quiet_steps then begin
      t.quiet <- 0;
      set t ~now_us (of_rank (cur - 1));
      Some t.current
    end
    else None
  end
  else begin
    t.quiet <- 0;
    None
  end

let finish t ~now_us = set t ~now_us t.current
let time_in t tier = t.times.(tier_rank tier)
