(** Service-level objectives and latency digests for the serving
    layer: time-to-first-token (TTFT) and time-per-output-token
    (TPOT), with exact-percentile summaries.

    Only completed requests contribute samples — a shed or failed
    request never enters a percentile, so degradation shows up in the
    goodput and shed counts instead of silently polluting latency. *)

type spec = { ttft_us : float; tpot_us : float }
(** A request meets its SLO when TTFT <= [ttft_us] and its mean
    per-output-token latency <= [tpot_us]. *)

type sample = { s_ttft_us : float; s_tpot_us : float }

val meets : spec -> sample -> bool

type digest = {
  d_count : int;
  d_p50 : float;
  d_p99 : float;
  d_mean : float;
  d_max : float;
}
(** Exact percentiles (nearest-rank, {!Tilelink_sim.Stats.percentile});
    all fields 0 when [d_count = 0]. *)

val digest : float list -> digest
val digest_to_json : digest -> Tilelink_obs.Json.t
