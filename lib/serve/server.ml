module Chaos = Tilelink_core.Chaos
module Telemetry = Tilelink_obs.Telemetry
module Journal = Tilelink_obs.Journal
module Json = Tilelink_obs.Json

type chaos = { ch_seed : int; ch_crash_ranks : int }

type config = {
  machine : Tilelink_machine.Spec.t;
  topology : Tilelink_machine.Topology.t option;
  world_size : int;
  head_dim : int;
  slo : Slo.spec;
  queue_capacity : int;
  max_batch : int;
  kv_capacity : int;
  timeout_us : float;
  chaos : chaos option;
}

type report = {
  r_offered : int;
  r_accepted : int;
  r_completed : int;
  r_shed_queue_full : int;
  r_shed_deadline : int;
  r_shed_timeout : int;
  r_failed : int;
  r_in_flight : int;
  r_slo_met : int;
  r_goodput_rps : float;
  r_makespan_us : float;
  r_steps : int;
  r_faulted_steps : int;
  r_fallback_steps : int;
  r_retries : int;
  r_failovers : int;
  r_replayed_tiles : int;
  r_tier_changes : int;
  r_tier_us : (string * float) list;
  r_ttft : Slo.digest;
  r_tpot : Slo.digest;
  r_world_end : int;
  r_topology : string option;
  r_nodes : int;  (** islands the serve started on; 1 when flat *)
}

(* Mutable serve-loop state: the counters the report is built from. *)
type state = {
  cfg : config;
  telemetry : Telemetry.t option;
  batcher : Batcher.t;
  queue : Admission.t;
  degrade : Degrade.t;
  mutable pending : Trace_gen.request list;  (** arrivals not yet ingested *)
  mutable deferred : Trace_gen.request option;
      (** popped from the queue but awaiting KV headroom — preserves
          FIFO order without re-enqueueing *)
  mutable now : float;
  mutable crash_at : float option;  (** armed crash instant *)
  mutable peak_pressure : float;
      (** max queue occupancy since the last step — fill drains the
          queue into the batch, so sampling pressure only after fill
          would blind the degradation controller to bursts that fit in
          one refill *)
  mutable shed_queue_full : int;
  mutable shed_deadline : int;
  mutable shed_timeout : int;
  mutable completed : int;
  mutable slo_met : int;
  mutable ttft : float list;  (** newest first *)
  mutable tpot : float list;
  mutable steps : int;
  mutable faulted_steps : int;
  mutable fallback_steps : int;
  mutable retries : int;
  mutable failovers : int;
  mutable replayed : int;
  mutable tier_changes : int;
}

let journal st ev =
  match st.telemetry with
  | Some tel when Telemetry.enabled tel ->
    Journal.record (Telemetry.journal tel) ~t:st.now ev
  | _ -> ()

let shed st (r : Trace_gen.request) reason =
  (match reason with
  | Admission.Queue_full ->
    (* An overflowing queue is saturated by definition, even if the
       occupancy sample between drains never shows it. *)
    st.peak_pressure <- 1.0;
    st.shed_queue_full <- st.shed_queue_full + 1
  | Admission.Deadline -> st.shed_deadline <- st.shed_deadline + 1
  | Admission.Timeout -> st.shed_timeout <- st.shed_timeout + 1);
  journal st
    (Journal.Request_shed
       { id = r.Trace_gen.rq_id; reason = Admission.shed_reason_to_string reason })

(* Arrivals due at the current clock.  A prompt that cannot fit in the
   KV budget even alone is shed immediately — it could never leave the
   queue and would wedge the drain. *)
let ingest st =
  let rec go = function
    | r :: rest when r.Trace_gen.rq_arrival_us <= st.now ->
      (if r.Trace_gen.rq_prompt > st.cfg.kv_capacity then
         shed st r Admission.Queue_full
       else
         match Admission.offer st.queue r with
         | Ok () -> ()
         | Error reason -> shed st r reason);
      go rest
    | rest -> st.pending <- rest
  in
  go st.pending;
  st.peak_pressure <- Float.max st.peak_pressure (Admission.pressure st.queue)

let evict_timeouts st =
  List.iter
    (fun (e : Batcher.entry) ->
      if st.now -. e.Batcher.e_req.Trace_gen.rq_arrival_us >= st.cfg.timeout_us
      then begin
        Batcher.evict st.batcher e.Batcher.e_req;
        shed st e.Batcher.e_req Admission.Timeout
      end)
    (Batcher.running st.batcher)

(* Fill the batch up to the tier cap: deferred head first, then the
   queue, deadline-shedding stale heads as they surface. *)
let fill st =
  let tier = Degrade.tier st.degrade in
  let cap = Degrade.max_batch st.degrade ~full:st.cfg.max_batch in
  let est = Batcher.est_step_us st.batcher ~tier ~extra:1 in
  let rec go () =
    if Batcher.batch_size st.batcher >= cap then ()
    else
      match st.deferred with
      | Some r ->
        if Batcher.fits st.batcher r then begin
          st.deferred <- None;
          Batcher.admit st.batcher r;
          go ()
        end
      | None -> begin
        match
          Admission.poll st.queue ~now_us:st.now
            ~ttft_deadline_us:st.cfg.slo.Slo.ttft_us ~est_first_token_us:est
        with
        | None -> ()
        | Some (Error (r, reason)) ->
          shed st r reason;
          go ()
        | Some (Ok r) ->
          if Batcher.fits st.batcher r then begin
            Batcher.admit st.batcher r;
            go ()
          end
          else st.deferred <- Some r
      end
  in
  go ()

let record_completion st (e : Batcher.entry) =
  let r = e.Batcher.e_req in
  let first =
    match e.Batcher.e_first_us with Some t -> t | None -> st.now
  in
  let ttft = first -. r.Trace_gen.rq_arrival_us in
  let tpot =
    if r.Trace_gen.rq_decode > 1 then
      (st.now -. first) /. float_of_int (r.Trace_gen.rq_decode - 1)
    else 0.
  in
  st.completed <- st.completed + 1;
  st.ttft <- ttft :: st.ttft;
  st.tpot <- tpot :: st.tpot;
  if Slo.meets st.cfg.slo { Slo.s_ttft_us = ttft; s_tpot_us = tpot } then
    st.slo_met <- st.slo_met + 1

let step st =
  let crash =
    match (st.crash_at, st.cfg.chaos) with
    | Some at, Some ch when st.now >= at ->
      st.crash_at <- None;
      Some { Batcher.ck_seed = ch.ch_seed; ck_ranks = ch.ch_crash_ranks }
    | _ -> None
  in
  let tier = Degrade.tier st.degrade in
  let o = Batcher.step ?crash st.batcher ~tier in
  st.now <- st.now +. o.Batcher.o_cost_us;
  st.steps <- st.steps + 1;
  if o.Batcher.o_faulted then st.faulted_steps <- st.faulted_steps + 1;
  if o.Batcher.o_fell_back then st.fallback_steps <- st.fallback_steps + 1;
  st.retries <- st.retries + o.Batcher.o_retries;
  st.failovers <- st.failovers + o.Batcher.o_failed_over;
  st.replayed <- st.replayed + o.Batcher.o_replayed_tiles;
  (* Everyone in this step has produced a token by its end. *)
  let stamp (e : Batcher.entry) =
    if e.Batcher.e_first_us = None then e.Batcher.e_first_us <- Some st.now
  in
  List.iter stamp (Batcher.running st.batcher);
  List.iter stamp o.Batcher.o_completed;
  List.iter (record_completion st) o.Batcher.o_completed;
  let pressure = st.peak_pressure in
  st.peak_pressure <- Admission.pressure st.queue;
  match
    Degrade.observe st.degrade ~now_us:st.now ~pressure
      ~faulted:o.Batcher.o_faulted
  with
  | Some tier' ->
    st.tier_changes <- st.tier_changes + 1;
    journal st
      (Journal.Tier_change
         { tier = Degrade.tier_to_string tier'; pressure })
  | None -> ()

let drained st =
  st.pending = [] && st.deferred = None
  && Admission.length st.queue = 0
  && Batcher.batch_size st.batcher = 0

let rec loop st =
  ingest st;
  evict_timeouts st;
  fill st;
  if Batcher.batch_size st.batcher > 0 then begin
    step st;
    loop st
  end
  else
    match st.pending with
    | r :: _ ->
      (* Idle: jump the virtual clock to the next arrival. *)
      st.now <- Float.max st.now r.Trace_gen.rq_arrival_us;
      loop st
    | [] -> if not (drained st) then loop st

let validate cfg trace =
  if trace = [] then invalid_arg "Server.run: empty trace";
  if cfg.queue_capacity <= 0 then
    invalid_arg "Server.run: queue_capacity must be > 0";
  if cfg.max_batch <= 0 then invalid_arg "Server.run: max_batch must be > 0";
  if cfg.kv_capacity <= 0 then invalid_arg "Server.run: kv_capacity must be > 0";
  if cfg.timeout_us <= 0. then invalid_arg "Server.run: timeout_us must be > 0";
  if cfg.slo.Slo.ttft_us <= 0. || cfg.slo.Slo.tpot_us <= 0. then
    invalid_arg "Server.run: SLO bounds must be > 0";
  match cfg.chaos with
  | Some ch when ch.ch_crash_ranks < 0 || ch.ch_crash_ranks >= cfg.world_size ->
    invalid_arg "Server.run: crash_ranks must leave at least one survivor"
  | _ -> ()

(* The crash fires at a seed-chosen point strictly inside the arrival
   span — "mid-trace" by construction, deterministic per seed. *)
let arm_crash cfg trace =
  match cfg.chaos with
  | Some ch when ch.ch_crash_ranks > 0 ->
    let first = (List.hd trace).Trace_gen.rq_arrival_us in
    let last =
      List.fold_left
        (fun acc (r : Trace_gen.request) -> Float.max acc r.rq_arrival_us)
        first trace
    in
    let prng =
      Chaos.Prng.create ~seed:(Chaos.derive_seed ~seed:ch.ch_seed ~index:1783)
    in
    let frac = 0.25 +. (0.5 *. Chaos.Prng.float prng) in
    Some (first +. (frac *. (last -. first)))
  | _ -> None

let run ?telemetry cfg trace =
  validate cfg trace;
  let trace =
    List.stable_sort
      (fun (a : Trace_gen.request) b -> compare a.rq_arrival_us b.rq_arrival_us)
      trace
  in
  let st =
    {
      cfg;
      telemetry;
      batcher =
        Batcher.create ?topology:cfg.topology ~machine:cfg.machine
          ~world_size:cfg.world_size ~head_dim:cfg.head_dim
          ~kv_capacity:cfg.kv_capacity ();
      queue = Admission.create ~capacity:cfg.queue_capacity;
      degrade = Degrade.create ();
      pending = trace;
      deferred = None;
      now = 0.;
      crash_at = arm_crash cfg trace;
      peak_pressure = 0.;
      shed_queue_full = 0;
      shed_deadline = 0;
      shed_timeout = 0;
      completed = 0;
      slo_met = 0;
      ttft = [];
      tpot = [];
      steps = 0;
      faulted_steps = 0;
      fallback_steps = 0;
      retries = 0;
      failovers = 0;
      replayed = 0;
      tier_changes = 0;
    }
  in
  loop st;
  Degrade.finish st.degrade ~now_us:st.now;
  let offered = List.length trace in
  let in_flight =
    Admission.length st.queue
    + Batcher.batch_size st.batcher
    + (match st.deferred with Some _ -> 1 | None -> 0)
  in
  let shed = st.shed_queue_full + st.shed_deadline + st.shed_timeout in
  {
    r_offered = offered;
    r_accepted = offered - st.shed_queue_full;
    r_completed = st.completed;
    r_shed_queue_full = st.shed_queue_full;
    r_shed_deadline = st.shed_deadline;
    r_shed_timeout = st.shed_timeout;
    r_failed = offered - st.completed - shed - in_flight;
    r_in_flight = in_flight;
    r_slo_met = st.slo_met;
    r_goodput_rps =
      (if st.now > 0. then float_of_int st.slo_met /. (st.now /. 1e6) else 0.);
    r_makespan_us = st.now;
    r_steps = st.steps;
    r_faulted_steps = st.faulted_steps;
    r_fallback_steps = st.fallback_steps;
    r_retries = st.retries;
    r_failovers = st.failovers;
    r_replayed_tiles = st.replayed;
    r_tier_changes = st.tier_changes;
    r_tier_us =
      List.map
        (fun t -> (Degrade.tier_to_string t, Degrade.time_in st.degrade t))
        [ Degrade.Overlapped; Degrade.Shrunk; Degrade.Nonoverlap ];
    r_ttft = Slo.digest (List.rev st.ttft);
    r_tpot = Slo.digest (List.rev st.tpot);
    r_world_end = Batcher.world st.batcher;
    r_topology = Option.map Tilelink_machine.Topology.name cfg.topology;
    r_nodes =
      (match cfg.topology with
      | None -> 1
      | Some topo ->
        Tilelink_machine.Topology.islands
          (Tilelink_machine.Topology.layout topo ~world_size:cfg.world_size));
  }

let conservation_ok r =
  r.r_in_flight = 0
  && r.r_failed >= 0
  && r.r_offered
     = r.r_completed + r.r_shed_queue_full + r.r_shed_deadline
       + r.r_shed_timeout + r.r_failed + r.r_in_flight

let report_to_json r =
  let num_i n = Json.Num (float_of_int n) in
  Json.Obj
    ([
      ("offered", num_i r.r_offered);
      ("accepted", num_i r.r_accepted);
      ("completed", num_i r.r_completed);
      ( "shed",
        Json.Obj
          [
            ("queue_full", num_i r.r_shed_queue_full);
            ("deadline", num_i r.r_shed_deadline);
            ("timeout", num_i r.r_shed_timeout);
          ] );
      ("failed", num_i r.r_failed);
      ("in_flight", num_i r.r_in_flight);
      ("slo_met", num_i r.r_slo_met);
      ("goodput_rps", Json.Num r.r_goodput_rps);
      ("makespan_us", Json.Num r.r_makespan_us);
      ("steps", num_i r.r_steps);
      ("faulted_steps", num_i r.r_faulted_steps);
      ("fallback_steps", num_i r.r_fallback_steps);
      ("retries", num_i r.r_retries);
      ("failovers", num_i r.r_failovers);
      ("replayed_tiles", num_i r.r_replayed_tiles);
      ("tier_changes", num_i r.r_tier_changes);
      ( "tier_us",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) r.r_tier_us) );
      ("ttft", Slo.digest_to_json r.r_ttft);
      ("tpot", Slo.digest_to_json r.r_tpot);
      ("world_end", num_i r.r_world_end);
    ]
    @ (* Topology fields only exist on topology serves — flat reports
         stay byte-identical. *)
    (match r.r_topology with
    | None -> []
    | Some name -> [ ("topology", Json.Str name); ("nodes", num_i r.r_nodes) ])
    @ [ ("conserved", Json.Bool (conservation_ok r)) ])

let report_to_string r = Json.to_string ~indent:true (report_to_json r)
