(* Minimal JSON: an AST, a printer, and a recursive-descent parser.

   The telemetry exporters need to *emit* JSON (metrics dumps, Perfetto
   traces, BENCH_*.json) and the test-suite and `profile --check` need
   to *re-parse* those artifacts to assert they are well-formed — the
   container has no JSON library, so both directions live here.  Only
   what the exporters produce is supported: no streaming, numbers are
   floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.is_nan f || Float.is_integer f then "null" (* inf/nan *)
  else Printf.sprintf "%.6g" f

let rec write buf indent level = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape_string s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    write_seq buf indent level '[' ']'
      (List.map (fun item -> (None, item)) items)
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    write_seq buf indent level '{' '}'
      (List.map (fun (k, v) -> (Some k, v)) fields)

and write_seq buf indent level open_c close_c entries =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  Buffer.add_char buf open_c;
  List.iteri
    (fun i (key, v) ->
      if i > 0 then Buffer.add_char buf ',';
      if indent then Buffer.add_char buf '\n';
      pad (level + 1);
      (match key with
      | Some k ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf (if indent then "\": " else "\":")
      | None -> ());
      write buf indent (level + 1) v)
    entries;
  if indent then Buffer.add_char buf '\n';
  pad level;
  Buffer.add_char buf close_c

let to_string ?(indent = false) t =
  let buf = Buffer.create 1024 in
  write buf indent 0 t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          (* Encode the code point as UTF-8 (BMP only — surrogate
             pairs are not produced by our printers). *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf
              (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> fail (Printf.sprintf "bad escape %C" c));
        advance ();
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numeric c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numeric s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else Obj (parse_fields [])
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else List (parse_items [])
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  and parse_fields acc =
    skip_ws ();
    let key = parse_string () in
    skip_ws ();
    expect ':';
    let v = parse_value () in
    skip_ws ();
    match peek () with
    | Some ',' ->
      advance ();
      parse_fields ((key, v) :: acc)
    | Some '}' ->
      advance ();
      List.rev ((key, v) :: acc)
    | _ -> fail "expected ',' or '}'"
  and parse_items acc =
    let v = parse_value () in
    skip_ws ();
    match peek () with
    | Some ',' ->
      advance ();
      parse_items (v :: acc)
    | Some ']' ->
      advance ();
      List.rev (v :: acc)
    | _ -> fail "expected ',' or ']'"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List items -> items | _ -> []

let to_float = function Num f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None
