(** Enriched Chrome/Perfetto trace export.

    Combines timeline spans with the telemetry journal to add flow
    events linking each producer notify to the consumer wait it
    released, counter tracks (outstanding signals, blocked waiters,
    per-rank egress bandwidth), and deadlock instants.  Open the output
    at https://ui.perfetto.dev or chrome://tracing. *)

val export :
  ?bandwidth_slices:int ->
  ?min_level:Journal.level ->
  ?extra:Json.t list ->
  trace:Tilelink_sim.Trace.t ->
  journal:Journal.t ->
  unit ->
  Json.t
(** Full event list.  [bandwidth_slices] (default 64) sets the sample
    resolution of the egress-bandwidth counter track.  [min_level]
    filters only the instant-event marks (the flow arrows and counter
    tracks are reconstructed from Debug-level entries regardless).
    [extra] appends caller-supplied events, e.g. the critical-path
    overlay from {!Critpath.perfetto_events}. *)

val export_string :
  ?bandwidth_slices:int ->
  ?min_level:Journal.level ->
  ?extra:Json.t list ->
  trace:Tilelink_sim.Trace.t ->
  journal:Journal.t ->
  unit ->
  string
