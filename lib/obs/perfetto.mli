(** Enriched Chrome/Perfetto trace export.

    Combines timeline spans with the telemetry journal to add flow
    events linking each producer notify to the consumer wait it
    released, counter tracks (outstanding signals, blocked waiters,
    per-rank egress bandwidth), and deadlock instants.  Open the output
    at https://ui.perfetto.dev or chrome://tracing. *)

val export :
  ?bandwidth_slices:int ->
  trace:Tilelink_sim.Trace.t ->
  journal:Journal.t ->
  unit ->
  Json.t
(** Full event list.  [bandwidth_slices] (default 64) sets the sample
    resolution of the egress-bandwidth counter track. *)

val export_string :
  ?bandwidth_slices:int ->
  trace:Tilelink_sim.Trace.t ->
  journal:Journal.t ->
  unit ->
  string
