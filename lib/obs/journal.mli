(** Structured event journal: bounded ring buffer of typed telemetry
    events, timestamped in simulation microseconds.

    Feeds the Perfetto flow/counter reconstruction; bounded so long
    runs cannot exhaust memory (oldest entries are overwritten and
    counted in {!dropped}). *)

type event =
  | Signal_set of { key : string; rank : int; amount : int; value : int }
  | Wait_begin of { key : string; rank : int; threshold : int }
  | Wait_end of { key : string; rank : int; threshold : int; started : float }
  | Tile_push of { label : string; src : int; dst : int; bytes : float }
  | Tile_pull of { label : string; src : int; dst : int; bytes : float }
  | Channel_acquire of { rank : int; base : int; extent : int }
  | Channel_release of { rank : int; base : int; extent : int }
  | Deadlock of { message : string; blocked : int }
  | Fault_injected of { kind : string; key : string; rank : int }
  | Retry of { key : string; rank : int; attempt : int }
  | Recovered of { key : string; rank : int; latency : float }
  | Stall_detected of { key : string; rank : int; threshold : int; value : int }
  | Degraded of { key : string; rank : int }
  | Rank_crashed of { rank : int; transient : bool }
  | Remapped of { rank : int; tiles : int }
  | Resumed of { rank : int; replayed : int; latency : float }
  | Request_shed of { id : int; reason : string }
      (** The serving layer's admission control dropped request [id];
          [reason] is one of queue_full/deadline/timeout. *)
  | Tier_change of { tier : string; pressure : float }
      (** The serving layer's degradation controller switched tiers at
          the given queue pressure (depth / capacity). *)

(** Severity of an event: routine signal/tile chatter is [Debug],
    watchdog recovery actions are [Info], lost-work outcomes are
    [Warn], run-killing conditions are [Error]. *)
type level = Debug | Info | Warn | Error

val level_of_event : event -> level
val level_to_string : level -> string
val level_of_string : string -> level option

type entry = { t : float; seq : int; event : event }

type t

val create : ?capacity:int -> ?enabled:bool -> unit -> t
val enabled : t -> bool
val set_enabled : t -> bool -> unit
val capacity : t -> int

val record : t -> t:float -> event -> unit

val length : t -> int
(** Live entries (≤ capacity). *)

val dropped : t -> int
(** Entries overwritten after the ring wrapped. *)

val entries : ?min_level:level -> t -> entry list
(** Oldest first; [min_level] keeps only entries at or above that
    severity. *)

val event_name : event -> string

val entry_summary : entry -> string
(** One-line ["t=... <event> <detail>"] rendering, suitable for
    splicing into exception messages. *)

val to_json : ?min_level:level -> t -> Json.t
(** Entries carry a ["level"] field; [min_level] filters like
    {!entries}. *)
