(* Enriched Chrome/Perfetto trace export.

   [Trace.to_chrome_json] emits plain duration slices.  This exporter
   combines those slices with the journal to add what overlap debugging
   actually needs:

   - flow events ("s"/"f" pairs) drawing an arrow from each
     producer-side notify to the consumer wait it released — the wait
     with threshold T on a channel is paired with the notify whose
     cumulative value first reached T;
   - counter tracks: outstanding signals per rank (produced but not yet
     consumed), blocked waiters per rank, and per-rank egress bandwidth
     reconstructed from tile push/pull events;
   - instant events for deadlock context.

   Load the output at https://ui.perfetto.dev or chrome://tracing. *)

module Trace = Tilelink_sim.Trace

let span_event (s : Trace.span) =
  Json.Obj
    [
      ("name", Json.Str s.Trace.label);
      ("ph", Json.Str "X");
      ("ts", Json.Num s.Trace.t0);
      ("dur", Json.Num (s.Trace.t1 -. s.Trace.t0));
      ("pid", Json.Num (float_of_int s.Trace.rank));
      ("tid", Json.Str (Trace.lane_to_string s.Trace.lane));
    ]

let counter_event ~name ~rank ~t ~field value =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "C");
      ("ts", Json.Num t);
      ("pid", Json.Num (float_of_int rank));
      ("args", Json.Obj [ (field, Json.Num value) ]);
    ]

let flow_event ~phase ~id ~rank ~tid ~t =
  let base =
    [
      ("name", Json.Str "signal");
      ("cat", Json.Str "signal");
      ("ph", Json.Str phase);
      ("id", Json.Num (float_of_int id));
      ("ts", Json.Num t);
      ("pid", Json.Num (float_of_int rank));
      ("tid", Json.Str tid);
    ]
  in
  (* "f" needs a binding point so the arrow terminates at the enclosing
     slice's end rather than being dropped. *)
  Json.Obj (if phase = "f" then base @ [ ("bp", Json.Str "e") ] else base)

(* Pair each wait with the notify that released it: per channel key,
   notifies are chronological and the counter is monotonic, so the
   releasing notify is the first whose post-add value reaches the
   wait's threshold. *)
let flow_events journal =
  let notifies : (string, (float * int * int) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (e : Journal.entry) ->
      match e.Journal.event with
      | Journal.Signal_set { key; rank; value; _ } ->
        let cell =
          match Hashtbl.find_opt notifies key with
          | Some c -> c
          | None ->
            let c = ref [] in
            Hashtbl.add notifies key c;
            c
        in
        cell := (e.Journal.t, rank, value) :: !cell
      | _ -> ())
    (Journal.entries journal);
  Hashtbl.iter (fun _ cell -> cell := List.rev !cell) notifies;
  let next_id = ref 0 in
  List.concat_map
    (fun (e : Journal.entry) ->
      match e.Journal.event with
      | Journal.Wait_end { key; rank; threshold; _ } -> (
        let releasing =
          match Hashtbl.find_opt notifies key with
          | None -> None
          | Some cell ->
            List.find_opt (fun (_, _, value) -> value >= threshold) !cell
        in
        match releasing with
        | None -> []
        | Some (nt, nrank, _) ->
          incr next_id;
          let id = !next_id in
          [
            flow_event ~phase:"s" ~id ~rank:nrank ~tid:"comm-sm" ~t:nt;
            flow_event ~phase:"f" ~id ~rank ~tid:"wait" ~t:e.Journal.t;
          ])
      | _ -> [])
    (Journal.entries journal)

(* Outstanding signals (set but not yet consumed) and blocked waiters,
   as per-rank counter tracks sampled at every change. *)
let signal_counter_events journal =
  let key_state : (string, int * int) Hashtbl.t = Hashtbl.create 64 in
  (* value, consumed threshold high-water mark *)
  let key_owner : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let outstanding : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let waiters : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let get table rank = Option.value ~default:0 (Hashtbl.find_opt table rank) in
  let key_outstanding key =
    let value, consumed =
      Option.value ~default:(0, 0) (Hashtbl.find_opt key_state key)
    in
    max 0 (value - consumed)
  in
  List.concat_map
    (fun (e : Journal.entry) ->
      let t = e.Journal.t in
      match e.Journal.event with
      | Journal.Signal_set { key; rank; value; _ } ->
        let owner =
          match Hashtbl.find_opt key_owner key with
          | Some o -> o
          | None ->
            Hashtbl.replace key_owner key rank;
            rank
        in
        let before = key_outstanding key in
        let _, consumed =
          Option.value ~default:(0, 0) (Hashtbl.find_opt key_state key)
        in
        Hashtbl.replace key_state key (value, consumed);
        let total = get outstanding owner + (key_outstanding key - before) in
        Hashtbl.replace outstanding owner total;
        [
          counter_event ~name:"outstanding signals" ~rank:owner ~t
            ~field:"signals" (float_of_int total);
        ]
      | Journal.Wait_end { key; rank; threshold; _ } ->
        let owner =
          Option.value ~default:rank (Hashtbl.find_opt key_owner key)
        in
        let before = key_outstanding key in
        let value, consumed =
          Option.value ~default:(0, 0) (Hashtbl.find_opt key_state key)
        in
        Hashtbl.replace key_state key (value, max consumed threshold);
        let total = get outstanding owner + (key_outstanding key - before) in
        Hashtbl.replace outstanding owner total;
        let w = get waiters rank - 1 in
        Hashtbl.replace waiters rank w;
        [
          counter_event ~name:"outstanding signals" ~rank:owner ~t
            ~field:"signals" (float_of_int total);
          counter_event ~name:"blocked waiters" ~rank ~t ~field:"waiters"
            (float_of_int w);
        ]
      | Journal.Wait_begin { rank; _ } ->
        let w = get waiters rank + 1 in
        Hashtbl.replace waiters rank w;
        [
          counter_event ~name:"blocked waiters" ~rank ~t ~field:"waiters"
            (float_of_int w);
        ]
      | _ -> [])
    (Journal.entries journal)

(* Per-rank egress bandwidth: bucket tile push/pull bytes into
   [slices] time slices and emit one counter sample per slice.
   1 byte/µs = 0.008 Gbit/s. *)
let bandwidth_counter_events ?(slices = 64) ~duration journal =
  if duration <= 0.0 then []
  else begin
    let slice_us = duration /. float_of_int slices in
    let per_rank : (int, float array) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (e : Journal.entry) ->
        match e.Journal.event with
        | Journal.Tile_push { src; dst; bytes; _ }
        | Journal.Tile_pull { src; dst; bytes; _ }
          when src <> dst ->
          let buckets =
            match Hashtbl.find_opt per_rank src with
            | Some b -> b
            | None ->
              let b = Array.make slices 0.0 in
              Hashtbl.add per_rank src b;
              b
          in
          let i =
            min (slices - 1)
              (max 0 (int_of_float (e.Journal.t /. slice_us)))
          in
          buckets.(i) <- buckets.(i) +. bytes
        | _ -> ())
      (Journal.entries journal);
    (* Emit in ascending rank order, not Hashtbl.fold order, so the
       exported artifact is byte-stable across runs. *)
    Hashtbl.fold (fun rank buckets acc -> (rank, buckets) :: acc) per_rank []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.concat_map (fun (rank, buckets) ->
           List.init slices (fun i ->
               let gbps = buckets.(i) /. slice_us *. 0.008 in
               counter_event ~name:"egress Gbps" ~rank
                 ~t:(float_of_int i *. slice_us)
                 ~field:"gbps" gbps))
  end

let instant ~name ~scope ~t ~rank args =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "i");
      ("s", Json.Str scope);
      ("ts", Json.Num t);
      ("pid", Json.Num (float_of_int rank));
      ("args", Json.Obj args);
    ]

(* Deadlocks plus every chaos-related journal event: injected faults
   are thread-scoped marks on the owning rank's track, recovery actions
   likewise, stalls are global so they are visible at any zoom. *)
let instant_events ?min_level journal =
  List.filter_map
    (fun (e : Journal.entry) ->
      let t = e.Journal.t in
      match e.Journal.event with
      | Journal.Deadlock { message; blocked } ->
        Some
          (instant ~name:"DEADLOCK" ~scope:"g" ~t ~rank:0
             [
               ("message", Json.Str message);
               ("blocked", Json.Num (float_of_int blocked));
             ])
      | Journal.Fault_injected { kind; key; rank } ->
        Some
          (instant
             ~name:(Printf.sprintf "FAULT %s" kind)
             ~scope:"p" ~t ~rank
             [ ("kind", Json.Str kind); ("key", Json.Str key) ])
      | Journal.Retry { key; rank; attempt } ->
        Some
          (instant ~name:"RETRY" ~scope:"p" ~t ~rank
             [
               ("key", Json.Str key);
               ("attempt", Json.Num (float_of_int attempt));
             ])
      | Journal.Recovered { key; rank; latency } ->
        Some
          (instant ~name:"RECOVERED" ~scope:"p" ~t ~rank
             [ ("key", Json.Str key); ("latency_us", Json.Num latency) ])
      | Journal.Stall_detected { key; rank; threshold; value } ->
        Some
          (instant ~name:"STALL" ~scope:"g" ~t ~rank
             [
               ("key", Json.Str key);
               ("threshold", Json.Num (float_of_int threshold));
               ("value", Json.Num (float_of_int value));
             ])
      | Journal.Degraded { key; rank } ->
        Some (instant ~name:"DEGRADED" ~scope:"p" ~t ~rank
                [ ("key", Json.Str key) ])
      | Journal.Rank_crashed { rank; transient } ->
        Some
          (instant ~name:"CRASH" ~scope:"g" ~t ~rank
             [ ("transient", Json.Bool transient) ])
      | Journal.Remapped { rank; tiles } ->
        Some
          (instant ~name:"REMAP" ~scope:"g" ~t ~rank
             [ ("tiles", Json.Num (float_of_int tiles)) ])
      | Journal.Resumed { rank; replayed; latency } ->
        Some
          (instant ~name:"RESUME" ~scope:"g" ~t ~rank
             [
               ("replayed", Json.Num (float_of_int replayed));
               ("latency_us", Json.Num latency);
             ])
      | Journal.Request_shed { id; reason } ->
        Some
          (instant ~name:"SHED" ~scope:"p" ~t ~rank:0
             [
               ("id", Json.Num (float_of_int id));
               ("reason", Json.Str reason);
             ])
      | Journal.Tier_change { tier; pressure } ->
        Some
          (instant ~name:"TIER" ~scope:"g" ~t ~rank:0
             [ ("tier", Json.Str tier); ("pressure", Json.Num pressure) ])
      | _ -> None)
    (Journal.entries ?min_level journal)

let process_names ~trace =
  let ranks =
    List.sort_uniq compare
      (List.map (fun s -> s.Trace.rank) (Trace.spans trace))
  in
  List.map
    (fun rank ->
      Json.Obj
        [
          ("name", Json.Str "process_name");
          ("ph", Json.Str "M");
          ("pid", Json.Num (float_of_int rank));
          ( "args",
            Json.Obj [ ("name", Json.Str (Printf.sprintf "rank %d" rank)) ] );
        ])
    ranks

(* [min_level] filters only the instant-event marks: the flow arrows
   and counter tracks are *reconstructed* from Debug-level journal
   entries, so severity filtering must not starve them.  [extra]
   appends caller-supplied events (e.g. the critical-path overlay). *)
let export ?bandwidth_slices ?min_level ?(extra = []) ~trace ~journal () =
  let spans = List.map span_event (Trace.spans trace) in
  let duration = Trace.duration trace in
  Json.List
    (process_names ~trace
    @ spans
    @ flow_events journal
    @ signal_counter_events journal
    @ bandwidth_counter_events ?slices:bandwidth_slices ~duration journal
    @ instant_events ?min_level journal
    @ extra)

let export_string ?bandwidth_slices ?min_level ?extra ~trace ~journal () =
  Json.to_string ~indent:true
    (export ?bandwidth_slices ?min_level ?extra ~trace ~journal ())
