(* The telemetry handle instrumented layers thread through.

   One record bundles the aggregate half (metrics), the sequential
   half (journal) and the causal half (spans) so call sites take a
   single optional argument.  The [enabled] switch flips all three:
   instrumentation guards on it before doing any work, which keeps the
   disabled cost to a branch. *)

type t = { metrics : Metrics.t; journal : Journal.t; spans : Span.t }

let create ?(enabled = true) ?journal_capacity () =
  {
    metrics = Metrics.create ~enabled ();
    journal = Journal.create ?capacity:journal_capacity ~enabled ();
    spans = Span.create ~enabled ();
  }

let metrics t = t.metrics
let journal t = t.journal
let spans t = t.spans

let enabled t = Metrics.enabled t.metrics

let set_enabled t flag =
  Metrics.set_enabled t.metrics flag;
  Journal.set_enabled t.journal flag;
  Span.set_enabled t.spans flag

(* [active opt] is the single check instrumented code performs:
   [None] (no telemetry requested) and [Some disabled] both fall
   through to the uninstrumented path. *)
let active = function None -> false | Some t -> enabled t
