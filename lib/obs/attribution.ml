(* Makespan attribution: decompose one run's end-to-end time into
   conserved buckets along the critical path.

     compute       Compute spans on the path
     exposed_comm  Copy (and zero-width Notify) spans on the path —
                   communication the schedule failed to hide
     wait_stall    blocked notify/wait time on the path
     contention    same-rank path gaps (queueing on SM/DMA pools,
                   launch latency) — time no span accounts for but the
                   critical rank was busy acquiring resources
     straggler     cross-rank path gaps plus tail slack: the critical
                   chain waited on another rank's pace
     recovery      Retry and Replay spans — fault-recovery work

   The invariant [bucket_sum = makespan] is exact (the critical path
   charges wall-clock exactly once); [conserved] allows a tolerance
   only for float round-off.

   The overlap-efficiency score compares exposed communication against
   all communication the run performed: efficiency = 1 -
   exposed/total.  A perfectly overlapped schedule hides every copy
   behind compute (efficiency 1); a serial schedule exposes every copy
   (efficiency 0). *)

type buckets = {
  compute : float;
  exposed_comm : float;
  wait_stall : float;
  contention : float;
  straggler : float;
  recovery : float;
}

type t = {
  buckets : buckets;
  makespan : float;
  total_comm : float;  (* sum of all Copy span durations, on-path or not *)
  hidden_comm : float;  (* total_comm - exposed_comm, clamped at 0 *)
  efficiency : float;  (* 1 - exposed/total, in [0, 1]; 1 when no comm *)
  cross_island_recovery : float;
      (* informational sub-metric of recovery: total duration of Replay
         spans executed on a survivor *outside* the dead rank's NVLink
         island (labels carry the runtime's "@x" marker).  Sums all
         such spans, on-path or not, so it is not part of the conserved
         bucket identity. *)
}

(* Cross-island replays are labelled "<label>@x" by the runtime. *)
let is_cross_island_label label =
  let n = String.length label in
  n >= 2 && String.sub label (n - 2) 2 = "@x"

let empty_buckets =
  {
    compute = 0.0;
    exposed_comm = 0.0;
    wait_stall = 0.0;
    contention = 0.0;
    straggler = 0.0;
    recovery = 0.0;
  }

let bucket_sum t =
  t.buckets.compute +. t.buckets.exposed_comm +. t.buckets.wait_stall
  +. t.buckets.contention +. t.buckets.straggler +. t.buckets.recovery

let conserved ?(tolerance = 1.0) t = Float.abs (bucket_sum t -. t.makespan) <= tolerance

let of_spans ~makespan spans =
  let total_comm =
    List.fold_left
      (fun acc (s : Span.span) ->
        match s.Span.kind with
        | Span.Copy -> acc +. (s.Span.t1 -. s.Span.t0)
        | _ -> acc)
      0.0 spans
  in
  let cross_island_recovery =
    List.fold_left
      (fun acc (s : Span.span) ->
        match s.Span.kind with
        | Span.Replay when is_cross_island_label s.Span.label ->
          acc +. (s.Span.t1 -. s.Span.t0)
        | _ -> acc)
      0.0 spans
  in
  let buckets =
    match Critpath.extract ~makespan spans with
    | None ->
      (* No spans at all: the whole run is unexplained slack. *)
      { empty_buckets with straggler = makespan }
    | Some cp ->
      let b =
        List.fold_left
          (fun b (step : Critpath.step) ->
            let b =
              if step.Critpath.gap_before > 0.0 then
                if step.Critpath.gap_same_rank then
                  { b with contention = b.contention +. step.Critpath.gap_before }
                else
                  { b with straggler = b.straggler +. step.Critpath.gap_before }
              else b
            in
            let c = step.Critpath.charged in
            match step.Critpath.span.Span.kind with
            | Span.Compute -> { b with compute = b.compute +. c }
            | Span.Copy | Span.Notify ->
              { b with exposed_comm = b.exposed_comm +. c }
            | Span.Wait_stall -> { b with wait_stall = b.wait_stall +. c }
            | Span.Retry | Span.Replay -> { b with recovery = b.recovery +. c })
          empty_buckets cp.Critpath.path
      in
      { b with straggler = b.straggler +. cp.Critpath.tail_slack }
  in
  let exposed = buckets.exposed_comm in
  let efficiency =
    if total_comm > 0.0 then
      Float.max 0.0 (Float.min 1.0 (1.0 -. (exposed /. total_comm)))
    else 1.0
  in
  let hidden_comm = Float.max 0.0 (total_comm -. exposed) in
  { buckets; makespan; total_comm; hidden_comm; efficiency;
    cross_island_recovery }

let to_json t =
  Json.Obj
    [
      ("makespan_us", Json.Num t.makespan);
      ( "buckets",
        Json.Obj
          [
            ("compute_us", Json.Num t.buckets.compute);
            ("exposed_comm_us", Json.Num t.buckets.exposed_comm);
            ("wait_stall_us", Json.Num t.buckets.wait_stall);
            ("contention_us", Json.Num t.buckets.contention);
            ("straggler_us", Json.Num t.buckets.straggler);
            ("recovery_us", Json.Num t.buckets.recovery);
          ] );
      ("bucket_sum_us", Json.Num (bucket_sum t));
      ("total_comm_us", Json.Num t.total_comm);
      ("hidden_comm_us", Json.Num t.hidden_comm);
      ("overlap_efficiency", Json.Num t.efficiency);
      ("cross_island_recovery_us", Json.Num t.cross_island_recovery);
    ]

let to_string t =
  String.concat "\n"
    [
      Printf.sprintf "makespan attribution (%.1f us):" t.makespan;
      Printf.sprintf "  pure compute          %10.2f us" t.buckets.compute;
      Printf.sprintf "  exposed communication %10.2f us" t.buckets.exposed_comm;
      Printf.sprintf "  wait stall            %10.2f us" t.buckets.wait_stall;
      Printf.sprintf "  resource contention   %10.2f us" t.buckets.contention;
      Printf.sprintf "  straggler slack       %10.2f us" t.buckets.straggler;
      Printf.sprintf "  recovery overhead     %10.2f us" t.buckets.recovery;
      Printf.sprintf "    of which cross-island replay %10.2f us (all spans)"
        t.cross_island_recovery;
      Printf.sprintf "  (bucket sum           %10.2f us)" (bucket_sum t);
      Printf.sprintf "total communication     %10.2f us (hidden %.2f us)"
        t.total_comm t.hidden_comm;
      Printf.sprintf "overlap efficiency      %10.1f %%\n"
        (100.0 *. t.efficiency);
    ]
