(** Causal span recorder: per-tile work/stall intervals with
    happens-before edges, the input of {!Critpath} and {!Attribution}.

    Edges come from three sources — program order on a worker
    ({!record_task}, {!record_retry}, {!record_wait} chain on their
    [worker]), signal issue ({!record_notify}'s [pred] is the issuing
    worker's {!cursor} at issue time), and wait resolution (a
    {!record_wait} points at the first delivery on its key whose
    post-delivery counter value met the threshold).  Every predecessor
    has a smaller id and ends no later than its successor. *)

type kind = Compute | Copy | Wait_stall | Notify | Retry | Replay

val kind_to_string : kind -> string

type span = {
  id : int;
  kind : kind;
  label : string;
  rank : int;
  worker : int;  (** -1 when not worker-chained *)
  t0 : float;
  t1 : float;
  key : string option;  (** signal key, for Notify/Retry/Wait_stall *)
  value : int option;  (** delivered counter value, for Notify/Retry *)
  preds : int list;  (** happens-before predecessors, ids < [id] *)
}

type t

val create : ?enabled:bool -> unit -> t
val enabled : t -> bool
val set_enabled : t -> bool -> unit
val length : t -> int

val fresh_worker : t -> int
(** Allocate a worker id for one sequential execution stream. *)

val cursor : t -> worker:int -> int option
(** Id of the last span recorded on [worker], if any — captured by
    notify issuers as the causal predecessor of the delivery. *)

val record_task :
  t ->
  kind:kind ->
  label:string ->
  rank:int ->
  worker:int ->
  t0:float ->
  t1:float ->
  unit
(** A compute/copy/replay interval, chained in program order on
    [worker] (pass [-1] to skip chaining). *)

val record_notify :
  ?pred:int ->
  t ->
  label:string ->
  rank:int ->
  key:string ->
  value:int ->
  t:float ->
  unit
(** A delivery: zero-duration at the instant the counter was raised to
    [value] (the post-delivery value).  [pred] is the issuer's
    {!cursor} at issue time.  Registered as a wait-resolution
    candidate on [key]. *)

val record_retry :
  t ->
  label:string ->
  rank:int ->
  worker:int ->
  key:string ->
  value:int ->
  t0:float ->
  t1:float ->
  unit
(** A watchdog re-issue interval that force-raised [key] to [value]:
    worker-chained and registered as a delivery on [key]. *)

val record_wait :
  t ->
  label:string ->
  rank:int ->
  worker:int ->
  key:string ->
  threshold:int ->
  t0:float ->
  t1:float ->
  unit
(** A blocked-wait interval, chained on [worker] and linked to the
    first delivery on [key] whose value reached [threshold]. *)

val spans : t -> span list
(** All spans in id (recording) order. *)

val span_to_json : span -> Json.t
val to_json : t -> Json.t
