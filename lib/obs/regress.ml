(* Bench regression gating: diff two BENCH_*.json artifacts row by row.

   Rows are keyed (config, kernel) and compared on [makespan_us] only —
   wall-clock and cache-hit fields vary run to run by design, while the
   simulated makespan is deterministic, so any drift there is a real
   performance change.  A row present in the baseline but missing from
   the candidate counts as a regression (a kernel silently dropped from
   the suite must not pass the gate); rows only the candidate has are
   reported informationally. *)

type row = { r_config : string; r_kernel : string; r_makespan_us : float }

type status =
  | Unchanged  (* within tolerance *)
  | Improved of float  (* ratio new/old < 1 - tolerance *)
  | Regressed of float  (* ratio new/old > 1 + tolerance *)
  | Missing  (* in baseline, absent from candidate: a regression *)
  | Added  (* only in candidate: informational *)

type finding = {
  f_config : string;
  f_kernel : string;
  f_old : float option;
  f_new : float option;
  f_status : status;
}

type report = {
  tolerance : float;
  findings : finding list;
  regressions : int;
}

let default_tolerance = 0.05

let rows_of_json doc =
  match Json.member "rows" doc with
  | None -> Error "no \"rows\" array"
  | Some rows ->
    let parse_row i r =
      let str name = Option.bind (Json.member name r) Json.to_str in
      let num name = Option.bind (Json.member name r) Json.to_float in
      match (str "config", str "kernel", num "makespan_us") with
      | Some c, Some k, Some m ->
        Ok { r_config = c; r_kernel = k; r_makespan_us = m }
      | _ ->
        Error
          (Printf.sprintf
             "row %d lacks config/kernel/makespan_us fields" i)
    in
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | r :: rest -> (
        match parse_row i r with
        | Ok row -> go (i + 1) (row :: acc) rest
        | Error _ as e -> e)
    in
    go 0 [] (Json.to_list rows)

let rows_of_string s =
  match Json.parse s with
  | Error msg -> Error ("not valid JSON: " ^ msg)
  | Ok doc -> rows_of_json doc

let compare_rows ?(tolerance = default_tolerance) ~baseline ~candidate () =
  let key r = (r.r_config, r.r_kernel) in
  let find rows k = List.find_opt (fun r -> key r = k) rows in
  let of_baseline =
    List.map
      (fun old ->
        match find candidate (key old) with
        | None ->
          {
            f_config = old.r_config;
            f_kernel = old.r_kernel;
            f_old = Some old.r_makespan_us;
            f_new = None;
            f_status = Missing;
          }
        | Some fresh ->
          let ratio =
            if old.r_makespan_us > 0.0 then
              fresh.r_makespan_us /. old.r_makespan_us
            else if fresh.r_makespan_us > 0.0 then infinity
            else 1.0
          in
          let status =
            if ratio > 1.0 +. tolerance then Regressed ratio
            else if ratio < 1.0 -. tolerance then Improved ratio
            else Unchanged
          in
          {
            f_config = old.r_config;
            f_kernel = old.r_kernel;
            f_old = Some old.r_makespan_us;
            f_new = Some fresh.r_makespan_us;
            f_status = status;
          })
      baseline
  in
  let added =
    List.filter_map
      (fun fresh ->
        if find baseline (key fresh) = None then
          Some
            {
              f_config = fresh.r_config;
              f_kernel = fresh.r_kernel;
              f_old = None;
              f_new = Some fresh.r_makespan_us;
              f_status = Added;
            }
        else None)
      candidate
  in
  let findings = of_baseline @ added in
  let regressions =
    List.length
      (List.filter
         (fun f ->
           match f.f_status with Regressed _ | Missing -> true | _ -> false)
         findings)
  in
  { tolerance; findings; regressions }

let ok report = report.regressions = 0

let finding_to_string f =
  let name = Printf.sprintf "%s/%s" f.f_config f.f_kernel in
  match f.f_status with
  | Unchanged ->
    Printf.sprintf "  ok        %-40s %10.1f us" name
      (Option.value ~default:0.0 f.f_new)
  | Improved ratio ->
    Printf.sprintf "  improved  %-40s %10.1f -> %.1f us (%.1f%%)" name
      (Option.value ~default:0.0 f.f_old)
      (Option.value ~default:0.0 f.f_new)
      (100.0 *. (ratio -. 1.0))
  | Regressed ratio ->
    Printf.sprintf "  REGRESSED %-40s %10.1f -> %.1f us (+%.1f%%)" name
      (Option.value ~default:0.0 f.f_old)
      (Option.value ~default:0.0 f.f_new)
      (100.0 *. (ratio -. 1.0))
  | Missing ->
    Printf.sprintf "  MISSING   %-40s %10.1f us in baseline, absent now" name
      (Option.value ~default:0.0 f.f_old)
  | Added ->
    Printf.sprintf "  added     %-40s %10.1f us (no baseline)" name
      (Option.value ~default:0.0 f.f_new)

let report_to_string report =
  String.concat "\n"
    (Printf.sprintf "bench compare (tolerance %.1f%%): %d rows, %d regressions"
       (100.0 *. report.tolerance)
       (List.length report.findings)
       report.regressions
    :: List.map finding_to_string report.findings)
