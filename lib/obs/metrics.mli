(** Metrics registry: named counters, gauges, and log-bucketed
    histograms with exact p50/p95/p99 summaries.

    Every recording entry point checks the [enabled] flag first, so a
    disabled registry costs the instrumented hot paths one branch and
    records nothing. *)

type t

val create : ?enabled:bool -> unit -> t
val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** {2 Recording} *)

val inc : t -> ?by:int -> string -> unit
(** Bump a counter.  Counters are monotonic: negative [by] raises. *)

val set_gauge : t -> string -> float -> unit
val add_gauge : t -> string -> float -> unit

val observe : t -> string -> float -> unit
(** Record one histogram sample.  Buckets are log-spaced powers of two:
    bucket 0 covers (-inf, 1], bucket i covers (2^(i-1), 2^i] up to
    2^26, then +Inf. *)

(** {2 Reading} *)

val counter_value : t -> string -> int option
val gauge_value : t -> string -> float option

type summary = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summary : t -> string -> summary option
(** Exact percentiles over the recorded samples
    ({!Tilelink_sim.Stats.percentile}); [None] if the histogram is
    absent or empty. *)

val merged_summary : t -> prefix:string -> summary option
(** Pool the samples of every histogram whose name starts with
    [prefix] (e.g. ["wait_us."]) into one summary. *)

val counter_names : t -> string list
val gauge_names : t -> string list
val histogram_names : t -> string list
(** All sorted, for deterministic exports. *)

val histogram_buckets : t -> string -> (float * int) list option
(** [(upper_bound, count)] per bucket, +Inf last. *)

val bucket_index : float -> int
(** Bucket a value falls into — exposed for boundary tests. *)

(** {2 Exporters} *)

val to_prometheus : t -> string
(** Prometheus text exposition format; names are prefixed with
    [tilelink_] and sanitized to [[a-zA-Z0-9_:]]. *)

val to_json : t -> Json.t
