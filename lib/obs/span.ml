(* Causal spans: the per-tile event record the critical-path profiler
   reads.

   Each span is one interval of work (or stall) attributed to a rank,
   carrying happens-before predecessor edges:
   - worker chaining: consecutive spans executed by the same worker
     process are program-ordered, so each task span points at the
     previous span on its worker;
   - notify issue: a Notify span points at the span its issuing worker
     had just finished (the cursor captured at issue time), so the
     signal inherits the producer's history even though delivery may be
     deferred by a fault interceptor;
   - wait resolution: a Wait_stall span points at the delivery that
     satisfied its threshold — the first Notify/Retry recorded on the
     key whose post-delivery counter value reached the threshold.
     Counter values are monotonic, so "first value >= threshold" is
     well defined under duplicated, delayed and force-signalled
     deliveries alike.

   Predecessor ids are always smaller than the successor's id and every
   predecessor ends no later than its successor (deliveries happen at
   the wait's release time at the latest), which is what lets the
   critical-path walk terminate and telescope exactly. *)

type kind = Compute | Copy | Wait_stall | Notify | Retry | Replay

let kind_to_string = function
  | Compute -> "compute"
  | Copy -> "copy"
  | Wait_stall -> "wait_stall"
  | Notify -> "notify"
  | Retry -> "retry"
  | Replay -> "replay"

type span = {
  id : int;
  kind : kind;
  label : string;
  rank : int;
  worker : int;  (* -1 when the span is not worker-chained *)
  t0 : float;
  t1 : float;
  key : string option;  (* signal key for Notify/Retry/Wait_stall *)
  value : int option;  (* delivered counter value (Notify/Retry) *)
  preds : int list;
}

type t = {
  mutable store : span array;
  mutable len : int;
  mutable next_worker : int;
  (* Last span id recorded on each worker: the program-order chain. *)
  last_on_worker : (int, int) Hashtbl.t;
  (* Per key, chronological (span id, delivered value) of every
     delivery (Notify and watchdog Retry spans) — the wait-resolution
     search space. *)
  candidates : (string, (int * int) list ref) Hashtbl.t;
  lock : Mutex.t;
  (* Serializes recording: span ids come from [len], so id allocation
     and store append must be one atomic step when parallel-backend
     worker domains record concurrently.  The [enabled] check stays
     outside the lock. *)
  mutable enabled : bool;
}

let dummy_span =
  {
    id = -1;
    kind = Compute;
    label = "";
    rank = -1;
    worker = -1;
    t0 = 0.0;
    t1 = 0.0;
    key = None;
    value = None;
    preds = [];
  }

let create ?(enabled = true) () =
  {
    store = Array.make 0 dummy_span;
    len = 0;
    next_worker = 0;
    last_on_worker = Hashtbl.create 32;
    candidates = Hashtbl.create 32;
    lock = Mutex.create ();
    enabled;
  }

let enabled t = t.enabled
let set_enabled t flag = t.enabled <- flag
let length t = t.len

let fresh_worker t =
  Mutex.protect t.lock (fun () ->
      let w = t.next_worker in
      t.next_worker <- w + 1;
      w)

let cursor t ~worker = Hashtbl.find_opt t.last_on_worker worker

let push t span =
  if t.len = Array.length t.store then begin
    let cap = if t.len = 0 then 64 else 2 * t.len in
    let grown = Array.make cap span in
    Array.blit t.store 0 grown 0 t.len;
    t.store <- grown
  end;
  t.store.(t.len) <- span;
  t.len <- t.len + 1

let chain t ~worker =
  if worker < 0 then []
  else
    match Hashtbl.find_opt t.last_on_worker worker with
    | Some prev -> [ prev ]
    | None -> []

let record_task t ~kind ~label ~rank ~worker ~t0 ~t1 =
  if t.enabled then
    Mutex.protect t.lock (fun () ->
        let id = t.len in
        let preds = chain t ~worker in
        push t
          { id; kind; label; rank; worker; t0; t1; key = None; value = None; preds };
        if worker >= 0 then Hashtbl.replace t.last_on_worker worker id)

let add_candidate t ~key ~id ~value =
  match Hashtbl.find_opt t.candidates key with
  | Some cell -> cell := (id, value) :: !cell
  | None -> Hashtbl.replace t.candidates key (ref [ (id, value) ])

(* A delivery: recorded at the instant the counter is raised, carrying
   the post-delivery value.  [pred] is the issuing worker's cursor at
   issue time — the causal history the signal propagates.  Not
   worker-chained: delivery can happen on the scheduler's time, long
   after the issuing worker moved on. *)
let record_notify ?pred t ~label ~rank ~key ~value ~t:at =
  if t.enabled then
    Mutex.protect t.lock (fun () ->
        let id = t.len in
        let preds = match pred with Some p -> [ p ] | None -> [] in
        push t
          {
            id;
            kind = Notify;
            label;
            rank;
            worker = -1;
            t0 = at;
            t1 = at;
            key = Some key;
            value = Some value;
            preds;
          };
        add_candidate t ~key ~id ~value)

(* A watchdog re-issue that force-raised [key] to [value]: chained on
   the watchdog's own worker and registered as a delivery so waits it
   released resolve onto it. *)
let record_retry t ~label ~rank ~worker ~key ~value ~t0 ~t1 =
  if t.enabled then
    Mutex.protect t.lock (fun () ->
        let id = t.len in
        let preds = chain t ~worker in
        push t
          {
            id;
            kind = Retry;
            label;
            rank;
            worker;
            t0;
            t1;
            key = Some key;
            value = Some value;
            preds;
          };
        if worker >= 0 then Hashtbl.replace t.last_on_worker worker id;
        add_candidate t ~key ~id ~value)

(* The delivery that released a wait: the chronologically first one on
   the key whose post-delivery value met the threshold.  Candidate
   lists are newest-first, so scan a reversed copy. *)
let resolve t ~key ~threshold =
  match Hashtbl.find_opt t.candidates key with
  | None -> None
  | Some cell ->
    List.fold_left
      (fun acc (id, value) -> if value >= threshold then Some id else acc)
      None !cell

let record_wait t ~label ~rank ~worker ~key ~threshold ~t0 ~t1 =
  if t.enabled then
    Mutex.protect t.lock (fun () ->
        let id = t.len in
        let preds =
          chain t ~worker
          @ (match resolve t ~key ~threshold with Some p -> [ p ] | None -> [])
        in
        push t
          {
            id;
            kind = Wait_stall;
            label;
            rank;
            worker;
            t0;
            t1;
            key = Some key;
            value = None;
            preds;
          };
        if worker >= 0 then Hashtbl.replace t.last_on_worker worker id)

let spans t = Array.to_list (Array.sub t.store 0 t.len)

let span_to_json s =
  Json.Obj
    ([
       ("id", Json.Num (float_of_int s.id));
       ("kind", Json.Str (kind_to_string s.kind));
       ("label", Json.Str s.label);
       ("rank", Json.Num (float_of_int s.rank));
       ("worker", Json.Num (float_of_int s.worker));
       ("t0", Json.Num s.t0);
       ("t1", Json.Num s.t1);
     ]
    @ (match s.key with Some k -> [ ("key", Json.Str k) ] | None -> [])
    @ (match s.value with
      | Some v -> [ ("value", Json.Num (float_of_int v)) ]
      | None -> [])
    @ [
        ( "preds",
          Json.List (List.map (fun p -> Json.Num (float_of_int p)) s.preds) );
      ])

let to_json t = Json.List (List.map span_to_json (spans t))
