(** Bench regression gating: diff two BENCH_*.json artifacts on their
    deterministic [makespan_us] rows, keyed (config, kernel).  A
    baseline row missing from the candidate is a regression; a row
    only the candidate has is informational. *)

type row = { r_config : string; r_kernel : string; r_makespan_us : float }

type status =
  | Unchanged
  | Improved of float  (** ratio new/old *)
  | Regressed of float  (** ratio new/old *)
  | Missing  (** baseline row absent from candidate — a regression *)
  | Added  (** candidate-only row — informational *)

type finding = {
  f_config : string;
  f_kernel : string;
  f_old : float option;
  f_new : float option;
  f_status : status;
}

type report = {
  tolerance : float;
  findings : finding list;
  regressions : int;  (** [Regressed] plus [Missing] findings *)
}

val default_tolerance : float
(** 0.05 — a 5% slowdown trips the gate. *)

val rows_of_json : Json.t -> (row list, string) result
val rows_of_string : string -> (row list, string) result

val compare_rows :
  ?tolerance:float -> baseline:row list -> candidate:row list -> unit -> report

val ok : report -> bool
val report_to_string : report -> string
