(* Critical path through a run's span DAG.

   The terminal span is the one finishing last (ties broken towards the
   earliest-recorded span, keeping the walk deterministic).  From it we
   walk backwards along *gating* predecessors — among a span's
   happens-before edges, the one finishing latest is the edge that
   actually delayed it.  Predecessor ids are strictly smaller than
   their successors' (see {!Span}), so the walk terminates, and every
   predecessor ends no later than its successor starts being
   releasable, so the chronological path has non-decreasing end times.

   The forward pass then charges wall-clock exactly once:
     charged(s) = t1(s) - max(t0(s), end of previous path span)
     gap(s)     = max(0, t0(s) - end of previous path span)
   and the leading/tail slack around the path.  By construction
     sum(charged) + sum(gap) + tail = makespan
   with no tolerance needed — the conservation invariant Attribution
   re-checks. *)

type step = {
  span : Span.span;
  charged : float;  (* wall-clock this span uniquely accounts for *)
  gap_before : float;  (* idle time on the path before this span *)
  gap_same_rank : bool;
      (* the gap sits on the same rank as the previous path span (or is
         the leading gap): resource contention rather than a cross-rank
         straggler *)
}

type t = {
  path : step list;  (* chronological *)
  makespan : float;
  tail_slack : float;  (* makespan minus the terminal span's end *)
}

let gating_pred byid (s : Span.span) =
  List.fold_left
    (fun acc p ->
      let cand : Span.span = byid.(p) in
      match acc with
      | None -> Some cand
      | Some (best : Span.span) ->
        if
          cand.Span.t1 > best.Span.t1
          || (cand.Span.t1 = best.Span.t1 && cand.Span.id < best.Span.id)
        then Some cand
        else acc)
    None s.Span.preds

let extract ~makespan spans =
  match spans with
  | [] -> None
  | first :: _ ->
    let n = List.length spans in
    let byid = Array.make n (first : Span.span) in
    List.iter (fun (s : Span.span) -> byid.(s.Span.id) <- s) spans;
    let terminal =
      List.fold_left
        (fun (acc : Span.span) (s : Span.span) ->
          if
            s.Span.t1 > acc.Span.t1
            || (s.Span.t1 = acc.Span.t1 && s.Span.id < acc.Span.id)
          then s
          else acc)
        first spans
    in
    let rec back acc (s : Span.span) =
      match gating_pred byid s with
      | None -> s :: acc
      | Some pred -> back (s :: acc) pred
    in
    let chronological = back [] terminal in
    let path, _, _ =
      List.fold_left
        (fun (acc, prev_end, prev_rank) (s : Span.span) ->
          let gap = Float.max 0.0 (s.Span.t0 -. prev_end) in
          let charged = Float.max 0.0 (s.Span.t1 -. Float.max s.Span.t0 prev_end) in
          let gap_same_rank =
            match prev_rank with None -> true | Some r -> r = s.Span.rank
          in
          ( { span = s; charged; gap_before = gap; gap_same_rank } :: acc,
            Float.max prev_end s.Span.t1,
            Some s.Span.rank ))
        ([], 0.0, None) chronological
    in
    let path = List.rev path in
    let tail_slack = Float.max 0.0 (makespan -. terminal.Span.t1) in
    Some { path; makespan; tail_slack }

(* Wall-clock charged to each rank along the path (gaps excluded),
   sorted by rank. *)
let rank_blame t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun step ->
      let r = step.span.Span.rank in
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl r) in
      Hashtbl.replace tbl r (prev +. step.charged))
    t.path;
  List.sort compare (Hashtbl.fold (fun r v acc -> (r, v) :: acc) tbl [])

(* Blocked time per signal key along the path, largest first (key
   breaks ties) — the per-channel blame report.  This sums each path
   wait's full blocked duration, not its exclusive charge: a resolved
   wait's gating predecessor is the delivery that ended it, so its
   charge telescopes to zero and the wall-clock lands on the producer
   chain (the causally correct bucket).  What the report answers is
   the different question of *which channels* the critical chain sat
   blocked on, and for how long. *)
let key_blame t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun step ->
      match (step.span.Span.kind, step.span.Span.key) with
      | Span.Wait_stall, Some key
        when step.span.Span.t1 > step.span.Span.t0 ->
        let blocked = step.span.Span.t1 -. step.span.Span.t0 in
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl key) in
        Hashtbl.replace tbl key (prev +. blocked)
      | _ -> ())
    t.path;
  List.sort
    (fun (k1, v1) (k2, v2) ->
      match compare v2 v1 with 0 -> compare k1 k2 | c -> c)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let step_to_json step =
  Json.Obj
    [
      ("span", Span.span_to_json step.span);
      ("charged_us", Json.Num step.charged);
      ("gap_before_us", Json.Num step.gap_before);
      ("gap_same_rank", Json.Bool step.gap_same_rank);
    ]

let to_json t =
  Json.Obj
    [
      ("makespan_us", Json.Num t.makespan);
      ("tail_slack_us", Json.Num t.tail_slack);
      ( "rank_blame",
        Json.Obj
          (List.map
             (fun (r, v) -> (string_of_int r, Json.Num v))
             (rank_blame t)) );
      ( "key_blame",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) (key_blame t)) );
      ("path", Json.List (List.map step_to_json t.path));
    ]

(* Perfetto overlay: one flow chain threading the critical path, plus a
   duration event per step on a dedicated "critical path" track (pid
   one past the last rank so it sorts after the per-rank process
   groups).  Merging these events into an existing export makes the
   path pop visually without touching the underlying trace. *)
let perfetto_events ?(pid = 9999) t =
  let step_events =
    List.concat_map
      (fun step ->
        let s = step.span in
        if step.charged <= 0.0 then []
        else
          [
            Json.Obj
              [
                ("name", Json.Str
                   (Printf.sprintf "%s:%s"
                      (Span.kind_to_string s.Span.kind)
                      s.Span.label));
                ("ph", Json.Str "X");
                ("ts", Json.Num (Float.max s.Span.t0 (s.Span.t1 -. step.charged)));
                ("dur", Json.Num step.charged);
                ("pid", Json.Num (float_of_int pid));
                ("tid", Json.Num (float_of_int s.Span.rank));
                ( "args",
                  Json.Obj
                    [
                      ("rank", Json.Num (float_of_int s.Span.rank));
                      ("gap_before_us", Json.Num step.gap_before);
                    ] );
              ];
          ])
      t.path
  in
  let flow phase ~id ~t =
    Json.Obj
      ([
         ("name", Json.Str "critical path");
         ("cat", Json.Str "critpath");
         ("ph", Json.Str phase);
         ("id", Json.Num (float_of_int id));
         ("ts", Json.Num t);
         ("pid", Json.Num (float_of_int pid));
         ("tid", Json.Num 0.0);
       ]
      @ if phase = "f" then [ ("bp", Json.Str "e") ] else [])
  in
  let rec flows i = function
    | s1 :: (s2 :: _ as rest) ->
      flow "s" ~id:(1000000 + i) ~t:s1.span.Span.t1
      :: flow "f" ~id:(1000000 + i) ~t:s2.span.Span.t1
      :: flows (i + 1) rest
    | _ -> []
  in
  let name =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Num (float_of_int pid));
        ( "args",
          Json.Obj [ ("name", Json.Str "critical path") ] );
      ]
  in
  name :: step_events @ flows 0 t.path
