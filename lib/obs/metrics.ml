(* Metrics registry: named counters, gauges, and log-bucketed
   histograms.

   The registry is the always-cheap half of the telemetry subsystem:
   every recording entry point checks [enabled] first and returns
   immediately when the registry is off, so instrumented hot paths pay
   one load and one branch.  Histograms keep both log-spaced bucket
   counts (for the Prometheus export) and the raw samples (so the
   p50/p95/p99 summaries are exact, via [Stats.percentile], instead of
   bucket-boundary estimates). *)

type counter = { mutable c_value : int }
type gauge = { mutable g_value : float }

(* Growable float array: histograms see one sample per primitive
   invocation, so appending must not allocate a list cell each time. *)
type samples = { mutable data : float array; mutable len : int }

let samples_create () = { data = Array.make 64 0.0; len = 0 }

let samples_push s v =
  if s.len = Array.length s.data then begin
    let bigger = Array.make (2 * s.len) 0.0 in
    Array.blit s.data 0 bigger 0 s.len;
    s.data <- bigger
  end;
  s.data.(s.len) <- v;
  s.len <- s.len + 1

let samples_list s = Array.to_list (Array.sub s.data 0 s.len)

(* Log-spaced bucket upper bounds: 1, 2, 4, ... 2^26 µs (~67 s), plus
   an implicit +Inf overflow bucket.  Bucket 0 covers (-inf, 1]; bucket
   i covers (2^(i-1), 2^i]. *)
let num_bounds = 27

let bucket_bounds =
  lazy (Array.init num_bounds (fun i -> Float.of_int (1 lsl i)))

let bucket_index v =
  let bounds = Lazy.force bucket_bounds in
  let rec go i =
    if i >= num_bounds then num_bounds else if v <= bounds.(i) then i
    else go (i + 1)
  in
  go 0

type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array; (* num_bounds + 1, last is overflow *)
  h_samples : samples;
}

type t = {
  mutable enabled : bool;
  lock : Mutex.t;
  (* Serializes every recording mutation: the parallel backend calls
     [inc]/[observe] from worker domains.  The [enabled] check stays
     outside the lock so a disabled registry still costs one load and
     one branch on the hot path. *)
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create ?(enabled = true) () =
  {
    enabled;
    lock = Mutex.create ();
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 32;
    histograms = Hashtbl.create 32;
  }

let enabled t = t.enabled
let set_enabled t flag = t.enabled <- flag

let find_or_add table name fresh =
  match Hashtbl.find_opt table name with
  | Some v -> v
  | None ->
    let v = fresh () in
    Hashtbl.add table name v;
    v

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let inc t ?(by = 1) name =
  if t.enabled then begin
    if by < 0 then invalid_arg "Metrics.inc: counters are monotonic";
    Mutex.protect t.lock (fun () ->
        let c = find_or_add t.counters name (fun () -> { c_value = 0 }) in
        c.c_value <- c.c_value + by)
  end

let set_gauge t name v =
  if t.enabled then
    Mutex.protect t.lock (fun () ->
        let g = find_or_add t.gauges name (fun () -> { g_value = 0.0 }) in
        g.g_value <- v)

let add_gauge t name v =
  if t.enabled then
    Mutex.protect t.lock (fun () ->
        let g = find_or_add t.gauges name (fun () -> { g_value = 0.0 }) in
        g.g_value <- g.g_value +. v)

let observe t name v =
  if t.enabled then
    Mutex.protect t.lock (fun () ->
        let h =
          find_or_add t.histograms name (fun () ->
              {
                h_count = 0;
                h_sum = 0.0;
                h_min = infinity;
                h_max = neg_infinity;
                h_buckets = Array.make (num_bounds + 1) 0;
                h_samples = samples_create ();
              })
        in
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        h.h_min <- Float.min h.h_min v;
        h.h_max <- Float.max h.h_max v;
        let i = bucket_index v in
        h.h_buckets.(i) <- h.h_buckets.(i) + 1;
        samples_push h.h_samples v)

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let counter_value t name =
  Option.map (fun c -> c.c_value) (Hashtbl.find_opt t.counters name)

let gauge_value t name =
  Option.map (fun g -> g.g_value) (Hashtbl.find_opt t.gauges name)

type summary = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let summarize h =
  let xs = samples_list h.h_samples in
  let pct p = Tilelink_sim.Stats.percentile p xs in
  {
    count = h.h_count;
    sum = h.h_sum;
    mean = h.h_sum /. float_of_int h.h_count;
    min = h.h_min;
    max = h.h_max;
    p50 = pct 50.0;
    p95 = pct 95.0;
    p99 = pct 99.0;
  }

let summary t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h when h.h_count > 0 -> Some (summarize h)
  | _ -> None

(* Merge every histogram whose name starts with [prefix] into one
   summary — e.g. [wait_us.] pools the pc/peer/host wait latencies so
   reports can quote one per-run wait distribution. *)
let merged_summary t ~prefix =
  (* Pool in sorted-name order, not Hashtbl.fold order: float sums are
     order-sensitive, and snapshots must diff cleanly across runs. *)
  let matching =
    Hashtbl.fold
      (fun name h acc ->
        if
          String.length name >= String.length prefix
          && String.sub name 0 (String.length prefix) = prefix
        then (name, h) :: acc
        else acc)
      t.histograms []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map snd
  in
  let xs = List.concat_map (fun h -> samples_list h.h_samples) matching in
  match xs with
  | [] -> None
  | _ ->
    let pct p = Tilelink_sim.Stats.percentile p xs in
    let count = List.length xs in
    let sum = List.fold_left ( +. ) 0.0 xs in
    Some
      {
        count;
        sum;
        mean = sum /. float_of_int count;
        min = Tilelink_sim.Stats.minimum xs;
        max = Tilelink_sim.Stats.maximum xs;
        p50 = pct 50.0;
        p95 = pct 95.0;
        p99 = pct 99.0;
      }

let sorted_names table =
  Hashtbl.fold (fun name _ acc -> name :: acc) table []
  |> List.sort String.compare

let counter_names t = sorted_names t.counters
let gauge_names t = sorted_names t.gauges
let histogram_names t = sorted_names t.histograms

let histogram_buckets t name =
  match Hashtbl.find_opt t.histograms name with
  | None -> None
  | Some h ->
    let bounds = Lazy.force bucket_bounds in
    Some
      (List.init (num_bounds + 1) (fun i ->
           let le = if i < num_bounds then bounds.(i) else infinity in
           (le, h.h_buckets.(i))))

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

(* Prometheus metric names allow [a-zA-Z0-9_:]; dots and brackets from
   our hierarchical names become underscores. *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let to_prometheus t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun name ->
      let p = "tilelink_" ^ sanitize name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" p);
      Buffer.add_string buf
        (Printf.sprintf "%s %d\n" p (Option.get (counter_value t name))))
    (counter_names t);
  List.iter
    (fun name ->
      let p = "tilelink_" ^ sanitize name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" p);
      Buffer.add_string buf
        (Printf.sprintf "%s %.6g\n" p (Option.get (gauge_value t name))))
    (gauge_names t);
  List.iter
    (fun name ->
      let p = "tilelink_" ^ sanitize name in
      let h = Hashtbl.find t.histograms name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" p);
      let cumulative = ref 0 in
      List.iter
        (fun (le, count) ->
          cumulative := !cumulative + count;
          let le_str =
            if Float.is_integer le then Printf.sprintf "%.0f" le else "+Inf"
          in
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" p le_str !cumulative))
        (Option.get (histogram_buckets t name));
      Buffer.add_string buf (Printf.sprintf "%s_sum %.6g\n" p h.h_sum);
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" p h.h_count))
    (histogram_names t);
  Buffer.contents buf

let to_json t =
  let counters =
    List.map
      (fun name ->
        (name, Json.Num (float_of_int (Option.get (counter_value t name)))))
      (counter_names t)
  in
  let gauges =
    List.map
      (fun name -> (name, Json.Num (Option.get (gauge_value t name))))
      (gauge_names t)
  in
  let histograms =
    List.map
      (fun name ->
        let s = Option.get (summary t name) in
        let buckets =
          List.filter_map
            (fun (le, count) ->
              if count = 0 then None
              else
                Some
                  (Json.Obj
                     [
                       ("le", if Float.is_integer le then Json.Num le
                              else Json.Str "+Inf");
                       ("count", Json.Num (float_of_int count));
                     ]))
            (Option.get (histogram_buckets t name))
        in
        ( name,
          Json.Obj
            [
              ("count", Json.Num (float_of_int s.count));
              ("sum", Json.Num s.sum);
              ("mean", Json.Num s.mean);
              ("min", Json.Num s.min);
              ("max", Json.Num s.max);
              ("p50", Json.Num s.p50);
              ("p95", Json.Num s.p95);
              ("p99", Json.Num s.p99);
              ("buckets", Json.List buckets);
            ] ))
      (histogram_names t)
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
    ]
