(** Critical-path extraction over a run's causal span DAG
    (see {!Span}): walk back from the last-finishing span along gating
    predecessors, then charge wall-clock exactly once along the
    chronological path.  [sum charged + sum gaps + tail_slack =
    makespan] holds by construction. *)

type step = {
  span : Span.span;
  charged : float;  (** wall-clock this span uniquely accounts for *)
  gap_before : float;  (** idle time on the path before this span *)
  gap_same_rank : bool;
      (** gap sits on the previous path span's rank (or leads the run):
          contention rather than cross-rank straggler slack *)
}

type t = {
  path : step list;  (** chronological *)
  makespan : float;
  tail_slack : float;
}

val extract : makespan:float -> Span.span list -> t option
(** [None] on an empty span list.  The list must be a complete
    recorder output ({!Span.spans}): predecessor ids are resolved by
    position. *)

val rank_blame : t -> (int * float) list
(** Charged wall-clock per rank along the path, sorted by rank. *)

val key_blame : t -> (string * float) list
(** Blocked duration per signal key of the path's wait spans, largest
    first.  Reports which channels the critical chain sat blocked on —
    distinct from the exclusive charge, which telescopes onto the
    producer chain that caused the block. *)

val to_json : t -> Json.t

val perfetto_events : ?pid:int -> t -> Json.t list
(** Overlay events (duration slices + a flow chain + a process-name
    record under [pid], default 9999) to append to a Perfetto export,
    highlighting the critical path on its own track. *)
