(** Makespan attribution: conserved buckets over the critical path
    plus an overlap-efficiency score.

    [bucket_sum] equals the makespan by construction (the critical
    path charges wall-clock exactly once); {!conserved} tolerates only
    float round-off.  Overlap efficiency is [1 - exposed/total]
    communication time — 1.0 for a fully hidden schedule (or one with
    no communication at all), 0.0 for a fully serial one. *)

type buckets = {
  compute : float;
  exposed_comm : float;
  wait_stall : float;
  contention : float;
  straggler : float;
  recovery : float;
}

type t = {
  buckets : buckets;
  makespan : float;
  total_comm : float;  (** every Copy span's duration, on-path or not *)
  hidden_comm : float;
  efficiency : float;
  cross_island_recovery : float;
      (** informational sub-metric of [recovery]: total duration of
          Replay spans that executed on a survivor outside the dead
          rank's NVLink island (the runtime's ["@x"] label marker);
          sums all such spans, so it is not part of the conserved
          bucket identity *)
}

val of_spans : makespan:float -> Span.span list -> t
(** Attribution for one run.  An empty span list yields all-straggler
    buckets (still conserved). *)

val bucket_sum : t -> float
val conserved : ?tolerance:float -> t -> bool
(** Default tolerance 1.0 (one time unit). *)

val to_json : t -> Json.t
val to_string : t -> string
