(** The telemetry handle instrumented layers thread through: a metrics
    registry, an event journal, and a causal span recorder behind one
    enable switch. *)

type t = { metrics : Metrics.t; journal : Journal.t; spans : Span.t }

val create : ?enabled:bool -> ?journal_capacity:int -> unit -> t
val metrics : t -> Metrics.t
val journal : t -> Journal.t
val spans : t -> Span.t
val enabled : t -> bool
val set_enabled : t -> bool -> unit

val active : t option -> bool
(** The one guard hot paths use: [true] only for [Some t] with [t]
    enabled. *)
