(* Structured event journal: a bounded ring buffer of typed telemetry
   events.

   Where the metrics registry aggregates, the journal keeps the raw
   sequence: every signal set, wait begin/end, tile push/pull, and
   channel acquire/release, timestamped in simulation time.  The
   Perfetto exporter mines it to reconstruct notify->wait flow arrows
   and counter tracks; the deadlock event preserves the context the
   engine had when a run wedged.  Bounded so a pathological run cannot
   eat the heap: once full, the oldest entries are overwritten and
   [dropped] counts what was lost. *)

type event =
  | Signal_set of { key : string; rank : int; amount : int; value : int }
      (** A notify landed on channel [key] owned by [rank]; the
          counter's value after the add is [value]. *)
  | Wait_begin of { key : string; rank : int; threshold : int }
  | Wait_end of { key : string; rank : int; threshold : int; started : float }
  | Tile_push of { label : string; src : int; dst : int; bytes : float }
  | Tile_pull of { label : string; src : int; dst : int; bytes : float }
  | Channel_acquire of { rank : int; base : int; extent : int }
  | Channel_release of { rank : int; base : int; extent : int }
  | Deadlock of { message : string; blocked : int }
  | Fault_injected of { kind : string; key : string; rank : int }
      (** Chaos injected a fault of [kind] (drop/duplicate/delay/...)
          on signal [key] owned by [rank]. *)
  | Retry of { key : string; rank : int; attempt : int }
  | Recovered of { key : string; rank : int; latency : float }
  | Stall_detected of { key : string; rank : int; threshold : int; value : int }
  | Degraded of { key : string; rank : int }
  | Rank_crashed of { rank : int; transient : bool }
      (** Chaos killed [rank]; [transient] when it will restart. *)
  | Remapped of { rank : int; tiles : int }
      (** Failover rerouted [tiles] unfinished tiles of dead [rank]
          onto the survivors. *)
  | Resumed of { rank : int; replayed : int; latency : float }
      (** Failover replayed [replayed] lost tasks of [rank] and
          resumed, [latency] µs after the crash. *)
  | Request_shed of { id : int; reason : string }
      (** The serving layer dropped request [id]
        (queue_full/deadline/timeout) instead of poisoning the batch. *)
  | Tier_change of { tier : string; pressure : float }
      (** The serving layer's degradation controller switched to
          [tier] at queue [pressure] (depth / capacity). *)

(* Severity: the routine signal/tile chatter is Debug; recovery
   actions the watchdog took are Info; lost-work outcomes (degraded
   reads, detected stalls) are Warn; run-killing conditions are
   Error.  Ordered so [min_level] filters compare naturally. *)
type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_of_event = function
  | Signal_set _ | Wait_begin _ | Wait_end _ | Tile_push _ | Tile_pull _
  | Channel_acquire _ | Channel_release _ ->
    Debug
  | Fault_injected _ | Retry _ | Recovered _ | Remapped _ | Resumed _
  | Tier_change _ ->
    Info
  | Stall_detected _ | Degraded _ | Request_shed _ -> Warn
  | Deadlock _ | Rank_crashed _ -> Error

type entry = { t : float; seq : int; event : event }

type t = {
  capacity : int;
  buf : entry option array;
  lock : Mutex.t;
  (* Serializes ring writes: worker domains of the parallel backend
     record concurrently, and slot claim + cursor bump must be one
     atomic step or entries overwrite each other.  The [enabled] check
     stays outside the lock. *)
  mutable next : int; (* total events ever recorded *)
  mutable enabled : bool;
}

let create ?(capacity = 65536) ?(enabled = true) () =
  if capacity <= 0 then invalid_arg "Journal.create: capacity";
  {
    capacity;
    buf = Array.make capacity None;
    lock = Mutex.create ();
    next = 0;
    enabled;
  }

let enabled t = t.enabled
let set_enabled t flag = t.enabled <- flag
let capacity t = t.capacity

let record t ~t:time event =
  if t.enabled then
    Mutex.protect t.lock (fun () ->
        t.buf.(t.next mod t.capacity) <- Some { t = time; seq = t.next; event };
        t.next <- t.next + 1)

let length t = min t.next t.capacity
let dropped t = max 0 (t.next - t.capacity)

(* Oldest first.  When the ring has wrapped, the oldest live entry sits
   at [next mod capacity].  An empty slot inside the live window should
   be impossible, but the journal is diagnostic machinery — it must not
   take a run down, so [None] slots are skipped rather than asserted
   away (the wrap boundary [next = capacity] is the historical culprit:
   [next mod capacity] is 0 there while nothing has been overwritten
   yet). *)
let entries ?min_level t =
  let len = length t in
  let start = if t.next > t.capacity then t.next mod t.capacity else 0 in
  let keep =
    match min_level with
    | None -> fun _ -> true
    | Some floor ->
      fun e -> level_rank (level_of_event e.event) >= level_rank floor
  in
  List.filter_map
    (fun i ->
      match t.buf.((start + i) mod t.capacity) with
      | Some e when keep e -> Some e
      | _ -> None)
    (List.init len Fun.id)

let event_name = function
  | Signal_set _ -> "signal_set"
  | Wait_begin _ -> "wait_begin"
  | Wait_end _ -> "wait_end"
  | Tile_push _ -> "tile_push"
  | Tile_pull _ -> "tile_pull"
  | Channel_acquire _ -> "channel_acquire"
  | Channel_release _ -> "channel_release"
  | Deadlock _ -> "deadlock"
  | Fault_injected _ -> "fault_injected"
  | Retry _ -> "retry"
  | Recovered _ -> "recovered"
  | Stall_detected _ -> "stall_detected"
  | Degraded _ -> "degraded"
  | Rank_crashed _ -> "rank_crashed"
  | Remapped _ -> "remapped"
  | Resumed _ -> "resumed"
  | Request_shed _ -> "request_shed"
  | Tier_change _ -> "tier_change"

let entry_to_json { t = time; seq; event } =
  let base = [ ("t", Json.Num time); ("seq", Json.Num (float_of_int seq)) ] in
  let fields =
    match event with
    | Signal_set { key; rank; amount; value } ->
      [
        ("key", Json.Str key);
        ("rank", Json.Num (float_of_int rank));
        ("amount", Json.Num (float_of_int amount));
        ("value", Json.Num (float_of_int value));
      ]
    | Wait_begin { key; rank; threshold } ->
      [
        ("key", Json.Str key);
        ("rank", Json.Num (float_of_int rank));
        ("threshold", Json.Num (float_of_int threshold));
      ]
    | Wait_end { key; rank; threshold; started } ->
      [
        ("key", Json.Str key);
        ("rank", Json.Num (float_of_int rank));
        ("threshold", Json.Num (float_of_int threshold));
        ("started", Json.Num started);
      ]
    | Tile_push { label; src; dst; bytes }
    | Tile_pull { label; src; dst; bytes } ->
      [
        ("label", Json.Str label);
        ("src", Json.Num (float_of_int src));
        ("dst", Json.Num (float_of_int dst));
        ("bytes", Json.Num bytes);
      ]
    | Channel_acquire { rank; base; extent }
    | Channel_release { rank; base; extent } ->
      [
        ("rank", Json.Num (float_of_int rank));
        ("base", Json.Num (float_of_int base));
        ("extent", Json.Num (float_of_int extent));
      ]
    | Deadlock { message; blocked } ->
      [
        ("message", Json.Str message);
        ("blocked", Json.Num (float_of_int blocked));
      ]
    | Fault_injected { kind; key; rank } ->
      [
        ("kind", Json.Str kind);
        ("key", Json.Str key);
        ("rank", Json.Num (float_of_int rank));
      ]
    | Retry { key; rank; attempt } ->
      [
        ("key", Json.Str key);
        ("rank", Json.Num (float_of_int rank));
        ("attempt", Json.Num (float_of_int attempt));
      ]
    | Recovered { key; rank; latency } ->
      [
        ("key", Json.Str key);
        ("rank", Json.Num (float_of_int rank));
        ("latency", Json.Num latency);
      ]
    | Stall_detected { key; rank; threshold; value } ->
      [
        ("key", Json.Str key);
        ("rank", Json.Num (float_of_int rank));
        ("threshold", Json.Num (float_of_int threshold));
        ("value", Json.Num (float_of_int value));
      ]
    | Degraded { key; rank } ->
      [ ("key", Json.Str key); ("rank", Json.Num (float_of_int rank)) ]
    | Rank_crashed { rank; transient } ->
      [
        ("rank", Json.Num (float_of_int rank));
        ("transient", Json.Bool transient);
      ]
    | Remapped { rank; tiles } ->
      [
        ("rank", Json.Num (float_of_int rank));
        ("tiles", Json.Num (float_of_int tiles));
      ]
    | Resumed { rank; replayed; latency } ->
      [
        ("rank", Json.Num (float_of_int rank));
        ("replayed", Json.Num (float_of_int replayed));
        ("latency", Json.Num latency);
      ]
    | Request_shed { id; reason } ->
      [ ("id", Json.Num (float_of_int id)); ("reason", Json.Str reason) ]
    | Tier_change { tier; pressure } ->
      [ ("tier", Json.Str tier); ("pressure", Json.Num pressure) ]
  in
  Json.Obj
    (("event", Json.Str (event_name event))
    :: ("level", Json.Str (level_to_string (level_of_event event)))
    :: (base @ fields))

(* One-line rendering for exception payloads: the deadlock enrichment
   splices the last few journal entries into the message. *)
let entry_summary { t = time; event; _ } =
  let detail =
    match event with
    | Signal_set { key; rank; amount; value } ->
      Printf.sprintf "%s rank=%d +%d -> %d" key rank amount value
    | Wait_begin { key; rank; threshold } ->
      Printf.sprintf "%s rank=%d >=%d" key rank threshold
    | Wait_end { key; rank; threshold; started } ->
      Printf.sprintf "%s rank=%d >=%d (began t=%.1f)" key rank threshold started
    | Tile_push { label; src; dst; bytes } | Tile_pull { label; src; dst; bytes }
      ->
      Printf.sprintf "%s %d->%d %.0fB" label src dst bytes
    | Channel_acquire { rank; base; extent }
    | Channel_release { rank; base; extent } ->
      Printf.sprintf "rank=%d base=%d extent=%d" rank base extent
    | Deadlock { message; blocked } ->
      Printf.sprintf "blocked=%d %s" blocked message
    | Fault_injected { kind; key; rank } ->
      Printf.sprintf "%s %s rank=%d" kind key rank
    | Retry { key; rank; attempt } ->
      Printf.sprintf "%s rank=%d attempt=%d" key rank attempt
    | Recovered { key; rank; latency } ->
      Printf.sprintf "%s rank=%d after %.1fus" key rank latency
    | Stall_detected { key; rank; threshold; value } ->
      Printf.sprintf "%s rank=%d value=%d threshold=%d" key rank value threshold
    | Degraded { key; rank } -> Printf.sprintf "%s rank=%d" key rank
    | Rank_crashed { rank; transient } ->
      Printf.sprintf "rank=%d%s" rank (if transient then " transient" else "")
    | Remapped { rank; tiles } ->
      Printf.sprintf "rank=%d tiles=%d" rank tiles
    | Resumed { rank; replayed; latency } ->
      Printf.sprintf "rank=%d replayed=%d after %.1fus" rank replayed latency
    | Request_shed { id; reason } -> Printf.sprintf "id=%d %s" id reason
    | Tier_change { tier; pressure } ->
      Printf.sprintf "%s pressure=%.2f" tier pressure
  in
  Printf.sprintf "t=%.1f %s %s" time (event_name event) detail

let to_json ?min_level t =
  Json.Obj
    [
      ("dropped", Json.Num (float_of_int (dropped t)));
      ("entries", Json.List (List.map entry_to_json (entries ?min_level t)));
    ]
