(** Minimal JSON AST, printer, and parser.

    Backs every telemetry artifact (metrics dumps, Perfetto traces,
    BENCH_*.json) and lets tests and [profile --check] re-parse what
    the exporters wrote without an external JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string

exception Parse_error of string

val parse_exn : string -> t
(** Raises {!Parse_error} on malformed input. *)

val parse : string -> (t, string) result

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)

val to_list : t -> t list
(** Items of a [List]; [[]] on other constructors. *)

val to_float : t -> float option
val to_str : t -> string option
