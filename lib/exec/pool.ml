(* Domain-based work pool for independent, deterministic tasks.

   Every evaluation sweep in this code base — autotuning, benchmark
   grids, ablations — is a list of pure simulator runs, so the pool is
   deliberately simple: tasks self-schedule off one atomic counter
   (dynamic chunking degenerates to work-stealing granularity 1),
   results land in a slot array indexed by task position, and the
   caller sees exactly the ordering it would get from [List.map].
   Exceptions never cross domains raw: each task is captured into a
   [result] and re-raised, if at all, by the caller on the coordinating
   domain.

   Domains are spawned per [map] call and joined before it returns.
   Sweeps here run thousands of simulator events per task, so spawn
   cost (~10 us per domain) is noise, and the pool never holds idle
   domains hostage between sweeps. *)

exception Task_timeout of float
(* Measured task duration in seconds; see [task_timeout_s]. *)

type stats = {
  tasks_run : int;
  stolen : int;
  task_time_s : float;
  wall_time_s : float;
  runs : int;
  timeouts : int;
}

type t = {
  domains : int;
  telemetry : Tilelink_obs.Telemetry.t option;
  task_timeout_s : float option;
  mutable tasks_run : int;
  mutable stolen : int;
  mutable task_time_s : float;
  mutable wall_time_s : float;
  mutable runs : int;
  mutable timeouts : int;
}

let create ?domains ?task_timeout_s ?telemetry () =
  let domains =
    match domains with
    | Some n ->
      if n < 1 then invalid_arg "Pool.create: domains must be >= 1";
      n
    | None -> Domain.recommended_domain_count ()
  in
  (match task_timeout_s with
  | Some s when s <= 0.0 -> invalid_arg "Pool.create: task_timeout_s must be > 0"
  | _ -> ());
  {
    domains;
    telemetry;
    task_timeout_s;
    tasks_run = 0;
    stolen = 0;
    task_time_s = 0.0;
    wall_time_s = 0.0;
    runs = 0;
    timeouts = 0;
  }

let domains t = t.domains

let stats t =
  {
    tasks_run = t.tasks_run;
    stolen = t.stolen;
    task_time_s = t.task_time_s;
    wall_time_s = t.wall_time_s;
    runs = t.runs;
    timeouts = t.timeouts;
  }

(* Run [tasks] to completion and fill [results]/[latencies]/[owners].
   Worker [w] claims the next unclaimed index until none remain; the
   slot arrays are written at disjoint indices, so no two domains ever
   touch the same location. *)
let execute ~workers tasks results latencies owners =
  let n = Array.length tasks in
  if workers <= 1 then
    Array.iteri
      (fun i task ->
        let t0 = Unix.gettimeofday () in
        results.(i) <- (try Ok (task ()) with e -> Error e);
        latencies.(i) <- Unix.gettimeofday () -. t0)
      tasks
  else begin
    let next = Atomic.make 0 in
    let worker w () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let t0 = Unix.gettimeofday () in
          results.(i) <- (try Ok (tasks.(i) ()) with e -> Error e);
          latencies.(i) <- Unix.gettimeofday () -. t0;
          owners.(i) <- w;
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      Array.init (workers - 1) (fun w -> Domain.spawn (worker (w + 1)))
    in
    worker 0 ();
    Array.iter Domain.join spawned
  end

let record_run t ~n ~stolen ~timeouts ~latencies ~wall =
  t.tasks_run <- t.tasks_run + n;
  t.stolen <- t.stolen + stolen;
  t.task_time_s <- t.task_time_s +. Array.fold_left ( +. ) 0.0 latencies;
  t.wall_time_s <- t.wall_time_s +. wall;
  t.runs <- t.runs + 1;
  t.timeouts <- t.timeouts + timeouts;
  match t.telemetry with
  | Some tel when Tilelink_obs.Telemetry.enabled tel ->
    let m = Tilelink_obs.Telemetry.metrics tel in
    Tilelink_obs.Metrics.inc m ~by:n "pool.tasks";
    Tilelink_obs.Metrics.inc m ~by:stolen "pool.stolen";
    if timeouts > 0 then
      Tilelink_obs.Metrics.inc m ~by:timeouts "pool.task_timeouts";
    Tilelink_obs.Metrics.set_gauge m "pool.domains" (float_of_int t.domains);
    Array.iter
      (fun dt -> Tilelink_obs.Metrics.observe m "pool.task_us" (dt *. 1.0e6))
      latencies
  | _ -> ()

let map_array t tasks =
  let n = Array.length tasks in
  let results : ('a, exn) result array = Array.make n (Error Not_found) in
  if n > 0 then begin
    let latencies = Array.make n 0.0 in
    let owners = Array.make n 0 in
    let workers = min t.domains n in
    let wall0 = Unix.gettimeofday () in
    execute ~workers tasks results latencies owners;
    let wall = Unix.gettimeofday () -. wall0 in
    (* A task is "stolen" when dynamic scheduling moved it off the
       worker a fair static block partition would have given it — a
       load-imbalance signal, not a correctness property. *)
    let stolen = ref 0 in
    if workers > 1 then
      Array.iteri
        (fun i w -> if w <> i * workers / n then incr stolen)
        owners;
    (* Cooperative timeout: domains cannot be killed, so an over-budget
       task is converted to [Error Task_timeout] after it returns — the
       sweep keeps its other results instead of wedging on one trial.
       (True hang protection inside a simulation comes from the chaos
       watchdog, which bounds waits in virtual time.) *)
    let timeouts = ref 0 in
    (match t.task_timeout_s with
    | Some budget ->
      Array.iteri
        (fun i dt ->
          if dt > budget then begin
            incr timeouts;
            match results.(i) with
            | Ok _ -> results.(i) <- Error (Task_timeout dt)
            | Error _ -> ()
          end)
        latencies
    | None -> ());
    record_run t ~n ~stolen:!stolen ~timeouts:!timeouts ~latencies ~wall
  end;
  results

let map pool f xs =
  match pool with
  | None ->
    (* Sequential fallback: same capture semantics, no pool required. *)
    List.map (fun x -> try Ok (f x) with e -> Error e) xs
  | Some t ->
    let tasks = Array.of_list (List.map (fun x () -> f x) xs) in
    Array.to_list (map_array t tasks)

let get = function Ok v -> v | Error e -> raise e
