(* Content-addressed evaluation cache.

   Simulator evaluations are deterministic functions of (workload,
   cluster spec, design-space config), so a stable fingerprint of that
   triple addresses the result forever.  The table holds JSON values —
   a bare [Num] for autotuner times, whole rows for the bench harness —
   and can persist to disk so repeated CLI / bench / autotune
   invocations skip points that any earlier run already evaluated.

   All operations take the lock, so the cache may be consulted from
   worker domains, though the intended pattern (and what [Tune] does)
   is to resolve hits on the coordinating domain and only dispatch
   misses to the pool. *)

type t = {
  table : (string, Tilelink_obs.Json.t) Hashtbl.t;
  lock : Mutex.t;
  path : string option;
  mutable hits : int;
  mutable misses : int;
}

(* FNV-1a 64-bit: stable across runs and OCaml versions, unlike
   [Hashtbl.hash] which makes no such promise for floats inside
   variants. *)
let fingerprint s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_entries table path =
  if Sys.file_exists path then
    match Tilelink_obs.Json.parse (read_file path) with
    | Error _ -> () (* corrupt cache: start empty, next save repairs it *)
    | Ok doc -> (
      match Tilelink_obs.Json.member "entries" doc with
      | Some (Tilelink_obs.Json.Obj kvs) ->
        List.iter (fun (k, v) -> Hashtbl.replace table k v) kvs
      | _ -> ())

let create ?path () =
  let table = Hashtbl.create 64 in
  Option.iter (load_entries table) path;
  { table; lock = Mutex.create (); path; hits = 0; misses = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some v ->
        t.hits <- t.hits + 1;
        Some v
      | None ->
        t.misses <- t.misses + 1;
        None)

let add t key value =
  locked t (fun () -> Hashtbl.replace t.table key value)

let length t = locked t (fun () -> Hashtbl.length t.table)
let hits t = t.hits
let misses t = t.misses
let path t = t.path

let to_json t =
  locked t (fun () ->
      let entries =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      Tilelink_obs.Json.Obj
        [
          ("version", Tilelink_obs.Json.Num 1.0);
          ("entries", Tilelink_obs.Json.Obj entries);
        ])

let save t =
  match t.path with
  | None -> ()
  | Some path ->
    let doc = to_json t in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Tilelink_obs.Json.to_string ~indent:true doc);
        output_string oc "\n")

let record t telemetry =
  if Tilelink_obs.Telemetry.enabled telemetry then begin
    let m = Tilelink_obs.Telemetry.metrics telemetry in
    Tilelink_obs.Metrics.set_gauge m "cache.hits" (float_of_int t.hits);
    Tilelink_obs.Metrics.set_gauge m "cache.misses" (float_of_int t.misses);
    Tilelink_obs.Metrics.set_gauge m "cache.size" (float_of_int (length t))
  end
