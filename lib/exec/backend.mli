(** Parallel execution substrate: a persistent OCaml 5 domain team
    driving cooperative instruction streams over atomic monotonic
    counters.

    The TileLink side lowers a mapped program onto this (one stream
    per task, home worker = rank mod team size); nothing here depends
    on tilelink types, which is what lets [tilelink_core] link against
    it without a cycle.

    Protocol semantics: [Notify] is an [Atomic.fetch_and_add]
    (sequentially consistent, hence at least release); [Wait] is a
    spin-then-park loop around an [Atomic.get] (at least acquire).  A
    worker whose streams are all blocked spins briefly, then parks on
    a Condition; notifies bump a wake sequence under the team lock so
    wakeups cannot be lost.  When every worker that still owns
    unfinished streams is parked, the team raises {!Deadlock} with one
    line per blocked wait instead of hanging — unreachable for
    programs admitted by the static analyzer, whose fixpoint executes
    exactly this maximally-parallel stream model. *)

type counter
(** Monotonic signal counter, starts at 0. *)

val counter : string -> counter
(** [counter key] — [key] only labels diagnostics and final-value
    reporting. *)

val counter_key : counter -> string
val counter_value : counter -> int

type op =
  | Exec of { label : string; run : unit -> unit }
      (** Side-effecting work (tile compute, copy).  Exceptions abort
          the whole run and re-raise as {!Stream_failure}. *)
  | Wait of { counter : counter; threshold : int }
      (** Acquire: block the stream until [counter >= threshold]. *)
  | Notify of { counter : counter; amount : int }
      (** Release: [counter += amount], waking parked workers. *)

type stream

val stream : label:string -> home:int -> op list -> stream
(** A straight-line op sequence.  [home] picks the owning worker
    ([home mod size]); streams sharing a home interleave cooperatively
    at wait boundaries on one domain. *)

type domain_stats = {
  d_streams : int;
  d_execs : int;
  d_notifies : int;
  d_busy_s : float;  (** seconds inside [Exec] closures *)
  d_parks : int;
  d_spins : int;
}

type stats = {
  wall_s : float;
  per_domain : domain_stats array;
  total_execs : int;
  total_notifies : int;
  total_parks : int;
}

exception Deadlock of string list
(** Every worker with unfinished streams parked at once; the payload
    describes each blocked wait (stream, counter key, threshold,
    current value). *)

exception Stream_failure of string * exn
(** An [Exec] closure raised; the string names the op and stream. *)

type t
(** A persistent team of worker domains. *)

val create : int -> t
(** [create n] spawns [n] worker domains (1 <= n <= 128) that idle
    between jobs. *)

val size : t -> int

val run : t -> stream list -> stats
(** Execute the streams to completion and return the accounting.
    Synchronous: the calling domain blocks (it does not execute
    streams itself).  Concurrent calls serialize.  Raises {!Deadlock}
    or {!Stream_failure} as above. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Subsequent [run] calls raise. *)

val shared : int -> t
(** Memoized team per size, torn down automatically at process
    exit. *)
