(** Content-addressed evaluation cache.

    Keys are stable fingerprints of (workload id, cluster spec,
    design-space config); values are JSON — a bare [Num] for autotuner
    times, whole rows for the bench harness.  Optionally persists to a
    JSON file so repeated invocations skip already-evaluated points.
    All operations are mutex-protected and safe to call from any
    domain. *)

type t

val fingerprint : string -> string
(** Stable FNV-1a 64-bit hex digest of the descriptor string. *)

val create : ?path:string -> unit -> t
(** With [path], pre-loads entries from the file when it exists
    (corrupt files are ignored) and {!save} writes back to it. *)

val find : t -> string -> Tilelink_obs.Json.t option
(** Lookup; bumps the hit or miss counter. *)

val add : t -> string -> Tilelink_obs.Json.t -> unit
val length : t -> int
val hits : t -> int
val misses : t -> int
val path : t -> string option

val save : t -> unit
(** Write all entries to the backing file; no-op without [path]. *)

val record : t -> Tilelink_obs.Telemetry.t -> unit
(** Snapshot [cache.hits] / [cache.misses] / [cache.size] gauges into
    the telemetry registry. *)
