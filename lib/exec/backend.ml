(* Parallel execution substrate: a persistent OCaml 5 domain team
   driving cooperative instruction streams over atomic monotonic
   counters.

   This is the generic half of the parallel backend (the tilelink side
   lowers a mapped program onto it, see lib/tilelink/parallel.ml): a
   [stream] is a straight-line array of ops — side-effecting [Exec]
   work, [Notify] (monotonic fetch-and-add, release), [Wait] (blocks
   until a counter reaches a threshold, acquire).  Streams are pinned
   to a home worker (rank mod team size); each worker domain advances
   its streams cooperatively, switching streams only at unsatisfied
   waits, exactly the maximally-parallel stream model the static
   analyzer's fixpoint executes — which is what makes "analyzer-clean
   implies deadlock-free here" a theorem rather than a hope, for any
   team size >= 1.

   Memory model.  OCaml's [Atomic] operations are sequentially
   consistent, which is strictly stronger than the release/acquire
   pair the TileLink protocol needs: a producer's plain tensor writes
   happen-before its [Notify] fetch-and-add (release), and a
   consumer's acquire load in [Wait] that observes the bumped counter
   happens-before its subsequent plain reads.  Per the OCaml memory
   model (local DRF), that publication edge makes the data transfer
   race-free without any further fencing.

   Park/spin protocol.  A worker whose streams are all blocked first
   spins re-checking counters ([spin_rounds] iterations of
   [Domain.cpu_relax]), then parks on a Condition.  Lost wakeups are
   impossible by the usual monitor argument: every notify increments
   [wake_seq] *under the team lock* and broadcasts if anyone is
   parked, and a would-be parker re-checks [wake_seq] under the same
   lock before waiting.  When every worker that still owns unfinished
   streams is parked at once, no future notify can arrive (workers are
   the only notifiers), so the team declares a structured [Deadlock]
   listing each blocked wait instead of hanging. *)

type counter = { key : string; cell : int Atomic.t }

let counter key = { key; cell = Atomic.make 0 }
let counter_key c = c.key
let counter_value c = Atomic.get c.cell

type op =
  | Exec of { label : string; run : unit -> unit }
  | Wait of { counter : counter; threshold : int }
  | Notify of { counter : counter; amount : int }

type stream = {
  s_label : string;
  s_home : int;
  ops : op array;
  mutable pc : int;
}

let stream ~label ~home ops =
  { s_label = label; s_home = home; ops = Array.of_list ops; pc = 0 }

type domain_stats = {
  d_streams : int;
  d_execs : int;
  d_notifies : int;
  d_busy_s : float;
  d_parks : int;
  d_spins : int;
}

let zero_stats =
  {
    d_streams = 0;
    d_execs = 0;
    d_notifies = 0;
    d_busy_s = 0.0;
    d_parks = 0;
    d_spins = 0;
  }

type stats = {
  wall_s : float;
  per_domain : domain_stats array;
  total_execs : int;
  total_notifies : int;
  total_parks : int;
}

exception Deadlock of string list
exception Stream_failure of string * exn

(* One submitted run.  [wake_seq] is only ever incremented while
   holding the team lock; [parked] / [running] / [failed] /
   [deadlocked] are written under the lock too (racy reads of the
   abort flags outside the lock are harmless — a worker at worst scans
   once more before noticing). *)
type job = {
  assigned : stream array array;
  wake_seq : int Atomic.t;
  mutable parked : int;
  mutable running : int;
  mutable failed : (string * exn) option;
  mutable deadlocked : string list option;
  stats : domain_stats array;
}

type t = {
  size : int;
  lock : Mutex.t;
  work : Condition.t;  (* workers waiting for the next job *)
  wake : Condition.t;  (* workers parked inside a job *)
  donec : Condition.t; (* the submitter waiting for completion *)
  mutable seq : int;
  mutable job : job option;
  mutable active : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let size t = t.size
let spin_rounds = 200

(* A parked worker that has already been signalled stays in the
   [parked] count until it re-acquires the lock, so "everyone is
   parked" alone is not proof of deadlock: the signalled worker may be
   racing for the mutex with its wait already satisfied.  Declaring
   deadlock therefore additionally requires that no blocked stream's
   head wait is satisfiable — checked under the lock, where every
   counted-parked worker's stream cursors are stable (they published
   them through this same mutex before waiting). *)
let has_satisfied_blocked_wait (job : job) =
  Array.exists
    (fun streams ->
      Array.exists
        (fun s ->
          s.pc < Array.length s.ops
          &&
          match s.ops.(s.pc) with
          | Wait { counter; threshold } -> Atomic.get counter.cell >= threshold
          | Exec _ | Notify _ -> false)
        streams)
    job.assigned

let blocked_report (job : job) =
  (* Called under the team lock with every owning worker parked, so
     the stream cursors are quiescent. *)
  let lines = ref [] in
  Array.iter
    (fun streams ->
      Array.iter
        (fun s ->
          if s.pc < Array.length s.ops then
            match s.ops.(s.pc) with
            | Wait { counter; threshold } ->
              lines :=
                Printf.sprintf "%s blocked at %s >= %d (counter = %d)"
                  s.s_label counter.key threshold
                  (Atomic.get counter.cell)
                :: !lines
            | Exec _ | Notify _ -> ())
        streams)
    job.assigned;
  List.rev !lines

let run_worker t (job : job) w =
  let streams = job.assigned.(w) in
  let total = Array.length streams in
  let execs = ref 0
  and notifies = ref 0
  and parks = ref 0
  and spins = ref 0
  and busy = ref 0.0
  and finished = ref 0 in
  let aborted () = job.failed <> None || job.deadlocked <> None in
  let record_failure label exn =
    Mutex.lock t.lock;
    if job.failed = None then job.failed <- Some (label, exn);
    Atomic.incr job.wake_seq;
    Condition.broadcast t.wake;
    Mutex.unlock t.lock
  in
  (* Advance one stream until it finishes or blocks on a wait; returns
     true if at least one op executed. *)
  let advance s =
    let moved = ref false in
    let blocked = ref false in
    while (not !blocked) && s.pc < Array.length s.ops do
      (match s.ops.(s.pc) with
      | Exec { label; run } ->
        let t0 = Unix.gettimeofday () in
        (try run ()
         with exn ->
           record_failure (Printf.sprintf "%s in %s" label s.s_label) exn);
        busy := !busy +. (Unix.gettimeofday () -. t0);
        incr execs
      | Notify { counter; amount } ->
        (* Release: the fetch-and-add publishes every plain write this
           stream made before it. *)
        ignore (Atomic.fetch_and_add counter.cell amount);
        incr notifies;
        Mutex.lock t.lock;
        Atomic.incr job.wake_seq;
        if job.parked > 0 then Condition.broadcast t.wake;
        Mutex.unlock t.lock
      | Wait { counter; threshold } ->
        (* Acquire: observing the threshold synchronizes with the
           notifier's release. *)
        if Atomic.get counter.cell >= threshold then ()
        else blocked := true);
      if not !blocked then begin
        s.pc <- s.pc + 1;
        moved := true;
        if aborted () then blocked := true
      end
    done;
    !moved
  in
  let rec loop () =
    if (not (aborted ())) && !finished < total then begin
      let w0 = Atomic.get job.wake_seq in
      let progress = ref false in
      Array.iter
        (fun s ->
          if s.pc < Array.length s.ops then begin
            if advance s then progress := true;
            if s.pc >= Array.length s.ops then incr finished
          end)
        streams;
      if !finished = total || aborted () then ()
      else if !progress then loop ()
      else begin
        (* Spin: a notify may be a few instructions away on another
           core; parking for it would cost two context switches. *)
        let spun = ref 0 in
        while Atomic.get job.wake_seq = w0 && !spun < spin_rounds do
          Domain.cpu_relax ();
          incr spun
        done;
        spins := !spins + !spun;
        if Atomic.get job.wake_seq <> w0 then loop ()
        else begin
          Mutex.lock t.lock;
          if Atomic.get job.wake_seq <> w0 then begin
            Mutex.unlock t.lock;
            loop ()
          end
          else begin
            job.parked <- job.parked + 1;
            incr parks;
            if
              job.parked = job.running
              && job.deadlocked = None
              && not (has_satisfied_blocked_wait job)
            then begin
              (* Everyone who could still notify is parked and no
                 blocked wait can fire: structural deadlock.
                 Unreachable for analyzer-clean programs. *)
              job.deadlocked <- Some (blocked_report job);
              Atomic.incr job.wake_seq;
              Condition.broadcast t.wake
            end;
            while
              Atomic.get job.wake_seq = w0
              && job.failed = None
              && job.deadlocked = None
            do
              Condition.wait t.wake t.lock
            done;
            job.parked <- job.parked - 1;
            Mutex.unlock t.lock;
            loop ()
          end
        end
      end
    end
  in
  loop ();
  Mutex.lock t.lock;
  job.running <- job.running - 1;
  (* A worker retiring its last stream can strand the others: if every
     remaining owner is already parked, nobody is left to notify. *)
  if
    job.running > 0 && job.parked = job.running
    && job.failed = None
    && job.deadlocked = None
    && not (has_satisfied_blocked_wait job)
  then begin
    job.deadlocked <- Some (blocked_report job);
    Atomic.incr job.wake_seq;
    Condition.broadcast t.wake
  end;
  job.stats.(w) <-
    {
      d_streams = total;
      d_execs = !execs;
      d_notifies = !notifies;
      d_busy_s = !busy;
      d_parks = !parks;
      d_spins = !spins;
    };
  Mutex.unlock t.lock

let rec worker_loop t w ~last =
  Mutex.lock t.lock;
  while t.seq = last && not t.stop do
    Condition.wait t.work t.lock
  done;
  if t.stop then Mutex.unlock t.lock
  else begin
    let seq = t.seq in
    let job = Option.get t.job in
    Mutex.unlock t.lock;
    run_worker t job w;
    Mutex.lock t.lock;
    t.active <- t.active - 1;
    if t.active = 0 then Condition.broadcast t.donec;
    Mutex.unlock t.lock;
    worker_loop t w ~last:seq
  end

let create size =
  if size < 1 || size > 128 then
    invalid_arg "Backend.create: team size must be in [1, 128]";
  let t =
    {
      size;
      lock = Mutex.create ();
      work = Condition.create ();
      wake = Condition.create ();
      donec = Condition.create ();
      seq = 0;
      job = None;
      active = 0;
      stop = false;
      domains = [];
    }
  in
  t.domains <-
    List.init size (fun w -> Domain.spawn (fun () -> worker_loop t w ~last:0));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  List.iter Domain.join t.domains;
  t.domains <- []

let run t streams =
  let n = t.size in
  let buckets = Array.make n [] in
  List.iter
    (fun s ->
      let d = ((s.s_home mod n) + n) mod n in
      buckets.(d) <- s :: buckets.(d))
    streams;
  let job =
    {
      assigned = Array.map (fun l -> Array.of_list (List.rev l)) buckets;
      wake_seq = Atomic.make 0;
      parked = 0;
      running = n;
      failed = None;
      deadlocked = None;
      stats = Array.make n zero_stats;
    }
  in
  let t0 = Unix.gettimeofday () in
  Mutex.lock t.lock;
  if t.stop then begin
    Mutex.unlock t.lock;
    invalid_arg "Backend.run: team has been shut down"
  end;
  (* Serialize concurrent submitters: one job in flight at a time. *)
  while t.job <> None do
    Condition.wait t.donec t.lock
  done;
  t.job <- Some job;
  t.seq <- t.seq + 1;
  t.active <- n;
  Condition.broadcast t.work;
  while t.active > 0 do
    Condition.wait t.donec t.lock
  done;
  t.job <- None;
  Condition.broadcast t.donec;
  Mutex.unlock t.lock;
  let wall = Unix.gettimeofday () -. t0 in
  match (job.failed, job.deadlocked) with
  | Some (where, exn), _ -> raise (Stream_failure (where, exn))
  | None, Some blocked -> raise (Deadlock blocked)
  | None, None ->
    let sum f = Array.fold_left (fun acc d -> acc + f d) 0 job.stats in
    {
      wall_s = wall;
      per_domain = job.stats;
      total_execs = sum (fun d -> d.d_execs);
      total_notifies = sum (fun d -> d.d_notifies);
      total_parks = sum (fun d -> d.d_parks);
    }

(* ------------------------------------------------------------------ *)
(* Shared teams                                                        *)
(* ------------------------------------------------------------------ *)

(* Spawning a domain costs ~10µs plus the runtime's per-domain state,
   so callers that run many programs (the QCheck sweep, the bench
   loop) reuse one team per size.  Teams are torn down at process
   exit; a job can never be in flight then because [run] is
   synchronous from the main domain. *)
let registry : (int, t) Hashtbl.t = Hashtbl.create 4
let registry_lock = Mutex.create ()

let shared size =
  Mutex.lock registry_lock;
  let t =
    match Hashtbl.find_opt registry size with
    | Some t -> t
    | None ->
      let t = create size in
      Hashtbl.add registry size t;
      t
  in
  Mutex.unlock registry_lock;
  t

let () =
  at_exit (fun () ->
      Mutex.lock registry_lock;
      let teams = Hashtbl.fold (fun _ t acc -> t :: acc) registry [] in
      Hashtbl.reset registry;
      Mutex.unlock registry_lock;
      List.iter shutdown teams)
