(** Domain-based work pool for independent, deterministic tasks.

    Tasks self-schedule off one atomic counter and write results into
    per-index slots, so [map] returns results in input order no matter
    how many domains raced over the work — parallel sweeps produce the
    exact list the sequential path would.  Exceptions are captured per
    task and surface as [Error] in the caller's domain.

    Each simulator task must confine its mutable state (engine,
    channels, runtime) to its own domain: build a fresh
    {!Tilelink_machine.Cluster.t} inside the task, never share one
    across tasks. *)

type t

exception Task_timeout of float
(** A task exceeded the pool's per-task budget; the payload is the
    measured duration in seconds. *)

type stats = {
  tasks_run : int;  (** tasks executed across all [map] calls *)
  stolen : int;
      (** tasks that ran on a different worker than a fair static block
          partition would assign — a load-imbalance signal *)
  task_time_s : float;  (** summed per-task wall time *)
  wall_time_s : float;  (** summed per-sweep wall time *)
  runs : int;  (** [map] calls executed *)
  timeouts : int;  (** tasks converted to [Error Task_timeout] *)
}

val create :
  ?domains:int ->
  ?task_timeout_s:float ->
  ?telemetry:Tilelink_obs.Telemetry.t ->
  unit ->
  t
(** [domains] defaults to [Domain.recommended_domain_count ()]; fixed
    for the pool's lifetime.  With [telemetry], every sweep records
    [pool.tasks] / [pool.stolen] counters, the [pool.domains] gauge and
    a [pool.task_us] per-task latency histogram (from the coordinating
    domain only, after workers joined).

    [task_timeout_s] is a cooperative per-task budget: a task that ran
    longer has its result replaced by [Error Task_timeout] (captured
    errors are kept), counted in [stats.timeouts] and under the
    [pool.task_timeouts] telemetry counter.  Domains cannot be killed
    mid-task, so this bounds a sweep's blast radius, not an individual
    task's runtime — in-simulation hangs are bounded in virtual time by
    the chaos watchdog instead. *)

val domains : t -> int
val stats : t -> stats

val map : t option -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** [map (Some pool) f xs] evaluates [f] over [xs] on the pool's
    domains; [map None f xs] is the sequential fallback with identical
    capture semantics.  Results are in input order either way. *)

val map_array : t -> (unit -> 'a) array -> ('a, exn) result array
(** Array-of-thunks form of {!map}; results land at their task index. *)

val get : ('a, exn) result -> 'a
(** Unwrap, re-raising a captured exception on the calling domain. *)
