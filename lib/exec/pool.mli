(** Domain-based work pool for independent, deterministic tasks.

    Tasks self-schedule off one atomic counter and write results into
    per-index slots, so [map] returns results in input order no matter
    how many domains raced over the work — parallel sweeps produce the
    exact list the sequential path would.  Exceptions are captured per
    task and surface as [Error] in the caller's domain.

    Each simulator task must confine its mutable state (engine,
    channels, runtime) to its own domain: build a fresh
    {!Tilelink_machine.Cluster.t} inside the task, never share one
    across tasks. *)

type t

type stats = {
  tasks_run : int;  (** tasks executed across all [map] calls *)
  stolen : int;
      (** tasks that ran on a different worker than a fair static block
          partition would assign — a load-imbalance signal *)
  task_time_s : float;  (** summed per-task wall time *)
  wall_time_s : float;  (** summed per-sweep wall time *)
  runs : int;  (** [map] calls executed *)
}

val create : ?domains:int -> ?telemetry:Tilelink_obs.Telemetry.t -> unit -> t
(** [domains] defaults to [Domain.recommended_domain_count ()]; fixed
    for the pool's lifetime.  With [telemetry], every sweep records
    [pool.tasks] / [pool.stolen] counters, the [pool.domains] gauge and
    a [pool.task_us] per-task latency histogram (from the coordinating
    domain only, after workers joined). *)

val domains : t -> int
val stats : t -> stats

val map : t option -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** [map (Some pool) f xs] evaluates [f] over [xs] on the pool's
    domains; [map None f xs] is the sequential fallback with identical
    capture semantics.  Results are in input order either way. *)

val map_array : t -> (unit -> 'a) array -> ('a, exn) result array
(** Array-of-thunks form of {!map}; results land at their task index. *)

val get : ('a, exn) result -> 'a
(** Unwrap, re-raising a captured exception on the calling domain. *)
