(* FLUX-style fusion baseline.

   FLUX fuses communication into the GEMM kernel with a *coupled*
   design: communication inherits the GEMM's tile size and visiting
   order, and data movement runs on SM-resident copy CTAs.  We model it
   as exactly that point of the design space, executed by the same
   runtime as TileLink (the paper frames FLUX as the coupled diagonal
   of the space TileLink searches).

   Two adjustments reflect FLUX being a hand-written CUTLASS library
   rather than generated code:
   - [hand_tuned] (0.96): its mainloop avoids the small per-chunk
     overheads generated kernels pay, making it slightly faster where
     the coupled design is already good (AG+GEMM);
   - no ring-aligned production order for GEMM+RS: FLUX's fixed
     row-major GEMM ordering is exactly why its ReduceScatter side
     underperforms (§7.2). *)

open Tilelink_core
open Tilelink_machine
module Mlp = Tilelink_workloads.Mlp

let hand_tuned = 0.85
let comm_sms = 16

let ag_gemm_config ~world_size =
  {
    Design_space.comm_tile = (128, 128);
    compute_tile = (128, 128);
    comm_order = Tile.Ring_from_self { segments = world_size };
    compute_order = Tile.Ring_from_self { segments = world_size };
    binding = Design_space.Comm_on_sm comm_sms;
    stages = 2;
    micro_block = 0;
  }

let gemm_rs_config ~world_size =
  (* Coupled: RS tiles equal GEMM tiles; the GEMM starts from its own
     segment (its natural order) rather than the segment the ring
     consumes first, so the consumer waits out most of a segment. *)
  {
    Design_space.comm_tile = (128, 128);
    compute_tile = (128, 128);
    comm_order = Tile.Row_major;
    compute_order = Tile.Ring_from_self { segments = world_size };
    binding = Design_space.Comm_on_sm comm_sms;
    stages = 2;
    micro_block = 0;
  }

let ag_gemm_time (spec : Spec.t) ~world_size ~m ~k ~n =
  let program =
    Mlp.ag_gemm_program
      ~config:(ag_gemm_config ~world_size)
      { Mlp.m; k; n; world_size }
      ~spec_gpu:spec
  in
  let cluster = Cluster.create spec ~world_size in
  (Runtime.run cluster program).Runtime.makespan *. hand_tuned

let gemm_rs_time (spec : Spec.t) ~world_size ~m ~k ~n =
  let program =
    Mlp.gemm_rs_program ~config:(gemm_rs_config ~world_size)
      { Mlp.rs_m = m; rs_k = k; rs_n = n; rs_world = world_size }
      ~spec_gpu:spec
  in
  let cluster = Cluster.create spec ~world_size in
  (Runtime.run cluster program).Runtime.makespan

let mlp_time (spec : Spec.t) ~world_size
    ~(shape : Tilelink_workloads.Shapes.mlp) =
  let m = shape.Tilelink_workloads.Shapes.s in
  let h = shape.Tilelink_workloads.Shapes.h in
  let i = shape.Tilelink_workloads.Shapes.i in
  let i_per_rank = i / world_size in
  ag_gemm_time spec ~world_size ~m ~k:h ~n:(2 * i_per_rank)
  +. Nonoverlap.activation_time spec ~m ~i:i_per_rank
  +. gemm_rs_time spec ~world_size ~m ~k:i_per_rank ~n:h
