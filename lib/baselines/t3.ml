(* T3-style baseline: transparent tracking & triggering.

   T3 overlaps the producer kernel with its collective by tracking
   tile completions in hardware and triggering the matching transfer
   as soon as a tile is ready — no kernel rewrite, near-perfect
   overlap, but every tracked tile pays a small fixed bookkeeping cost
   (address-range match + trigger).  The analytic model mirrors
   {!Nonoverlap}'s API so the two bracket the tile-centric runtime
   from both sides:

     t3 = launch + max(compute, comm) + tracking * tiles

   where the per-tile tracking overhead is charged on top of the
   overlapped span (the tracker serializes with neither phase but its
   triggers consume issue slots).  All times in µs. *)

open Tilelink_machine
module Collective = Tilelink_comm.Collective

(* Hardware tile granularity the tracker watches: the same 128x128
   macro-tile the full-chip GEMM is modeled on. *)
let track_tile = 128

(* Per-tile tracking cost: an address-range match plus a DMA trigger.
   Modeled as half a signal-notify — cheaper than a software notify
   (no SM involvement) but not free. *)
let tracking_us (spec : Spec.t) =
  0.5 *. spec.Spec.overheads.signal_notify

let tiles_of ~m ~n =
  ((m + track_tile - 1) / track_tile) * ((n + track_tile - 1) / track_tile)

let overlapped (spec : Spec.t) ~compute ~comm ~tiles =
  spec.Spec.overheads.kernel_launch
  +. Float.max compute comm
  +. (tracking_us spec *. float_of_int tiles)

(* AllGather (over M) overlapped with the GEMM consuming it. *)
let ag_gemm_time (spec : Spec.t) ~world_size ~m ~k ~n =
  let bytes_per_shard =
    float_of_int (m / world_size) *. float_of_int k *. Cost.dtype_bytes
  in
  let comm =
    Collective.standalone_time spec ~world_size ~kind:Collective.Allgather
      ~algo:Collective.Ring ~bytes_per_shard
  in
  let compute =
    Cost.gemm_kernel_time spec ~sms:spec.Spec.gpu.num_sms ~m ~n ~k ~tm:128
      ~tn:128
  in
  overlapped spec ~compute ~comm ~tiles:(tiles_of ~m ~n)

(* GEMM overlapped with the ReduceScatter draining its partials. *)
let gemm_rs_time (spec : Spec.t) ~world_size ~m ~k ~n =
  let bytes_per_shard =
    float_of_int (m / world_size) *. float_of_int n *. Cost.dtype_bytes
  in
  let comm =
    Collective.standalone_time spec ~world_size ~kind:Collective.Reducescatter
      ~algo:Collective.Ring ~bytes_per_shard
  in
  let compute =
    Cost.gemm_kernel_time spec ~sms:spec.Spec.gpu.num_sms ~m ~n ~k ~tm:128
      ~tn:128
  in
  overlapped spec ~compute ~comm ~tiles:(tiles_of ~m ~n)

(* Full tensor-parallel MLP, each half overlapped; the element-wise
   activation between them has nothing to hide behind and is charged
   serialized, exactly as in {!Nonoverlap.mlp_time}. *)
let mlp_time (spec : Spec.t) ~world_size ~(shape : Tilelink_workloads.Shapes.mlp)
    =
  let m = shape.Tilelink_workloads.Shapes.s in
  let h = shape.Tilelink_workloads.Shapes.h in
  let i = shape.Tilelink_workloads.Shapes.i in
  let i_per_rank = i / world_size in
  ag_gemm_time spec ~world_size ~m ~k:h ~n:(2 * i_per_rank)
  +. Nonoverlap.activation_time spec ~m ~i:i_per_rank
  +. gemm_rs_time spec ~world_size ~m ~k:i_per_rank ~n:h
