(** T3-style baseline: transparent tracking & triggering.

    Hardware tracks producer-tile completions and triggers the
    matching transfers, overlapping the collective with the unmodified
    kernel at the cost of a small per-tile tracking overhead:

      [t3 = launch + max(compute, comm) + tracking * tiles]

    Mirrors {!Nonoverlap}'s API; together they bracket the
    tile-centric runtime from below (ideal overlap, flat tracking tax)
    and above (fully serialized).  All times in µs. *)

open Tilelink_machine

val tracking_us : Spec.t -> float
(** Per-tile tracking cost (address-range match + trigger). *)

val ag_gemm_time : Spec.t -> world_size:int -> m:int -> k:int -> n:int -> float
val gemm_rs_time : Spec.t -> world_size:int -> m:int -> k:int -> n:int -> float

val mlp_time :
  Spec.t -> world_size:int -> shape:Tilelink_workloads.Shapes.mlp -> float
