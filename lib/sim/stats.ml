(* Small numeric helpers shared by benches and reports. *)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value"
          else acc +. log x)
        0.0 xs
    in
    exp (log_sum /. float_of_int (List.length xs))

(* NaN is rejected rather than propagated: [Float.min]/[Float.max]
   silently poison the fold and [Float.compare] sorts NaN last, so a
   single bad sample would corrupt p99/max in BENCH and chaos summaries
   without any visible error.  Matching the empty-list behaviour, a NaN
   sample is caller error. *)
let reject_nan who xs =
  if List.exists Float.is_nan xs then
    invalid_arg (Printf.sprintf "Stats.%s: NaN sample" who)

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty"
  | x :: xs as all ->
    reject_nan "minimum" all;
    List.fold_left Float.min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty"
  | x :: xs as all ->
    reject_nan "maximum" all;
    List.fold_left Float.max x xs

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
      /. float_of_int (List.length xs - 1)
    in
    sqrt var

(* Nearest-rank percentile (the classic "ceil(p/100 * n)-th smallest"
   definition): exact for the samples given, no interpolation, so p50 of
   [1;2;3;4] is 2 rather than 2.5.  Edge cases: [p <= 0] returns the
   minimum, [p >= 100] the maximum, and the empty list is an error
   because no rank exists. *)
let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty"
  | xs ->
    reject_nan "percentile" xs;
    let sorted = List.sort Float.compare xs in
    let n = List.length sorted in
    let rank =
      if p <= 0.0 then 1
      else if p >= 100.0 then n
      else
        let r = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
        max 1 (min n r)
    in
    List.nth sorted (rank - 1)

let percent_of ~base x = if base = 0.0 then 0.0 else x /. base *. 100.0

let speedup ~baseline ~candidate =
  if candidate <= 0.0 then invalid_arg "Stats.speedup: non-positive time";
  baseline /. candidate
