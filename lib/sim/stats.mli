(** Small numeric helpers shared by benches and reports. *)

val mean : float list -> float
val geomean : float list -> float

val minimum : float list -> float
(** Raises [Invalid_argument] on the empty list or any NaN sample
    (NaN would silently poison the fold). *)

val maximum : float list -> float
(** Raises [Invalid_argument] on the empty list or any NaN sample. *)

val stddev : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] is the nearest-rank p-th percentile of [xs]: the
    [ceil (p/100 * n)]-th smallest sample, with no interpolation.
    [p <= 0.] yields the minimum, [p >= 100.] the maximum.  Raises
    [Invalid_argument] on the empty list and on any NaN sample (NaN
    sorts last under [Float.compare] and would corrupt p99/max). *)

val percent_of : base:float -> float -> float

val speedup : baseline:float -> candidate:float -> float
(** [baseline /. candidate]; > 1 means candidate is faster. *)
