(** Small numeric helpers shared by benches and reports. *)

val mean : float list -> float
val geomean : float list -> float
val minimum : float list -> float
val maximum : float list -> float
val stddev : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] is the nearest-rank p-th percentile of [xs]: the
    [ceil (p/100 * n)]-th smallest sample, with no interpolation.
    [p <= 0.] yields the minimum, [p >= 100.] the maximum.  Raises
    [Invalid_argument] on the empty list. *)

val percent_of : base:float -> float -> float

val speedup : baseline:float -> candidate:float -> float
(** [baseline /. candidate]; > 1 means candidate is faster. *)
