(** Binary min-heap priority queue with FIFO tie-breaking.

    Events pushed with equal priority pop in insertion order, which
    makes the discrete-event loop deterministic. *)

type 'a entry = { priority : float; seq : int; payload : 'a }

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> float -> 'a -> unit
val peek : 'a t -> 'a entry option

val pop : 'a t -> 'a entry option
(** Removes the minimum and clears the vacated slot, so the popped
    payload is collectable as soon as the caller drops it. *)

val clear : 'a t -> unit
(** Drop all entries (payloads become collectable) and reset the
    insertion sequence, for engine reuse. *)
