(* Bandwidth server: a link that serializes transfers at a fixed rate.

   Each transfer occupies the server for [latency + bytes / rate] and
   transfers are admitted FIFO.  A directed NVLink lane between two
   GPUs, a node NIC, or an HBM port are all instances.  [streams]
   allows a link to carry that many transfers concurrently, each at the
   full per-stream rate (an NVSwitch provides independent lanes per
   peer pair; a NIC usually has [streams = 1]). *)

type t = {
  name : string;
  engine : Engine.t;
  rate : float;          (* bytes per microsecond *)
  latency : float;       (* microseconds *)
  server : Resource.t;
  mutable bytes_moved : float;
  mutable transfer_count : int;
  (* Time-varying rate multiplier, sampled at admission.  Installed by
     fault injection (degradation / outage windows); [None] means the
     link runs at its nominal rate. *)
  mutable throttle : (now:float -> float) option;
}

let create engine ~name ~gbps ~latency_us ?(streams = 1) () =
  if gbps <= 0.0 then invalid_arg "Bandwidth.create: rate must be > 0";
  {
    name;
    engine;
    (* GB/s = 1e9 B / 1e6 µs = 1e3 B/µs *)
    rate = gbps *. 1.0e3;
    latency = latency_us;
    server = Resource.create engine ~name ~capacity:streams;
    bytes_moved = 0.0;
    transfer_count = 0;
    throttle = None;
  }

let set_throttle t f = t.throttle <- Some f
let clear_throttle t = t.throttle <- None

(* Effective rate at admission time.  An outage is modelled as a very
   small multiplier rather than zero so transfers finish eventually and
   the watchdog — not a division by zero — decides what counts as
   stalled. *)
let effective_rate t =
  match t.throttle with
  | None -> t.rate
  | Some f ->
    let m = f ~now:(Engine.now t.engine) in
    t.rate *. Float.max m 1e-6

let name t = t.name
let bytes_moved t = t.bytes_moved
let transfer_count t = t.transfer_count
let busy_time t = Resource.busy_time t.server

let duration t ~bytes =
  if bytes < 0.0 then invalid_arg "Bandwidth.duration: negative size";
  t.latency +. (bytes /. t.rate)

(* The server is held only for the wire time (bytes / rate); latency is
   propagation and overlaps with the next transfer's wire time, so
   back-to-back small messages pipeline instead of serializing their
   latencies. *)
let transfer t ~bytes =
  Resource.use t.server 1 (fun () ->
      Process.wait (bytes /. effective_rate t);
      t.bytes_moved <- t.bytes_moved +. bytes;
      t.transfer_count <- t.transfer_count + 1);
  Process.wait t.latency
