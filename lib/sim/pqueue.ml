(* Binary min-heap priority queue used by the event loop.

   Entries are ordered by [priority] first and by insertion sequence
   second, so that events scheduled for the same instant fire in FIFO
   order.  Determinism of the whole simulator rests on this tie-break. *)

type 'a entry = { priority : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

(* Vacated and never-used slots hold this shared dummy so popped
   payloads (often closures over whole simulation states) become
   collectable immediately.  Every read is guarded by [size], so the
   dummy is never dereferenced; the [Obj.magic] only launders its type
   parameter, the same trick the stdlib's [Dynarray] uses. *)
let dummy_entry : Obj.t entry =
  { priority = nan; seq = min_int; payload = Obj.repr () }

let dummy () : 'a entry = Obj.magic dummy_entry

let length t = t.size
let is_empty t = t.size = 0

let lt a b =
  a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && lt t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let new_capacity = max 16 (2 * capacity) in
    let data = Array.make new_capacity (dummy ()) in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let push t priority payload =
  let entry = { priority; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      t.data.(t.size) <- dummy ();
      sift_down t 0
    end
    else t.data.(0) <- dummy ();
    Some top
  end

let clear t =
  Array.fill t.data 0 t.size (dummy ());
  t.size <- 0;
  t.next_seq <- 0
