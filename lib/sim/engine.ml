(* Discrete-event simulation core.

   The engine owns a virtual clock and a priority queue of thunks.  All
   higher layers (processes, resources, links) reduce to scheduling
   thunks at future instants.  Times are in microseconds throughout the
   code base. *)

exception Deadlock of string

type t = {
  mutable now : float;
  events : (unit -> unit) Pqueue.t;
  mutable executed : int;
  mutable live_processes : int;
  mutable blocked_processes : int;
  (* ∫ blocked_processes dt, folded up to [last_blocked_change]: the
     aggregate time processes spent parked on conditions, the
     engine-level "how stalled was this run" number telemetry reports. *)
  mutable blocked_integral : float;
  mutable last_blocked_change : float;
}

let create () =
  {
    now = 0.0;
    events = Pqueue.create ();
    executed = 0;
    live_processes = 0;
    blocked_processes = 0;
    blocked_integral = 0.0;
    last_blocked_change = 0.0;
  }

let now t = t.now
let executed_events t = t.executed
let pending_events t = Pqueue.length t.events

let schedule t ~delay thunk =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  Pqueue.push t.events (t.now +. delay) thunk

let schedule_at t ~time thunk =
  if time < t.now then invalid_arg "Engine.schedule_at: time in the past";
  Pqueue.push t.events time thunk

(* Process accounting lets [run] distinguish normal completion from a
   deadlock: if live processes remain but every one of them is blocked
   on a condition nobody will signal, the event queue drains while work
   is still outstanding. *)
let process_started t = t.live_processes <- t.live_processes + 1
let process_finished t = t.live_processes <- t.live_processes - 1

let fold_blocked t =
  t.blocked_integral <-
    t.blocked_integral
    +. (float_of_int t.blocked_processes *. (t.now -. t.last_blocked_change));
  t.last_blocked_change <- t.now

let process_blocked t =
  fold_blocked t;
  t.blocked_processes <- t.blocked_processes + 1

let process_unblocked t =
  fold_blocked t;
  t.blocked_processes <- t.blocked_processes - 1

let blocked_time t =
  t.blocked_integral
  +. (float_of_int t.blocked_processes *. (t.now -. t.last_blocked_change))

let blocked_processes t = t.blocked_processes
let live_processes t = t.live_processes

let step t =
  match Pqueue.pop t.events with
  | None -> false
  | Some { priority = time; payload = thunk; _ } ->
    t.now <- time;
    t.executed <- t.executed + 1;
    thunk ();
    true

(* The [until] match is hoisted out of the loop: the unbounded path
   pays one heap pop per event and the bounded path one peek + one pop,
   instead of re-deciding the mode and re-peeking every iteration. *)
let run ?until t =
  (match until with
  | None ->
    let rec drain () = if step t then drain () in
    drain ()
  | Some limit ->
    let rec drain () =
      match Pqueue.peek t.events with
      | Some { priority = time; _ } when time <= limit ->
        ignore (step t);
        drain ()
      | Some _ | None -> ()
    in
    drain ());
  (match until with
  | Some limit when limit > t.now && Pqueue.is_empty t.events -> t.now <- limit
  | _ -> ());
  if Pqueue.is_empty t.events && t.live_processes > 0 then
    raise
      (Deadlock
         (Printf.sprintf
            "simulation deadlock: %d process(es) still blocked at t=%.3f"
            t.blocked_processes t.now))
