(* Waitable monotonic counter.

   This is the simulator-level carrier for barrier channels: notify
   primitives add to a counter with release semantics, wait primitives
   park until the counter reaches a threshold.  This is the GPU's
   [red.release] / [ld.global.acquire] spin loop collapsed into an
   event subscription. *)

type waiter = { threshold : int; resume : unit -> unit; tag : int }

type t = {
  name : string;
  mutable value : int;
  mutable waiters : waiter list;
  mutable notify_count : int;
}

let no_tag = -1

let create ?(name = "counter") () =
  { name; value = 0; waiters = []; notify_count = 0 }

let name t = t.name
let value t = t.value
let notify_count t = t.notify_count

let wake t =
  let ready, still =
    List.partition (fun w -> t.value >= w.threshold) t.waiters
  in
  t.waiters <- still;
  (* Wake in registration order: the list is LIFO, so reverse. *)
  List.iter (fun w -> w.resume ()) (List.rev ready)

let add t delta =
  if delta <= 0 then invalid_arg "Counter.add: delta must be > 0";
  t.value <- t.value + delta;
  t.notify_count <- t.notify_count + 1;
  wake t

let set_at_least t target =
  if target > t.value then begin
    t.value <- target;
    t.notify_count <- t.notify_count + 1;
    wake t
  end

let await_ge ?(tag = no_tag) t threshold =
  if t.value < threshold then
    Process.suspend (fun resume ->
        t.waiters <- { threshold; resume; tag } :: t.waiters)

(* Cancel-by-tag: wake every waiter registered under [tag] without
   raising the counter value.  The resumed process observes an
   unsatisfied threshold and must decide for itself what to do (a dead
   rank's worker abandons its task).  Returns how many were woken. *)
let cancel_tag t ~tag =
  if tag = no_tag then invalid_arg "Counter.cancel_tag: reserved tag";
  let cancelled, still = List.partition (fun w -> w.tag = tag) t.waiters in
  t.waiters <- still;
  List.iter (fun w -> w.resume ()) (List.rev cancelled);
  List.length cancelled

let reset t =
  if t.waiters <> [] then invalid_arg "Counter.reset: waiters present";
  t.value <- 0;
  t.notify_count <- 0
