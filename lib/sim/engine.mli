(** Discrete-event simulation core: virtual clock + event heap.

    All times are in microseconds. *)

exception Deadlock of string

type t

val create : unit -> t

val now : t -> float
(** Current virtual time. *)

val executed_events : t -> int
val pending_events : t -> int

val blocked_time : t -> float
(** ∫ blocked_processes dt since creation, in process·µs: the
    aggregate time processes spent parked on unsatisfied conditions. *)

val blocked_processes : t -> int
(** Processes currently parked on a condition. *)

val live_processes : t -> int
(** Processes started and not yet finished.  A watchdog process can
    poll this to learn when it is the only thing left running. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit

val process_started : t -> unit
val process_finished : t -> unit
val process_blocked : t -> unit
val process_unblocked : t -> unit

val step : t -> bool
(** Execute the next event; [false] if the queue is empty. *)

val run : ?until:float -> t -> unit
(** Drain the event queue (up to [until] if given).  Raises {!Deadlock}
    if live processes remain when the queue is empty. *)
