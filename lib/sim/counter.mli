(** Waitable monotonic counter — the simulator carrier for barrier
    channels (release-store / acquire-load spin loops). *)

type t

val create : ?name:string -> unit -> t
val name : t -> string
val value : t -> int
val notify_count : t -> int

val add : t -> int -> unit
(** Increment and wake satisfied waiters. *)

val set_at_least : t -> int -> unit
(** Raise the value to at least [target] (idempotent notify). *)

val await_ge : ?tag:int -> t -> int -> unit
(** Park the calling process until [value >= threshold].  [tag]
    (default {!no_tag}) labels the parked waiter for {!cancel_tag} —
    runtimes tag waits with the executing rank so a crashed rank's
    blocked workers can be force-woken. *)

val no_tag : int
(** The reserved "never cancelled" tag. *)

val cancel_tag : t -> tag:int -> int
(** Wake every waiter registered under [tag] without changing the
    counter value; the resumed process sees its threshold unsatisfied.
    Returns the number woken.  Raises on {!no_tag}. *)

val reset : t -> unit
(** Reset to zero; fails if any process is waiting. *)
