(** Bandwidth server: FIFO link with fixed rate and latency.

    A transfer holds one of the link's [streams] for
    [latency_us + bytes / rate]. *)

type t

val create :
  Engine.t ->
  name:string ->
  gbps:float ->
  latency_us:float ->
  ?streams:int ->
  unit ->
  t

val name : t -> string
val bytes_moved : t -> float
val transfer_count : t -> int
val busy_time : t -> float

val duration : t -> bytes:float -> float
(** Nominal service time of a transfer, excluding queueing and any
    installed throttle (analytic models want the undisturbed figure). *)

val transfer : t -> bytes:float -> unit
(** Blocking transfer; must run inside a process.  The wire time uses
    the throttled rate sampled at admission. *)

val set_throttle : t -> (now:float -> float) -> unit
(** Install a time-varying rate multiplier, evaluated at each
    transfer's admission instant.  Multipliers are clamped to a small
    positive floor so an "outage" slows transfers to a crawl rather
    than dividing by zero. *)

val clear_throttle : t -> unit
