(** Planner-built workload variants: the operator graphs, allocators
    and references the auto-overlap planner is exercised against.

    Each family mirrors (or extends) a hand-written workload so
    planner-derived schedules can be compared — the MLP graph uses the
    exact buffer names of {!Mlp.ag_gemm_program}, so
    {!Mlp.ag_gemm_alloc} and {!Mlp.ag_gemm_reference} apply verbatim.
    The fused graph is deliberately {e not} in the hand-written suite:
    it is the "new operator graph" acceptance case. *)

open Tilelink_core

(** {2 MLP: AllGather + GEMM (mirrors {!Mlp})} *)

val mlp_graph : Mlp.ag_gemm_spec -> Planner.graph
(** One [Gemm] consumer writing ["y"], weights ["w"] — the same
    buffers {!Mlp.ag_gemm_alloc} binds and
    {!Mlp.ag_gemm_reference} checks. *)

(** {2 Softmax: AllGather + row softmax}

    Buffers per rank: ["x_shard"] [m/world, k], ["x_full"] [m, k],
    ["p"] [m, k] output. *)

val softmax_graph : m:int -> k:int -> world:int -> Planner.graph
val softmax_alloc : m:int -> k:int -> world:int -> seed:int -> Memory.t

val softmax_reference :
  Memory.t -> m:int -> world:int -> Tilelink_tensor.Tensor.t
(** [Planner.softmax_rows] of the gathered shards — shares the row
    kernel with the synthesized programs, so agreement is
    bit-identical. *)

(** {2 MoE dense-FFN proxy: AllGather + two parallel GEMMs}

    The gate/up projections of a dense FFN read the same gathered
    activations; the planner must schedule two consumers against one
    producer.  Buffers per rank: ["x_shard"], ["x_full"], weights
    ["w_gate"]/["w_up"] [k, n], outputs ["h_gate"]/["h_up"] [m, n]. *)

val moe_graph : m:int -> k:int -> n:int -> world:int -> Planner.graph
val moe_alloc : m:int -> k:int -> n:int -> world:int -> seed:int -> Memory.t

val moe_reference :
  Memory.t -> weights:string -> rank:int -> Tilelink_tensor.Tensor.t
(** Reference for one of the two projections ([weights] is ["w_gate"]
    or ["w_up"]). *)

(** {2 Fused GEMM + softmax (novel graph, not in the suite)}

    A [Gemm] consumer (["y"], weights ["w"]) and a [Softmax_rows]
    consumer (["p"]) share the gathered input: the planner derives the
    whole protocol for an operator graph no hand-written kernel
    covers. *)

val fused_graph : Mlp.ag_gemm_spec -> Planner.graph
val fused_alloc : Mlp.ag_gemm_spec -> seed:int -> Memory.t

val fused_gemm_reference :
  Memory.t -> Mlp.ag_gemm_spec -> rank:int -> Tilelink_tensor.Tensor.t

val fused_softmax_reference :
  Memory.t -> Mlp.ag_gemm_spec -> Tilelink_tensor.Tensor.t

(** {2 Graphs by name (CLI)} *)

type family = Fam_mlp | Fam_softmax | Fam_moe | Fam_fused

val family_of_string : string -> family option
val family_names : string list

val build :
  family ->
  m:int ->
  k:int ->
  n:int ->
  world:int ->
  seed:int ->
  Planner.graph * Memory.t
(** Graph plus allocated memories for any family at the given shape
    ([n] is ignored by [Fam_softmax]). *)
