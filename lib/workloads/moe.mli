(** Tensor-parallel MoE kernels with dynamic tile-centric mapping
    (Figure 5 of the paper): AG + Gather + GroupGEMM, and the
    three-stage GroupGEMM + Scatter + TopkReduce + ring ReduceScatter
    chain. *)

open Tilelink_core
open Tilelink_tensor
open Tilelink_machine

type spec = {
  tokens : int;        (** M: global token count *)
  hidden : int;        (** H *)
  intermediate : int;  (** I per expert, before the TP split *)
  experts : int;
  topk : int;
  world_size : int;
}

val i_per_rank : spec -> int
val permuted_rows : spec -> int

val routing : spec -> seed:int -> Routing.t
(** Deterministic routing shared by every rank. *)

val expert_tiles :
  Routing.permutation -> tile_rows:int -> (int * int * int) list
(** Expert-aligned 1-D tiling of the permuted row space:
    (expert, row_lo, row_hi); tiles never cross expert boundaries. *)

(** {2 Part 1: AG + Gather + GroupGEMM} *)

type part1_config = {
  comm_tile_rows : int;
  group_tile_rows : int;
  comm_binding : Design_space.resource_binding;
}

val default_part1_config : part1_config
val part1_alloc : spec -> seed:int -> Memory.t
val gathered_tokens : Memory.t -> spec -> Tensor.t
val part1_reference : Memory.t -> spec -> Routing.t -> rank:int -> Tensor.t

val part1_program :
  ?config:part1_config -> spec -> Routing.t -> spec_gpu:Spec.t -> Program.t

(** {2 Part 2: GroupGEMM + Scatter + TopkReduce + ring RS} *)

type part2_config = {
  gg_tile_rows : int;
  reduce_tile_rows : int;
  rs_tile_rows : int;
  reduce_sms : int;  (** worker cap of the TopkReduce role *)
  rs_sms : int;      (** worker cap of the ring-RS role *)
}

val default_part2_config : part2_config
val part2_alloc : spec -> seed:int -> Memory.t
val part2_partial : Memory.t -> spec -> Routing.t -> rank:int -> Tensor.t
val part2_reference : Memory.t -> spec -> Routing.t -> rank:int -> Tensor.t

val part2_program :
  ?config:part2_config -> spec -> Routing.t -> spec_gpu:Spec.t -> Program.t

(** {2 Telemetry consumers}

    Build the kernel and run it on a fresh trace-enabled cluster with
    the telemetry handle attached (see {!Profiled.run}). *)

val profile_part1 :
  ?config:part1_config ->
  telemetry:Tilelink_obs.Telemetry.t ->
  spec ->
  Routing.t ->
  spec_gpu:Spec.t ->
  Cluster.t * Tilelink_core.Runtime.result

val profile_part2 :
  ?config:part2_config ->
  telemetry:Tilelink_obs.Telemetry.t ->
  spec ->
  Routing.t ->
  spec_gpu:Spec.t ->
  Cluster.t * Tilelink_core.Runtime.result
