(* Tensor-parallel MoE kernels with dynamic tile-centric mapping
   (Figure 5 and §7.2 of the paper).

   Part 1 — AllGather + Gather + GroupGEMM:
     tokens are gathered over M while expert-grouped GEMM tiles consume
     them; which producer channels a GroupGEMM tile must wait on
     depends on the *runtime routing* (its tokens are scattered over
     the gathered buffer), so consumer waits go through lookup tables.

   Part 2 — GroupGEMM + Scatter + TopkReduce + ReduceScatter:
     a three-stage producer/consumer chain inside one fused kernel:
     GroupGEMM tiles (permuted row space) -> Scatter+TopkReduce tiles
     (token row space, dynamic mapping from tokens to permuted rows) ->
     ring ReduceScatter (peer signals), demonstrating the extended
     chains §7.2 describes.

   Expert layout: per-rank weights are stored flattened —
   "w1" : [E*H, I/R] (expert e in rows [e*H, (e+1)*H)) and
   "w2" : [E*(I/R), H]. *)

open Tilelink_core
open Tilelink_tensor
open Tilelink_machine

type spec = {
  tokens : int;        (* M: global token count *)
  hidden : int;        (* H *)
  intermediate : int;  (* I (per expert, before TP split) *)
  experts : int;       (* E *)
  topk : int;
  world_size : int;
}

let access = Instr.access

let i_per_rank spec = spec.intermediate / spec.world_size
let permuted_rows spec = spec.tokens * spec.topk

(* Deterministic routing shared by every rank (same seed, same gate). *)
let routing spec ~seed =
  Routing.random ~seed ~num_tokens:spec.tokens ~num_experts:spec.experts
    ~topk:spec.topk

(* Expert-aligned 1-D tiling of the permuted row space: tiles never
   cross expert boundaries (the vLLM-style block alignment).  Returns
   (expert, row_lo, row_hi) in permuted coordinates. *)
let expert_tiles (perm : Routing.permutation) ~tile_rows =
  let segments = Array.length perm.Routing.segment_offsets - 1 in
  List.concat
    (List.init segments (fun expert ->
         let seg_lo = perm.Routing.segment_offsets.(expert) in
         let seg_hi = perm.Routing.segment_offsets.(expert + 1) in
         let rows = seg_hi - seg_lo in
         let tiles = (rows + tile_rows - 1) / tile_rows in
         List.init tiles (fun i ->
             ( expert,
               seg_lo + (i * tile_rows),
               min seg_hi (seg_lo + ((i + 1) * tile_rows)) ))))

(* ------------------------------------------------------------------ *)
(* Part 1: AG + Gather + GroupGEMM                                     *)
(* ------------------------------------------------------------------ *)

(* Buffers per rank:
   - "tok_shard" [M/R, H]   local token shard
   - "tokens"    [M, H]     gathered tokens
   - "w1"        [E*H, I/R] expert up-projection weights
   - "moe_mid"   [M*topk, I/R] permuted expert outputs *)

let part1_alloc spec ~seed =
  let memory = Memory.create ~world_size:spec.world_size in
  let ipr = i_per_rank spec in
  for rank = 0 to spec.world_size - 1 do
    Memory.bind memory ~rank ~name:"tok_shard"
      (Tensor.random ~seed:(seed + rank)
         (Shape.of_list [ spec.tokens / spec.world_size; spec.hidden ]));
    Memory.bind memory ~rank ~name:"w1"
      (Tensor.random ~seed:(seed + 3000 + rank)
         (Shape.of_list [ spec.experts * spec.hidden; ipr ]));
    ignore
      (Memory.alloc memory ~rank ~name:"tokens"
         (Shape.of_list [ spec.tokens; spec.hidden ]));
    ignore
      (Memory.alloc memory ~rank ~name:"moe_mid"
         (Shape.of_list [ permuted_rows spec; ipr ]))
  done;
  memory

let gathered_tokens memory spec =
  Tensor.concat_rows
    (List.init spec.world_size (fun r ->
         Memory.find memory ~rank:r ~name:"tok_shard"))

let part1_reference memory spec route ~rank =
  let ipr = i_per_rank spec in
  let tokens = gathered_tokens memory spec in
  let w1 = Memory.find memory ~rank ~name:"w1" in
  let perm = Routing.permutation route in
  let out = Tensor.zeros (Shape.of_list [ permuted_rows spec; ipr ]) in
  Array.iteri
    (fun row (expert, token, _slot) ->
      let token_vec = Tensor.row_slice tokens ~lo:token ~hi:(token + 1) in
      let w_block =
        Tensor.row_slice w1 ~lo:(expert * spec.hidden)
          ~hi:((expert + 1) * spec.hidden)
      in
      Tensor.set_row_slice out ~lo:row (Linalg.gemm token_vec w_block))
    perm.Routing.entries;
  out

type part1_config = {
  comm_tile_rows : int;     (* AllGather tile over M *)
  group_tile_rows : int;    (* GroupGEMM tile over permuted rows *)
  comm_binding : Design_space.resource_binding;
}

let default_part1_config =
  {
    comm_tile_rows = 128;
    group_tile_rows = 128;
    comm_binding = Design_space.Comm_on_dma;
  }

let part1_program ?(config = default_part1_config) spec route
    ~(spec_gpu : Spec.t) =
  let r = spec.world_size in
  let ipr = i_per_rank spec in
  let shard_rows = spec.tokens / r in
  if shard_rows mod config.comm_tile_rows <> 0 then
    invalid_arg "Moe.part1: comm tile must divide the shard";
  let mapping =
    Mapping.static ~extent:spec.tokens ~ranks:r
      ~channels_per_rank:(shard_rows / config.comm_tile_rows)
      ~tile:config.comm_tile_rows ()
  in
  let perm = Routing.permutation route in
  let tiles = expert_tiles perm ~tile_rows:config.group_tile_rows in
  let comm_grid =
    Tile.grid ~extent_m:spec.tokens ~extent_n:spec.hidden
      ~tile_m:config.comm_tile_rows ~tile_n:spec.hidden
  in
  let plans =
    Array.init r (fun rank ->
        let bc = Block_channel.create ~rank ~world_size:r mapping in
        let comm_task tile =
          let tid = Tile.linearize comm_grid tile in
          let lo, hi = Mapping.shape_range mapping ~tid in
          let stmts =
            [
              Primitive.Tile_pull_data
                {
                  tid;
                  src_buffer = "tok_shard";
                  src_view = `Shard;
                  col = (0, spec.hidden);
                  dst =
                    access ~buffer:"tokens" ~row:(lo, hi)
                      ~col:(0, spec.hidden) ();
                  action = None;
                };
              Primitive.Producer_tile_notify { tid; mode = Primitive.P2p };
            ]
          in
          { Program.label = Printf.sprintf "ag[%d]" tid;
            instrs = Block_channel.lower bc stmts }
        in
        let comm_tasks =
          List.map comm_task
            (Tile.enumerate ~rank comm_grid
               (Tile.Ring_from_self { segments = r }))
        in
        (* GroupGEMM tile with fused gather: the tokens this tile needs
           are scattered, so the wait set comes from the routing
           tables — the dynamic mapping in action. *)
        let group_task index (expert, plo, phi) =
          let needed_tokens =
            List.init (phi - plo) (fun i ->
                let _e, token, _slot = perm.Routing.entries.(plo + i) in
                token)
          in
          let action memory ~rank =
            let tokens = Memory.find memory ~rank ~name:"tokens" in
            let w1 = Memory.find memory ~rank ~name:"w1" in
            let mid = Memory.find memory ~rank ~name:"moe_mid" in
            let gathered =
              Tensor.concat_rows
                (List.map
                   (fun token ->
                     Tensor.row_slice tokens ~lo:token ~hi:(token + 1))
                   needed_tokens)
            in
            let w_block =
              Tensor.row_slice w1 ~lo:(expert * spec.hidden)
                ~hi:((expert + 1) * spec.hidden)
            in
            Tensor.set_row_slice mid ~lo:plo (Linalg.gemm gathered w_block)
          in
          let stmts =
            [
              Primitive.Consumer_tile_wait_rows
                {
                  rows = needed_tokens;
                  buffer = "tokens";
                  col = (0, spec.hidden);
                };
              Primitive.Load
                (access ~buffer:"tokens" ~row:(0, spec.tokens)
                   ~col:(0, spec.hidden) ());
              Primitive.Load
                (access ~buffer:"w1"
                   ~row:(expert * spec.hidden, (expert + 1) * spec.hidden)
                   ~col:(0, ipr) ());
              Primitive.Compute
                {
                  label = Printf.sprintf "ggemm[e%d,%d]" expert index;
                  cost =
                    Instr.Gemm_tile
                      { tm = phi - plo; tn = ipr; k = spec.hidden };
                  reads =
                    [
                      access ~buffer:"tokens" ~row:(0, spec.tokens)
                        ~col:(0, spec.hidden) ();
                    ];
                  writes =
                    [ access ~buffer:"moe_mid" ~row:(plo, phi) ~col:(0, ipr) () ];
                  action = Some action;
                };
              Primitive.Store
                (access ~buffer:"moe_mid" ~row:(plo, phi) ~col:(0, ipr) ());
            ]
          in
          { Program.label = Printf.sprintf "ggemm[%d]" index;
            instrs = Block_channel.lower bc stmts }
        in
        let group_tasks = List.mapi group_task tiles in
        let comm_roles, comm_sms =
          match config.comm_binding with
          | Design_space.Comm_on_sm sms ->
            ( [
                {
                  Program.role_name = "ag-sm";
                  resource = Program.Sm_partition sms;
                  lane = Tilelink_sim.Trace.Comm_sm;
                  tasks = comm_tasks;
                };
              ],
              sms )
          | Design_space.Comm_on_dma | Design_space.Comm_hybrid _ ->
            ( [
                {
                  Program.role_name = "ag-dma";
                  resource =
                    Program.Dma_engines (min 2 spec_gpu.Spec.gpu.dma_channels);
                  lane = Tilelink_sim.Trace.Dma;
                  tasks = comm_tasks;
                };
              ],
              0 )
        in
        comm_roles
        @ [
            {
              Program.role_name = "group-gemm";
              resource =
                Program.Sm_partition
                  (max 1 (spec_gpu.Spec.gpu.num_sms - comm_sms));
              lane = Tilelink_sim.Trace.Compute_sm;
              tasks = group_tasks;
            };
          ])
  in
  Program.create ~name:"ag_moe" ~world_size:r
    ~pc_channels:(Mapping.num_channels mapping)
    ~peer_channels:1 plans

(* ------------------------------------------------------------------ *)
(* Part 2: GroupGEMM + Scatter + TopkReduce + ring ReduceScatter       *)
(* ------------------------------------------------------------------ *)

(* Buffers per rank:
   - "mid_act"   [M*topk, I/R] activations entering the down projection
   - "w2"        [E*(I/R), H]  expert down-projection weights
   - "gg_out"    [M*topk, H]   permuted partial outputs
   - "red_out"   [M, H]        topk-reduced partial (token space)
   - "rs_buffer" [M, H]        ring receive buffer
   - "rs_send"   [M, H]        ring staging
   - "out"       [M/R, H]      final shard *)

let part2_alloc spec ~seed =
  let memory = Memory.create ~world_size:spec.world_size in
  let ipr = i_per_rank spec in
  for rank = 0 to spec.world_size - 1 do
    Memory.bind memory ~rank ~name:"mid_act"
      (Tensor.random ~seed:(seed + 100 + rank)
         (Shape.of_list [ permuted_rows spec; ipr ]));
    Memory.bind memory ~rank ~name:"w2"
      (Tensor.random ~seed:(seed + 4000 + rank)
         (Shape.of_list [ spec.experts * ipr; spec.hidden ]));
    List.iter
      (fun name ->
        ignore
          (Memory.alloc memory ~rank ~name
             (Shape.of_list [ spec.tokens; spec.hidden ])))
      [ "red_out"; "rs_buffer"; "rs_send" ];
    ignore
      (Memory.alloc memory ~rank ~name:"gg_out"
         (Shape.of_list [ permuted_rows spec; spec.hidden ]));
    ignore
      (Memory.alloc memory ~rank ~name:"out"
         (Shape.of_list [ spec.tokens / spec.world_size; spec.hidden ]))
  done;
  memory

(* Per-rank partial after scatter + topk-reduce (before RS). *)
let part2_partial memory spec route ~rank =
  let ipr = i_per_rank spec in
  let mid = Memory.find memory ~rank ~name:"mid_act" in
  let w2 = Memory.find memory ~rank ~name:"w2" in
  let perm = Routing.permutation route in
  let red = Tensor.zeros (Shape.of_list [ spec.tokens; spec.hidden ]) in
  Array.iteri
    (fun row (expert, token, slot) ->
      let x = Tensor.row_slice mid ~lo:row ~hi:(row + 1) in
      let w_block =
        Tensor.row_slice w2 ~lo:(expert * ipr) ~hi:((expert + 1) * ipr)
      in
      let y = Linalg.gemm x w_block in
      let weight = (Routing.weights_of_token route token).(slot) in
      Tensor.add_row_slice red ~lo:token (Tensor.scale weight y))
    perm.Routing.entries;
  red

let part2_reference memory spec route ~rank =
  let partials =
    List.init spec.world_size (fun r -> part2_partial memory spec route ~rank:r)
  in
  let total = Tilelink_comm.Collective.reduce_data partials in
  let per = spec.tokens / spec.world_size in
  Tensor.row_slice total ~lo:(rank * per) ~hi:((rank + 1) * per)

type part2_config = {
  gg_tile_rows : int;     (* GroupGEMM tile over permuted rows *)
  reduce_tile_rows : int; (* TopkReduce tile over token rows *)
  rs_tile_rows : int;     (* RS tile over per-rank token rows *)
  reduce_sms : int;
  rs_sms : int;
}

let default_part2_config =
  {
    gg_tile_rows = 128;
    reduce_tile_rows = 128;
    rs_tile_rows = 128;
    (* Worker caps, not static partitions: the runtime arbitrates SMs
       per task, so the reducer and the ring RS borrow the chip once
       the GroupGEMM drains. *)
    reduce_sms = 64;
    rs_sms = 32;
  }

let part2_program ?(config = default_part2_config) spec route
    ~(spec_gpu : Spec.t) =
  let r = spec.world_size in
  let ipr = i_per_rank spec in
  let m = spec.tokens in
  let m_per_rank = m / r in
  if m_per_rank mod config.rs_tile_rows <> 0 then
    invalid_arg "Moe.part2: rs tile must divide the shard";
  if m mod config.reduce_tile_rows <> 0 then
    invalid_arg "Moe.part2: reduce tile must divide the token count";
  let perm = Routing.permutation route in
  let gg_tiles = expert_tiles perm ~tile_rows:config.gg_tile_rows in
  let num_gg_tiles = List.length gg_tiles in
  (* Link A (dynamic): GroupGEMM tiles -> TopkReduce.  One channel per
     producer tile; the tables are exactly the runtime-filled f_S / f_R
     / f_C of the paper.  Channels are spread over ranks' channel
     arrays round-robin via global ids. *)
  let channels_per_rank_a = (num_gg_tiles + r - 1) / r in
  let f_s_low = Array.make num_gg_tiles 0 in
  let f_s_high = Array.make num_gg_tiles 0 in
  let f_r = Array.make num_gg_tiles 0 in
  let f_c = Array.make num_gg_tiles 0 in
  List.iteri
    (fun i (_expert, plo, phi) ->
      f_s_low.(i) <- plo;
      f_s_high.(i) <- phi;
      f_r.(i) <- i mod r;
      f_c.(i) <- i)
    gg_tiles;
  let mapping_a =
    Mapping.dynamic ~ranks:r ~channels_per_rank:channels_per_rank_a ~f_s_low
      ~f_s_high ~f_r ~f_c ()
  in
  (* Link B (static): TopkReduce tiles (token rows) -> ring RS. *)
  let mapping_b =
    Mapping.static ~extent:m ~ranks:r
      ~channels_per_rank:(m_per_rank / config.reduce_tile_rows)
      ~tile:config.reduce_tile_rows ()
  in
  let base_b = Mapping.num_channels mapping_a in
  (* Permuted positions of each token (token -> rows of gg_out). *)
  let token_positions = Array.make m [] in
  Array.iteri
    (fun row (_e, token, _slot) ->
      token_positions.(token) <- row :: token_positions.(token))
    perm.Routing.entries;
  let rs_grid =
    Tile.grid ~extent_m:m_per_rank ~extent_n:spec.hidden
      ~tile_m:config.rs_tile_rows ~tile_n:spec.hidden
  in
  let rs_tiles = Tile.tile_count rs_grid in
  let plans =
    Array.init r (fun rank ->
        let bc_a = Block_channel.create ~rank ~world_size:r mapping_a in
        let bc_b =
          Block_channel.create ~channel_base:base_b ~rank ~world_size:r
            mapping_b
        in
        (* --- role A: GroupGEMM producer --- *)
        let gg_task index (expert, plo, phi) =
          let action memory ~rank =
            let mid = Memory.find memory ~rank ~name:"mid_act" in
            let w2 = Memory.find memory ~rank ~name:"w2" in
            let gg = Memory.find memory ~rank ~name:"gg_out" in
            let w_block =
              Tensor.row_slice w2 ~lo:(expert * ipr) ~hi:((expert + 1) * ipr)
            in
            Tensor.set_row_slice gg ~lo:plo
              (Linalg.gemm (Tensor.row_slice mid ~lo:plo ~hi:phi) w_block)
          in
          let stmts =
            [
              Primitive.Load
                (access ~buffer:"mid_act" ~row:(plo, phi) ~col:(0, ipr) ());
              Primitive.Compute
                {
                  label = Printf.sprintf "gg[e%d,%d]" expert index;
                  cost =
                    Instr.Gemm_tile { tm = phi - plo; tn = spec.hidden; k = ipr };
                  reads =
                    [ access ~buffer:"mid_act" ~row:(plo, phi) ~col:(0, ipr) () ];
                  writes =
                    [
                      access ~buffer:"gg_out" ~row:(plo, phi)
                        ~col:(0, spec.hidden) ();
                    ];
                  action = Some action;
                };
              Primitive.Store
                (access ~buffer:"gg_out" ~row:(plo, phi) ~col:(0, spec.hidden)
                   ());
              Primitive.Producer_tile_notify
                { tid = index; mode = Primitive.P2p };
            ]
          in
          { Program.label = Printf.sprintf "gg[%d]" index;
            instrs = Block_channel.lower bc_a stmts }
        in
        let gg_tasks = List.mapi gg_task gg_tiles in
        (* --- role B: Scatter + TopkReduce --- *)
        let reduce_tiles = m / config.reduce_tile_rows in
        let reduce_task ti =
          let tlo = ti * config.reduce_tile_rows in
          let thi = tlo + config.reduce_tile_rows in
          let needed_rows =
            List.concat
              (List.init (thi - tlo) (fun i -> token_positions.(tlo + i)))
          in
          let action memory ~rank =
            let gg = Memory.find memory ~rank ~name:"gg_out" in
            let red = Memory.find memory ~rank ~name:"red_out" in
            for token = tlo to thi - 1 do
              let weights = Routing.weights_of_token route token in
              let acc = Tensor.zeros (Shape.of_list [ 1; spec.hidden ]) in
              let rows = token_positions.(token) in
              List.iter
                (fun row ->
                  (* recover the slot of this permuted row *)
                  let _e, _t, slot = perm.Routing.entries.(row) in
                  Tensor.add_inplace acc
                    (Tensor.scale weights.(slot)
                       (Tensor.row_slice gg ~lo:row ~hi:(row + 1))))
                rows;
              Tensor.set_row_slice red ~lo:token acc
            done
          in
          let stmts =
            [
              Primitive.Consumer_tile_wait_rows
                { rows = needed_rows; buffer = "gg_out"; col = (0, spec.hidden) };
              Primitive.Load
                (access ~buffer:"gg_out" ~row:(0, permuted_rows spec)
                   ~col:(0, spec.hidden) ());
              Primitive.Compute
                {
                  label = Printf.sprintf "topk-reduce[%d]" ti;
                  cost =
                    Instr.Memory_tile
                      {
                        rows = (thi - tlo) * spec.topk;
                        cols = spec.hidden;
                        passes = 2;
                      };
                  reads =
                    [
                      access ~buffer:"gg_out" ~row:(0, permuted_rows spec)
                        ~col:(0, spec.hidden) ();
                    ];
                  writes =
                    [
                      access ~buffer:"red_out" ~row:(tlo, thi)
                        ~col:(0, spec.hidden) ();
                    ];
                  action = Some action;
                };
              Primitive.Store
                (access ~buffer:"red_out" ~row:(tlo, thi) ~col:(0, spec.hidden)
                   ());
              Primitive.Producer_tile_notify
                { tid = tlo / config.reduce_tile_rows; mode = Primitive.P2p };
            ]
          in
          (* Waits resolve through link A's tables; the trailing notify
             goes to link B, so lower the two halves separately. *)
          let rec split acc = function
            | [ last ] -> (List.rev acc, [ last ])
            | x :: rest -> split (x :: acc) rest
            | [] -> (List.rev acc, [])
          in
          let front, back = split [] stmts in
          {
            Program.label = Printf.sprintf "reduce[%d]" ti;
            instrs = Block_channel.lower bc_a front @ Block_channel.lower bc_b back;
          }
        in
        let reduce_tasks = List.init reduce_tiles reduce_task in
        (* --- role C: ring ReduceScatter over red_out (Figure 4) --- *)
        let to_rank = (rank - 1 + r) mod r in
        let from_rank = (rank + 1) mod r in
        let rs_stmts ~stage tile =
          let seg = (rank + stage + 1) mod r in
          let llo, lhi = Tile.rows rs_grid tile in
          let glo = (seg * m_per_rank) + llo and ghi = (seg * m_per_rank) + lhi in
          let tile_key = Tile.linearize rs_grid tile in
          let last = stage = r - 1 in
          let action memory ~rank =
            let red = Memory.find memory ~rank ~name:"red_out" in
            let data =
              Tensor.block red ~row_lo:glo ~row_hi:ghi ~col_lo:0
                ~col_hi:spec.hidden
            in
            let data =
              if stage = 0 then data
              else
                Tensor.add data
                  (Tensor.block
                     (Memory.find memory ~rank ~name:"rs_buffer")
                     ~row_lo:glo ~row_hi:ghi ~col_lo:0 ~col_hi:spec.hidden)
            in
            if last then
              Tensor.set_block
                (Memory.find memory ~rank ~name:"out")
                ~row_lo:llo ~col_lo:0 data
            else
              Tensor.set_block
                (Memory.find memory ~rank ~name:"rs_send")
                ~row_lo:glo ~col_lo:0 data
          in
          let wait_peer =
            if stage = 0 then []
            else
              [
                Primitive.Peer_tile_wait
                  {
                    tile_key;
                    src = from_rank;
                    threshold = stage;
                    guards =
                      [
                        access ~buffer:"rs_buffer" ~row:(glo, ghi)
                          ~col:(0, spec.hidden) ();
                      ];
                  };
              ]
          in
          let tail =
            if last then
              [
                Primitive.Store
                  (access ~buffer:"out" ~row:(llo, lhi) ~col:(0, spec.hidden) ());
              ]
            else
              [
                Primitive.Tile_push_data
                  {
                    src =
                      access ~buffer:"rs_send" ~row:(glo, ghi)
                        ~col:(0, spec.hidden) ();
                    dst_rank = to_rank;
                    dst =
                      access ~buffer:"rs_buffer" ~row:(glo, ghi)
                        ~col:(0, spec.hidden) ();
                  };
                Primitive.Peer_tile_notify
                  {
                    tile_key;
                    dst = to_rank;
                    amount = 1;
                    releases =
                      [
                        access ~rank:to_rank ~buffer:"rs_buffer"
                          ~row:(glo, ghi) ~col:(0, spec.hidden) ();
                      ];
                  };
              ]
          in
          [
            Primitive.Consumer_tile_wait
              { lo = glo; hi = ghi; buffer = "red_out"; col = (0, spec.hidden) };
            Primitive.Load
              (access ~buffer:"red_out" ~row:(glo, ghi) ~col:(0, spec.hidden)
                 ());
          ]
          @ wait_peer
          @ [
              Primitive.Compute
                {
                  label = Printf.sprintf "rs-red[s%d,%d]" stage tile_key;
                  cost =
                    Instr.Memory_tile
                      {
                        rows = lhi - llo;
                        cols = spec.hidden;
                        passes = (if stage = 0 then 2 else 3);
                      };
                  reads =
                    [
                      access ~buffer:"red_out" ~row:(glo, ghi)
                        ~col:(0, spec.hidden) ();
                    ];
                  writes =
                    [
                      access
                        ~buffer:(if last then "out" else "rs_send")
                        ~row:(if last then (llo, lhi) else (glo, ghi))
                        ~col:(0, spec.hidden) ();
                    ];
                  action = Some action;
                };
            ]
          @ tail
        in
        let rs_task ~stage tile =
          {
            Program.label =
              Printf.sprintf "rs[s%d,%d]" stage (Tile.linearize rs_grid tile);
            instrs = Block_channel.lower bc_b (rs_stmts ~stage tile);
          }
        in
        let rs_tasks =
          List.concat
            (List.init r (fun stage ->
                 List.map (rs_task ~stage)
                   (Tile.enumerate ~rank rs_grid Tile.Row_major)))
        in
        let gg_sms = spec_gpu.Spec.gpu.num_sms in
        [
          {
            Program.role_name = "group-gemm";
            resource = Program.Sm_partition gg_sms;
            lane = Tilelink_sim.Trace.Compute_sm;
            tasks = gg_tasks;
          };
          {
            Program.role_name = "topk-reduce";
            resource = Program.Sm_partition config.reduce_sms;
            lane = Tilelink_sim.Trace.Compute_sm;
            tasks = reduce_tasks;
          };
          {
            Program.role_name = "ring-rs";
            resource = Program.Sm_partition config.rs_sms;
            lane = Tilelink_sim.Trace.Comm_sm;
            tasks = rs_tasks;
          };
        ])
  in
  Program.create ~name:"moe_rs" ~world_size:r
    ~pc_channels:(Mapping.num_channels mapping_a + Mapping.num_channels mapping_b)
    ~peer_channels:rs_tiles plans

(* ------------------------------------------------------------------ *)
(* Telemetry consumers                                                 *)
(* ------------------------------------------------------------------ *)

let profile_part1 ?config ~telemetry spec route ~spec_gpu =
  Profiled.run ~telemetry ~spec_gpu
    (part1_program ?config spec route ~spec_gpu)

let profile_part2 ?config ~telemetry spec route ~spec_gpu =
  Profiled.run ~telemetry ~spec_gpu
    (part2_program ?config spec route ~spec_gpu)
