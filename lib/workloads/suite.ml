(* The shipped-program sweep: every workload family across a rank and
   tile-shape sweep, built against the fast test machine.

   One definition serves four consumers — the CLI's `verify` command
   (static protocol analysis over all of them), the conservation
   property test (attribution buckets must sum to the makespan on every
   program), the sequential-vs-parallel bit-identity sweep (which needs
   seeded memories too, see [data_cases]), and anything else that wants
   "all shipped programs" as a corpus.  Building is cheap (no
   simulation), so the full sweep stays well under a second.

   [data_cases] returns *builders* rather than built programs on
   purpose: task closures can hold accumulator state (flash-attention
   online softmax), so every execution needs a freshly built program —
   running one program object twice with data is a bug. *)

open Tilelink_core
open Tilelink_machine

let sweep_config ~world ~binding ~comm_tile ~compute_tile ~stages ~ring =
  {
    Design_space.comm_tile = (comm_tile, 128);
    compute_tile = (compute_tile, compute_tile);
    comm_order =
      (if ring then Tile.Ring_from_self { segments = world }
       else Tile.Row_major);
    compute_order =
      (if ring then Tile.Ring_from_self { segments = world }
       else Tile.Row_major);
    binding;
    stages;
    micro_block = 0;
  }

let build_cases () =
  let machine = Calib.test_machine in
  let suite = ref [] in
  let add name case = suite := (name, case) :: !suite in
  (* MLP AG+GEMM, pull and push transfer modes. *)
  List.iter
    (fun world ->
      List.iter
        (fun comm_tile ->
          let shapes =
            { Mlp.m = 8 * world; k = 4; n = 6; world_size = world }
          in
          let cfg =
            sweep_config ~world ~binding:(Design_space.Comm_on_sm 1)
              ~comm_tile ~compute_tile:2 ~stages:2 ~ring:true
          in
          add
            (Printf.sprintf "mlp_ag_gemm_pull/w%d/t%d" world comm_tile)
            (fun () ->
              ( Mlp.ag_gemm_alloc shapes ~seed:11,
                Mlp.ag_gemm_program ~config:cfg shapes ~spec_gpu:machine ));
          add
            (Printf.sprintf "mlp_ag_gemm_push/w%d/t%d" world comm_tile)
            (fun () ->
              ( Mlp.ag_gemm_alloc shapes ~seed:11,
                Mlp.ag_gemm_program ~transfer:`Push ~config:cfg shapes
                  ~spec_gpu:machine )))
        [ 2; 4 ])
    [ 2; 4; 8 ];
  (* MLP GEMM+RS. *)
  List.iter
    (fun world ->
      let shapes =
        { Mlp.rs_m = 4 * world; rs_k = 3; rs_n = 4; rs_world = world }
      in
      let cfg =
        {
          Design_space.comm_tile = (2, 2);
          compute_tile = (2, 2);
          comm_order = Tile.Row_major;
          compute_order = Tile.Row_major;
          binding = Design_space.Comm_on_sm 1;
          stages = 1;
          micro_block = 0;
        }
      in
      add
        (Printf.sprintf "mlp_gemm_rs/w%d" world)
        (fun () ->
          ( Mlp.gemm_rs_alloc shapes ~seed:12,
            Mlp.gemm_rs_program ~config:cfg shapes ~spec_gpu:machine )))
    [ 2; 4 ];
  (* MoE part 1 and part 2 (dynamic routing tables). *)
  List.iter
    (fun world ->
      let spec =
        {
          Moe.tokens = 4 * world;
          hidden = 4;
          intermediate = 8;
          experts = 3;
          topk = 2;
          world_size = world;
        }
      in
      let route = Moe.routing spec ~seed:5 in
      add
        (Printf.sprintf "moe_part1/w%d" world)
        (fun () ->
          ( Moe.part1_alloc spec ~seed:13,
            Moe.part1_program
              ~config:
                {
                  Moe.comm_tile_rows = 2;
                  group_tile_rows = 2;
                  comm_binding = Design_space.Comm_on_sm 1;
                }
              spec route ~spec_gpu:machine ));
      add
        (Printf.sprintf "moe_part2/w%d" world)
        (fun () ->
          ( Moe.part2_alloc spec ~seed:14,
            Moe.part2_program
              ~config:
                {
                  Moe.gg_tile_rows = 2;
                  reduce_tile_rows = 2;
                  rs_tile_rows = 2;
                  reduce_sms = 1;
                  rs_sms = 1;
                }
              spec route ~spec_gpu:machine )))
    [ 2; 4 ];
  (* Sequence-parallel attention and its ring variant. *)
  List.iter
    (fun world ->
      let spec =
        {
          Attention.batch_heads = 2;
          seq = 8 * world;
          head_dim = 4;
          world_size = world;
          causal = false;
        }
      in
      let cfg = { Attention.q_tile = 4; kv_tile = 4 } in
      add
        (Printf.sprintf "attention/w%d" world)
        (fun () ->
          ( Attention.alloc spec ~seed:15,
            Attention.program ~config:cfg spec ~spec_gpu:machine ));
      add
        (Printf.sprintf "ring_attention/w%d" world)
        (fun () ->
          ( Ring_attention.alloc spec ~seed:16,
            Ring_attention.program
              ~config:{ Ring_attention.q_tile = 4; comm_sms = 1 }
              spec ~spec_gpu:machine )))
    [ 2; 4 ];
  add "attention_causal/w2" (fun () ->
      let spec =
        {
          Attention.batch_heads = 2;
          seq = 16;
          head_dim = 4;
          world_size = 2;
          causal = true;
        }
      in
      ( Attention.alloc spec ~seed:17,
        Attention.program
          ~config:{ Attention.q_tile = 4; kv_tile = 4 }
          spec ~spec_gpu:machine ));
  (* Expert-parallel MoE dispatch/combine. *)
  add "ep_moe/w2" (fun () ->
      let spec =
        {
          Ep_moe.tokens = 16;
          hidden = 4;
          intermediate = 6;
          experts = 4;
          topk = 2;
          world_size = 2;
        }
      in
      let route = Ep_moe.routing spec ~seed:13 in
      ( fst (Ep_moe.alloc spec route ~seed:18),
        Ep_moe.program
          ~config:
            { Ep_moe.tile_rows = 2; comm_binding = Design_space.Comm_on_dma }
          spec route ~spec_gpu:machine ));
  add "ep_moe/w4" (fun () ->
      let spec =
        {
          Ep_moe.tokens = 32;
          hidden = 4;
          intermediate = 6;
          experts = 8;
          topk = 2;
          world_size = 4;
        }
      in
      let route = Ep_moe.routing spec ~seed:13 in
      ( fst (Ep_moe.alloc spec route ~seed:19),
        Ep_moe.program
          ~config:
            { Ep_moe.tile_rows = 2; comm_binding = Design_space.Comm_on_dma }
          spec route ~spec_gpu:machine ));
  List.rev !suite

let data_cases () = build_cases ()

let programs () =
  List.map (fun (name, case) -> (name, snd (case ()))) (build_cases ())
