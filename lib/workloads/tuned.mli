(** TileLink's reported numbers: the best point of the decoupled design
    space under the simulator, searched per shape over curated
    candidate lists. *)

open Tilelink_core
open Tilelink_machine

val ag_gemm_candidates : world_size:int -> Design_space.config list
val gemm_rs_candidates : world_size:int -> Design_space.config list

type tuned = {
  best_config : Design_space.config;
  best_time : float;
  candidates_tried : int;
}

val ag_gemm :
  ?pool:Tilelink_exec.Pool.t ->
  ?cache:Tilelink_exec.Cache.t ->
  Spec.t ->
  world_size:int ->
  m:int ->
  k:int ->
  n:int ->
  tuned

val gemm_rs :
  ?pool:Tilelink_exec.Pool.t ->
  ?cache:Tilelink_exec.Cache.t ->
  Spec.t ->
  world_size:int ->
  m:int ->
  k:int ->
  n:int ->
  tuned

val activation_time : Spec.t -> m:int -> i:int -> float
(** Gated-activation kernel between the MLP halves (same for every
    method). *)

val mlp_time :
  ?pool:Tilelink_exec.Pool.t ->
  ?cache:Tilelink_exec.Cache.t ->
  Spec.t ->
  world_size:int ->
  shape:Shapes.mlp ->
  float
(** Tuned AG+GEMM + activation + tuned GEMM+RS. *)
