(** The shipped-program sweep: every workload family across a rank and
    tile-shape sweep, built against {!Calib.test_machine}.  Shared by
    the CLI's [verify] command and the attribution conservation
    property test. *)

val programs : unit -> (string * Tilelink_core.Program.t) list
(** Named programs in deterministic order (currently 25).  Building is
    static — no simulation happens. *)
