(** The shipped-program sweep: every workload family across a rank and
    tile-shape sweep, built against {!Calib.test_machine}.  Shared by
    the CLI's [verify] command and the attribution conservation
    property test. *)

val programs : unit -> (string * Tilelink_core.Program.t) list
(** Named programs in deterministic order (currently 25).  Building is
    static — no simulation happens. *)

val data_cases :
  unit ->
  (string * (unit -> Tilelink_core.Memory.t * Tilelink_core.Program.t)) list
(** The same sweep as {!programs}, but each entry is a *builder*
    returning a seeded memory plus a freshly built program.  Builders
    must be re-invoked per execution: task closures can carry
    accumulator state (flash-attention online softmax), so a program
    object is single-use once run with data. *)
