(* Tensor-parallel MLP kernels built from tile-centric primitives.

   Two overlapped kernels (Figure 1 / Figure 4 of the paper):

   - [ag_gemm_program]: AllGather of the activation over M, overlapped
     with GEMM.  The communication role pulls remote shards tile by
     tile (SM-, DMA- or hybrid-bound per the design-space config) and
     signals producer channels; GEMM consumer tiles wait only for the
     rows they read.

   - [gemm_rs_program]: GEMM producing a partial [M, N] overlapped with
     a ring ReduceScatter consumer exactly as in Figure 4 — per-tile
     producer/consumer signals between GEMM and the reducer,
     peer-to-peer signals between ranks along the ring.

   Buffer layout conventions are documented on each builder; data
   actions implement real tensor semantics so the same programs verify
   numerically at small shapes. *)

open Tilelink_core
open Tilelink_tensor
open Tilelink_machine

type ag_gemm_spec = {
  m : int;          (* global rows (batch x seq) *)
  k : int;          (* hidden dim (gather width) *)
  n : int;          (* output columns per rank *)
  world_size : int;
}

let access = Instr.access

let ceil_div a b = (a + b - 1) / b

(* Split a task list between a DMA-bound prefix and an SM-bound
   remainder for hybrid bindings. *)
let split_fraction fraction tasks =
  let n = List.length tasks in
  let cut = int_of_float (fraction *. float_of_int n) in
  let rec take i = function
    | [] -> ([], [])
    | x :: rest ->
      if i = 0 then ([], x :: rest)
      else begin
        let front, back = take (i - 1) rest in
        (x :: front, back)
      end
  in
  take cut tasks

(* ------------------------------------------------------------------ *)
(* AllGather + GEMM                                                    *)
(* ------------------------------------------------------------------ *)

(* Buffers per rank:
   - "x_shard" [m / world, k]  local input shard
   - "x_full"  [m, k]          gather destination
   - "w"       [k, n]          local weight shard
   - "y"       [m, n]          local output *)

let ag_gemm_alloc spec ~seed =
  let memory = Memory.create ~world_size:spec.world_size in
  let shard_rows = spec.m / spec.world_size in
  for rank = 0 to spec.world_size - 1 do
    Memory.bind memory ~rank ~name:"x_shard"
      (Tensor.random ~seed:(seed + rank)
         (Shape.of_list [ shard_rows; spec.k ]));
    Memory.bind memory ~rank ~name:"w"
      (Tensor.random ~seed:(seed + 1000 + rank)
         (Shape.of_list [ spec.k; spec.n ]));
    ignore
      (Memory.alloc memory ~rank ~name:"x_full"
         (Shape.of_list [ spec.m; spec.k ]));
    ignore
      (Memory.alloc memory ~rank ~name:"y" (Shape.of_list [ spec.m; spec.n ]))
  done;
  memory

let ag_gemm_reference memory spec ~rank =
  let shards =
    List.init spec.world_size (fun r ->
        Memory.find memory ~rank:r ~name:"x_shard")
  in
  Linalg.gemm (Tensor.concat_rows shards)
    (Memory.find memory ~rank ~name:"w")

let ag_gemm_program ?(k_chunks = 2) ?(transfer = `Pull)
    ~(config : Design_space.config) spec ~(spec_gpu : Spec.t) =
  let r = spec.world_size in
  if spec.m mod r <> 0 then invalid_arg "Mlp.ag_gemm: m not divisible";
  let comm_tm = fst config.Design_space.comm_tile in
  let compute_tm, compute_tn = config.Design_space.compute_tile in
  let shard_rows = spec.m / r in
  if shard_rows mod comm_tm <> 0 then
    invalid_arg "Mlp.ag_gemm: comm tile must divide the shard";
  let channels_per_rank = shard_rows / comm_tm in
  let mapping =
    Mapping.static ~extent:spec.m ~ranks:r ~channels_per_rank ~tile:comm_tm
      ()
  in
  let comm_grid =
    Tile.grid ~extent_m:spec.m ~extent_n:spec.k ~tile_m:comm_tm
      ~tile_n:spec.k
  in
  let compute_grid =
    Tile.grid ~extent_m:spec.m ~extent_n:spec.n ~tile_m:compute_tm
      ~tile_n:compute_tn
  in
  let plans =
    Array.init r (fun rank ->
        let bc = Block_channel.create ~rank ~world_size:r mapping in
        (* --- communication ---
           Pull mode (Figure 3b left): this rank fetches every remote
           tile into its own [x_full] and signals its local consumers.
           Push mode (Figure 3b right): this rank broadcasts its *own*
           shard tiles into every rank's [x_full] and notifies all
           remote consumers. *)
        let pull_task tile =
          let tid = Tile.linearize comm_grid tile in
          let lo, hi = Mapping.shape_range mapping ~tid in
          let stmts =
            [
              Primitive.Tile_pull_data
                {
                  tid;
                  src_buffer = "x_shard";
                  src_view = `Shard;
                  col = (0, spec.k);
                  dst = access ~buffer:"x_full" ~row:(lo, hi) ~col:(0, spec.k) ();
                  action = None;
                };
              Primitive.Producer_tile_notify { tid; mode = Primitive.P2p };
            ]
          in
          { Program.label = Printf.sprintf "ag[%d]" tid;
            instrs = Block_channel.lower bc stmts }
        in
        let push_task tile =
          let tid = Tile.linearize comm_grid tile in
          let glo, ghi = Mapping.shape_range mapping ~tid in
          let slo, shi = Mapping.src_shard_range mapping ~tid in
          let pushes =
            List.init r (fun dst_rank ->
                Primitive.Tile_push_data
                  {
                    src =
                      access ~buffer:"x_shard" ~row:(slo, shi)
                        ~col:(0, spec.k) ();
                    dst_rank;
                    dst =
                      access ~buffer:"x_full" ~row:(glo, ghi)
                        ~col:(0, spec.k) ();
                  })
          in
          let stmts =
            pushes
            @ [ Primitive.Producer_tile_notify { tid; mode = Primitive.Broadcast } ]
          in
          { Program.label = Printf.sprintf "ag-push[%d]" tid;
            instrs = Block_channel.lower bc stmts }
        in
        let comm_tasks =
          let tiles =
            Tile.enumerate ~rank comm_grid config.Design_space.comm_order
          in
          match transfer with
          | `Pull -> List.map pull_task tiles
          | `Push ->
            (* Only this rank's own shard tiles are pushed. *)
            List.filter_map
              (fun tile ->
                let tid = Tile.linearize comm_grid tile in
                if Mapping.rank_of mapping ~tid = rank then
                  Some (push_task tile)
                else None)
              tiles
        in
        (* --- computation: consumer GEMM tiles --- *)
        let compute_task tile =
          let lo, hi = Tile.rows compute_grid tile in
          let clo, chi = Tile.cols compute_grid tile in
          let action memory ~rank =
            let x = Memory.find memory ~rank ~name:"x_full" in
            let w = Memory.find memory ~rank ~name:"w" in
            let y = Memory.find memory ~rank ~name:"y" in
            let block =
              Linalg.gemm ~block:config.Design_space.micro_block
                (Tensor.row_slice x ~lo ~hi)
                (Tensor.col_slice w ~lo:clo ~hi:chi)
            in
            Tensor.set_block y ~row_lo:lo ~col_lo:clo block
          in
          let chunk = ceil_div spec.k k_chunks in
          (* The data action rides on the last *non-empty* chunk: with
             k < k_chunks the trailing chunks are empty. *)
          let live_chunks = ceil_div spec.k chunk in
          let k_loop =
            List.concat
              (List.init live_chunks (fun kc ->
                   let klo = kc * chunk and khi = min spec.k ((kc + 1) * chunk) in
                   if klo >= khi then []
                   else
                     [
                       Primitive.Load
                         (access ~buffer:"x_full" ~row:(lo, hi)
                            ~col:(klo, khi) ());
                       Primitive.Load
                         (access ~buffer:"w" ~row:(klo, khi) ~col:(clo, chi)
                            ());
                       Primitive.Compute
                         {
                           label =
                             Printf.sprintf "gemm[%d,%d]k%d" tile.Tile.tid_m
                               tile.Tile.tid_n kc;
                           cost =
                             Instr.Gemm_tile
                               { tm = hi - lo; tn = chi - clo; k = khi - klo };
                           reads =
                             [
                               access ~buffer:"x_full" ~row:(lo, hi)
                                 ~col:(klo, khi) ();
                             ];
                           writes = [];
                           action =
                             (if kc = live_chunks - 1 then Some action else None);
                         };
                     ]))
          in
          let stmts =
            Primitive.Consumer_tile_wait
              { lo; hi; buffer = "x_full"; col = (0, spec.k) }
            :: k_loop
            @ [
                Primitive.Store
                  (access ~buffer:"y" ~row:(lo, hi) ~col:(clo, chi) ());
              ]
          in
          {
            Program.label =
              Printf.sprintf "gemm[%d,%d]" tile.Tile.tid_m tile.Tile.tid_n;
            instrs =
              Pipeline.hoist_loads ~stages:config.Design_space.stages
                (Block_channel.lower bc stmts);
          }
        in
        let compute_tasks =
          List.map compute_task
            (Tile.enumerate ~rank compute_grid
               config.Design_space.compute_order)
        in
        let comm_roles =
          match config.Design_space.binding with
          | Design_space.Comm_on_sm sms ->
            [
              {
                Program.role_name = "allgather-sm";
                resource = Program.Sm_partition sms;
                lane = Tilelink_sim.Trace.Comm_sm;
                tasks = comm_tasks;
              };
            ]
          | Design_space.Comm_on_dma ->
            [
              {
                Program.role_name = "allgather-dma";
                resource = Program.Dma_engines (min 2 spec_gpu.Spec.gpu.dma_channels);
                lane = Tilelink_sim.Trace.Dma;
                tasks = comm_tasks;
              };
            ]
          | Design_space.Comm_hybrid { dma_fraction; sms } ->
            let dma_tasks, sm_tasks = split_fraction dma_fraction comm_tasks in
            [
              {
                Program.role_name = "allgather-dma";
                resource = Program.Dma_engines (min 2 spec_gpu.Spec.gpu.dma_channels);
                lane = Tilelink_sim.Trace.Dma;
                tasks = dma_tasks;
              };
              {
                Program.role_name = "allgather-sm";
                resource = Program.Sm_partition sms;
                lane = Tilelink_sim.Trace.Comm_sm;
                tasks = sm_tasks;
              };
            ]
        in
        let comm_sms =
          match config.Design_space.binding with
          | Design_space.Comm_on_sm sms -> sms
          | Design_space.Comm_on_dma -> 0
          | Design_space.Comm_hybrid { sms; _ } -> sms
        in
        (* The compute partition takes whatever communication leaves. *)
        let compute_sms = max 1 (spec_gpu.Spec.gpu.num_sms - comm_sms) in
        comm_roles
        @ [
            {
              Program.role_name = "gemm";
              resource = Program.Sm_partition compute_sms;
              lane = Tilelink_sim.Trace.Compute_sm;
              tasks = compute_tasks;
            };
          ])
  in
  Program.create ~name:"ag_gemm" ~world_size:r
    ~pc_channels:(Mapping.num_channels mapping)
    ~peer_channels:1 plans

(* ------------------------------------------------------------------ *)
(* GEMM + ring ReduceScatter (Figure 4)                                *)
(* ------------------------------------------------------------------ *)

type gemm_rs_spec = {
  rs_m : int;        (* global output rows (batch x seq) *)
  rs_k : int;        (* per-rank reduction dim (I / world) *)
  rs_n : int;        (* output width (hidden) *)
  rs_world : int;
}

(* Buffers per rank:
   - "act"       [m, k]        local activation shard (K-parallel)
   - "w2"        [k, n]        local weight shard
   - "gemm_out"  [m, n]        local partial product
   - "rs_buffer" [m, n]        ring receive buffer (globally indexed)
   - "rs_send"   [m, n]        staging for outgoing partial sums
   - "out"       [m / world, n] final reduced shard *)

let gemm_rs_alloc spec ~seed =
  let memory = Memory.create ~world_size:spec.rs_world in
  for rank = 0 to spec.rs_world - 1 do
    Memory.bind memory ~rank ~name:"act"
      (Tensor.random ~seed:(seed + rank)
         (Shape.of_list [ spec.rs_m; spec.rs_k ]));
    Memory.bind memory ~rank ~name:"w2"
      (Tensor.random ~seed:(seed + 2000 + rank)
         (Shape.of_list [ spec.rs_k; spec.rs_n ]));
    List.iter
      (fun name ->
        ignore
          (Memory.alloc memory ~rank ~name
             (Shape.of_list [ spec.rs_m; spec.rs_n ])))
      [ "gemm_out"; "rs_buffer"; "rs_send" ];
    ignore
      (Memory.alloc memory ~rank ~name:"out"
         (Shape.of_list [ spec.rs_m / spec.rs_world; spec.rs_n ]))
  done;
  memory

let gemm_rs_reference memory spec ~rank =
  let partials =
    List.init spec.rs_world (fun r ->
        Linalg.gemm
          (Memory.find memory ~rank:r ~name:"act")
          (Memory.find memory ~rank:r ~name:"w2"))
  in
  let total = Tilelink_comm.Collective.reduce_data partials in
  let per = spec.rs_m / spec.rs_world in
  Tensor.row_slice total ~lo:(rank * per) ~hi:((rank + 1) * per)

let gemm_rs_program ~(config : Design_space.config) spec ~(spec_gpu : Spec.t)
    =
  let r = spec.rs_world in
  if spec.rs_m mod r <> 0 then invalid_arg "Mlp.gemm_rs: m not divisible";
  let m_per_rank = spec.rs_m / r in
  let gemm_tm, gemm_tn = config.Design_space.compute_tile in
  let rs_tm, rs_tn = config.Design_space.comm_tile in
  if m_per_rank mod gemm_tm <> 0 then
    invalid_arg "Mlp.gemm_rs: gemm tile must divide the rank shard";
  if m_per_rank mod rs_tm <> 0 || spec.rs_n mod rs_tn <> 0 then
    invalid_arg "Mlp.gemm_rs: rs tile must divide the shard";
  let gemm_grid =
    Tile.grid ~extent_m:spec.rs_m ~extent_n:spec.rs_n ~tile_m:gemm_tm
      ~tile_n:gemm_tn
  in
  (* Producer link: gemm_out rows guarded per gemm_tm rows, one notify
     per (row tile, column tile). *)
  let mapping =
    Mapping.static
      ~multiplicity:(Tile.tiles_n gemm_grid)
      ~extent:spec.rs_m ~ranks:r
      ~channels_per_rank:(m_per_rank / gemm_tm)
      ~tile:gemm_tm ()
  in
  let rs_grid =
    Tile.grid ~extent_m:m_per_rank ~extent_n:spec.rs_n ~tile_m:rs_tm
      ~tile_n:rs_tn
  in
  let rs_tiles = Tile.tile_count rs_grid in
  let plans =
    Array.init r (fun rank ->
        let bc = Block_channel.create ~rank ~world_size:r mapping in
        let to_rank = (rank - 1 + r) mod r in
        let from_rank = (rank + 1) mod r in
        (* --- producer GEMM --- *)
        let gemm_task tile =
          let lo, hi = Tile.rows gemm_grid tile in
          let clo, chi = Tile.cols gemm_grid tile in
          let tid_m = tile.Tile.tid_m in
          let action memory ~rank =
            let a = Memory.find memory ~rank ~name:"act" in
            let w = Memory.find memory ~rank ~name:"w2" in
            let g = Memory.find memory ~rank ~name:"gemm_out" in
            Tensor.set_block g ~row_lo:lo ~col_lo:clo
              (Linalg.gemm ~block:config.Design_space.micro_block
                 (Tensor.row_slice a ~lo ~hi)
                 (Tensor.col_slice w ~lo:clo ~hi:chi))
          in
          let stmts =
            [
              Primitive.Load
                (access ~buffer:"act" ~row:(lo, hi) ~col:(0, spec.rs_k) ());
              Primitive.Load
                (access ~buffer:"w2" ~row:(0, spec.rs_k) ~col:(clo, chi) ());
              Primitive.Compute
                {
                  label = Printf.sprintf "gemm[%d,%d]" tid_m tile.Tile.tid_n;
                  cost =
                    Instr.Gemm_tile
                      { tm = hi - lo; tn = chi - clo; k = spec.rs_k };
                  reads =
                    [ access ~buffer:"act" ~row:(lo, hi) ~col:(0, spec.rs_k) () ];
                  writes =
                    [ access ~buffer:"gemm_out" ~row:(lo, hi) ~col:(clo, chi) () ];
                  action = Some action;
                };
              Primitive.Store
                (access ~buffer:"gemm_out" ~row:(lo, hi) ~col:(clo, chi) ());
              Primitive.Producer_tile_notify { tid = tid_m; mode = Primitive.P2p };
            ]
          in
          {
            Program.label = Printf.sprintf "gemm[%d,%d]" tid_m tile.Tile.tid_n;
            instrs = Block_channel.lower bc stmts;
          }
        in
        let gemm_tasks =
          List.map gemm_task
            (Tile.enumerate ~rank gemm_grid config.Design_space.compute_order)
        in
        (* --- consumer ring ReduceScatter (Figure 4 lines 11-26) --- *)
        let reduce_stmts ~stage tile =
          let seg = (rank + stage + 1) mod r in
          let llo, lhi = Tile.rows rs_grid tile in
          let clo, chi = Tile.cols rs_grid tile in
          let glo = (seg * m_per_rank) + llo and ghi = (seg * m_per_rank) + lhi in
          let tile_key = Tile.linearize rs_grid tile in
          let last = stage = r - 1 in
          let action memory ~rank =
            let g = Memory.find memory ~rank ~name:"gemm_out" in
            let data =
              Tensor.block g ~row_lo:glo ~row_hi:ghi ~col_lo:clo ~col_hi:chi
            in
            let data =
              if stage = 0 then data
              else
                Tensor.add data
                  (Tensor.block
                     (Memory.find memory ~rank ~name:"rs_buffer")
                     ~row_lo:glo ~row_hi:ghi ~col_lo:clo ~col_hi:chi)
            in
            if last then
              Tensor.set_block
                (Memory.find memory ~rank ~name:"out")
                ~row_lo:llo ~col_lo:clo data
            else
              Tensor.set_block
                (Memory.find memory ~rank ~name:"rs_send")
                ~row_lo:glo ~col_lo:clo data
          in
          let wait_peer =
            if stage = 0 then []
            else
              [
                Primitive.Peer_tile_wait
                  {
                    tile_key;
                    src = from_rank;
                    threshold = stage;
                    guards =
                      [
                        access ~buffer:"rs_buffer" ~row:(glo, ghi)
                          ~col:(clo, chi) ();
                      ];
                  };
                Primitive.Load
                  (access ~buffer:"rs_buffer" ~row:(glo, ghi) ~col:(clo, chi)
                     ());
              ]
          in
          let tail =
            if last then
              [
                Primitive.Store
                  (access ~buffer:"out" ~row:(llo, lhi) ~col:(clo, chi) ());
              ]
            else
              [
                Primitive.Tile_push_data
                  {
                    src =
                      access ~buffer:"rs_send" ~row:(glo, ghi) ~col:(clo, chi)
                        ();
                    dst_rank = to_rank;
                    dst =
                      access ~buffer:"rs_buffer" ~row:(glo, ghi)
                        ~col:(clo, chi) ();
                  };
                Primitive.Peer_tile_notify
                  {
                    tile_key;
                    dst = to_rank;
                    amount = 1;
                    releases =
                      [
                        access ~rank:to_rank ~buffer:"rs_buffer"
                          ~row:(glo, ghi) ~col:(clo, chi) ();
                      ];
                  };
              ]
          in
          [
            Primitive.Consumer_tile_wait
              { lo = glo; hi = ghi; buffer = "gemm_out"; col = (clo, chi) };
            Primitive.Load
              (access ~buffer:"gemm_out" ~row:(glo, ghi) ~col:(clo, chi) ());
          ]
          @ wait_peer
          @ [
              Primitive.Compute
                {
                  label = Printf.sprintf "reduce[s%d,%d]" stage tile_key;
                  cost =
                    Instr.Memory_tile
                      {
                        rows = lhi - llo;
                        cols = chi - clo;
                        passes = (if stage = 0 then 2 else 3);
                      };
                  reads =
                    [
                      access ~buffer:"gemm_out" ~row:(glo, ghi) ~col:(clo, chi)
                        ();
                    ];
                  writes =
                    [
                      access
                        ~buffer:(if last then "out" else "rs_send")
                        ~row:(if last then (llo, lhi) else (glo, ghi))
                        ~col:(clo, chi) ();
                    ];
                  action = Some action;
                };
            ]
          @ tail
        in
        let rs_task ~stage tile =
          {
            Program.label =
              Printf.sprintf "rs[s%d,%d]" stage (Tile.linearize rs_grid tile);
            instrs = Block_channel.lower bc (reduce_stmts ~stage tile);
          }
        in
        let stage_tasks stage =
          List.map (rs_task ~stage) (Tile.enumerate ~rank rs_grid Tile.Row_major)
        in
        let rs_tasks = List.concat (List.init r stage_tasks) in
        (* Resource binding for the RS consumer. *)
        let comm_roles, comm_sms =
          match config.Design_space.binding with
          | Design_space.Comm_on_sm sms ->
            ( [
                {
                  Program.role_name = "ring-rs-sm";
                  resource = Program.Sm_partition sms;
                  lane = Tilelink_sim.Trace.Comm_sm;
                  tasks = rs_tasks;
                };
              ],
              sms )
          | Design_space.Comm_on_dma ->
            (* Whole consumer chain driven from the copy-engine side. *)
            ( [
                {
                  Program.role_name = "ring-rs-dma";
                  resource = Program.Dma_engines (min 2 spec_gpu.Spec.gpu.dma_channels);
                  lane = Tilelink_sim.Trace.Dma;
                  tasks = rs_tasks;
                };
              ],
              0 )
          | Design_space.Comm_hybrid { dma_fraction = _; sms } ->
            (* Hybrid: reduction tasks stay on SMs; the bulk pushes are
               already Copy instructions inside the same tasks, so the
               hybrid split here gives the reducer a small SM partition
               while pushes ride the NVLink servers (DMA-like).  This
               matches the paper's "scatter on DMA + reduce on SM". *)
            ( [
                {
                  Program.role_name = "ring-rs-hybrid";
                  resource = Program.Sm_partition sms;
                  lane = Tilelink_sim.Trace.Comm_sm;
                  tasks = rs_tasks;
                };
              ],
              sms )
        in
        let gemm_sms = max 1 (spec_gpu.Spec.gpu.num_sms - comm_sms) in
        {
          Program.role_name = "gemm";
          resource = Program.Sm_partition gemm_sms;
          lane = Tilelink_sim.Trace.Compute_sm;
          tasks = gemm_tasks;
        }
        :: comm_roles)
  in
  Program.create ~name:"gemm_rs" ~world_size:r
    ~pc_channels:(Mapping.num_channels mapping)
    ~peer_channels:rs_tiles plans

(* ------------------------------------------------------------------ *)
(* Telemetry consumers                                                 *)
(* ------------------------------------------------------------------ *)

let profile_ag_gemm ?k_chunks ?transfer ~config ~telemetry spec ~spec_gpu =
  Profiled.run ~telemetry ~spec_gpu
    (ag_gemm_program ?k_chunks ?transfer ~config spec ~spec_gpu)

let profile_gemm_rs ~config ~telemetry spec ~spec_gpu =
  Profiled.run ~telemetry ~spec_gpu (gemm_rs_program ~config spec ~spec_gpu)
