open Tilelink_core
open Tilelink_tensor

(* ------------------------------------------------------------------ *)
(* MLP                                                                 *)
(* ------------------------------------------------------------------ *)

let mlp_graph (spec : Mlp.ag_gemm_spec) =
  Planner.graph ~name:"planned_ag_gemm" ~rows:spec.Mlp.m ~cols:spec.Mlp.k
    ~world:spec.Mlp.world_size
    [
      Planner.consumer ~name:"gemm" ~out:"y"
        (Planner.Gemm { weights = "w"; n = spec.Mlp.n });
    ]

(* ------------------------------------------------------------------ *)
(* Softmax                                                             *)
(* ------------------------------------------------------------------ *)

let softmax_graph ~m ~k ~world =
  Planner.graph ~name:"planned_ag_softmax" ~rows:m ~cols:k ~world
    [ Planner.consumer ~name:"softmax" ~out:"p" Planner.Softmax_rows ]

let softmax_alloc ~m ~k ~world ~seed =
  let memory = Memory.create ~world_size:world in
  let shard_rows = m / world in
  for rank = 0 to world - 1 do
    Memory.bind memory ~rank ~name:"x_shard"
      (Tensor.random ~seed:(seed + rank) (Shape.of_list [ shard_rows; k ]));
    ignore (Memory.alloc memory ~rank ~name:"x_full" (Shape.of_list [ m; k ]));
    ignore (Memory.alloc memory ~rank ~name:"p" (Shape.of_list [ m; k ]))
  done;
  memory

let gathered_shards memory ~world =
  Tensor.concat_rows
    (List.init world (fun r -> Memory.find memory ~rank:r ~name:"x_shard"))

let softmax_reference memory ~m:_ ~world =
  Planner.softmax_rows (gathered_shards memory ~world)

(* ------------------------------------------------------------------ *)
(* MoE dense-FFN proxy                                                 *)
(* ------------------------------------------------------------------ *)

let moe_graph ~m ~k ~n ~world =
  Planner.graph ~name:"planned_ag_ffn" ~rows:m ~cols:k ~world
    [
      Planner.consumer ~name:"gate" ~out:"h_gate"
        (Planner.Gemm { weights = "w_gate"; n });
      Planner.consumer ~name:"up" ~out:"h_up"
        (Planner.Gemm { weights = "w_up"; n });
    ]

let moe_alloc ~m ~k ~n ~world ~seed =
  let memory = Memory.create ~world_size:world in
  let shard_rows = m / world in
  for rank = 0 to world - 1 do
    Memory.bind memory ~rank ~name:"x_shard"
      (Tensor.random ~seed:(seed + rank) (Shape.of_list [ shard_rows; k ]));
    Memory.bind memory ~rank ~name:"w_gate"
      (Tensor.random ~seed:(seed + 1000 + rank) (Shape.of_list [ k; n ]));
    Memory.bind memory ~rank ~name:"w_up"
      (Tensor.random ~seed:(seed + 2000 + rank) (Shape.of_list [ k; n ]));
    ignore (Memory.alloc memory ~rank ~name:"x_full" (Shape.of_list [ m; k ]));
    ignore (Memory.alloc memory ~rank ~name:"h_gate" (Shape.of_list [ m; n ]));
    ignore (Memory.alloc memory ~rank ~name:"h_up" (Shape.of_list [ m; n ]))
  done;
  memory

let moe_reference memory ~weights ~rank =
  Linalg.gemm
    (gathered_shards memory ~world:(Memory.world_size memory))
    (Memory.find memory ~rank ~name:weights)

(* ------------------------------------------------------------------ *)
(* Fused GEMM + softmax                                                *)
(* ------------------------------------------------------------------ *)

let fused_graph (spec : Mlp.ag_gemm_spec) =
  Planner.graph ~name:"planned_ag_fused" ~rows:spec.Mlp.m ~cols:spec.Mlp.k
    ~world:spec.Mlp.world_size
    [
      Planner.consumer ~name:"gemm" ~out:"y"
        (Planner.Gemm { weights = "w"; n = spec.Mlp.n });
      Planner.consumer ~name:"softmax" ~out:"p" Planner.Softmax_rows;
    ]

let fused_alloc (spec : Mlp.ag_gemm_spec) ~seed =
  let memory = Mlp.ag_gemm_alloc spec ~seed in
  for rank = 0 to spec.Mlp.world_size - 1 do
    ignore
      (Memory.alloc memory ~rank ~name:"p"
         (Shape.of_list [ spec.Mlp.m; spec.Mlp.k ]))
  done;
  memory

let fused_gemm_reference memory spec ~rank = Mlp.ag_gemm_reference memory spec ~rank

let fused_softmax_reference memory (spec : Mlp.ag_gemm_spec) =
  Planner.softmax_rows (gathered_shards memory ~world:spec.Mlp.world_size)

(* ------------------------------------------------------------------ *)
(* Families                                                            *)
(* ------------------------------------------------------------------ *)

type family = Fam_mlp | Fam_softmax | Fam_moe | Fam_fused

let family_names = [ "mlp"; "softmax"; "moe"; "fused" ]

let family_of_string = function
  | "mlp" -> Some Fam_mlp
  | "softmax" -> Some Fam_softmax
  | "moe" -> Some Fam_moe
  | "fused" -> Some Fam_fused
  | _ -> None

let build family ~m ~k ~n ~world ~seed =
  match family with
  | Fam_mlp ->
    let spec = { Mlp.m; k; n; world_size = world } in
    (mlp_graph spec, Mlp.ag_gemm_alloc spec ~seed)
  | Fam_softmax -> (softmax_graph ~m ~k ~world, softmax_alloc ~m ~k ~world ~seed)
  | Fam_moe -> (moe_graph ~m ~k ~n ~world, moe_alloc ~m ~k ~n ~world ~seed)
  | Fam_fused ->
    let spec = { Mlp.m; k; n; world_size = world } in
    (fused_graph spec, fused_alloc spec ~seed)
