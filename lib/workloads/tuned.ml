(* TileLink's reported numbers: the best point of the decoupled design
   space under the simulator, searched per shape.

   The candidate lists are small curated slices of the full space (the
   full cross product is searched by the [autotune] example; benches
   use these to stay fast).  Each candidate is a genuinely different
   schedule — different tile sizes, orders or resource bindings — and
   the winner differs across shapes, which is the paper's core claim
   about decoupling. *)

open Tilelink_core
open Tilelink_machine

let ag_gemm_candidates ~world_size =
  let ring = Tile.Ring_from_self { segments = world_size } in
  List.concat_map
    (fun binding ->
      List.map
        (fun comm_tm ->
          {
            Design_space.comm_tile = (comm_tm, 128);
            compute_tile = (128, 128);
            comm_order = ring;
            compute_order = ring;
            binding;
            stages = 2;
            micro_block = 0;
          })
        [ 128; 256; 512 ])
    [
      Design_space.Comm_on_dma;
      Design_space.Comm_on_sm 20;
      Design_space.Comm_hybrid { dma_fraction = 0.5; sms = 12 };
    ]

let gemm_rs_candidates ~world_size =
  (* The GEMM produces segments in the order the ring ReduceScatter
     consumes them (rank+1 first); candidates also include the
     misaligned row-major order so the tuner demonstrates the cost of
     getting it wrong. *)
  let aligned = Tile.Ring_prev_first { segments = world_size } in
  List.concat_map
    (fun binding ->
      List.concat_map
        (fun compute_order ->
          List.map
            (fun (rs_tm, rs_tn) ->
              {
                Design_space.comm_tile = (rs_tm, rs_tn);
                compute_tile = (128, 128);
                comm_order = Tile.Row_major;
                compute_order;
                binding;
                stages = 2;
                micro_block = 0;
              })
            [ (128, 512); (128, 2048) ])
        [ aligned; Tile.Row_major ])
    [
      Design_space.Comm_on_sm 20;
      Design_space.Comm_hybrid { dma_fraction = 0.5; sms = 12 };
    ]

type tuned = {
  best_config : Design_space.config;
  best_time : float;
  candidates_tried : int;
}

let tune_or_fail ~what outcome =
  match outcome with
  | Some o ->
    {
      best_config = o.Tune.best.Tune.config;
      best_time = o.Tune.best.Tune.time;
      candidates_tried = List.length o.Tune.evaluated;
    }
  | None -> invalid_arg (Printf.sprintf "Tuned.%s: no candidate built" what)

let ag_gemm ?pool ?cache (spec : Spec.t) ~world_size ~m ~k ~n =
  let spec_shapes = { Mlp.m; k; n; world_size } in
  tune_or_fail ~what:"ag_gemm"
    (Tune.search_programs ?pool ?cache
       ~workload:(Printf.sprintf "ag_gemm:m=%d,k=%d,n=%d" m k n)
       ~build:(fun config ->
         Mlp.ag_gemm_program ~config spec_shapes ~spec_gpu:spec)
       ~make_cluster:(fun () -> Cluster.create spec ~world_size)
       (ag_gemm_candidates ~world_size))

let gemm_rs ?pool ?cache (spec : Spec.t) ~world_size ~m ~k ~n =
  let spec_shapes = { Mlp.rs_m = m; rs_k = k; rs_n = n; rs_world = world_size } in
  tune_or_fail ~what:"gemm_rs"
    (Tune.search_programs ?pool ?cache
       ~workload:(Printf.sprintf "gemm_rs:m=%d,k=%d,n=%d" m k n)
       ~build:(fun config ->
         Mlp.gemm_rs_program ~config spec_shapes ~spec_gpu:spec)
       ~make_cluster:(fun () -> Cluster.create spec ~world_size)
       (gemm_rs_candidates ~world_size))

(* Element-wise gated activation between the MLP halves (same kernel
   for every method; shared with the baselines). *)
let activation_time (spec : Spec.t) ~m ~i =
  spec.Spec.overheads.kernel_launch
  +. Cost.memory_pass_time spec ~sms:spec.Spec.gpu.num_sms
       ~bytes:(float_of_int m *. float_of_int (3 * i) *. Cost.dtype_bytes)

let mlp_time ?pool ?cache (spec : Spec.t) ~world_size ~(shape : Shapes.mlp) =
  let m = shape.Shapes.s and h = shape.Shapes.h and i = shape.Shapes.i in
  let i_per_rank = i / world_size in
  let part1 = ag_gemm ?pool ?cache spec ~world_size ~m ~k:h ~n:(2 * i_per_rank) in
  let part2 = gemm_rs ?pool ?cache spec ~world_size ~m ~k:i_per_rank ~n:h in
  part1.best_time
  +. activation_time spec ~m ~i:i_per_rank
  +. part2.best_time
