(** Tensor-parallel MLP kernels built from tile-centric primitives:
    AllGather + GEMM and GEMM + ring ReduceScatter (Figures 1 and 4 of
    the paper).

    Both builders produce programs whose data actions implement real
    tensor semantics, so the same program is validated numerically at
    small shapes and timed at paper shapes. *)

open Tilelink_core
open Tilelink_machine

(** {2 AllGather + GEMM}

    Buffers per rank: ["x_shard"] [m/world, k] input shard, ["x_full"]
    [m, k] gather destination, ["w"] [k, n] weights, ["y"] [m, n]
    output. *)

type ag_gemm_spec = {
  m : int;  (** global rows (batch x seq) *)
  k : int;  (** hidden dim (gather width) *)
  n : int;  (** output columns per rank *)
  world_size : int;
}

val ag_gemm_alloc : ag_gemm_spec -> seed:int -> Memory.t
(** Fresh memories with deterministic random inputs. *)

val ag_gemm_reference :
  Memory.t -> ag_gemm_spec -> rank:int -> Tilelink_tensor.Tensor.t

val ag_gemm_program :
  ?k_chunks:int ->
  ?transfer:[ `Pull | `Push ] ->
  config:Design_space.config ->
  ag_gemm_spec ->
  spec_gpu:Spec.t ->
  Program.t
(** Build the overlapped kernel for the given design-space point.
    [`Pull] (default) fetches remote tiles and signals locally;
    [`Push] broadcasts the rank's own tiles to every peer and notifies
    remote consumers (Figure 3b).  Raises [Invalid_argument] when the
    comm tile does not divide the shard. *)

(** {2 GEMM + ring ReduceScatter (Figure 4)}

    Buffers per rank: ["act"] [m, k], ["w2"] [k, n], ["gemm_out"] [m, n]
    partials, ["rs_buffer"]/["rs_send"] [m, n] ring buffers, ["out"]
    [m/world, n] final shard. *)

type gemm_rs_spec = {
  rs_m : int;  (** global output rows *)
  rs_k : int;  (** per-rank reduction dim *)
  rs_n : int;
  rs_world : int;
}

val gemm_rs_alloc : gemm_rs_spec -> seed:int -> Memory.t

val gemm_rs_reference :
  Memory.t -> gemm_rs_spec -> rank:int -> Tilelink_tensor.Tensor.t

val gemm_rs_program :
  config:Design_space.config -> gemm_rs_spec -> spec_gpu:Spec.t -> Program.t

(** {2 Telemetry consumers}

    Build the kernel and run it on a fresh trace-enabled cluster with
    the telemetry handle attached (see {!Profiled.run}); the returned
    cluster carries the trace for Perfetto export. *)

val profile_ag_gemm :
  ?k_chunks:int ->
  ?transfer:[ `Pull | `Push ] ->
  config:Design_space.config ->
  telemetry:Tilelink_obs.Telemetry.t ->
  ag_gemm_spec ->
  spec_gpu:Spec.t ->
  Cluster.t * Runtime.result

val profile_gemm_rs :
  config:Design_space.config ->
  telemetry:Tilelink_obs.Telemetry.t ->
  gemm_rs_spec ->
  spec_gpu:Spec.t ->
  Cluster.t * Runtime.result
