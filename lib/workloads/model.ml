(* End-to-end LLM assembly for the Figure 11 evaluation.

   Eight models (five dense, three MoE — the MoE models with shared
   experts combine an MLP layer and an MoE layer, §7.3), batch 4 x
   sequence 8192, tensor parallel inside a node.  A transformer layer
   is assembled from the same kernel substrates the single-layer
   benchmarks use:

     QKV projection   = AllGather + GEMM
     attention core   = sequence-parallel AG KV + flash attention
     output proj      = GEMM + ReduceScatter
     FFN              = tensor-parallel MLP or MoE

   Two-node runs use data parallel between nodes: per-node compute is
   unchanged (global batch doubles) and a bucketed gradient AllReduce
   over the NIC leaves a calibrated exposed fraction, identical for
   every method — which is why the paper's two-node speedup is
   slightly below the single-node one. *)

open Tilelink_core
open Tilelink_machine

type ffn = Dense | Moe_ffn of { experts : int; topk : int; shared_i : int }

type llm = {
  model_name : string;
  layers : int;
  hidden : int;
  intermediate : int;  (* per-expert intermediate for MoE models *)
  heads : int;
  head_dim : int;
  ffn : ffn;
}

let models =
  [
    { model_name = "LLaMA-7B"; layers = 32; hidden = 4096; intermediate = 11008;
      heads = 32; head_dim = 128; ffn = Dense };
    { model_name = "LLaMA-3.1-8B"; layers = 32; hidden = 4096; intermediate = 14336;
      heads = 32; head_dim = 128; ffn = Dense };
    { model_name = "Gemma-2-9B"; layers = 42; hidden = 3584; intermediate = 14336;
      heads = 16; head_dim = 256; ffn = Dense };
    { model_name = "Gemma-2-27B"; layers = 46; hidden = 4608; intermediate = 36864;
      heads = 32; head_dim = 128; ffn = Dense };
    { model_name = "LLaMA-3.1-70B"; layers = 80; hidden = 8192; intermediate = 28672;
      heads = 64; head_dim = 128; ffn = Dense };
    { model_name = "Mixtral-8x7B"; layers = 32; hidden = 4096; intermediate = 14336;
      heads = 32; head_dim = 128; ffn = Moe_ffn { experts = 8; topk = 2; shared_i = 0 } };
    { model_name = "Qwen1.5-MoE"; layers = 24; hidden = 2048; intermediate = 1408;
      heads = 16; head_dim = 128;
      ffn = Moe_ffn { experts = 60; topk = 4; shared_i = 5632 } };
    { model_name = "DeepSeekMoE-16B"; layers = 28; hidden = 2048; intermediate = 1408;
      heads = 16; head_dim = 128;
      ffn = Moe_ffn { experts = 64; topk = 6; shared_i = 2816 } };
  ]

let batch = 4
let seq_len = 8192
let tokens = batch * seq_len  (* M *)

let is_moe llm = match llm.ffn with Dense -> false | Moe_ffn _ -> true

(* Approximate per-layer parameter count (per full model, not per
   rank); drives the data-parallel gradient AllReduce of 2-node runs. *)
let layer_params llm =
  let h = float_of_int llm.hidden in
  let attn = 4.0 *. h *. h in
  let ffn =
    match llm.ffn with
    | Dense -> 3.0 *. h *. float_of_int llm.intermediate
    | Moe_ffn { experts; shared_i; _ } ->
      (3.0 *. h *. float_of_int (experts * llm.intermediate))
      +. (3.0 *. h *. float_of_int shared_i)
  in
  attn +. ffn

(* Attention spec of one layer under sequence parallelism. *)
let attention_spec llm ~world_size =
  {
    Attention.batch_heads = batch * llm.heads;
    seq = seq_len;
    head_dim = llm.head_dim;
    world_size;
    causal = false;
  }

let attention_config = { Attention.q_tile = 512; kv_tile = 1024 }

let moe_spec llm ~experts ~topk ~world_size =
  {
    Moe.tokens;
    hidden = llm.hidden;
    intermediate = llm.intermediate;
    experts;
    topk;
    world_size;
  }

(* ------------------------------------------------------------------ *)
(* TileLink layer times                                                *)
(* ------------------------------------------------------------------ *)

let run_program spec ~world_size program =
  let cluster = Cluster.create spec ~world_size in
  (Runtime.run cluster program).Runtime.makespan

let tilelink_attention_time (spec : Spec.t) llm ~world_size =
  run_program spec ~world_size
    (Attention.program ~config:attention_config
       (attention_spec llm ~world_size)
       ~spec_gpu:spec)

(* Fixed known-good configs (tuning every projection of every model
   would multiply bench time without changing the story; the
   single-layer benchmarks tune for real). *)
let ag_config ~world_size =
  {
    Design_space.comm_tile = (512, 128);
    compute_tile = (128, 128);
    comm_order = Tile.Ring_from_self { segments = world_size };
    compute_order = Tile.Ring_from_self { segments = world_size };
    binding = Design_space.Comm_on_dma;
    stages = 2;
    micro_block = 0;
  }

let rs_config =
  {
    Design_space.comm_tile = (128, 2048);
    compute_tile = (128, 128);
    comm_order = Tile.Row_major;
    compute_order = Tile.Ring_prev_first { segments = 8 };
    binding = Design_space.Comm_hybrid { dma_fraction = 0.5; sms = 12 };
    stages = 2;
    micro_block = 0;
  }

let tilelink_ag_gemm (spec : Spec.t) ~world_size ~m ~k ~n =
  run_program spec ~world_size
    (Mlp.ag_gemm_program
       ~config:(ag_config ~world_size)
       { Mlp.m; k; n; world_size }
       ~spec_gpu:spec)

let tilelink_gemm_rs (spec : Spec.t) ~world_size ~m ~k ~n =
  let rs_config =
    if n mod 2048 = 0 then rs_config
    else { rs_config with Design_space.comm_tile = (128, n) }
  in
  run_program spec ~world_size
    (Mlp.gemm_rs_program ~config:rs_config
       { Mlp.rs_m = m; rs_k = k; rs_n = n; rs_world = world_size }
       ~spec_gpu:spec)

let tilelink_mlp_time (spec : Spec.t) ~world_size ~hidden ~intermediate =
  let ipr = intermediate / world_size in
  tilelink_ag_gemm spec ~world_size ~m:tokens ~k:hidden ~n:(2 * ipr)
  +. Tuned.activation_time spec ~m:tokens ~i:ipr
  +. tilelink_gemm_rs spec ~world_size ~m:tokens ~k:ipr ~n:hidden

let tilelink_moe_time (spec : Spec.t) llm ~experts ~topk ~world_size =
  let moe = moe_spec llm ~experts ~topk ~world_size in
  let route = Moe.routing moe ~seed:7 in
  let part1 =
    run_program spec ~world_size (Moe.part1_program moe route ~spec_gpu:spec)
  in
  let part2 =
    run_program spec ~world_size (Moe.part2_program moe route ~spec_gpu:spec)
  in
  let act =
    Tuned.activation_time spec ~m:(tokens * topk)
      ~i:(llm.intermediate / world_size)
  in
  part1 +. act +. part2

let tilelink_layer_time (spec : Spec.t) llm ~world_size =
  let h = llm.hidden in
  let qkv =
    tilelink_ag_gemm spec ~world_size ~m:tokens ~k:h ~n:(3 * h / world_size)
  in
  let o_proj =
    tilelink_gemm_rs spec ~world_size ~m:tokens ~k:(h / world_size) ~n:h
  in
  let attn = tilelink_attention_time spec llm ~world_size in
  let ffn =
    match llm.ffn with
    | Dense ->
      tilelink_mlp_time spec ~world_size ~hidden:h
        ~intermediate:llm.intermediate
    | Moe_ffn { experts; topk; shared_i } ->
      let moe = tilelink_moe_time spec llm ~experts ~topk ~world_size in
      let shared =
        if shared_i = 0 then 0.0
        else tilelink_mlp_time spec ~world_size ~hidden:h ~intermediate:shared_i
      in
      moe +. shared
  in
  qkv +. attn +. o_proj +. ffn

let tilelink_model_time spec llm ~world_size =
  float_of_int llm.layers *. tilelink_layer_time spec llm ~world_size

(* ------------------------------------------------------------------ *)
(* Two-node data parallelism                                           *)
(* ------------------------------------------------------------------ *)

(* Fraction of the bucketed gradient AllReduce left exposed after
   overlapping with backward compute. *)
let dp_exposed_fraction = 0.15

let dp_overhead_per_layer (spec : Spec.t) llm ~world_size =
  let bytes_per_rank =
    layer_params llm /. float_of_int world_size *. Cost.dtype_bytes
  in
  dp_exposed_fraction *. bytes_per_rank
  /. (spec.Spec.interconnect.nic_gbps *. 1.0e3)

let two_node_time (spec : Spec.t) llm ~world_size ~single_node_time =
  single_node_time
  +. (float_of_int llm.layers *. dp_overhead_per_layer spec llm ~world_size)
