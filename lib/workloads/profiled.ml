(* Telemetry-instrumented workload runs.

   The workload builders produce a [Program.t]; this helper runs one on
   a fresh traced cluster with a telemetry handle attached, and records
   the program's static shape (roles, tasks per lane, channel-space
   size) as workload-level gauges next to the dynamic counters the
   runtime emits.  Workload modules wrap it so the CLI's [profile]
   subcommand gets a one-call entry point per kernel. *)

open Tilelink_core
open Tilelink_machine
module Obs = Tilelink_obs

let record_program_shape telemetry (program : Program.t) =
  if Obs.Telemetry.enabled telemetry then begin
    let m = Obs.Telemetry.metrics telemetry in
    Obs.Metrics.set_gauge m "workload.world_size"
      (float_of_int (Program.world_size program));
    Obs.Metrics.set_gauge m "workload.pc_channels"
      (float_of_int program.Program.pc_channels);
    Obs.Metrics.set_gauge m "workload.peer_channels"
      (float_of_int program.Program.peer_channels);
    Array.iter
      (fun plan ->
        List.iter
          (fun (role : Program.role) ->
            Obs.Metrics.inc m "workload.roles";
            Obs.Metrics.inc m
              ~by:(List.length role.Program.tasks)
              (Printf.sprintf "workload.tasks.%s"
                 (Tilelink_sim.Trace.lane_to_string role.Program.lane)))
          plan)
      (Program.plans program)
  end

let run ~telemetry ~spec_gpu (program : Program.t) =
  let cluster =
    Cluster.create ~trace_enabled:true spec_gpu
      ~world_size:(Program.world_size program)
  in
  record_program_shape telemetry program;
  let result = Runtime.run ~telemetry cluster program in
  (cluster, result)
