(** Telemetry-instrumented workload runs: build-once, run-once with a
    traced cluster and a telemetry handle, recording the program's
    static shape as workload gauges. *)

open Tilelink_core
open Tilelink_machine

val record_program_shape : Tilelink_obs.Telemetry.t -> Program.t -> unit
(** Gauges: [workload.world_size], [workload.pc_channels],
    [workload.peer_channels]; counters: [workload.roles],
    [workload.tasks.<lane>]. *)

val run :
  telemetry:Tilelink_obs.Telemetry.t ->
  spec_gpu:Spec.t ->
  Program.t ->
  Cluster.t * Runtime.result
(** Run [program] on a fresh trace-enabled cluster with telemetry
    attached; returns the cluster (for trace export) and the run
    result. *)
