(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation on the simulated 8xH800 cluster.

     dune exec bench/main.exe             -- everything
     dune exec bench/main.exe table2 fig10  -- a subset
     dune exec bench/main.exe -- --json --jobs 4   -- parallel sweep

   Flags:
     --jobs N     evaluate independent grid points on N domains
                  (default 1: sequential, identical output either way)
     --no-cache   do not consult/update BENCH_cache.json in --json mode
     --cache F    use F instead of BENCH_cache.json
     --check      re-parse each written BENCH_*.json and fail unless the
                  schema holds (non-empty rows, numeric fields); with
                  --compare, also self-test the gate (self-diff must
                  pass, a 2x-tolerance slowdown must trip)
     --compare OLD NEW   regression gate: diff two BENCH_*.json files
                  on makespan_us, exit 1 if any row regressed
     --tolerance T  relative slowdown tolerated by --compare
                  (default 0.05)

   Artifacts:
     table1  feature comparison (Table 1)
     table2  motivational TP-MLP example (Table 2)
     table4  benchmark shapes (Table 4)
     fig8    MLP layers: AG+GEMM, GEMM+RS, full MLP
     fig9    MoE layers: both parts and full
     fig10   sequence-parallel attention + overlap ratio
     fig11   end-to-end LLMs, 1 node and 2 nodes
     micro   Bechamel microbenchmarks of the compiler + simulator

   Absolute times come from the calibrated machine model; the claims
   to compare against the paper are orderings and ratios (see
   EXPERIMENTS.md). *)

open Tilelink_machine
open Tilelink_workloads
open Tilelink_baselines
module Design_space = Tilelink_core.Design_space

let spec = Calib.h800
let world = 8

module Exec = Tilelink_exec

(* Set once from the command line before any artifact runs.  Every
   grid map below goes through [par_map]: with --jobs 1 it degrades to
   the sequential path bit for bit. *)
let pool : Exec.Pool.t option ref = ref None
let jobs = ref 1
let use_cache = ref true
let cache_file = ref "BENCH_cache.json"
let check_artifacts = ref false

let par_map f xs = List.map Exec.Pool.get (Exec.Pool.map !pool f xs)

let heading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let ms t = t /. 1.0e3

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  heading "Table 1: feature comparison";
  Printf.printf "%-12s %-8s %-10s %-16s\n" "Name" "Compile" "Method"
    "Primitive";
  List.iter
    (fun (name, compile, method_, primitive) ->
      Printf.printf "%-12s %-8s %-10s %-16s\n" name compile method_ primitive)
    [
      ("CoCoNet", "Yes", "Fusion", "No");
      ("Dist-Einsum", "Yes", "Decompose", "operator-centric");
      ("Centauri", "No", "Decompose", "operator-centric");
      ("FLUX", "No", "Fusion", "No");
      ("Async-Torch", "No", "Decompose", "operator-centric");
      ("TileLink", "Yes", "Fusion", "tile-centric");
    ]

(* ------------------------------------------------------------------ *)
(* Table 4                                                             *)
(* ------------------------------------------------------------------ *)

let table4 () =
  heading "Table 4: benchmark shapes";
  Printf.printf "MLP configurations (S x H x I):\n";
  List.iter
    (fun (c : Shapes.mlp) ->
      Printf.printf "  %-6s S=%-5d H=%-5d I=%-6d (%s)\n" c.Shapes.mlp_name
        c.Shapes.s c.Shapes.h c.Shapes.i c.Shapes.source_model)
    Shapes.mlp_configs;
  Printf.printf "MoE configurations (S x H x I, E experts, topk):\n";
  List.iter
    (fun (c : Shapes.moe) ->
      Printf.printf "  %-6s S=%-5d H=%-5d I=%-5d E=%-3d topk=%d\n"
        c.Shapes.moe_name c.Shapes.moe_s c.Shapes.moe_h c.Shapes.moe_i
        c.Shapes.experts c.Shapes.topk)
    Shapes.moe_configs;
  Printf.printf "Attention configurations:\n";
  List.iter
    (fun (c : Shapes.attn) ->
      Printf.printf "  %-7s heads=%-3d head_dim=%-4d seq in {%s}\n"
        c.Shapes.attn_name c.Shapes.heads c.Shapes.head_dim
        (String.concat ", "
           (List.map string_of_int c.Shapes.seq_choices)))
    Shapes.attn_configs

(* ------------------------------------------------------------------ *)
(* MLP measurement shared by Table 2 and Figure 8                      *)
(* ------------------------------------------------------------------ *)

type mlp_row = {
  shape : Shapes.mlp;
  ag : float * float * float * float; (* non, dec, flux, tilelink *)
  rs : float * float * float * float;
  full : float * float * float * float;
  ag_config : Design_space.config;
  rs_config : Design_space.config;
}

let measure_mlp (shape : Shapes.mlp) =
  let m = shape.Shapes.s and h = shape.Shapes.h and i = shape.Shapes.i in
  let ipr = i / world in
  let n1 = 2 * ipr in
  let ag_non = Nonoverlap.ag_gemm_time spec ~world_size:world ~m ~k:h ~n:n1 in
  let ag_dec = Decompose.ag_gemm_time spec ~world_size:world ~m ~k:h ~n:n1 in
  let ag_flux = Flux.ag_gemm_time spec ~world_size:world ~m ~k:h ~n:n1 in
  let ag_tl = Tuned.ag_gemm spec ~world_size:world ~m ~k:h ~n:n1 in
  let rs_non =
    Nonoverlap.gemm_rs_time spec ~world_size:world ~m ~k:ipr ~n:h
  in
  let rs_dec = Decompose.gemm_rs_time spec ~world_size:world ~m ~k:ipr ~n:h in
  let rs_flux = Flux.gemm_rs_time spec ~world_size:world ~m ~k:ipr ~n:h in
  let rs_tl = Tuned.gemm_rs spec ~world_size:world ~m ~k:ipr ~n:h in
  let act = Tuned.activation_time spec ~m ~i:ipr in
  {
    shape;
    ag = (ag_non, ag_dec, ag_flux, ag_tl.Tuned.best_time);
    rs = (rs_non, rs_dec, rs_flux, rs_tl.Tuned.best_time);
    full =
      ( ag_non +. act +. rs_non,
        ag_dec +. act +. rs_dec,
        ag_flux +. act +. rs_flux,
        ag_tl.Tuned.best_time +. act +. rs_tl.Tuned.best_time );
    ag_config = ag_tl.Tuned.best_config;
    rs_config = rs_tl.Tuned.best_config;
  }

let print_mlp_part label (non, dec, flux, tl) =
  Printf.printf
    "  %-9s non-overlap %7.3f ms | decompose %7.3f ms (%.2fx) | flux %7.3f \
     ms (%.2fx) | tilelink %7.3f ms (%.2fx)\n"
    label (ms non) (ms dec) (non /. dec) (ms flux) (non /. flux) (ms tl)
    (non /. tl)

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

let table2 () =
  heading "Table 2: motivational example (TP MLP 8192 x 4096 x 11008)";
  let row = measure_mlp (List.hd Shapes.mlp_configs) in
  print_mlp_part "AG+GEMM" row.ag;
  print_mlp_part "GEMM+RS" row.rs;
  Printf.printf "  tilelink picked: AG+GEMM [%s]\n"
    (Design_space.config_to_string row.ag_config);
  Printf.printf "                   GEMM+RS [%s]\n"
    (Design_space.config_to_string row.rs_config);
  Printf.printf
    "  lines of code: FLUX ~2000 .cu | TileLink ~200 .py | this repro: \
     lib/workloads/mlp.ml builds both kernels from the primitives\n";
  Printf.printf
    "  paper reference: non 0.676/0.541 ms, decompose 1.301/1.443 ms, flux \
     0.504/0.610 ms, tilelink 0.505/0.504 ms\n"

(* ------------------------------------------------------------------ *)
(* Figure 8                                                            *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  heading "Figure 8: MLP layers on 8 x H800-sim";
  let rows = par_map measure_mlp Shapes.mlp_configs in
  List.iter
    (fun row ->
      Printf.printf "%s (%s):\n" row.shape.Shapes.mlp_name
        row.shape.Shapes.source_model;
      print_mlp_part "AG+GEMM" row.ag;
      print_mlp_part "GEMM+RS" row.rs;
      print_mlp_part "full MLP" row.full)
    rows;
  let speedups part =
    Tilelink_sim.Stats.geomean
      (List.map
         (fun row ->
           let non, _, _, tl = part row in
           non /. tl)
         rows)
  in
  Printf.printf
    "geomean tilelink speedup vs non-overlap: AG+GEMM %.2fx | GEMM+RS %.2fx \
     | full MLP %.2fx\n"
    (speedups (fun r -> r.ag))
    (speedups (fun r -> r.rs))
    (speedups (fun r -> r.full));
  Printf.printf
    "paper reference: flux 1.34x best on AG+GEMM with tilelink at ~94.5%% of \
     it; tilelink best on GEMM+RS (1.25x over non-overlap, 1.28x over flux); \
     full MLP ~1.24x\n"

(* ------------------------------------------------------------------ *)
(* Figure 9                                                            *)
(* ------------------------------------------------------------------ *)

let run_program program =
  let cluster =
    Cluster.create spec ~world_size:(Tilelink_core.Program.world_size program)
  in
  (Tilelink_core.Runtime.run cluster program).Tilelink_core.Runtime.makespan

(* Pure per-shape measurement so the grid can fan out over the pool;
   printing happens afterwards, in shape order. *)
let measure_moe (c : Shapes.moe) =
  let moe = Moe_baselines.spec_of_shape c ~world_size:world in
  let route = Moe.routing moe ~seed:17 in
  let p1_cublas = Moe_baselines.cublas_part1 spec moe route in
  let p1_cutlass = Moe_baselines.cutlass_part1 spec moe route in
  let p1_vllm = Moe_baselines.vllm_part1 spec moe route in
  let p1_tl = run_program (Moe.part1_program moe route ~spec_gpu:spec) in
  let p2_cublas = Moe_baselines.cublas_part2 spec moe route in
  let p2_cutlass = Moe_baselines.cutlass_part2 spec moe route in
  let p2_vllm = Moe_baselines.vllm_part2 spec moe route in
  let p2_tl = run_program (Moe.part2_program moe route ~spec_gpu:spec) in
  let act = Moe_baselines.act_time spec moe in
  ( c,
    (p1_cublas, p1_cutlass, p1_vllm, p1_tl),
    (p2_cublas, p2_cutlass, p2_vllm, p2_tl),
    ( p1_cublas +. act +. p2_cublas,
      p1_vllm +. act +. p2_vllm,
      p1_tl +. act +. p2_tl ) )

let fig9 () =
  heading "Figure 9: MoE layers on 8 x H800-sim";
  let rows = par_map measure_moe Shapes.moe_configs in
  let geo = ref [] in
  List.iter
    (fun ( (c : Shapes.moe),
           (p1_cublas, p1_cutlass, p1_vllm, p1_tl),
           (p2_cublas, p2_cutlass, p2_vllm, p2_tl),
           (full_cublas, full_vllm, full_tl) ) ->
      Printf.printf "%s (E=%d topk=%d):\n" c.Shapes.moe_name c.Shapes.experts
        c.Shapes.topk;
      Printf.printf
        "  AG+Gather+GroupGEMM     cublas %7.3f | cutlass %7.3f | vllm \
         %7.3f | tilelink %7.3f ms (%.2fx over vllm)\n"
        (ms p1_cublas) (ms p1_cutlass) (ms p1_vllm) (ms p1_tl)
        (p1_vllm /. p1_tl);
      Printf.printf
        "  GroupGEMM+Scatter+RS    cublas %7.3f | cutlass %7.3f | vllm \
         %7.3f | tilelink %7.3f ms (%.2fx over vllm, %.2fx over cutlass)\n"
        (ms p2_cublas) (ms p2_cutlass) (ms p2_vllm) (ms p2_tl)
        (p2_vllm /. p2_tl) (p2_cutlass /. p2_tl);
      Printf.printf
        "  full MoE                cublas %7.3f | vllm %7.3f | tilelink \
         %7.3f ms (%.2fx over vllm, %.2fx over cublas)\n"
        (ms full_cublas) (ms full_vllm) (ms full_tl) (full_vllm /. full_tl)
        (full_cublas /. full_tl);
      geo := (full_vllm /. full_tl, full_cublas /. full_tl) :: !geo)
    rows;
  let vllm_ratio = Tilelink_sim.Stats.geomean (List.map fst !geo) in
  let cublas_max = Tilelink_sim.Stats.maximum (List.map snd !geo) in
  Printf.printf
    "geomean full-MoE speedup over vllm %.2fx; max speedup over cublas \
     %.2fx\n"
    vllm_ratio cublas_max;
  Printf.printf
    "paper reference: tilelink 1.51x over vllm on part 1, 1.31x on part 2, \
     1.14x full; max 20.76x over cublas+nccl\n"

(* ------------------------------------------------------------------ *)
(* Figure 10                                                           *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  heading "Figure 10: sequence-parallel self-attention on 8 x H800-sim";
  let torch_ratios = ref [] and ring_ratios = ref [] and overlaps = ref [] in
  List.iter
    (fun (c : Shapes.attn) ->
      Printf.printf "%s (%d heads, head_dim %d):\n" c.Shapes.attn_name
        c.Shapes.heads c.Shapes.head_dim;
      List.iter
        (fun seq ->
          let a =
            {
              Attention.batch_heads = c.Shapes.heads;
              seq;
              head_dim = c.Shapes.head_dim;
              world_size = world;
              causal = false;
            }
          in
          let config = { Attention.q_tile = 512; kv_tile = 2048 } in
          let tl =
            run_program (Attention.program ~config a ~spec_gpu:spec)
          in
          let torch = Attention_baselines.torch_time spec a in
          let ring = Attention_baselines.ring_attention_time spec a in
          (* Idealized fused RingAttention generated from the same
             primitives (no per-step host coordination) — shows how
             much of the library's deficit is orchestration overhead. *)
          let ring_generated =
            run_program
              (Ring_attention.program
                 ~config:{ Ring_attention.q_tile = 512; comm_sms = 8 }
                 a ~spec_gpu:spec)
          in
          let comp = Attention.flash_only_time spec a ~config in
          let comm = Attention.comm_only_time spec a in
          let report =
            Attention_baselines.overlap_report ~comp_only:comp
              ~comm_only:comm ~overlapped:tl
          in
          torch_ratios := (torch /. tl) :: !torch_ratios;
          ring_ratios := (ring /. tl) :: !ring_ratios;
          overlaps := report.Attention_baselines.ratio :: !overlaps;
          Printf.printf
            "  seq %6d: torch %9.2f ms | ring-attn %9.2f ms (fused-gen \
             %8.2f) | tilelink %9.2f ms | speedups %.2fx / %.2fx | overlap \
             ratio %.2f\n"
            seq (ms torch) (ms ring) (ms ring_generated) (ms tl)
            (torch /. tl) (ring /. tl) report.Attention_baselines.ratio)
        c.Shapes.seq_choices)
    Shapes.attn_configs;
  Printf.printf
    "averages: %.2fx over torch, %.2fx over ring-attention, overlap ratio \
     %.2f\n"
    (Tilelink_sim.Stats.mean !torch_ratios)
    (Tilelink_sim.Stats.mean !ring_ratios)
    (Tilelink_sim.Stats.mean !overlaps);
  Printf.printf
    "paper reference: 5.04x over torch, 1.97x over ring-attention, 43.9%% \
     average overlap ratio\n"

(* ------------------------------------------------------------------ *)
(* Figure 11                                                           *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  heading "Figure 11: end-to-end LLMs (batch 4, seq 8192)";
  let dense = ref [] and moe = ref [] and two_node = ref [] in
  List.iter
    (fun llm ->
      let torch = Torch_model.torch_model_time spec llm ~world_size:world in
      let tl = Model.tilelink_model_time spec llm ~world_size:world in
      let speedup8 = torch /. tl in
      let torch16 =
        Model.two_node_time spec llm ~world_size:world ~single_node_time:torch
      in
      let tl16 =
        Model.two_node_time spec llm ~world_size:world ~single_node_time:tl
      in
      let speedup16 = torch16 /. tl16 in
      (if Model.is_moe llm then moe := speedup8 :: !moe
       else dense := speedup8 :: !dense);
      two_node := speedup16 :: !two_node;
      Printf.printf
        "  %-16s 8xGPU: torch %9.1f ms | tilelink %9.1f ms | %.2fx     \
         16xGPU (DPxTP): %.2fx\n"
        llm.Model.model_name (ms torch) (ms tl) speedup8 speedup16)
    Model.models;
  Printf.printf
    "average speedup: dense %.2fx | moe %.2fx | all (1 node) %.2fx | all (2 \
     nodes) %.2fx\n"
    (Tilelink_sim.Stats.mean !dense)
    (Tilelink_sim.Stats.mean !moe)
    (Tilelink_sim.Stats.mean (!dense @ !moe))
    (Tilelink_sim.Stats.mean !two_node);
  Printf.printf
    "paper reference: dense 1.20x, moe 1.54x, overall 1.32x on one node, \
     1.29x on two nodes\n"

(* ------------------------------------------------------------------ *)
(* Ablations of the decoupled design space (DESIGN.md §4)              *)
(* ------------------------------------------------------------------ *)

let ablation () =
  heading "Ablations: the three design subspaces, one axis at a time";
  let m = 8192 and h = 4096 in
  let n1 = 2 * 11008 / world and kpr = 11008 / world in
  let ag_shapes = { Mlp.m; k = h; n = n1; world_size = world } in
  let rs_shapes = { Mlp.rs_m = m; rs_k = kpr; rs_n = h; rs_world = world } in
  let ring = Tilelink_core.Tile.Ring_from_self { segments = world } in
  let base =
    {
      Design_space.comm_tile = (256, 128);
      compute_tile = (128, 128);
      comm_order = ring;
      compute_order = ring;
      binding = Design_space.Comm_on_dma;
      stages = 2;
      micro_block = 0;
    }
  in
  let run_ag config =
    run_program (Mlp.ag_gemm_program ~config ag_shapes ~spec_gpu:spec)
  in
  let run_rs config =
    run_program (Mlp.gemm_rs_program ~config rs_shapes ~spec_gpu:spec)
  in

  Printf.printf "resource binding (AG+GEMM, comm tile 256):\n";
  List.iter
    (fun binding ->
      let t = run_ag { base with Design_space.binding } in
      Printf.printf "  %-22s %8.1f us\n"
        (Design_space.resource_binding_to_string binding)
        t)
    [
      Design_space.Comm_on_dma;
      Design_space.Comm_on_sm 8;
      Design_space.Comm_on_sm 20;
      Design_space.Comm_on_sm 40;
      Design_space.Comm_hybrid { dma_fraction = 0.5; sms = 12 };
    ];

  Printf.printf
    "communication tile size = synchronization granularity (AG+GEMM, DMA):\n";
  List.iter
    (fun tile ->
      let t = run_ag { base with Design_space.comm_tile = (tile, 128) } in
      Printf.printf "  %4d rows/tile (%2d channels/rank) %8.1f us\n" tile
        (m / world / tile) t)
    [ 128; 256; 512; 1024 ];

  Printf.printf
    "tile order: GEMM production order vs ring consumption (GEMM+RS):\n";
  let rs_base =
    {
      base with
      Design_space.comm_tile = (128, 2048);
      binding = Design_space.Comm_hybrid { dma_fraction = 0.5; sms = 12 };
    }
  in
  List.iter
    (fun (label, compute_order) ->
      let t = run_rs { rs_base with Design_space.compute_order } in
      Printf.printf "  %-34s %8.1f us\n" label t)
    [
      ("ring-aligned (consume-order first)",
       Tilelink_core.Tile.Ring_prev_first { segments = world });
      ("row-major (FLUX's fixed order)", Tilelink_core.Tile.Row_major);
      ("ring-from-self (misaligned)", ring);
    ];

  Printf.printf "data-transfer direction (AG+GEMM, Figure 3b):\n";
  List.iter
    (fun (label, transfer, binding) ->
      let t =
        run_program
          (Mlp.ag_gemm_program ~transfer
             ~config:{ base with Design_space.binding }
             ag_shapes ~spec_gpu:spec)
      in
      Printf.printf "  %-22s %8.1f us\n" label t)
    [
      ("pull, dma", `Pull, Design_space.Comm_on_dma);
      ("push, dma", `Push, Design_space.Comm_on_dma);
      ("pull, sm(20)", `Pull, Design_space.Comm_on_sm 20);
      ("push, sm(20)", `Push, Design_space.Comm_on_sm 20);
    ];

  Printf.printf "software pipeline depth (AG+GEMM, DMA):\n";
  List.iter
    (fun stages ->
      let t = run_ag { base with Design_space.stages } in
      Printf.printf "  stages=%d %8.1f us\n" stages t)
    [ 1; 2; 4 ];

  Printf.printf
    "expert-parallel MoE (All2All extension) vs tensor-parallel MoE \
     (MoE-2 shape):\n";
  let moe_shape = List.nth Shapes.moe_configs 1 in
  let tp_moe = Moe_baselines.spec_of_shape moe_shape ~world_size:world in
  let tp_route = Moe.routing tp_moe ~seed:29 in
  let tp_time =
    let act = Moe_baselines.act_time spec tp_moe in
    run_program (Moe.part1_program tp_moe tp_route ~spec_gpu:spec)
    +. act
    +. run_program (Moe.part2_program tp_moe tp_route ~spec_gpu:spec)
  in
  let ep_spec =
    {
      Ep_moe.tokens = moe_shape.Shapes.moe_s;
      hidden = moe_shape.Shapes.moe_h;
      intermediate = moe_shape.Shapes.moe_i;
      experts = moe_shape.Shapes.experts;
      topk = moe_shape.Shapes.topk;
      world_size = world;
    }
  in
  let ep_route = Ep_moe.routing ep_spec ~seed:29 in
  let ep_time = run_program (Ep_moe.program ep_spec ep_route ~spec_gpu:spec) in
  Printf.printf
    "  tensor-parallel (AG + TP experts + RS) %8.1f us | expert-parallel \
     (All2All dispatch/combine) %8.1f us\n"
    tp_time ep_time;

  Printf.printf
    "pipeline parallelism (future work, §7.4): 4 stages, 512-row \
     micro-batches, width 4096:\n";
  List.iter
    (fun micro_batches ->
      let pp_spec =
        {
          Pipeline_parallel.stages = 4;
          micro_batches;
          micro_rows = 512;
          width = 4096;
        }
      in
      let cluster = Cluster.create spec ~world_size:4 in
      let pipelined =
        (Tilelink_core.Runtime.run cluster
           (Pipeline_parallel.program pp_spec ~spec_gpu:spec))
          .Tilelink_core.Runtime.makespan
      in
      let serial = Pipeline_parallel.serial_time spec pp_spec in
      Printf.printf
        "  %2d micro-batches: serial %8.1f us | pipelined %8.1f us (%.2fx)\n"
        micro_batches serial pipelined (serial /. pipelined))
    [ 1; 2; 4; 8 ];

  Printf.printf "decoupled optimum vs coupled (FLUX-style) point:\n";
  let tuned = Tuned.ag_gemm spec ~world_size:world ~m ~k:h ~n:n1 in
  let coupled =
    run_ag
      (Design_space.coupled ~tile:(128, 128) ~order:ring ~comm_sms:20
         ~stages:2)
  in
  Printf.printf "  decoupled best %8.1f us [%s]\n" tuned.Tuned.best_time
    (Design_space.config_to_string tuned.Tuned.best_config);
  Printf.printf "  coupled point  %8.1f us (+%.1f%%)\n" coupled
    ((coupled -. tuned.Tuned.best_time) /. tuned.Tuned.best_time *. 100.0)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let micro () =
  heading "Bechamel microbenchmarks (compiler + simulator hot paths)";
  let open Bechamel in
  let open Toolkit in
  let small_config =
    {
      Design_space.comm_tile = (2, 2);
      compute_tile = (2, 3);
      comm_order = Tilelink_core.Tile.Row_major;
      compute_order = Tilelink_core.Tile.Row_major;
      binding = Design_space.Comm_on_sm 1;
      stages = 2;
      micro_block = 0;
    }
  in
  let ag_spec = { Mlp.m = 8; k = 4; n = 6; world_size = 2 } in
  let rs_spec = { Mlp.rs_m = 8; rs_k = 3; rs_n = 4; rs_world = 2 } in
  let moe_spec =
    {
      Moe.tokens = 8;
      hidden = 4;
      intermediate = 8;
      experts = 3;
      topk = 2;
      world_size = 2;
    }
  in
  let attn_spec =
    {
      Attention.batch_heads = 2;
      seq = 16;
      head_dim = 4;
      world_size = 2;
      causal = false;
    }
  in
  let tests =
    [
      (* Table 2 / Figure 8 path: build + simulate the MLP kernels. *)
      Test.make ~name:"table2/fig8: ag_gemm build+simulate"
        (Staged.stage (fun () ->
             run_program
               (Mlp.ag_gemm_program ~config:small_config ag_spec
                  ~spec_gpu:Calib.test_machine)));
      Test.make ~name:"table2/fig8: gemm_rs build+simulate"
        (Staged.stage (fun () ->
             run_program
               (Mlp.gemm_rs_program
                  ~config:{ small_config with Design_space.compute_tile = (2, 2) }
                  rs_spec ~spec_gpu:Calib.test_machine)));
      (* Figure 9 path: dynamic-mapping MoE kernels. *)
      Test.make ~name:"fig9: moe part1 build+simulate"
        (Staged.stage
           (let route = Moe.routing moe_spec ~seed:3 in
            fun () ->
              run_program
                (Moe.part1_program moe_spec route
                   ~spec_gpu:Calib.test_machine
                   ~config:
                     {
                       Moe.comm_tile_rows = 2;
                       group_tile_rows = 2;
                       comm_binding = Design_space.Comm_on_sm 1;
                     })));
      Test.make ~name:"fig9: moe part2 build+simulate"
        (Staged.stage
           (let route = Moe.routing moe_spec ~seed:3 in
            fun () ->
              run_program
                (Moe.part2_program moe_spec route
                   ~spec_gpu:Calib.test_machine
                   ~config:
                     {
                       Moe.gg_tile_rows = 2;
                       reduce_tile_rows = 2;
                       rs_tile_rows = 2;
                       reduce_sms = 1;
                       rs_sms = 1;
                     })));
      (* Figure 10 path: host-primitive attention kernel. *)
      Test.make ~name:"fig10: attention build+simulate"
        (Staged.stage (fun () ->
             run_program
               (Attention.program
                  ~config:{ Attention.q_tile = 4; kv_tile = 4 }
                  attn_spec ~spec_gpu:Calib.test_machine)));
      (* Figure 11 path: analytic baseline assembly. *)
      Test.make ~name:"fig11: torch layer analytic time"
        (Staged.stage (fun () ->
             Torch_model.torch_layer_time spec (List.hd Model.models)
               ~world_size:world));
      (* Backend passes in isolation. *)
      Test.make ~name:"backend: lower + pipeline + verify"
        (Staged.stage (fun () ->
             let program =
               Mlp.ag_gemm_program ~config:small_config ag_spec
                 ~spec_gpu:Calib.test_machine
             in
             match Tilelink_core.Consistency.verify_program program with
             | Ok () -> ()
             | Error _ -> failwith "verify"));
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg
      Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"tilelink" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ estimate ] ->
        Printf.printf "  %-45s %12.1f ns/run\n" name estimate
      | _ -> Printf.printf "  %-45s (no estimate)\n" name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* --json: machine-readable BENCH_<suite>.json artifacts               *)
(* ------------------------------------------------------------------ *)

(* Each row is one (shape, kernel) run on a traced cluster with a fresh
   telemetry handle: makespan, mean overlap ratio across ranks, and the
   pooled wait-latency percentiles.  Future PRs diff these files to see
   the perf trajectory without re-parsing the human-readable tables. *)

module Obs = Tilelink_obs

let mean_overlap cluster ~world_size =
  Report.all_ranks (Cluster.trace cluster) ~world_size
  |> List.map Report.overlap_ratio
  |> Tilelink_sim.Stats.mean

let wait_json telemetry =
  let metrics = Obs.Telemetry.metrics telemetry in
  match Obs.Metrics.merged_summary metrics ~prefix:"wait_us." with
  | None -> Obs.Json.Null
  | Some s ->
    Obs.Json.Obj
      [
        ("count", Obs.Json.Num (float_of_int s.Obs.Metrics.count));
        ("p50_us", Obs.Json.Num s.Obs.Metrics.p50);
        ("p95_us", Obs.Json.Num s.Obs.Metrics.p95);
        ("p99_us", Obs.Json.Num s.Obs.Metrics.p99);
        ("max_us", Obs.Json.Num s.Obs.Metrics.max);
      ]

let bench_row ~config_name ~kernel (cluster, result) telemetry =
  Obs.Json.Obj
    [
      ("config", Obs.Json.Str config_name);
      ("kernel", Obs.Json.Str kernel);
      ( "makespan_us",
        Obs.Json.Num result.Tilelink_core.Runtime.makespan );
      ("overlap_ratio", Obs.Json.Num (mean_overlap cluster ~world_size:world));
      ("wait_us", wait_json telemetry);
    ]

(* A row spec pairs a stable descriptor (the row's identity in the
   evaluation cache) with the thunk that computes it on a miss.  The
   descriptor covers everything the row depends on — suite, kernel,
   shape, machine fingerprint and schedule fingerprint — so a cache hit
   is guaranteed to replay the very same simulation result. *)
type row_spec = { descr : string; compute : unit -> Obs.Json.t }

let machine_id = Printf.sprintf "%s|world=%d" (Spec.fingerprint spec) world

(* Fixed representative configs (not tuned — the point is a stable
   measurement, comparable across commits).  The AG comm tile must
   divide the row shard (8192/8 = 1024) and the RS column tile must
   divide H, which varies per shape, so RS uses the full H as its
   column tile. *)
let bench_json_mlp () =
  let ring = Tilelink_core.Tile.Ring_from_self { segments = world } in
  List.concat_map
    (fun (c : Shapes.mlp) ->
      let ag_spec =
        {
          Mlp.m = c.Shapes.s;
          k = c.Shapes.h;
          n = 2 * c.Shapes.i / world;
          world_size = world;
        }
      in
      let rs_spec =
        {
          Mlp.rs_m = c.Shapes.s;
          rs_k = c.Shapes.i / world;
          rs_n = c.Shapes.h;
          rs_world = world;
        }
      in
      let ag_config =
        {
          Design_space.comm_tile = (512, 128);
          compute_tile = (128, 128);
          comm_order = ring;
          compute_order = ring;
          binding = Design_space.Comm_on_dma;
          stages = 2;
          micro_block = 0;
        }
      in
      let rs_config =
        {
          Design_space.comm_tile = (128, c.Shapes.h);
          compute_tile = (128, 128);
          comm_order = Tilelink_core.Tile.Row_major;
          compute_order = Tilelink_core.Tile.Ring_prev_first { segments = world };
          binding = Design_space.Comm_hybrid { dma_fraction = 0.5; sms = 12 };
          stages = 2;
          micro_block = 0;
        }
      in
      let shape_id =
        Printf.sprintf "s=%d,h=%d,i=%d" c.Shapes.s c.Shapes.h c.Shapes.i
      in
      [
        {
          descr =
            Printf.sprintf "bench-v1|mlp|ag_gemm|%s|%s|%s" shape_id machine_id
              (Design_space.fingerprint ag_config);
          compute =
            (fun () ->
              let tel = Obs.Telemetry.create () in
              let run =
                Mlp.profile_ag_gemm ~config:ag_config ~telemetry:tel ag_spec
                  ~spec_gpu:spec
              in
              bench_row ~config_name:c.Shapes.mlp_name ~kernel:"ag_gemm" run
                tel);
        };
        {
          descr =
            Printf.sprintf "bench-v1|mlp|gemm_rs|%s|%s|%s" shape_id machine_id
              (Design_space.fingerprint rs_config);
          compute =
            (fun () ->
              let tel = Obs.Telemetry.create () in
              let run =
                Mlp.profile_gemm_rs ~config:rs_config ~telemetry:tel rs_spec
                  ~spec_gpu:spec
              in
              bench_row ~config_name:c.Shapes.mlp_name ~kernel:"gemm_rs" run
                tel);
        };
      ])
    Shapes.mlp_configs

let bench_json_moe () =
  List.concat_map
    (fun (c : Shapes.moe) ->
      let shape_id =
        Printf.sprintf "s=%d,h=%d,i=%d,e=%d,topk=%d,seed=17" c.Shapes.moe_s
          c.Shapes.moe_h c.Shapes.moe_i c.Shapes.experts c.Shapes.topk
      in
      let part kernel profile =
        {
          descr =
            Printf.sprintf "bench-v1|moe|%s|%s|%s|config=default" kernel
              shape_id machine_id;
          compute =
            (fun () ->
              let moe = Moe_baselines.spec_of_shape c ~world_size:world in
              let route = Moe.routing moe ~seed:17 in
              let tel = Obs.Telemetry.create () in
              let run = profile ~telemetry:tel moe route ~spec_gpu:spec in
              bench_row ~config_name:c.Shapes.moe_name ~kernel run tel);
        }
      in
      [
        part "moe_part1" (fun ~telemetry moe route ~spec_gpu ->
            Moe.profile_part1 ~telemetry moe route ~spec_gpu);
        part "moe_part2" (fun ~telemetry moe route ~spec_gpu ->
            Moe.profile_part2 ~telemetry moe route ~spec_gpu);
      ])
    Shapes.moe_configs

(* A deliberately tiny suite for CI smoke runs: one AG+GEMM and one
   GEMM+RS row at toy shapes, seconds not minutes, exercising the same
   row/cache/pool machinery and artifact schema as the real suites. *)
let bench_json_smoke () =
  let ring = Tilelink_core.Tile.Ring_from_self { segments = world } in
  let ag_spec = { Mlp.m = 1024; k = 512; n = 256; world_size = world } in
  let ag_config =
    {
      Design_space.comm_tile = (64, 128);
      compute_tile = (64, 64);
      comm_order = ring;
      compute_order = ring;
      binding = Design_space.Comm_on_dma;
      stages = 2;
      micro_block = 0;
    }
  in
  let rs_spec =
    { Mlp.rs_m = 1024; rs_k = 64; rs_n = 512; rs_world = world }
  in
  let rs_config =
    {
      Design_space.comm_tile = (128, 512);
      compute_tile = (128, 128);
      comm_order = Tilelink_core.Tile.Row_major;
      compute_order = Tilelink_core.Tile.Ring_prev_first { segments = world };
      binding = Design_space.Comm_hybrid { dma_fraction = 0.5; sms = 12 };
      stages = 2;
      micro_block = 0;
    }
  in
  [
    {
      descr =
        Printf.sprintf "bench-v1|smoke|ag_gemm|m=1024,k=512,n=256|%s|%s"
          machine_id
          (Design_space.fingerprint ag_config);
      compute =
        (fun () ->
          let tel = Obs.Telemetry.create () in
          let run =
            Mlp.profile_ag_gemm ~config:ag_config ~telemetry:tel ag_spec
              ~spec_gpu:spec
          in
          bench_row ~config_name:"smoke" ~kernel:"ag_gemm" run tel);
    };
    {
      descr =
        Printf.sprintf "bench-v1|smoke|gemm_rs|m=1024,k=64,n=512|%s|%s"
          machine_id
          (Design_space.fingerprint rs_config);
      compute =
        (fun () ->
          let tel = Obs.Telemetry.create () in
          let run =
            Mlp.profile_gemm_rs ~config:rs_config ~telemetry:tel rs_spec
              ~spec_gpu:spec
          in
          bench_row ~config_name:"smoke" ~kernel:"gemm_rs" run tel);
    };
  ]

(* Crash-failover suite: one row per workload, each a short seeded
   sweep with one forced rank crash per trial.  The schema-checked
   fields keep their usual meaning (makespan = mean chaos-run total,
   overlap = mean achieved overlap vs the fault-free ideal); the
   failover-specific outcome rides along as extra fields. *)
let bench_json_chaos () =
  let module Harness = Tilelink_chaos.Harness in
  let trials = 2 and seed = 42 and crash_ranks = 1 in
  List.map
    (fun workload ->
      let wl = Harness.workload_to_string workload in
      {
        descr =
          Printf.sprintf "bench-v1|chaos|%s|crash=%d,trials=%d,seed=%d|%s" wl
            crash_ranks trials seed machine_id;
        compute =
          (fun () ->
            let s =
              Harness.run_trials ~crash_ranks ~workload ~seed ~trials ()
            in
            let mean f =
              Tilelink_sim.Stats.mean
                (List.map f s.Harness.s_trials)
            in
            let fo = List.sort compare s.Harness.s_failover_latencies in
            Obs.Json.Obj
              [
                ("config", Obs.Json.Str wl);
                ("kernel", Obs.Json.Str "chaos");
                ("makespan_us", Obs.Json.Num (mean (fun t -> t.Harness.total_us)));
                ( "overlap_ratio",
                  Obs.Json.Num
                    (Float.min 1.0
                       (Float.max 0.0
                          (mean (fun t -> t.Harness.achieved_overlap)))) );
                ( "failed_over",
                  Obs.Json.Num (float_of_int s.Harness.s_failed_over) );
                ( "recovery_p99_us",
                  if fo = [] then Obs.Json.Null
                  else Obs.Json.Num (Tilelink_sim.Stats.percentile 99.0 fo) );
                ( "replayed_tiles",
                  Obs.Json.Num
                    (float_of_int
                       (List.fold_left
                          (fun acc t -> acc + t.Harness.replayed_tiles)
                          0 s.Harness.s_trials)) );
              ]);
      })
    [ Harness.Mlp_ag_gemm; Harness.Moe_part2; Harness.Attention_ag ]

(* Serving suite: one row per traffic scenario through the continuous
   batcher — steady Poisson, a bursty overload that exercises
   backpressure and degradation tiers, and a mid-trace rank crash.
   The schema-checked fields keep their usual meaning (makespan = the
   serve's virtual-clock span, overlap_ratio = fraction of completed
   requests inside both SLOs); the serving outcome — conservation
   counts, goodput, TTFT/TPOT percentiles, degraded-tier time — rides
   along and is gated suite-specifically. *)
let bench_json_serving () =
  let module Serve = Tilelink_serve in
  let seed = 42 and requests = 120 in
  let slo = { Serve.Slo.ttft_us = 5_000.; tpot_us = 2_000. } in
  let config ~chaos =
    {
      Serve.Server.machine = spec;
      topology = None;
      world_size = world;
      head_dim = 64;
      slo;
      queue_capacity = 32;
      max_batch = 16;
      kv_capacity = 8192;
      timeout_us = 50_000.;
      chaos;
    }
  in
  let scenarios =
    [
      ( "poisson_steady",
        Serve.Trace_gen.Poisson { rate_rps = 2_000. },
        None );
      ( "bursty_overload",
        Serve.Trace_gen.Bursty
          { rate_rps = 40_000.; burst = 8.; on_fraction = 0.25 },
        None );
      ( "poisson_crash1",
        Serve.Trace_gen.Poisson { rate_rps = 2_000. },
        Some { Serve.Server.ch_seed = 7; ch_crash_ranks = 1 } );
    ]
  in
  List.map
    (fun (name, arrival, chaos) ->
      {
        descr =
          Printf.sprintf "bench-v1|serving|%s|requests=%d,seed=%d|%s" name
            requests seed machine_id;
        compute =
          (fun () ->
            let trace =
              Serve.Trace_gen.generate ~seed ~requests arrival
            in
            let r = Serve.Server.run (config ~chaos) trace in
            let shed =
              r.Serve.Server.r_shed_queue_full
              + r.Serve.Server.r_shed_deadline
              + r.Serve.Server.r_shed_timeout
            in
            let degraded_us =
              List.fold_left
                (fun acc (tier, us) ->
                  if tier = "overlapped" then acc else acc +. us)
                0. r.Serve.Server.r_tier_us
            in
            Obs.Json.Obj
              [
                ("config", Obs.Json.Str name);
                ("kernel", Obs.Json.Str "serving");
                ("makespan_us", Obs.Json.Num r.Serve.Server.r_makespan_us);
                ( "overlap_ratio",
                  Obs.Json.Num
                    (if r.Serve.Server.r_completed = 0 then 0.0
                     else
                       float_of_int r.Serve.Server.r_slo_met
                       /. float_of_int r.Serve.Server.r_completed) );
                ("offered", Obs.Json.Num (float_of_int r.Serve.Server.r_offered));
                ( "accepted",
                  Obs.Json.Num (float_of_int r.Serve.Server.r_accepted) );
                ( "completed",
                  Obs.Json.Num (float_of_int r.Serve.Server.r_completed) );
                ("shed", Obs.Json.Num (float_of_int shed));
                ("failed", Obs.Json.Num (float_of_int r.Serve.Server.r_failed));
                ( "in_flight",
                  Obs.Json.Num (float_of_int r.Serve.Server.r_in_flight) );
                ("goodput_rps", Obs.Json.Num r.Serve.Server.r_goodput_rps);
                ( "ttft_p50_us",
                  Obs.Json.Num r.Serve.Server.r_ttft.Serve.Slo.d_p50 );
                ( "ttft_p99_us",
                  Obs.Json.Num r.Serve.Server.r_ttft.Serve.Slo.d_p99 );
                ( "tpot_p50_us",
                  Obs.Json.Num r.Serve.Server.r_tpot.Serve.Slo.d_p50 );
                ( "tpot_p99_us",
                  Obs.Json.Num r.Serve.Server.r_tpot.Serve.Slo.d_p99 );
                ("degraded_us", Obs.Json.Num degraded_us);
                ( "failovers",
                  Obs.Json.Num (float_of_int r.Serve.Server.r_failovers) );
                ( "fallback_steps",
                  Obs.Json.Num (float_of_int r.Serve.Server.r_fallback_steps)
                );
              ]);
      })
    scenarios

(* Topology suite: the chaos harness's MLP workload run once per
   shipped topology preset, each trial forcing one rank crash — plus a
   whole-island crash on the two-island shape, the case where every
   replayed tile must cross the NIC bridge.  The schema-checked fields
   keep their usual meaning; the topology outcome — p99 recovery
   latency, overlap efficiency, cross-island replay count, node count
   — rides along and is gated suite-specifically.  The T3 and
   non-overlapped analytic baselines for the same scaled ag-gemm shape
   bracket the simulated runtime from both sides. *)
let bench_json_topology () =
  let module Harness = Tilelink_chaos.Harness in
  let trials = 2 and seed = 42 in
  let workload = Harness.Mlp_ag_gemm in
  let configs =
    List.map (fun topo -> (Topology.name topo, topo, 1)) Topology.all
    @ [
        ( "islands2x8/island",
          Topology.islands2x8,
          Topology.ranks_per_island Topology.islands2x8 );
      ]
  in
  List.map
    (fun (config_name, topo, crash_ranks) ->
      {
        descr =
          Printf.sprintf "bench-v1|topology|%s|crash=%d,trials=%d,seed=%d|%s"
            config_name crash_ranks trials seed machine_id;
        compute =
          (fun () ->
            let s =
              Harness.run_trials ~crash_ranks ~topology:topo ~workload ~seed
                ~trials ()
            in
            let mean f =
              Tilelink_sim.Stats.mean (List.map f s.Harness.s_trials)
            in
            let fo = List.sort compare s.Harness.s_failover_latencies in
            let tw = Topology.natural_world topo in
            let tm = Calib.test_machine in
            let clamp01 x = Float.min 1.0 (Float.max 0.0 x) in
            Obs.Json.Obj
              [
                ("config", Obs.Json.Str config_name);
                ("kernel", Obs.Json.Str "mlp_ag_gemm");
                ("makespan_us", Obs.Json.Num (mean (fun t -> t.Harness.total_us)));
                ( "overlap_ratio",
                  Obs.Json.Num
                    (clamp01 (mean (fun t -> t.Harness.achieved_overlap))) );
                ( "overlap_efficiency",
                  Obs.Json.Num (clamp01 s.Harness.s_overlap_efficiency) );
                ( "failed_over",
                  Obs.Json.Num (float_of_int s.Harness.s_failed_over) );
                ( "recovery_p99_us",
                  if fo = [] then Obs.Json.Null
                  else Obs.Json.Num (Tilelink_sim.Stats.percentile 99.0 fo) );
                ( "replayed_tiles",
                  Obs.Json.Num
                    (float_of_int
                       (List.fold_left
                          (fun acc t -> acc + t.Harness.replayed_tiles)
                          0 s.Harness.s_trials)) );
                ( "cross_island_replays",
                  Obs.Json.Num (float_of_int s.Harness.s_cross_island_replays)
                );
                ("nodes", Obs.Json.Num (float_of_int (Topology.num_islands topo)));
                ("world", Obs.Json.Num (float_of_int tw));
                ( "t3_us",
                  Obs.Json.Num
                    (T3.ag_gemm_time tm ~world_size:tw ~m:(4 * tw) ~k:4 ~n:6)
                );
                ( "nonoverlap_us",
                  Obs.Json.Num
                    (Nonoverlap.ag_gemm_time tm ~world_size:tw ~m:(4 * tw) ~k:4
                       ~n:6) );
              ]);
      })
    configs

(* Kernel microbenchmarks: the gemm variants (bounds-checked naive,
   micro-optimized i-k-j, cache-blocked at several block edges) timed
   for real — host wall-clock, not simulated time.  All timings are
   taken eagerly and sequentially on the main domain so the pool and
   the evaluation cache never touch them (the driver exempts this
   suite from caching: a replayed timing is a lie). *)

module Ts = Tilelink_tensor

let time_kernel ?(reps = 3) f =
  ignore (f ());
  (* warmup: page in the inputs, trigger any lazy init *)
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let bench_json_kernels () =
  let shapes = [ (128, 256, 128); (256, 256, 256); (192, 512, 96) ] in
  let rows =
    List.concat_map
      (fun (m, k, n) ->
        let a = Ts.Tensor.random ~seed:(m + k) (Ts.Shape.of_list [ m; k ]) in
        let b = Ts.Tensor.random ~seed:(k + n) (Ts.Shape.of_list [ k; n ]) in
        let flops = Ts.Linalg.gemm_flops ~m ~n ~k in
        let shape_id = Printf.sprintf "m=%d,k=%d,n=%d" m k n in
        let naive_s = time_kernel (fun () -> Ts.Linalg.gemm_naive a b) in
        let row variant time_s =
          Obs.Json.Obj
            [
              ("config", Obs.Json.Str shape_id);
              ("kernel", Obs.Json.Str variant);
              ("makespan_us", Obs.Json.Num (1e6 *. time_s));
              (* overlap does not apply to a single-kernel timing *)
              ("overlap_ratio", Obs.Json.Num 0.0);
              ("gflops", Obs.Json.Num (flops /. time_s /. 1e9));
              ("speedup_vs_naive", Obs.Json.Num (naive_s /. time_s));
            ]
        in
        row "naive" naive_s
        :: row "ikj" (time_kernel (fun () -> Ts.Linalg.gemm a b))
        :: List.map
             (fun block ->
               row
                 (Printf.sprintf "block=%d" block)
                 (time_kernel (fun () -> Ts.Linalg.gemm ~block a b)))
             [ 8; 16; 32; 64 ])
      shapes
  in
  List.map
    (fun row -> { descr = "kernels|uncached"; compute = (fun () -> row) })
    rows

(* Parallel-backend accounting: each selected workload runs once on
   the sequential interpreter and once on the domain team, and the row
   records wall-clock, per-domain busy time, overlap efficiency
   (busy_total / (wall * domains)) and whether the tensors came out
   bit-identical.  [host_cores] makes the 1-CPU-container caveat
   machine-readable: when [host_cores < domains] the wall-clock column
   measures scheduling overhead, not speedup, and [wall_meaningful] is
   false — the gate is then determinism plus busy/wall accounting, not
   a speedup threshold. *)

let parallel_bits_equal ma mb =
  let open Tilelink_core in
  List.for_all
    (fun rank ->
      let names = Memory.buffers ma ~rank in
      names = Memory.buffers mb ~rank
      && List.for_all
           (fun name ->
             let da = Ts.Tensor.data (Memory.find ma ~rank ~name)
             and db = Ts.Tensor.data (Memory.find mb ~rank ~name) in
             Array.length da = Array.length db
             && Array.for_all2
                  (fun x y ->
                    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
                  da db)
           names)
    (List.init (Memory.world_size ma) Fun.id)

let bench_json_parallel () =
  let open Tilelink_core in
  let machine = Calib.test_machine in
  let domains = 2 in
  let host_cores = Domain.recommended_domain_count () in
  let cases = Suite.data_cases () in
  let rows =
    List.map
      (fun name ->
        let case = List.assoc name cases in
        let mem_seq, program = case () in
        let cluster =
          Cluster.create machine ~world_size:(Program.world_size program)
        in
        ignore (Runtime.run ~data:true ~memory:mem_seq cluster program);
        let mem0, program_par = case () in
        let mem_par, pres =
          Parallel.run ~data:true ~memory:mem0 ~domains program_par
        in
        let stats = pres.Parallel.p_stats in
        let module B = Exec.Backend in
        let busy_total_s =
          Array.fold_left
            (fun acc d -> acc +. d.B.d_busy_s)
            0.0 stats.B.per_domain
        in
        let wall_s = stats.B.wall_s in
        let utilization =
          if wall_s > 0.0 then
            busy_total_s /. (wall_s *. float_of_int domains)
          else 0.0
        in
        Obs.Json.Obj
          [
            ("config", Obs.Json.Str name);
            ("kernel", Obs.Json.Str "parallel_backend");
            ("makespan_us", Obs.Json.Num pres.Parallel.p_wall_us);
            ( "overlap_ratio",
              Obs.Json.Num (Float.min 1.0 (Float.max 0.0 utilization)) );
            ("domains", Obs.Json.Num (float_of_int domains));
            ("host_cores", Obs.Json.Num (float_of_int host_cores));
            ("wall_meaningful", Obs.Json.Bool (host_cores >= domains));
            ("busy_total_us", Obs.Json.Num (1e6 *. busy_total_s));
            ( "busy_us_per_domain",
              Obs.Json.List
                (Array.to_list
                   (Array.map
                      (fun d -> Obs.Json.Num (1e6 *. d.B.d_busy_s))
                      stats.B.per_domain)) );
            ("execs", Obs.Json.Num (float_of_int stats.B.total_execs));
            ("notifies", Obs.Json.Num (float_of_int stats.B.total_notifies));
            ("parks", Obs.Json.Num (float_of_int stats.B.total_parks));
            ( "bit_identical",
              Obs.Json.Bool (parallel_bits_equal mem_seq mem_par) );
          ])
      [
        "mlp_ag_gemm_pull/w2/t2";
        "mlp_gemm_rs/w4";
        "moe_part2/w4";
        "ring_attention/w2";
      ]
  in
  List.map
    (fun row -> { descr = "parallel|uncached"; compute = (fun () -> row) })
    rows

(* ------------------------------------------------------------------ *)
(* planner suite                                                       *)
(* ------------------------------------------------------------------ *)

(* The auto-overlap planner against every hand-written AG+GEMM schedule
   of the shipped-program sweep (same shapes, machine and design points
   as [Suite.build_cases]), plus operator graphs no hand-written kernel
   covers.  The candidate list handed to the planner includes the
   hand-written design points, so "rediscover or beat" is a sharp gate:
   the search minimum can never lose to a hand schedule by more than
   simulation noise (and the simulator is deterministic, so not even
   that). *)

module Planner = Tilelink_core.Planner

let planner_machine = Calib.test_machine

let planner_sweep_config ~world ~comm_tile =
  let ring = Tilelink_core.Tile.Ring_from_self { segments = world } in
  {
    Design_space.comm_tile = (comm_tile, 128);
    compute_tile = (2, 2);
    comm_order = ring;
    compute_order = ring;
    binding = Design_space.Comm_on_sm 1;
    stages = 2;
    micro_block = 0;
  }

let planner_hand_candidates ~world =
  List.concat_map
    (fun comm_tile ->
      List.map
        (fun pl_transfer ->
          {
            Planner.pl_config = planner_sweep_config ~world ~comm_tile;
            pl_transfer;
            pl_chunks = 2;
          })
        [ Planner.Pull; Planner.Push ])
    [ 2; 4 ]

let planner_search ~world ?(extra = []) graph =
  let candidates =
    Planner.enumerate (Planner.default_space graph) @ extra
  in
  match
    Planner.search ~candidates graph ~spec_gpu:planner_machine
      ~make_cluster:(fun () ->
        Cluster.create planner_machine ~world_size:world)
      ()
  with
  | Some plan -> plan
  | None ->
    failwith ("planner: no plan for " ^ Planner.graph_fingerprint graph)

let planner_run ~world program =
  let cluster = Cluster.create planner_machine ~world_size:world in
  let result = Tilelink_core.Runtime.run cluster program in
  (result.Tilelink_core.Runtime.makespan, mean_overlap cluster ~world_size:world)

let planner_analyzer_clean program =
  match Tilelink_core.Analyzer.check program with
  | Ok () -> true
  | Error _ -> false

let planner_descr name =
  String.concat "|"
    [ "planner"; Spec.fingerprint planner_machine; name; "v1" ]

let tensors_equal a b =
  Tilelink_tensor.Tensor.shape a = Tilelink_tensor.Tensor.shape b
  && Tilelink_tensor.Tensor.data a = Tilelink_tensor.Tensor.data b

let bench_json_planner () =
  let vs_hand_rows =
    List.concat_map
      (fun world ->
        List.concat_map
          (fun comm_tile ->
            List.map
              (fun (tag, transfer) ->
                let name =
                  Printf.sprintf "mlp_ag_gemm_%s/w%d/t%d" tag world comm_tile
                in
                {
                  descr = planner_descr name;
                  compute =
                    (fun () ->
                      let shapes =
                        { Mlp.m = 8 * world; k = 4; n = 6; world_size = world }
                      in
                      let hand =
                        Mlp.ag_gemm_program ~transfer
                          ~config:(planner_sweep_config ~world ~comm_tile)
                          shapes ~spec_gpu:planner_machine
                      in
                      let hand_us, _ = planner_run ~world hand in
                      let plan =
                        planner_search ~world
                          ~extra:(planner_hand_candidates ~world)
                          (Planned.mlp_graph shapes)
                      in
                      let planner_us, overlap =
                        planner_run ~world plan.Planner.p_program
                      in
                      Obs.Json.Obj
                        [
                          ("config", Obs.Json.Str name);
                          ("kernel", Obs.Json.Str "planner-vs-hand");
                          ("makespan_us", Obs.Json.Num planner_us);
                          ("overlap_ratio", Obs.Json.Num overlap);
                          ("handwritten_us", Obs.Json.Num hand_us);
                          ( "ratio_vs_hand",
                            Obs.Json.Num (planner_us /. hand_us) );
                          ( "analyzer_clean",
                            Obs.Json.Bool
                              (planner_analyzer_clean plan.Planner.p_program)
                          );
                          ( "winner",
                            Obs.Json.Str
                              (Planner.candidate_to_string
                                 plan.Planner.p_candidate) );
                        ]);
                })
              [ ("pull", `Pull); ("push", `Push) ])
          [ 2; 4 ])
      [ 2; 4; 8 ]
  in
  (* Operator graphs with no hand-written counterpart: the planner must
     still produce an analyzer-clean program whose data actions
     reproduce the references bit for bit. *)
  let novel name ~world ~alloc ~checks graph =
    {
      descr = planner_descr name;
      compute =
        (fun () ->
          let plan = planner_search ~world graph in
          let planner_us, overlap = planner_run ~world plan.Planner.p_program in
          let memory = alloc () in
          (* Data programs are single-use; synthesize the winner afresh. *)
          let data_program =
            Planner.synthesize graph plan.Planner.p_candidate
              ~spec_gpu:planner_machine
          in
          let cluster = Cluster.create planner_machine ~world_size:world in
          ignore
            (Tilelink_core.Runtime.run ~data:true ~memory cluster data_program);
          let numerics_ok =
            List.for_all
              (fun (out, expected) ->
                List.for_all
                  (fun rank ->
                    tensors_equal (expected ~rank)
                      (Tilelink_core.Memory.find memory ~rank ~name:out))
                  (List.init world Fun.id))
              (checks memory)
          in
          Obs.Json.Obj
            [
              ("config", Obs.Json.Str name);
              ("kernel", Obs.Json.Str "planner-novel");
              ("makespan_us", Obs.Json.Num planner_us);
              ("overlap_ratio", Obs.Json.Num overlap);
              ( "analyzer_clean",
                Obs.Json.Bool (planner_analyzer_clean plan.Planner.p_program)
              );
              ("numerics_ok", Obs.Json.Bool numerics_ok);
              ( "winner",
                Obs.Json.Str
                  (Planner.candidate_to_string plan.Planner.p_candidate) );
            ]);
    }
  in
  let fused_spec = { Mlp.m = 16; k = 4; n = 6; world_size = 2 } in
  let novel_rows =
    [
      novel "softmax/w2" ~world:2
        ~alloc:(fun () -> Planned.softmax_alloc ~m:16 ~k:5 ~world:2 ~seed:7)
        ~checks:(fun memory ->
          [
            ( "p",
              fun ~rank:_ -> Planned.softmax_reference memory ~m:16 ~world:2 );
          ])
        (Planned.softmax_graph ~m:16 ~k:5 ~world:2);
      novel "moe_ffn/w2" ~world:2
        ~alloc:(fun () ->
          Planned.moe_alloc ~m:16 ~k:4 ~n:5 ~world:2 ~seed:19)
        ~checks:(fun memory ->
          [
            ( "h_gate",
              fun ~rank -> Planned.moe_reference memory ~weights:"w_gate" ~rank
            );
            ( "h_up",
              fun ~rank -> Planned.moe_reference memory ~weights:"w_up" ~rank
            );
          ])
        (Planned.moe_graph ~m:16 ~k:4 ~n:5 ~world:2);
      novel "fused_gemm_softmax/w2" ~world:2
        ~alloc:(fun () -> Planned.fused_alloc fused_spec ~seed:13)
        ~checks:(fun memory ->
          [
            ( "y",
              fun ~rank -> Planned.fused_gemm_reference memory fused_spec ~rank
            );
            ( "p",
              fun ~rank:_ -> Planned.fused_softmax_reference memory fused_spec
            );
          ])
        (Planned.fused_graph fused_spec);
    ]
  in
  vs_hand_rows @ novel_rows

let json_suites =
  [
    ("mlp", bench_json_mlp);
    ("moe", bench_json_moe);
    ("smoke", bench_json_smoke);
    ("chaos", bench_json_chaos);
    ("topology", bench_json_topology);
    ("serving", bench_json_serving);
    ("kernels", bench_json_kernels);
    ("parallel", bench_json_parallel);
    ("planner", bench_json_planner);
  ]

(* Wall-clock suites must be re-measured every run: serving a timing
   from the evaluation cache would freeze the numbers forever. *)
let uncached_suites = [ "kernels"; "parallel" ]

(* --check: re-parse a freshly written artifact and verify the schema
   downstream consumers rely on — non-empty suite name and rows, every
   row carrying string config/kernel and finite numeric makespan and
   overlap fields. *)
let check_bench_json path =
  let fail msg =
    Printf.eprintf "bench check FAILED (%s): %s\n" path msg;
    exit 2
  in
  let read () =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let doc =
    match Obs.Json.parse (read ()) with
    | Ok v -> v
    | Error msg -> fail ("not valid JSON: " ^ msg)
  in
  let str_field obj name =
    match Obs.Json.member name obj with
    | Some (Obs.Json.Str s) when s <> "" -> s
    | _ -> fail (Printf.sprintf "missing or empty string field %S" name)
  in
  let num_field obj name =
    match Obs.Json.member name obj with
    | Some (Obs.Json.Num x) when Float.is_finite x -> x
    | _ -> fail (Printf.sprintf "missing or non-finite numeric field %S" name)
  in
  let suite = str_field doc "suite" in
  ignore (num_field doc "world_size");
  let rows =
    match Obs.Json.member "rows" doc with
    | Some (Obs.Json.List (_ :: _ as rows)) -> rows
    | Some (Obs.Json.List []) -> fail "rows is empty"
    | _ -> fail "missing rows list"
  in
  List.iter
    (fun row ->
      ignore (str_field row "config");
      ignore (str_field row "kernel");
      if num_field row "makespan_us" < 0.0 then fail "negative makespan_us";
      let o = num_field row "overlap_ratio" in
      if o < 0.0 || o > 1.0 then fail "overlap_ratio outside [0, 1]")
    rows;
  (* Suite-specific gates. *)
  (if suite = "kernels" then
     (* The cache-blocked microkernel must actually pay off: at least
        one blocked variant beats the naive loop at every shape. *)
     let by_shape = Hashtbl.create 8 in
     List.iter
       (fun row ->
         let shape = str_field row "config" in
         let kernel = str_field row "kernel" in
         if String.length kernel >= 6 && String.sub kernel 0 6 = "block=" then
           let s = num_field row "speedup_vs_naive" in
           let best =
             match Hashtbl.find_opt by_shape shape with
             | Some b -> Float.max b s
             | None -> s
           in
           Hashtbl.replace by_shape shape best)
       rows;
     if Hashtbl.length by_shape = 0 then fail "kernels: no blocked rows";
     Hashtbl.iter
       (fun shape best ->
         if best <= 1.0 then
           fail
             (Printf.sprintf
                "kernels: no blocked variant beats naive at %s (best %.3fx)"
                shape best))
       by_shape);
  if suite = "serving" then
    List.iter
      (fun row ->
        (* Conservation gate: every offered request must be accounted
           for, nothing may linger at drain, and the latency digests
           must be real numbers whenever anything completed. *)
        let offered = num_field row "offered" in
        let completed = num_field row "completed" in
        let shed = num_field row "shed" in
        let failed = num_field row "failed" in
        let in_flight = num_field row "in_flight" in
        if offered <> completed +. shed +. failed +. in_flight then
          fail "serving: offered <> completed + shed + failed + in_flight";
        if in_flight <> 0.0 then fail "serving: requests in flight at drain";
        if failed < 0.0 then fail "serving: negative failed count";
        if num_field row "goodput_rps" < 0.0 then
          fail "serving: negative goodput";
        if num_field row "degraded_us" < 0.0 then
          fail "serving: negative degraded-tier time";
        if completed > 0.0 then begin
          if num_field row "ttft_p99_us" < num_field row "ttft_p50_us" then
            fail "serving: ttft p99 below p50";
          if num_field row "tpot_p99_us" < num_field row "tpot_p50_us" then
            fail "serving: tpot p99 below p50"
        end)
      rows;
  (if suite = "planner" then begin
     (* Every synthesized winner must be analyzer-clean; rows with a
        hand-written counterpart must rediscover or beat it (5%
        tolerance); novel-graph rows must reproduce their references
        bit for bit.  Both row kinds must actually be present. *)
     let compared = ref 0 and novel = ref 0 in
     List.iter
       (fun row ->
         (match Obs.Json.member "analyzer_clean" row with
         | Some (Obs.Json.Bool true) -> ()
         | _ -> fail "planner: winner not analyzer-clean");
         (match Obs.Json.member "ratio_vs_hand" row with
         | Some (Obs.Json.Num r) ->
           incr compared;
           if not (Float.is_finite r) then
             fail "planner: non-finite ratio_vs_hand";
           if r > 1.05 then
             fail
               (Printf.sprintf
                  "planner: %s loses to the hand-written schedule (%.3fx)"
                  (str_field row "config") r)
         | Some _ -> fail "planner: ratio_vs_hand not numeric"
         | None -> ());
         match Obs.Json.member "numerics_ok" row with
         | Some (Obs.Json.Bool true) -> incr novel
         | Some _ -> fail "planner: novel graph numerics diverge"
         | None -> ())
       rows;
     if !compared = 0 then fail "planner: no hand-written comparison rows";
     if !novel = 0 then fail "planner: no novel-graph rows"
   end);
  if suite = "topology" then begin
    (* Fault-domain gate: every topology row must carry a sane node /
       world layout and a [0,1] overlap efficiency; rows that forced a
       crash must report a recovery p99; the whole-island crash on a
       bridged shape must replay across the NIC (cross-island count
       strictly positive); the analytic baselines must bracket sanely
       (T3's overlapped estimate at or below fully-serialized). *)
    let island_crash_rows = ref 0 in
    List.iter
      (fun row ->
        let nodes = num_field row "nodes" in
        let world_sz = num_field row "world" in
        if nodes < 1.0 then fail "topology: node count below 1";
        if world_sz < 2.0 then fail "topology: world below 2";
        let eff = num_field row "overlap_efficiency" in
        if eff < 0.0 || eff > 1.0 then
          fail "topology: overlap_efficiency outside [0, 1]";
        if num_field row "cross_island_replays" < 0.0 then
          fail "topology: negative cross_island_replays";
        if num_field row "failed_over" > 0.0 then begin
          match Obs.Json.member "recovery_p99_us" row with
          | Some (Obs.Json.Num p) when Float.is_finite p && p >= 0.0 -> ()
          | _ -> fail "topology: failed-over row without recovery_p99_us"
        end;
        if num_field row "t3_us" > num_field row "nonoverlap_us" then
          fail "topology: T3 overlapped estimate above serialized baseline";
        let cfg = str_field row "config" in
        if cfg = "islands2x8/island" then begin
          incr island_crash_rows;
          if num_field row "cross_island_replays" <= 0.0 then
            fail "topology: island-wide crash produced no cross-island replays"
        end)
      rows;
    if !island_crash_rows = 0 then fail "topology: no whole-island crash row"
  end;
  if suite = "parallel" then
    List.iter
      (fun row ->
        (* Determinism and accounting gate (a 1-CPU host cannot show
           wall-clock speedup, so these are the hard requirements):
           tensors bit-identical to the sequential interpreter, and
           per-domain busy time consistent with the wall clock. *)
        (match Obs.Json.member "bit_identical" row with
        | Some (Obs.Json.Bool true) -> ()
        | _ -> fail "parallel: row not bit-identical to sequential backend");
        let busy = num_field row "busy_total_us" in
        let wall = num_field row "makespan_us" in
        let domains = num_field row "domains" in
        if busy < 0.0 then fail "parallel: negative busy_total_us";
        if busy > wall *. domains *. 1.05 then
          fail "parallel: busy time exceeds domains * wall";
        ignore (num_field row "host_cores"))
      rows;
  Printf.printf "[%s: check ok, %d rows]\n%!" path (List.length rows)

(* Resolve every row through the cache, fan the misses out over the
   pool, and stitch the results back in row order.  The sweep stats go
   into the artifact so the perf trajectory (and the parallel/caching
   machinery itself) is visible across commits. *)
let write_bench_json cache name rows_of =
  let path = Printf.sprintf "BENCH_%s.json" name in
  let t0 = Unix.gettimeofday () in
  let specs = rows_of () in
  let resolved =
    List.map
      (fun r ->
        match cache with
        | None -> `Miss r
        | Some c -> (
          match Exec.Cache.find c (Exec.Cache.fingerprint r.descr) with
          | Some row -> `Hit row
          | None -> `Miss r))
      specs
  in
  let misses =
    List.filter_map (function `Miss r -> Some r | `Hit _ -> None) resolved
  in
  let computed =
    Exec.Pool.map !pool
      (fun r ->
        let t = Unix.gettimeofday () in
        let row = r.compute () in
        (row, Unix.gettimeofday () -. t))
      misses
  in
  let task_time = ref 0.0 in
  let rows =
    let remaining = ref (List.combine misses computed) in
    List.map
      (function
        | `Hit row -> row
        | `Miss _ -> (
          match !remaining with
          | [] -> assert false
          | (r, res) :: tl ->
            remaining := tl;
            let row, dt = Exec.Pool.get res in
            task_time := !task_time +. dt;
            (match cache with
            | Some c -> Exec.Cache.add c (Exec.Cache.fingerprint r.descr) row
            | None -> ());
            row))
      resolved
  in
  let wall = Unix.gettimeofday () -. t0 in
  let hits = List.length specs - List.length misses in
  let doc =
    Obs.Json.Obj
      [
        ("suite", Obs.Json.Str name);
        ("machine", Obs.Json.Str spec.Spec.gpu.Spec.gpu_name);
        ("world_size", Obs.Json.Num (float_of_int world));
        ("jobs", Obs.Json.Num (float_of_int !jobs));
        ("cache_hits", Obs.Json.Num (float_of_int hits));
        ("cache_misses", Obs.Json.Num (float_of_int (List.length misses)));
        ("wall_clock_s", Obs.Json.Num wall);
        ("task_time_s", Obs.Json.Num !task_time);
        ( "parallel_speedup",
          if wall > 0.0 then Obs.Json.Num (!task_time /. wall)
          else Obs.Json.Null );
        ("rows", Obs.Json.List rows);
      ]
  in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string ~indent:true doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "[%s: wrote %s, %d rows (%d cached), %.1fs]\n%!" name path
    (List.length rows) hits wall

(* ------------------------------------------------------------------ *)
(* --compare: regression gate between two BENCH_*.json artifacts       *)
(* ------------------------------------------------------------------ *)

(* Exit codes: 0 all rows within tolerance, 1 at least one regression,
   2 unreadable input or a failed --check self-test.  The --check mode
   validates the gate itself: diffing the baseline against itself must
   pass, and diffing it against a copy slowed down by twice the
   tolerance must trip. *)

let load_rows path =
  let contents =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error msg ->
      Printf.eprintf "bench compare: cannot read %s: %s\n" path msg;
      exit 2
  in
  match Obs.Regress.rows_of_string contents with
  | Ok rows -> rows
  | Error msg ->
    Printf.eprintf "bench compare: %s: %s\n" path msg;
    exit 2

let run_compare ~tolerance ~baseline_path ~candidate_path =
  let baseline = load_rows baseline_path in
  let candidate = load_rows candidate_path in
  let report = Obs.Regress.compare_rows ?tolerance ~baseline ~candidate () in
  print_endline (Obs.Regress.report_to_string report);
  if !check_artifacts then begin
    let fail msg =
      Printf.eprintf "bench compare check FAILED: %s\n" msg;
      exit 2
    in
    if baseline = [] then fail "baseline has no rows, gate is vacuous";
    let self =
      Obs.Regress.compare_rows ?tolerance ~baseline ~candidate:baseline ()
    in
    if not (Obs.Regress.ok self) then
      fail "self-diff of the baseline reported regressions";
    let tol =
      match tolerance with
      | Some t -> t
      | None -> Obs.Regress.default_tolerance
    in
    let perturbed =
      List.map
        (fun (r : Obs.Regress.row) ->
          {
            r with
            Obs.Regress.r_makespan_us =
              r.Obs.Regress.r_makespan_us *. (1.0 +. (2.0 *. tol));
          })
        baseline
    in
    let tripped =
      Obs.Regress.compare_rows ?tolerance ~baseline ~candidate:perturbed ()
    in
    if Obs.Regress.ok tripped then
      fail
        (Printf.sprintf "a uniform +%.1f%% slowdown did not trip the gate"
           (200.0 *. tol));
    Printf.printf
      "[compare check ok: self-diff clean, +%.1f%% perturbation flagged]\n"
      (200.0 *. tol)
  end;
  exit (if Obs.Regress.ok report then 0 else 1)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let artifacts =
  [
    ("table1", table1);
    ("table2", table2);
    ("table4", table4);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("ablation", ablation);
    ("micro", micro);
  ]

let compare_paths : (string * string) option ref = ref None
let compare_tolerance : float option ref = ref None

let () =
  let rec parse acc = function
    | [] -> List.rev acc
    | "--compare" :: old_f :: new_f :: rest ->
      compare_paths := Some (old_f, new_f);
      parse acc rest
    | "--tolerance" :: t :: rest ->
      (match float_of_string_opt t with
      | Some x when x >= 0.0 -> compare_tolerance := Some x
      | _ -> failwith (Printf.sprintf "bench: bad --tolerance %S" t));
      parse acc rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some j when j >= 1 -> jobs := j
      | _ -> failwith (Printf.sprintf "bench: bad --jobs %S" n));
      parse acc rest
    | "--no-cache" :: rest ->
      use_cache := false;
      parse acc rest
    | "--check" :: rest ->
      check_artifacts := true;
      parse acc rest
    | "--cache" :: f :: rest ->
      cache_file := f;
      parse acc rest
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  (match !compare_paths with
  | Some (baseline_path, candidate_path) ->
    run_compare ~tolerance:!compare_tolerance ~baseline_path ~candidate_path
  | None -> ());
  if !jobs > 1 then pool := Some (Exec.Pool.create ~domains:!jobs ());
  let json_mode = List.mem "--json" args in
  let names = List.filter (fun a -> a <> "--json") args in
  if json_mode then begin
    let cache =
      if !use_cache then Some (Exec.Cache.create ~path:!cache_file ())
      else None
    in
    let requested =
      match names with [] -> List.map fst json_suites | ns -> ns
    in
    List.iter
      (fun name ->
        match List.assoc_opt name json_suites with
        | Some rows_of ->
          let cache =
            if List.mem name uncached_suites then None else cache
          in
          write_bench_json cache name rows_of;
          if !check_artifacts then
            check_bench_json (Printf.sprintf "BENCH_%s.json" name)
        | None ->
          Printf.printf "unknown suite %S; available: %s\n" name
            (String.concat ", " (List.map fst json_suites)))
      requested;
    match cache with Some c -> Exec.Cache.save c | None -> ()
  end
  else begin
    let requested =
      match names with [] -> List.map fst artifacts | ns -> ns
    in
    Printf.printf "TileLink reproduction benchmarks — %s, %d ranks\n"
      spec.Spec.gpu.Spec.gpu_name world;
    List.iter
      (fun name ->
        match List.assoc_opt name artifacts with
        | Some f ->
          let t0 = Unix.gettimeofday () in
          f ();
          Printf.printf "[%s done in %.1fs]\n%!" name
            (Unix.gettimeofday () -. t0)
        | None ->
          Printf.printf "unknown artifact %S; available: %s\n" name
            (String.concat ", " (List.map fst artifacts)))
      requested
  end
