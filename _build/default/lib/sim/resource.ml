(* Counted resource (semaphore) with FIFO admission.

   Models pools of identical execution units: streaming multiprocessors
   of a GPU, DMA copy-engine channels, host threads.  Acquisition order
   is strictly FIFO so the simulator stays deterministic and no waiter
   starves. *)

type waiter = { amount : int; resume : unit -> unit }

type t = {
  name : string;
  capacity : int;
  mutable available : int;
  waiting : waiter Queue.t;
  mutable busy_integral : float;   (* ∫ (capacity - available) dt *)
  mutable last_update : float;
  engine : Engine.t;
}

let create engine ~name ~capacity =
  if capacity <= 0 then invalid_arg "Resource.create: capacity must be > 0";
  {
    name;
    capacity;
    available = capacity;
    waiting = Queue.create ();
    busy_integral = 0.0;
    last_update = 0.0;
    engine;
  }

let name t = t.name
let capacity t = t.capacity
let available t = t.available
let in_use t = t.capacity - t.available
let queue_length t = Queue.length t.waiting

let account t =
  let now = Engine.now t.engine in
  t.busy_integral <-
    t.busy_integral +. (float_of_int (in_use t) *. (now -. t.last_update));
  t.last_update <- now

let busy_time t =
  account t;
  t.busy_integral

let utilization t ~horizon =
  if horizon <= 0.0 then 0.0
  else busy_time t /. (float_of_int t.capacity *. horizon)

(* Grant the head waiter if it fits.  FIFO: a large request at the head
   blocks smaller ones behind it (no barging), mirroring how a kernel
   waiting for a full wave of SMs holds the launch queue. *)
let rec drain t =
  match Queue.peek_opt t.waiting with
  | Some w when w.amount <= t.available ->
    ignore (Queue.pop t.waiting);
    account t;
    t.available <- t.available - w.amount;
    w.resume ();
    drain t
  | _ -> ()

let acquire t amount =
  if amount <= 0 then invalid_arg "Resource.acquire: amount must be > 0";
  if amount > t.capacity then
    invalid_arg
      (Printf.sprintf "Resource.acquire: %d exceeds capacity %d of %s" amount
         t.capacity t.name);
  if Queue.is_empty t.waiting && amount <= t.available then begin
    account t;
    t.available <- t.available - amount
  end
  else
    Process.suspend (fun resume ->
        Queue.push { amount; resume } t.waiting)

let release t amount =
  if amount <= 0 then invalid_arg "Resource.release: amount must be > 0";
  account t;
  t.available <- t.available + amount;
  if t.available > t.capacity then
    invalid_arg
      (Printf.sprintf "Resource.release: %s over capacity" t.name);
  drain t

let use t amount f =
  acquire t amount;
  Fun.protect ~finally:(fun () -> release t amount) f
