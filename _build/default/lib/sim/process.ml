(* Direct-style simulation processes on top of OCaml 5 effects.

   A process is a plain [unit -> unit] function that may perform the
   effects below.  [spawn] installs a deep handler that converts each
   effect into event-queue bookings, so process code reads sequentially
   while the engine interleaves many of them on the virtual clock. *)

type _ Effect.t +=
  | Wait : float -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let wait dt =
  if dt < 0.0 then invalid_arg "Process.wait: negative duration";
  Effect.perform (Wait dt)

let suspend register = Effect.perform (Suspend register)

let yield () = Effect.perform (Wait 0.0)

let spawn ?(at = 0.0) engine body =
  Engine.process_started engine;
  let handler =
    {
      Effect.Deep.retc =
        (fun () -> Engine.process_finished engine);
      exnc = (fun exn -> Engine.process_finished engine; raise exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Wait dt ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                Engine.schedule engine ~delay:dt (fun () ->
                    Effect.Deep.continue k ()))
          | Suspend register ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                Engine.process_blocked engine;
                let resumed = ref false in
                register (fun () ->
                    if !resumed then
                      invalid_arg "Process: resume called twice";
                    resumed := true;
                    Engine.process_unblocked engine;
                    Engine.schedule engine ~delay:0.0 (fun () ->
                        Effect.Deep.continue k ())))
          | _ -> None);
    }
  in
  Engine.schedule engine ~delay:at (fun () ->
      Effect.Deep.match_with body () handler)

(* A completion latch: processes can join on the termination of a group
   of other processes. *)
module Join = struct
  type t = {
    mutable remaining : int;
    mutable waiters : (unit -> unit) list;
  }

  let create n =
    if n < 0 then invalid_arg "Join.create: negative count";
    { remaining = n; waiters = [] }

  let done_one t =
    if t.remaining <= 0 then invalid_arg "Join.done_one: already complete";
    t.remaining <- t.remaining - 1;
    if t.remaining = 0 then begin
      let ws = List.rev t.waiters in
      t.waiters <- [];
      List.iter (fun w -> w ()) ws
    end

  let wait t =
    if t.remaining > 0 then
      suspend (fun resume -> t.waiters <- resume :: t.waiters)
end

let spawn_all ?(at = 0.0) engine bodies =
  let join = Join.create (List.length bodies) in
  List.iter
    (fun body ->
      spawn ~at engine (fun () ->
          body ();
          Join.done_one join))
    bodies;
  join
