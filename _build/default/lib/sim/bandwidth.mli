(** Bandwidth server: FIFO link with fixed rate and latency.

    A transfer holds one of the link's [streams] for
    [latency_us + bytes / rate]. *)

type t

val create :
  Engine.t ->
  name:string ->
  gbps:float ->
  latency_us:float ->
  ?streams:int ->
  unit ->
  t

val name : t -> string
val bytes_moved : t -> float
val transfer_count : t -> int
val busy_time : t -> float

val duration : t -> bytes:float -> float
(** Service time of a transfer, excluding queueing. *)

val transfer : t -> bytes:float -> unit
(** Blocking transfer; must run inside a process. *)
