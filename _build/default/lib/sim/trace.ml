(* Timeline tracing.

   Every interesting activity (a tile's GEMM, a DMA copy, a barrier
   wait) records a span: which rank, which hardware lane, a label, and
   the [t0, t1] interval.  Spans feed the overlap-ratio computation of
   Figure 10 and the ASCII timelines printed by the CLI. *)

type lane =
  | Compute_sm
  | Comm_sm
  | Dma
  | Host
  | Link
  | Wait

let lane_to_string = function
  | Compute_sm -> "compute-sm"
  | Comm_sm -> "comm-sm"
  | Dma -> "dma"
  | Host -> "host"
  | Link -> "link"
  | Wait -> "wait"

type span = {
  rank : int;
  lane : lane;
  label : string;
  t0 : float;
  t1 : float;
}

type t = { mutable spans : span list; mutable enabled : bool }

let create ?(enabled = true) () = { spans = []; enabled }

let enabled t = t.enabled
let set_enabled t flag = t.enabled <- flag

let add t ~rank ~lane ~label ~t0 ~t1 =
  if t.enabled then begin
    if t1 < t0 then invalid_arg "Trace.add: span ends before it starts";
    t.spans <- { rank; lane; label; t0; t1 } :: t.spans
  end

let spans t = List.rev t.spans

let clear t = t.spans <- []

let duration t =
  List.fold_left (fun acc s -> Float.max acc s.t1) 0.0 t.spans

(* Total time covered by at least one span matching [pred]: merge the
   sorted intervals.  Used for overlap-ratio accounting where spans on
   the same lane may abut or overlap. *)
let covered_time ?(pred = fun _ -> true) t =
  let intervals =
    List.filter pred t.spans
    |> List.map (fun s -> (s.t0, s.t1))
    |> List.sort compare
  in
  let rec merge acc = function
    | [] -> acc
    | (a, b) :: rest -> (
      match acc with
      | (a0, b0) :: acc_rest when a <= b0 ->
        merge ((a0, Float.max b b0) :: acc_rest) rest
      | _ -> merge ((a, b) :: acc) rest)
  in
  merge [] intervals
  |> List.fold_left (fun sum (a, b) -> sum +. (b -. a)) 0.0

let busy_time ?pred t =
  match pred with
  | None -> covered_time t
  | Some p -> covered_time ~pred:p t

(* Chrome tracing format (chrome://tracing or https://ui.perfetto.dev):
   one complete event per span, rank as process, lane as thread. *)
let to_chrome_json t =
  let escape label =
    String.concat ""
      (List.map
         (fun c ->
           match c with
           | '"' -> "\\\""
           | '\\' -> "\\\\"
           | c -> String.make 1 c)
         (List.init (String.length label) (String.get label)))
  in
  let event s =
    Printf.sprintf
      {|{"name":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":"%s"}|}
      (escape s.label) s.t0 (s.t1 -. s.t0) s.rank (lane_to_string s.lane)
  in
  "[" ^ String.concat ",\n" (List.map event (spans t)) ^ "]\n"

(* Render a coarse ASCII timeline: one row per (rank, lane), [width]
   columns spanning [0, duration]. *)
let render ?(width = 72) t =
  let total = duration t in
  if total <= 0.0 then "(empty trace)"
  else begin
    let rows = Hashtbl.create 16 in
    let keys = ref [] in
    List.iter
      (fun s ->
        let key = (s.rank, s.lane) in
        if not (Hashtbl.mem rows key) then begin
          Hashtbl.add rows key (Bytes.make width '.');
          keys := key :: !keys
        end;
        let row = Hashtbl.find rows key in
        let c0 =
          int_of_float (s.t0 /. total *. float_of_int (width - 1))
        in
        let c1 =
          int_of_float (s.t1 /. total *. float_of_int (width - 1))
        in
        let mark =
          match s.lane with
          | Compute_sm -> '#'
          | Comm_sm -> '+'
          | Dma -> '='
          | Host -> 'h'
          | Link -> '-'
          | Wait -> 'w'
        in
        for c = c0 to min c1 (width - 1) do
          Bytes.set row c mark
        done)
      (spans t);
    let buffer = Buffer.create 256 in
    List.iter
      (fun ((rank, lane) as key) ->
        Buffer.add_string buffer
          (Printf.sprintf "r%d %-10s |%s|\n" rank (lane_to_string lane)
             (Bytes.to_string (Hashtbl.find rows key))))
      (List.sort compare !keys);
    Buffer.add_string buffer
      (Printf.sprintf "total: %.1f us (# compute, = dma, + comm-sm, - link)"
         total);
    Buffer.contents buffer
  end
