(** Small numeric helpers shared by benches and reports. *)

val mean : float list -> float
val geomean : float list -> float
val minimum : float list -> float
val maximum : float list -> float
val stddev : float list -> float
val percent_of : base:float -> float -> float

val speedup : baseline:float -> candidate:float -> float
(** [baseline /. candidate]; > 1 means candidate is faster. *)
