(** Counted resource (semaphore) with FIFO admission.

    Models pools of identical execution units (SMs, DMA channels).
    {!acquire} blocks the calling process until the request fits. *)

type t

val create : Engine.t -> name:string -> capacity:int -> t
val name : t -> string
val capacity : t -> int
val available : t -> int
val in_use : t -> int
val queue_length : t -> int

val acquire : t -> int -> unit
(** Block (FIFO, no barging) until [amount] units are free, then take
    them.  Must run inside a process. *)

val release : t -> int -> unit

val use : t -> int -> (unit -> 'a) -> 'a
(** [use t n f] acquires [n], runs [f], releases even on exception. *)

val busy_time : t -> float
(** ∫ in_use dt since creation, in unit·µs. *)

val utilization : t -> horizon:float -> float
(** Fraction of capacity·horizon that was busy. *)
