(* Waitable monotonic counter.

   This is the simulator-level carrier for barrier channels: notify
   primitives add to a counter with release semantics, wait primitives
   park until the counter reaches a threshold.  This is the GPU's
   [red.release] / [ld.global.acquire] spin loop collapsed into an
   event subscription. *)

type waiter = { threshold : int; resume : unit -> unit }

type t = {
  name : string;
  mutable value : int;
  mutable waiters : waiter list;
  mutable notify_count : int;
}

let create ?(name = "counter") () =
  { name; value = 0; waiters = []; notify_count = 0 }

let name t = t.name
let value t = t.value
let notify_count t = t.notify_count

let wake t =
  let ready, still =
    List.partition (fun w -> t.value >= w.threshold) t.waiters
  in
  t.waiters <- still;
  (* Wake in registration order: the list is LIFO, so reverse. *)
  List.iter (fun w -> w.resume ()) (List.rev ready)

let add t delta =
  if delta <= 0 then invalid_arg "Counter.add: delta must be > 0";
  t.value <- t.value + delta;
  t.notify_count <- t.notify_count + 1;
  wake t

let set_at_least t target =
  if target > t.value then begin
    t.value <- target;
    t.notify_count <- t.notify_count + 1;
    wake t
  end

let await_ge t threshold =
  if t.value < threshold then
    Process.suspend (fun resume ->
        t.waiters <- { threshold; resume } :: t.waiters)

let reset t =
  if t.waiters <> [] then invalid_arg "Counter.reset: waiters present";
  t.value <- 0;
  t.notify_count <- 0
