(** Direct-style simulation processes built on OCaml 5 effects.

    Code inside a spawned process calls {!wait} / {!suspend} and reads
    sequentially; the engine interleaves processes on virtual time. *)

val wait : float -> unit
(** Advance this process's virtual time by the given duration (µs).
    Must be called from within a spawned process. *)

val yield : unit -> unit
(** Re-enqueue at the current instant, letting same-time events run. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] parks the process and hands a one-shot [resume]
    callback to [register]; the process continues when it is called. *)

val spawn : ?at:float -> Engine.t -> (unit -> unit) -> unit
(** Start a new process at time [now + at]. *)

module Join : sig
  type t

  val create : int -> t
  val done_one : t -> unit
  val wait : t -> unit
  (** Block the calling process until the latch reaches zero. *)
end

val spawn_all : ?at:float -> Engine.t -> (unit -> unit) list -> Join.t
(** Spawn every body and return a latch that completes when all do. *)
