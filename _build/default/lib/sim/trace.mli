(** Timeline tracing: spans of activity per (rank, lane).

    Feeds overlap-ratio computations and ASCII timeline rendering. *)

type lane =
  | Compute_sm
  | Comm_sm
  | Dma
  | Host
  | Link
  | Wait

val lane_to_string : lane -> string

type span = {
  rank : int;
  lane : lane;
  label : string;
  t0 : float;
  t1 : float;
}

type t

val create : ?enabled:bool -> unit -> t
val enabled : t -> bool
val set_enabled : t -> bool -> unit

val add :
  t -> rank:int -> lane:lane -> label:string -> t0:float -> t1:float -> unit

val spans : t -> span list
val clear : t -> unit

val duration : t -> float
(** Latest span end time. *)

val busy_time : ?pred:(span -> bool) -> t -> float
(** Length of the union of intervals whose span satisfies [pred]. *)

val render : ?width:int -> t -> string
(** Coarse ASCII timeline, one row per (rank, lane). *)

val to_chrome_json : t -> string
(** Chrome tracing format (load in chrome://tracing or Perfetto):
    ranks as processes, lanes as threads. *)
