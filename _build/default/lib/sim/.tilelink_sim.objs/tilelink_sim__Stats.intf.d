lib/sim/stats.mli:
