lib/sim/trace.ml: Buffer Bytes Float Hashtbl List Printf String
