lib/sim/pqueue.mli:
