lib/sim/resource.ml: Engine Fun Printf Process Queue
