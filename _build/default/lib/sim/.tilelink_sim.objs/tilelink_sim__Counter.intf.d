lib/sim/counter.mli:
