lib/sim/trace.mli:
