lib/sim/bandwidth.mli: Engine
