lib/sim/engine.mli:
