lib/sim/bandwidth.ml: Process Resource
