lib/sim/counter.ml: List Process
