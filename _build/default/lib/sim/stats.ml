(* Small numeric helpers shared by benches and reports. *)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value"
          else acc +. log x)
        0.0 xs
    in
    exp (log_sum /. float_of_int (List.length xs))

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty"
  | x :: xs -> List.fold_left Float.min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty"
  | x :: xs -> List.fold_left Float.max x xs

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
      /. float_of_int (List.length xs - 1)
    in
    sqrt var

let percent_of ~base x = if base = 0.0 then 0.0 else x /. base *. 100.0

let speedup ~baseline ~candidate =
  if candidate <= 0.0 then invalid_arg "Stats.speedup: non-positive time";
  baseline /. candidate
