(** Waitable monotonic counter — the simulator carrier for barrier
    channels (release-store / acquire-load spin loops). *)

type t

val create : ?name:string -> unit -> t
val name : t -> string
val value : t -> int
val notify_count : t -> int

val add : t -> int -> unit
(** Increment and wake satisfied waiters. *)

val set_at_least : t -> int -> unit
(** Raise the value to at least [target] (idempotent notify). *)

val await_ge : t -> int -> unit
(** Park the calling process until [value >= threshold]. *)

val reset : t -> unit
(** Reset to zero; fails if any process is waiting. *)
