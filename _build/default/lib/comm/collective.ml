(* Operator-centric collectives — the NCCL-analog substrate.

   These are the communication primitives of the *baselines*: whole-
   operator AllGather / ReduceScatter / AllReduce / All2All that
   synchronize the full system on entry and exit (the coarse-grained
   SPMD synchronization §2.1 blames for idle compute units).

   Each collective is created once (shared synchronization state) and
   then every rank calls [run_rank] from inside its own simulation
   process.  Timing comes from the cluster's links; the data-level
   variants at the bottom are pure tensor functions used by tests. *)

open Tilelink_sim
open Tilelink_machine

type algo = Ring | Mesh

let algo_to_string = function Ring -> "ring" | Mesh -> "mesh"

type kind =
  | Allgather
  | Reducescatter
  | Allreduce
  | All2all

let kind_to_string = function
  | Allgather -> "allgather"
  | Reducescatter -> "reducescatter"
  | Allreduce -> "allreduce"
  | All2all -> "all2all"

type t = {
  cluster : Cluster.t;
  kind : kind;
  algo : algo;
  bytes_per_shard : float;
  (* step counters: received.(rank) counts chunks that have landed on
     [rank]; used for ring-neighbor synchronization. *)
  received : Counter.t array;
  entry : Counter.t;  (* entry barrier *)
  exit_ : Counter.t;  (* exit barrier *)
}

let create cluster ~kind ~algo ~bytes_per_shard =
  let world = Cluster.world_size cluster in
  {
    cluster;
    kind;
    algo;
    bytes_per_shard;
    received = Array.init world (fun i ->
        Counter.create ~name:(Printf.sprintf "recv%d" i) ());
    entry = Counter.create ~name:"entry" ();
    exit_ = Counter.create ~name:"exit" ();
  }

let world t = Cluster.world_size t.cluster

(* System-wide barrier: arrive, then wait for everyone. *)
let barrier counter ~world =
  Counter.add counter 1;
  Counter.await_ge counter world

(* Ring step pattern shared by AllGather and ReduceScatter: at step s,
   send one shard to the next rank and wait to have received s+1
   chunks from the previous one. *)
let ring_steps t ~rank ~per_step_local_cost =
  let w = world t in
  let next = (rank + 1) mod w in
  for step = 0 to w - 2 do
    Cluster.transfer t.cluster ~src:rank ~dst:next
      ~bytes:t.bytes_per_shard;
    Counter.add t.received.(next) 1;
    Counter.await_ge t.received.(rank) (step + 1);
    per_step_local_cost ()
  done

(* Full-mesh: pull every remote shard; the per-source egress servers
   serialize conflicting transfers. *)
let mesh_pull t ~rank ~per_shard_local_cost =
  let w = world t in
  let engine = Cluster.engine t.cluster in
  let join =
    Process.spawn_all engine
      (List.filter_map
         (fun src ->
           if src = rank then None
           else
             Some
               (fun () ->
                 Cluster.transfer t.cluster ~src ~dst:rank
                   ~bytes:t.bytes_per_shard;
                 per_shard_local_cost ()))
         (List.init w (fun i -> i)))
  in
  Process.Join.wait join

(* Local reduction of one shard (read two operands, write one): a
   memory-bound pass using the whole chip (collectives run alone). *)
let reduce_cost t () =
  let spec = Cluster.spec t.cluster in
  let duration =
    Cost.memory_pass_time spec ~sms:spec.Spec.gpu.num_sms
      ~bytes:(3.0 *. t.bytes_per_shard)
  in
  Process.wait duration

let no_cost () = ()

(* Run rank [rank]'s part; call from inside a simulation process. *)
let run_rank t ~rank =
  let spec = Cluster.spec t.cluster in
  let w = world t in
  let trace = Cluster.trace t.cluster in
  let t0 = Cluster.now t.cluster in
  (* Operator-centric entry: launch + system synchronization. *)
  Process.wait spec.Spec.overheads.collective_setup;
  barrier t.entry ~world:w;
  (match (t.kind, t.algo) with
  | Allgather, Ring -> ring_steps t ~rank ~per_step_local_cost:no_cost
  | Allgather, Mesh -> mesh_pull t ~rank ~per_shard_local_cost:no_cost
  | Reducescatter, Ring ->
    ring_steps t ~rank ~per_step_local_cost:(reduce_cost t)
  | Reducescatter, Mesh ->
    mesh_pull t ~rank ~per_shard_local_cost:(reduce_cost t)
  | Allreduce, algo ->
    (* reduce-scatter then all-gather. *)
    (match algo with
    | Ring -> ring_steps t ~rank ~per_step_local_cost:(reduce_cost t)
    | Mesh -> mesh_pull t ~rank ~per_shard_local_cost:(reduce_cost t));
    (match algo with
    | Ring -> ring_steps t ~rank ~per_step_local_cost:no_cost
    | Mesh -> mesh_pull t ~rank ~per_shard_local_cost:no_cost)
  | All2all, _ ->
    (* Every rank sends a distinct 1/w slice to every other rank. *)
    let engine = Cluster.engine t.cluster in
    let join =
      Process.spawn_all engine
        (List.filter_map
           (fun dst ->
             if dst = rank then None
             else
               Some
                 (fun () ->
                   Cluster.transfer t.cluster ~src:rank ~dst
                     ~bytes:(t.bytes_per_shard /. float_of_int w)))
           (List.init w (fun i -> i)))
    in
    Process.Join.wait join);
  barrier t.exit_ ~world:w;
  Process.wait spec.Spec.overheads.host_sync;
  Trace.add trace ~rank ~lane:Trace.Link
    ~label:(Printf.sprintf "%s-%s" (kind_to_string t.kind) (algo_to_string t.algo))
    ~t0 ~t1:(Cluster.now t.cluster)

(* Convenience: simulate the collective alone and return its time. *)
let standalone_time spec ~world_size ~kind ~algo ~bytes_per_shard =
  let cluster = Cluster.create spec ~world_size in
  let op = create cluster ~kind ~algo ~bytes_per_shard in
  let make rank () = run_rank op ~rank in
  Cluster.run_ranks cluster (Array.init world_size make)

(* ------------------------------------------------------------------ *)
(* Data-level collectives (pure; used to validate semantics and to     *)
(* build references for baselines).                                    *)
(* ------------------------------------------------------------------ *)

open Tilelink_tensor

let allgather_data shards = Tensor.concat_rows shards

let reduce_data tensors =
  match tensors with
  | [] -> invalid_arg "Collective.reduce_data: empty"
  | first :: rest -> List.fold_left Tensor.add first rest

let reducescatter_data tensors =
  let summed = reduce_data tensors in
  let w = List.length tensors in
  let rows = Tensor.rows summed in
  if rows mod w <> 0 then
    invalid_arg "Collective.reducescatter_data: rows not divisible";
  let per = rows / w in
  List.init w (fun r ->
      Tensor.row_slice summed ~lo:(r * per) ~hi:((r + 1) * per))

let allreduce_data tensors =
  let summed = reduce_data tensors in
  List.map (fun _ -> Tensor.copy summed) tensors

let all2all_data tensors =
  let w = List.length tensors in
  List.iter
    (fun t ->
      if Tensor.rows t mod w <> 0 then
        invalid_arg "Collective.all2all_data: rows not divisible")
    tensors;
  List.init w (fun dst ->
      Tensor.concat_rows
        (List.map
           (fun src_tensor ->
             let per = Tensor.rows src_tensor / w in
             Tensor.row_slice src_tensor ~lo:(dst * per) ~hi:((dst + 1) * per))
           tensors))
