(** Operator-centric collectives (the NCCL-analog substrate for
    baselines): whole-operator AllGather / ReduceScatter / AllReduce /
    All2All with system-wide entry/exit synchronization. *)

open Tilelink_machine

type algo = Ring | Mesh

val algo_to_string : algo -> string

type kind =
  | Allgather
  | Reducescatter
  | Allreduce
  | All2all

val kind_to_string : kind -> string

type t

val create :
  Cluster.t -> kind:kind -> algo:algo -> bytes_per_shard:float -> t
(** Shared synchronization state for one collective invocation. *)

val run_rank : t -> rank:int -> unit
(** Execute rank's part; call from inside a simulation process.  Every
    rank of the cluster must participate or the run deadlocks. *)

val standalone_time :
  Spec.t ->
  world_size:int ->
  kind:kind ->
  algo:algo ->
  bytes_per_shard:float ->
  float
(** Simulate the collective alone and return its makespan (µs). *)

(** {2 Pure data-level semantics} *)

open Tilelink_tensor

val allgather_data : Tensor.t list -> Tensor.t
val reduce_data : Tensor.t list -> Tensor.t
val reducescatter_data : Tensor.t list -> Tensor.t list
val allreduce_data : Tensor.t list -> Tensor.t list
val all2all_data : Tensor.t list -> Tensor.t list
