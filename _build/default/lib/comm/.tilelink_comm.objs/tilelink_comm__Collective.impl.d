lib/comm/collective.ml: Array Cluster Cost Counter List Printf Process Spec Tensor Tilelink_machine Tilelink_sim Tilelink_tensor Trace
