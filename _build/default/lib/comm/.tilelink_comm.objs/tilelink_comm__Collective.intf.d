lib/comm/collective.mli: Cluster Spec Tensor Tilelink_machine Tilelink_tensor
