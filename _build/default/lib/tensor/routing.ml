(* MoE token routing.

   Dynamic routing decides, per token, which [topk] experts process it.
   The result both drives the reference MoE computation and fills the
   dynamic lookup tables (f_S/f_R/f_C) of TileLink's backend mapping. *)

type t = {
  num_tokens : int;
  num_experts : int;
  topk : int;
  expert_ids : int array array;   (* [token] -> topk expert ids *)
  gate_weights : float array array; (* [token] -> softmaxed topk weights *)
}

let num_tokens t = t.num_tokens
let num_experts t = t.num_experts
let topk t = t.topk
let experts_of_token t token = t.expert_ids.(token)
let weights_of_token t token = t.gate_weights.(token)

(* Route from gate logits [tokens, experts]. *)
let of_logits logits ~topk =
  let num_tokens = Tensor.rows logits and num_experts = Tensor.cols logits in
  if topk <= 0 || topk > num_experts then invalid_arg "Routing.of_logits";
  let expert_ids = Nn.topk logits ~k:topk in
  let gate_weights =
    Array.init num_tokens (fun token ->
        let raw =
          Array.map
            (fun e -> Tensor.get2 logits token e)
            expert_ids.(token)
        in
        let m = Array.fold_left Float.max neg_infinity raw in
        let exps = Array.map (fun x -> exp (x -. m)) raw in
        let sum = Array.fold_left ( +. ) 0.0 exps in
        Array.map (fun e -> e /. sum) exps)
  in
  { num_tokens; num_experts; topk; expert_ids; gate_weights }

let random ~seed ~num_tokens ~num_experts ~topk =
  let logits =
    Tensor.random ~seed (Shape.of_list [ num_tokens; num_experts ])
  in
  of_logits logits ~topk

(* Tokens assigned to each expert, in (token, slot) order where slot is
   the position among the token's topk choices.  This is the "sorted by
   expert" layout that grouped GEMM consumes. *)
let tokens_of_expert t expert =
  let acc = ref [] in
  for token = t.num_tokens - 1 downto 0 do
    Array.iteri
      (fun slot e -> if e = expert then acc := (token, slot) :: !acc)
      t.expert_ids.(token)
  done;
  !acc

let expert_load t =
  let load = Array.make t.num_experts 0 in
  Array.iter
    (fun ids -> Array.iter (fun e -> load.(e) <- load.(e) + 1) ids)
    t.expert_ids;
  load

(* Flat permutation view: entry i of the permuted activation matrix is
   (expert, token, slot), grouped by expert.  [segment_offsets] gives
   each expert's start row in the permuted matrix (length E+1). *)
type permutation = {
  entries : (int * int * int) array; (* expert, token, slot *)
  segment_offsets : int array;
}

let permutation t =
  let buffer = ref [] in
  for expert = t.num_experts - 1 downto 0 do
    List.iter
      (fun (token, slot) -> buffer := (expert, token, slot) :: !buffer)
      (List.rev (tokens_of_expert t expert))
  done;
  let entries = Array.of_list !buffer in
  let segment_offsets = Array.make (t.num_experts + 1) 0 in
  let load = expert_load t in
  for e = 0 to t.num_experts - 1 do
    segment_offsets.(e + 1) <- segment_offsets.(e) + load.(e)
  done;
  { entries; segment_offsets }
