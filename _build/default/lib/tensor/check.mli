(** Approximate tensor comparison for correctness tests. *)

type report = {
  max_abs_err : float;
  max_rel_err : float;
  worst_index : int array;
  within : bool;
}

val compare : ?atol:float -> ?rtol:float -> Tensor.t -> Tensor.t -> report
(** [compare expected actual]; [within] holds when every element obeys
    [|e - a| <= atol + rtol * |e|]. *)

val close : ?atol:float -> ?rtol:float -> Tensor.t -> Tensor.t -> bool
val pp_report : Format.formatter -> report -> unit
