(* Dense linear algebra: GEMM, batched GEMM, grouped GEMM.

   These are the reference kernels that both sides of every correctness
   test share: the overlapped tile programs must reproduce exactly what
   these plain loops compute. *)

let gemm ?(accumulate = false) ?(out : Tensor.t option) a b =
  let m = Tensor.rows a and k = Tensor.cols a in
  if Tensor.rows b <> k then invalid_arg "Linalg.gemm: inner dim mismatch";
  let n = Tensor.cols b in
  let c =
    match out with
    | Some c ->
      if Tensor.rows c <> m || Tensor.cols c <> n then
        invalid_arg "Linalg.gemm: output shape mismatch";
      c
    | None -> Tensor.zeros (Shape.of_list [ m; n ])
  in
  let a_data = Tensor.data a
  and b_data = Tensor.data b
  and c_data = Tensor.data c in
  (* i-k-j loop order keeps the inner loop streaming over rows of b. *)
  for i = 0 to m - 1 do
    if not accumulate then
      Array.fill c_data (i * n) n 0.0;
    for kk = 0 to k - 1 do
      let aik = a_data.((i * k) + kk) in
      if aik <> 0.0 then begin
        let b_row = kk * n in
        let c_row = i * n in
        for j = 0 to n - 1 do
          c_data.(c_row + j) <-
            c_data.(c_row + j) +. (aik *. b_data.(b_row + j))
        done
      end
    done
  done;
  c

(* C[g] = A[g] * B[g] where the groups may have different row counts
   but share K and N — the Group GEMM of MoE layers. *)
let group_gemm groups =
  List.map (fun (a, b) -> gemm a b) groups

(* Batched GEMM over a leading batch dimension: a : [B, M, K],
   b : [B, K, N] -> [B, M, N]. *)
let batch_gemm a b =
  let sa = Tensor.shape a and sb = Tensor.shape b in
  if Shape.rank sa <> 3 || Shape.rank sb <> 3 then
    invalid_arg "Linalg.batch_gemm: rank <> 3";
  let batches = Shape.dim sa 0 in
  if Shape.dim sb 0 <> batches then
    invalid_arg "Linalg.batch_gemm: batch mismatch";
  let m = Shape.dim sa 1 and k = Shape.dim sa 2 in
  if Shape.dim sb 1 <> k then
    invalid_arg "Linalg.batch_gemm: inner dim mismatch";
  let n = Shape.dim sb 2 in
  let out = Tensor.zeros (Shape.of_list [ batches; m; n ]) in
  let slice_2d t batch rows cols =
    let copy = Tensor.zeros (Shape.of_list [ rows; cols ]) in
    Array.blit (Tensor.data t) (batch * rows * cols) (Tensor.data copy) 0
      (rows * cols);
    copy
  in
  for batch = 0 to batches - 1 do
    let c = gemm (slice_2d a batch m k) (slice_2d b batch k n) in
    Array.blit (Tensor.data c) 0 (Tensor.data out) (batch * m * n) (m * n)
  done;
  out

let matvec a x =
  let m = Tensor.rows a and k = Tensor.cols a in
  if Tensor.numel x <> k then invalid_arg "Linalg.matvec: size mismatch";
  let a_data = Tensor.data a and x_data = Tensor.data x in
  Tensor.of_array (Shape.of_list [ m ])
    (Array.init m (fun i ->
         let acc = ref 0.0 in
         for kk = 0 to k - 1 do
           acc := !acc +. (a_data.((i * k) + kk) *. x_data.(kk))
         done;
         !acc))

(* FLOP counts used by the cost model; kept next to the kernels so the
   two can never drift apart. *)
let gemm_flops ~m ~n ~k = 2.0 *. float_of_int m *. float_of_int n *. float_of_int k

let attention_flops ~batch_heads ~q_len ~kv_len ~head_dim =
  (* QK^T and PV, both [q_len, kv_len] x head_dim. *)
  4.0
  *. float_of_int batch_heads
  *. float_of_int q_len
  *. float_of_int kv_len
  *. float_of_int head_dim
