(** Neural-network reference operators. *)

val silu : float -> float
val gelu : float -> float

type activation = Silu | Gelu

val apply_activation : activation -> float -> float

val gated_activation : activation -> Tensor.t -> Tensor.t
(** [gated_activation act gate_up] with [gate_up : [m, 2i]] packing
    gate and up halves side by side; returns [act(gate) * up : [m,i]]. *)

val softmax_rows : Tensor.t -> Tensor.t

val topk : Tensor.t -> k:int -> int array array
(** Per-row top-k column indices, ties broken toward lower index. *)

type mask = No_mask | Causal of { q_offset : int }

val attention : ?mask:mask -> Tensor.t -> Tensor.t -> Tensor.t -> Tensor.t
(** Monolithic scaled-dot-product attention for one head:
    [q:[m,d]] [k:[s,d]] [v:[s,d]] -> [[m,d]]. *)

(** Online-softmax state for blockwise (flash) attention; KV blocks may
    arrive in any order. *)
module Flash : sig
  type t

  val create : ?mask:mask -> m:int -> d:int -> unit -> t
  val update : t -> Tensor.t -> Tensor.t -> Tensor.t -> kv_offset:int -> unit
  val finish : t -> Tensor.t
end

val flash_attention :
  ?mask:mask -> ?block:int -> Tensor.t -> Tensor.t -> Tensor.t -> Tensor.t
