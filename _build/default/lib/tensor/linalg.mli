(** Dense linear algebra reference kernels. *)

val gemm : ?accumulate:bool -> ?out:Tensor.t -> Tensor.t -> Tensor.t -> Tensor.t
(** [gemm a b] with [a : [m,k]], [b : [k,n]].  With [~out] writes (or
    with [~accumulate:true] adds) into the given tensor. *)

val group_gemm : (Tensor.t * Tensor.t) list -> Tensor.t list
(** Per-group GEMMs with possibly different row counts (MoE). *)

val batch_gemm : Tensor.t -> Tensor.t -> Tensor.t
(** [a : [B,M,K]], [b : [B,K,N]] -> [B,M,N]. *)

val matvec : Tensor.t -> Tensor.t -> Tensor.t

val gemm_flops : m:int -> n:int -> k:int -> float
val attention_flops :
  batch_heads:int -> q_len:int -> kv_len:int -> head_dim:int -> float
