(* Approximate tensor comparison for correctness tests. *)

type report = {
  max_abs_err : float;
  max_rel_err : float;
  worst_index : int array;
  within : bool;
}

let compare ?(atol = 1e-9) ?(rtol = 1e-6) expected actual =
  if not (Shape.equal (Tensor.shape expected) (Tensor.shape actual)) then
    invalid_arg
      (Printf.sprintf "Check.compare: shape mismatch %s vs %s"
         (Shape.to_string (Tensor.shape expected))
         (Shape.to_string (Tensor.shape actual)));
  let e = Tensor.data expected and a = Tensor.data actual in
  let max_abs = ref 0.0 and max_rel = ref 0.0 and worst = ref 0 in
  let within = ref true in
  Array.iteri
    (fun i ev ->
      let av = a.(i) in
      let abs_err = Float.abs (ev -. av) in
      let rel_err = abs_err /. Float.max (Float.abs ev) 1e-30 in
      if abs_err > !max_abs then begin
        max_abs := abs_err;
        worst := i
      end;
      if rel_err > !max_rel then max_rel := rel_err;
      if abs_err > atol +. (rtol *. Float.abs ev) then within := false)
    e;
  {
    max_abs_err = !max_abs;
    max_rel_err = !max_rel;
    worst_index = Shape.index_of_offset (Tensor.shape expected) !worst;
    within = !within;
  }

let close ?atol ?rtol expected actual =
  (compare ?atol ?rtol expected actual).within

let pp_report ppf r =
  Fmt.pf ppf "max_abs=%.3e max_rel=%.3e at %s %s" r.max_abs_err r.max_rel_err
    (Shape.to_string (Array.of_list (Array.to_list r.worst_index)))
    (if r.within then "(ok)" else "(MISMATCH)")
