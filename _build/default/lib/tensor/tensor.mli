(** Dense row-major float tensors with copying slices.

    Used by the functional executor at validation shapes; clarity over
    zero-copy. *)

type t

val create : Shape.t -> float -> t
val zeros : Shape.t -> t
val init : Shape.t -> (int array -> float) -> t
val of_array : Shape.t -> float array -> t
val shape : t -> Shape.t
val data : t -> float array
val numel : t -> int
val copy : t -> t
val get : t -> int array -> float
val set : t -> int array -> float -> unit
val get2 : t -> int -> int -> float
val set2 : t -> int -> int -> float -> unit
val fill : t -> float -> unit
val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : float -> t -> t
val add_inplace : t -> t -> unit
val blit : src:t -> dst:t -> unit
val sum : t -> float
val max_abs : t -> float

(** {2 2-D helpers} *)

val rows : t -> int
val cols : t -> int
val row_slice : t -> lo:int -> hi:int -> t
val set_row_slice : t -> lo:int -> t -> unit
val add_row_slice : t -> lo:int -> t -> unit
val col_slice : t -> lo:int -> hi:int -> t
val set_col_slice : t -> lo:int -> t -> unit
val block : t -> row_lo:int -> row_hi:int -> col_lo:int -> col_hi:int -> t
val set_block : t -> row_lo:int -> col_lo:int -> t -> unit
val add_block : t -> row_lo:int -> col_lo:int -> t -> unit
val concat_rows : t list -> t
val transpose : t -> t

val random : seed:int -> Shape.t -> t
(** Deterministic pseudo-random tensor in [-0.5, 0.5); identical for a
    given seed on every rank, run and machine. *)

val pp : Format.formatter -> t -> unit
