(** MoE token routing: per-token top-k expert assignment.

    Drives both the reference MoE computation and the dynamic lookup
    tables of TileLink's backend mapping. *)

type t

val num_tokens : t -> int
val num_experts : t -> int
val topk : t -> int
val experts_of_token : t -> int -> int array
val weights_of_token : t -> int -> float array

val of_logits : Tensor.t -> topk:int -> t
val random : seed:int -> num_tokens:int -> num_experts:int -> topk:int -> t

val tokens_of_expert : t -> int -> (int * int) list
(** Tokens routed to an expert as (token, slot) pairs in token order. *)

val expert_load : t -> int array

type permutation = {
  entries : (int * int * int) array;  (** (expert, token, slot), grouped by expert *)
  segment_offsets : int array;  (** expert start rows, length E+1 *)
}

val permutation : t -> permutation
