(* Tensor shapes: dimension lists with row-major stride arithmetic. *)

type t = int array

let of_list dims =
  List.iter
    (fun d -> if d < 0 then invalid_arg "Shape.of_list: negative dim")
    dims;
  Array.of_list dims

let to_list = Array.to_list
let rank (t : t) = Array.length t
let dim (t : t) i = t.(i)

let numel (t : t) = Array.fold_left ( * ) 1 t

let equal (a : t) (b : t) = a = b

let to_string (t : t) =
  "[" ^ String.concat "x" (Array.to_list (Array.map string_of_int t)) ^ "]"

(* Row-major strides: strides.(i) = product of dims after i. *)
let strides (t : t) =
  let n = rank t in
  let s = Array.make n 1 in
  for i = n - 2 downto 0 do
    s.(i) <- s.(i + 1) * t.(i + 1)
  done;
  s

let offset_of_index (t : t) (index : int array) =
  if Array.length index <> rank t then
    invalid_arg "Shape.offset_of_index: rank mismatch";
  let s = strides t in
  let off = ref 0 in
  Array.iteri
    (fun i x ->
      if x < 0 || x >= t.(i) then
        invalid_arg
          (Printf.sprintf "Shape.offset_of_index: index %d out of bound %d"
             x t.(i));
      off := !off + (x * s.(i)))
    index;
  !off

let index_of_offset (t : t) offset =
  if offset < 0 || offset >= numel t then
    invalid_arg "Shape.index_of_offset: out of range";
  let s = strides t in
  Array.mapi (fun i _ -> offset / s.(i) mod t.(i)) t

(* Tile arithmetic used throughout the compiler: number of tiles needed
   to cover [extent] with tiles of size [tile]. *)
let ceil_div a b =
  if b <= 0 then invalid_arg "Shape.ceil_div: non-positive divisor";
  (a + b - 1) / b

let tiles_along ~extent ~tile = ceil_div extent tile

let tile_range ~extent ~tile ~tid =
  let lo = tid * tile in
  if lo >= extent then invalid_arg "Shape.tile_range: tile out of range";
  (lo, min extent (lo + tile))
