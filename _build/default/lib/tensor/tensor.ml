(* Dense row-major float tensors.

   Deliberately simple: contiguous [float array] storage, copying
   slices.  The functional executor only runs at validation shapes
   (hundreds of rows), so clarity beats zero-copy tricks. *)

type t = { shape : Shape.t; data : float array }

let create shape value = { shape; data = Array.make (Shape.numel shape) value }

let zeros shape = create shape 0.0

let init shape f =
  let strides = Shape.strides shape in
  let rank = Shape.rank shape in
  let data =
    Array.init (Shape.numel shape) (fun off ->
        f (Array.init rank (fun i -> off / strides.(i) mod shape.(i))))
  in
  { shape; data }

let of_array shape data =
  if Array.length data <> Shape.numel shape then
    invalid_arg "Tensor.of_array: size mismatch";
  { shape; data = Array.copy data }

let shape t = t.shape
let data t = t.data
let numel t = Array.length t.data
let copy t = { t with data = Array.copy t.data }

let get t index = t.data.(Shape.offset_of_index t.shape index)
let set t index v = t.data.(Shape.offset_of_index t.shape index) <- v

let get2 t i j = get t [| i; j |]
let set2 t i j v = set t [| i; j |] v

let fill t v = Array.fill t.data 0 (Array.length t.data) v

let map f t = { t with data = Array.map f t.data }

let map2 f a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg "Tensor.map2: shape mismatch";
  { a with data = Array.map2 f a.data b.data }

let add = map2 ( +. )
let sub = map2 ( -. )
let mul = map2 ( *. )
let scale k = map (fun x -> k *. x)

let add_inplace dst src =
  if not (Shape.equal dst.shape src.shape) then
    invalid_arg "Tensor.add_inplace: shape mismatch";
  Array.iteri (fun i v -> dst.data.(i) <- dst.data.(i) +. v) src.data

let blit ~src ~dst =
  if not (Shape.equal src.shape dst.shape) then
    invalid_arg "Tensor.blit: shape mismatch";
  Array.blit src.data 0 dst.data 0 (Array.length src.data)

let sum t = Array.fold_left ( +. ) 0.0 t.data

let max_abs t =
  Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 t.data

(* 2-D helpers: the overlapped kernels are all matrix-shaped, so row
   slicing gets dedicated fast paths. *)

let rows t =
  if Shape.rank t.shape <> 2 then invalid_arg "Tensor.rows: rank <> 2";
  Shape.dim t.shape 0

let cols t =
  if Shape.rank t.shape <> 2 then invalid_arg "Tensor.cols: rank <> 2";
  Shape.dim t.shape 1

let row_slice t ~lo ~hi =
  let m = rows t and n = cols t in
  if lo < 0 || hi > m || lo > hi then
    invalid_arg "Tensor.row_slice: bad range";
  let out = zeros (Shape.of_list [ hi - lo; n ]) in
  Array.blit t.data (lo * n) out.data 0 ((hi - lo) * n);
  out

let set_row_slice t ~lo src =
  let n = cols t in
  if cols src <> n then invalid_arg "Tensor.set_row_slice: width mismatch";
  if lo < 0 || lo + rows src > rows t then
    invalid_arg "Tensor.set_row_slice: bad range";
  Array.blit src.data 0 t.data (lo * n) (Array.length src.data)

let add_row_slice t ~lo src =
  let n = cols t in
  if cols src <> n then invalid_arg "Tensor.add_row_slice: width mismatch";
  if lo < 0 || lo + rows src > rows t then
    invalid_arg "Tensor.add_row_slice: bad range";
  let base = lo * n in
  Array.iteri
    (fun i v -> t.data.(base + i) <- t.data.(base + i) +. v)
    src.data

let col_slice t ~lo ~hi =
  let m = rows t and n = cols t in
  if lo < 0 || hi > n || lo > hi then
    invalid_arg "Tensor.col_slice: bad range";
  let w = hi - lo in
  let out = zeros (Shape.of_list [ m; w ]) in
  for i = 0 to m - 1 do
    Array.blit t.data ((i * n) + lo) out.data (i * w) w
  done;
  out

let set_col_slice t ~lo src =
  let m = rows t and n = cols t in
  if rows src <> m then invalid_arg "Tensor.set_col_slice: height mismatch";
  let w = cols src in
  if lo < 0 || lo + w > n then invalid_arg "Tensor.set_col_slice: bad range";
  for i = 0 to m - 1 do
    Array.blit src.data (i * w) t.data ((i * n) + lo) w
  done

let block t ~row_lo ~row_hi ~col_lo ~col_hi =
  col_slice (row_slice t ~lo:row_lo ~hi:row_hi) ~lo:col_lo ~hi:col_hi

let set_block t ~row_lo ~col_lo src =
  let n = cols t in
  let w = cols src in
  if col_lo < 0 || col_lo + w > n then
    invalid_arg "Tensor.set_block: bad column range";
  if row_lo < 0 || row_lo + rows src > rows t then
    invalid_arg "Tensor.set_block: bad row range";
  for i = 0 to rows src - 1 do
    Array.blit src.data (i * w) t.data (((row_lo + i) * n) + col_lo) w
  done

let add_block t ~row_lo ~col_lo src =
  let n = cols t in
  let w = cols src in
  if col_lo < 0 || col_lo + w > n then
    invalid_arg "Tensor.add_block: bad column range";
  if row_lo < 0 || row_lo + rows src > rows t then
    invalid_arg "Tensor.add_block: bad row range";
  for i = 0 to rows src - 1 do
    for j = 0 to w - 1 do
      let off = ((row_lo + i) * n) + col_lo + j in
      t.data.(off) <- t.data.(off) +. src.data.((i * w) + j)
    done
  done

let concat_rows = function
  | [] -> invalid_arg "Tensor.concat_rows: empty"
  | first :: _ as ts ->
    let n = cols first in
    List.iter
      (fun t ->
        if cols t <> n then invalid_arg "Tensor.concat_rows: width mismatch")
      ts;
    let m = List.fold_left (fun acc t -> acc + rows t) 0 ts in
    let out = zeros (Shape.of_list [ m; n ]) in
    let lo = ref 0 in
    List.iter
      (fun t ->
        set_row_slice out ~lo:!lo t;
        lo := !lo + rows t)
      ts;
    out

let transpose t =
  let m = rows t and n = cols t in
  let out = zeros (Shape.of_list [ n; m ]) in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      out.data.((j * m) + i) <- t.data.((i * n) + j)
    done
  done;
  out

(* Deterministic pseudo-random filling: splitmix64-style hash of the
   flat offset and a seed, mapped into [-0.5, 0.5).  Tensors generated
   this way are identical across ranks, runs, and machines. *)
let hash_float ~seed off =
  let z = ref (Int64.of_int ((off * 2654435761) + (seed * 40503) + 1)) in
  z := Int64.mul !z 0x9E3779B97F4A7C15L;
  z := Int64.logxor !z (Int64.shift_right_logical !z 30);
  z := Int64.mul !z 0xBF58476D1CE4E5B9L;
  z := Int64.logxor !z (Int64.shift_right_logical !z 27);
  z := Int64.mul !z 0x94D049BB133111EBL;
  z := Int64.logxor !z (Int64.shift_right_logical !z 31);
  let mantissa = Int64.to_float (Int64.logand !z 0xFFFFFFFFL) in
  (mantissa /. 4294967296.0) -. 0.5

let random ~seed shape =
  {
    shape;
    data = Array.init (Shape.numel shape) (fun off -> hash_float ~seed off);
  }

let pp ppf t =
  Fmt.pf ppf "tensor%s" (Shape.to_string t.shape);
  if numel t <= 16 then
    Fmt.pf ppf " %a" Fmt.(brackets (array ~sep:(any "; ") float)) t.data
