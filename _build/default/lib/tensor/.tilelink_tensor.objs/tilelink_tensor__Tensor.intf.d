lib/tensor/tensor.mli: Format Shape
