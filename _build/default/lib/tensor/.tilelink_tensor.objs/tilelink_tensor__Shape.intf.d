lib/tensor/shape.mli:
