lib/tensor/nn.mli: Tensor
