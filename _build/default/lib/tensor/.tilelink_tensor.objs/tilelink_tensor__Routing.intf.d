lib/tensor/routing.mli: Tensor
