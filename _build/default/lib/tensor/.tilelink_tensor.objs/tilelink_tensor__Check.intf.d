lib/tensor/check.mli: Format Tensor
