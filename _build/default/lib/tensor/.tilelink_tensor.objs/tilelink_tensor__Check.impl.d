lib/tensor/check.ml: Array Float Fmt Printf Shape Tensor
