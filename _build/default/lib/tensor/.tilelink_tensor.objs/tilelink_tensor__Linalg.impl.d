lib/tensor/linalg.ml: Array List Shape Tensor
