lib/tensor/routing.ml: Array Float List Nn Shape Tensor
