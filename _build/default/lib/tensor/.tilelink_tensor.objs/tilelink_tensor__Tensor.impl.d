lib/tensor/tensor.ml: Array Float Fmt Int64 List Shape
