lib/tensor/shape.ml: Array List Printf String
