lib/tensor/nn.ml: Array Float Linalg Shape Tensor
