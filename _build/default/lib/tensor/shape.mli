(** Tensor shapes: dimension arrays with row-major stride arithmetic. *)

type t = int array

val of_list : int list -> t
val to_list : t -> int list
val rank : t -> int
val dim : t -> int -> int
val numel : t -> int
val equal : t -> t -> bool
val to_string : t -> string

val strides : t -> int array
(** Row-major strides. *)

val offset_of_index : t -> int array -> int
val index_of_offset : t -> int -> int array

val ceil_div : int -> int -> int

val tiles_along : extent:int -> tile:int -> int
(** Number of tiles of size [tile] covering [extent]. *)

val tile_range : extent:int -> tile:int -> tid:int -> int * int
(** Half-open row range [lo, hi) of tile [tid]; the last tile may be
    ragged. *)
