(* Device-code emission: the reproduction's stand-in for the paper's
   Distributed IR -> LLVM -> PTX stage (§6, Figure 7).

   Lowered instruction streams render to an NVSHMEM-flavored pseudo-PTX
   listing: acquire waits become [ld.global.acquire] spin loops, release
   notifies become [membar + red.release], remote copies become
   [nvshmem_putmem_nbi / getmem_nbi], async loads become [cp.async].
   Nothing executes this text — the simulator interprets the same
   instructions — but it makes the backend translation inspectable and
   testable: every fence the consistency checker reasons about appears
   as a concrete instruction, in order. *)

let target_symbol = function
  | Instr.Pc { rank; channel } -> Printf.sprintf "%%pc_bar_r%d_c%d" rank channel
  | Instr.Peer { src; dst; channel } ->
    Printf.sprintf "%%peer_bar_%d_to_%d_c%d" src dst channel
  | Instr.Host { src; dst } -> Printf.sprintf "%%host_bar_%d_to_%d" src dst

let access_symbol (a : Instr.access) =
  match a.Instr.mem_rank with
  | None -> Printf.sprintf "%%%s" a.Instr.buffer
  | Some rank -> Printf.sprintf "%%%s@r%d" a.Instr.buffer rank

let access_offset (a : Instr.access) =
  Printf.sprintf "[%s + %d*ld + %d]" (access_symbol a) (fst a.Instr.row)
    (fst a.Instr.col)

(* TVM-TIR-flavored rendering of the same instructions — the paper's
   second future-work direction (§7.4: "extend the low-level compilers,
   e.g. TVM, while keeping the primitives and compilation techniques of
   TileLink unchanged").  Same stream, different backend syntax. *)
let emit_instr_tir instr =
  match instr with
  | Instr.Wait { target; threshold; _ } ->
    [
      Printf.sprintf
        "  while T.tvm_load_scope(\"%s\", sync=\"acquire\") < %d: T.yield()"
        (target_symbol target) threshold;
    ]
  | Instr.Notify { target; amount; _ } ->
    [
      Printf.sprintf
        "  T.tvm_storage_sync(\"global\"); T.atomic_add(\"%s\", %d, sync=\"release\")"
        (target_symbol target) amount;
    ]
  | Instr.Load { access } ->
    [
      Printf.sprintf "  T.copy_async(smem, %s)  # %d bytes"
        (access_offset access)
        (int_of_float (Lower.bytes_of_access access));
    ]
  | Instr.Store { access } ->
    [ Printf.sprintf "  T.store_global(%s, acc)" (access_offset access) ]
  | Instr.Compute { label; _ } ->
    [ Printf.sprintf "  T.call_extern(\"tile_compute\", \"%s\")" label ]
  | Instr.Copy { src; dst; bytes; _ } ->
    [
      Printf.sprintf "  T.call_extern(\"nvshmem_copy\", %s, %s, %d)"
        (access_offset dst) (access_offset src) (int_of_float bytes);
    ]
  | Instr.Sleep us -> [ Printf.sprintf "  T.sleep(%.2f)" us ]

let emit_instr instr =
  match instr with
  | Instr.Wait { target; threshold; _ } ->
    let symbol = target_symbol target in
    [
      Printf.sprintf "$spin_%s:" (String.map (function '%' -> '_' | c -> c) symbol);
      Printf.sprintf "  ld.global.acquire.sys.u32 %%r0, [%s];" symbol;
      Printf.sprintf "  setp.lt.u32 %%p0, %%r0, %d;" threshold;
      Printf.sprintf "  @%%p0 bra $spin_%s;"
        (String.map (function '%' -> '_' | c -> c) symbol);
    ]
  | Instr.Notify { target; amount; _ } ->
    [
      "  membar.sys;";
      Printf.sprintf "  red.release.sys.global.add.u32 [%s], %d;"
        (target_symbol target) amount;
    ]
  | Instr.Load { access } ->
    [
      Printf.sprintf "  cp.async.ca.shared.global [%%smem], %s, %d;"
        (access_offset access)
        (int_of_float (Lower.bytes_of_access access));
    ]
  | Instr.Store { access } ->
    [ Printf.sprintf "  st.global.v8.b16 %s, %%acc;" (access_offset access) ]
  | Instr.Compute { label; cost; _ } -> (
    match cost with
    | Instr.Gemm_tile { tm; tn; k } ->
      [
        Printf.sprintf "  // %s: GEMM mainloop %dx%dx%d" label tm tn k;
        Printf.sprintf "  mma.loop %d { mma.sync.aligned.m16n8k16.f32.bf16 }"
          (max 1 (k / 16));
      ]
    | Instr.Attention_tile { tq; tkv; d } ->
      [
        Printf.sprintf "  // %s: flash tile q=%d kv=%d d=%d" label tq tkv d;
        "  mma.loop { qk^T; online-softmax; pv }";
      ]
    | Instr.Memory_tile { rows; cols; passes } ->
      [
        Printf.sprintf "  // %s: memory-bound %dx%d (%d passes)" label rows
          cols passes;
        "  ld.global.v8.b16 / st.global.v8.b16 loop";
      ]
    | Instr.Fixed_cost us -> [ Printf.sprintf "  // %s: %.2f us" label us ]
    | Instr.Free -> [ Printf.sprintf "  // %s" label ])
  | Instr.Copy { src; dst; bytes; _ } ->
    let remote r = Option.value r ~default:(-1) in
    if src.Instr.mem_rank = dst.Instr.mem_rank then
      [
        Printf.sprintf "  cp.bulk %s, %s, %d;" (access_offset dst)
          (access_offset src) (int_of_float bytes);
      ]
    else if dst.Instr.mem_rank <> None then
      [
        Printf.sprintf "  nvshmem_putmem_nbi(%s, %s, %d, /*pe=*/%d);"
          (access_offset dst) (access_offset src) (int_of_float bytes)
          (remote dst.Instr.mem_rank);
      ]
    else
      [
        Printf.sprintf "  nvshmem_getmem_nbi(%s, %s, %d, /*pe=*/%d);"
          (access_offset dst) (access_offset src) (int_of_float bytes)
          (remote src.Instr.mem_rank);
      ]
  | Instr.Sleep us -> [ Printf.sprintf "  nanosleep %.0f;" (us *. 1e3) ]

type target = Ptx | Tir

let instr_emitter = function Ptx -> emit_instr | Tir -> emit_instr_tir

let emit_task ?(target = Ptx) (task : Program.task) =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (Printf.sprintf "// task %s\n" task.Program.label);
  List.iter
    (fun instr ->
      List.iter
        (fun line ->
          Buffer.add_string buffer line;
          Buffer.add_char buffer '\n')
        (instr_emitter target instr))
    task.Program.instrs;
  Buffer.contents buffer

let emit_role ?(target = Ptx) (role : Program.role) =
  let buffer = Buffer.create 1024 in
  (match target with
  | Ptx ->
    Buffer.add_string buffer
      (Printf.sprintf ".kernel %s (.resource %s)\n{\n" role.Program.role_name
         (Program.resource_to_string role.Program.resource))
  | Tir ->
    Buffer.add_string buffer
      (Printf.sprintf "@T.prim_func  # %s on %s\ndef %s():\n"
         role.Program.role_name
         (Program.resource_to_string role.Program.resource)
         (String.map (function '-' -> '_' | c -> c) role.Program.role_name)));
  List.iter
    (fun task -> Buffer.add_string buffer (emit_task ~target task))
    role.Program.tasks;
  (match target with Ptx -> Buffer.add_string buffer "}\n" | Tir -> ());
  Buffer.contents buffer

let emit_rank ?(target = Ptx) (program : Program.t) ~rank =
  if rank < 0 || rank >= Program.world_size program then
    invalid_arg "Codegen.emit_rank: rank out of range";
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer
    (Printf.sprintf
       "// %s — rank %d of %d (pc channels %d, peer channels %d)\n"
       (Program.name program) rank
       (Program.world_size program)
       program.Program.pc_channels program.Program.peer_channels);
  List.iter
    (fun role -> Buffer.add_string buffer (emit_role ~target role))
    (Program.plans program).(rank);
  Buffer.contents buffer

(* Instruction-count statistics of the emitted code; used by tests to
   pin the fence discipline (one acquire spin per wait, one release per
   notify). *)
type stats = {
  acquires : int;
  releases : int;
  async_loads : int;
  remote_puts : int;
  remote_gets : int;
}

let count_substring haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i acc =
    if i + nl > hl then acc
    else if String.sub haystack i nl = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let stats_of_listing listing =
  {
    acquires = count_substring listing "ld.global.acquire";
    releases = count_substring listing "red.release";
    async_loads = count_substring listing "cp.async";
    remote_puts = count_substring listing "nvshmem_putmem_nbi";
    remote_gets = count_substring listing "nvshmem_getmem_nbi";
  }
