(** Design-space search: evaluate candidates under the simulator and
    keep the fastest. *)

type 'a evaluation = {
  candidate : 'a;
  config : Design_space.config;
  time : float;
}

type 'a outcome = {
  best : 'a evaluation;
  evaluated : 'a evaluation list;
  skipped : int;  (** candidates that failed to build or deadlocked *)
}

val search :
  configs:Design_space.config list ->
  build:(Design_space.config -> 'a) ->
  evaluate:('a -> float) ->
  'a outcome option

val search_programs :
  configs:Design_space.config list ->
  build:(Design_space.config -> Program.t) ->
  make_cluster:(unit -> Tilelink_machine.Cluster.t) ->
  Program.t outcome option
