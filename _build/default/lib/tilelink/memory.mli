(** Per-rank named buffer store (simulated device memories). *)

open Tilelink_tensor

type t

val create : world_size:int -> t
val world_size : t -> int
val alloc : t -> rank:int -> name:string -> Shape.t -> Tensor.t
val bind : t -> rank:int -> name:string -> Tensor.t -> unit
val find : t -> rank:int -> name:string -> Tensor.t
val mem : t -> rank:int -> name:string -> bool
val alloc_symmetric : t -> name:string -> Shape.t -> unit
val buffers : t -> rank:int -> string list
