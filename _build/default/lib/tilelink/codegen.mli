(** Device-code emission: renders lowered instruction streams to an
    NVSHMEM-flavored pseudo-PTX listing (the Distributed-IR -> PTX
    stage of the paper's Figure 7).  Inspectable and testable; the
    simulator interprets the same instructions. *)

type target = Ptx | Tir
    (** [Ptx]: NVSHMEM-flavored pseudo-PTX.  [Tir]: TVM-TIR-flavored
        pseudocode — the "support multiple backends" future-work
        direction (§7.4); same instruction stream, different backend
        syntax. *)

val emit_instr : Instr.t -> string list
val emit_instr_tir : Instr.t -> string list
val emit_task : ?target:target -> Program.task -> string
val emit_role : ?target:target -> Program.role -> string
val emit_rank : ?target:target -> Program.t -> rank:int -> string

type stats = {
  acquires : int;     (** [ld.global.acquire] spin loops *)
  releases : int;     (** [red.release] signal stores *)
  async_loads : int;  (** [cp.async] staging copies *)
  remote_puts : int;  (** [nvshmem_putmem_nbi] *)
  remote_gets : int;  (** [nvshmem_getmem_nbi] *)
}

val stats_of_listing : string -> stats
