(* Tiles: the unit of work and synchronization.

   A tile is a rectangular block of a 2-D iteration space.  Both the
   communication and computation components of an overlapped kernel
   carve their own iteration space into tiles — with *independent* tile
   sizes and visiting orders; that independence is the decoupled design
   space of the paper (§3.1). *)

type t = { tid_m : int; tid_n : int }

let make ~tid_m ~tid_n =
  if tid_m < 0 || tid_n < 0 then invalid_arg "Tile.make: negative id";
  { tid_m; tid_n }

let equal a b = a.tid_m = b.tid_m && a.tid_n = b.tid_n
let compare = compare
let to_string t = Printf.sprintf "(%d,%d)" t.tid_m t.tid_n
let pp ppf t = Fmt.string ppf (to_string t)

(* A tiling of an [extent_m x extent_n] space into [tile_m x tile_n]
   blocks; the trailing tiles may be ragged. *)
type grid = {
  extent_m : int;
  extent_n : int;
  tile_m : int;
  tile_n : int;
}

let grid ~extent_m ~extent_n ~tile_m ~tile_n =
  if extent_m <= 0 || extent_n <= 0 then invalid_arg "Tile.grid: empty extent";
  if tile_m <= 0 || tile_n <= 0 then invalid_arg "Tile.grid: empty tile";
  { extent_m; extent_n; tile_m; tile_n }

let tiles_m g = (g.extent_m + g.tile_m - 1) / g.tile_m
let tiles_n g = (g.extent_n + g.tile_n - 1) / g.tile_n
let tile_count g = tiles_m g * tiles_n g

let rows g t =
  let lo = t.tid_m * g.tile_m in
  if lo >= g.extent_m then invalid_arg "Tile.rows: tile out of grid";
  (lo, min g.extent_m (lo + g.tile_m))

let cols g t =
  let lo = t.tid_n * g.tile_n in
  if lo >= g.extent_n then invalid_arg "Tile.cols: tile out of grid";
  (lo, min g.extent_n (lo + g.tile_n))

let linearize g t = (t.tid_m * tiles_n g) + t.tid_n

let of_linear g i =
  if i < 0 || i >= tile_count g then invalid_arg "Tile.of_linear: out of grid";
  { tid_m = i / tiles_n g; tid_n = i mod tiles_n g }

(* Tile visiting orders (§3.1, tile-order subspace).  Orders are
   expressed per rank so a schedule can, e.g., start at its own shard
   and proceed ring-wise. *)
type order =
  | Row_major
      (** tid_m outer, tid_n inner — the natural GEMM order. *)
  | Column_major
  | Ring_from_self of { segments : int }
      (** The M dimension is split into [segments] contiguous segments
          (one per rank); visiting starts at the caller's own segment
          and walks segments in increasing-rank ring order, row-major
          inside each segment. *)
  | Ring_prev_first of { segments : int }
      (** Like [Ring_from_self] but starting at [rank + 1], the order a
          ring ReduceScatter consumes partial sums in. *)

let order_to_string = function
  | Row_major -> "row-major"
  | Column_major -> "column-major"
  | Ring_from_self { segments } -> Printf.sprintf "ring-self(%d)" segments
  | Ring_prev_first { segments } -> Printf.sprintf "ring-next(%d)" segments

(* Enumerate all tiles of [g] in the given order for [rank]. *)
let enumerate ?(rank = 0) g order =
  let tm = tiles_m g and tn = tiles_n g in
  match order with
  | Row_major ->
    List.init (tm * tn) (fun i -> of_linear g i)
  | Column_major ->
    List.concat
      (List.init tn (fun n ->
           List.init tm (fun m -> { tid_m = m; tid_n = n })))
  | Ring_from_self { segments } | Ring_prev_first { segments } ->
    if tm mod segments <> 0 then
      invalid_arg "Tile.enumerate: segments must divide tile rows";
    let per_segment = tm / segments in
    let start =
      match order with
      | Ring_from_self _ -> rank mod segments
      | _ -> (rank + 1) mod segments
    in
    List.concat
      (List.init segments (fun step ->
           let segment = (start + step) mod segments in
           List.concat
             (List.init per_segment (fun dm ->
                  List.init tn (fun n ->
                      { tid_m = (segment * per_segment) + dm; tid_n = n })))))
