(* Per-rank named buffer store — the simulator's device memories.

   Remote buffers are addressed as (rank, name); the symmetric-memory
   style of NVSHMEM means every rank allocates the same names, but
   nothing here enforces symmetry, which lets tests build asymmetric
   layouts too. *)

open Tilelink_tensor

type t = { stores : (string, Tensor.t) Hashtbl.t array }

let create ~world_size =
  if world_size <= 0 then invalid_arg "Memory.create: world_size";
  { stores = Array.init world_size (fun _ -> Hashtbl.create 16) }

let world_size t = Array.length t.stores

let check_rank t rank label =
  if rank < 0 || rank >= world_size t then
    invalid_arg (Printf.sprintf "Memory.%s: rank %d out of range" label rank)

let alloc t ~rank ~name shape =
  check_rank t rank "alloc";
  if Hashtbl.mem t.stores.(rank) name then
    invalid_arg (Printf.sprintf "Memory.alloc: %s already exists on %d" name rank);
  let tensor = Tensor.zeros shape in
  Hashtbl.replace t.stores.(rank) name tensor;
  tensor

let bind t ~rank ~name tensor =
  check_rank t rank "bind";
  Hashtbl.replace t.stores.(rank) name tensor

let find t ~rank ~name =
  check_rank t rank "find";
  match Hashtbl.find_opt t.stores.(rank) name with
  | Some tensor -> tensor
  | None ->
    invalid_arg (Printf.sprintf "Memory.find: no buffer %S on rank %d" name rank)

let mem t ~rank ~name =
  check_rank t rank "mem";
  Hashtbl.mem t.stores.(rank) name

(* Symmetric allocation: the same buffer on every rank. *)
let alloc_symmetric t ~name shape =
  Array.iteri
    (fun rank _ -> ignore (alloc t ~rank ~name shape))
    t.stores

let buffers t ~rank =
  check_rank t rank "buffers";
  Hashtbl.fold (fun name _ acc -> name :: acc) t.stores.(rank) []
  |> List.sort compare
