(** Fault injection: broken or skewed variants of real programs, for
    testing that lost signals deadlock (and are detected), premature
    waits corrupt data (and are caught by validation), and pure delays
    never change results. *)

val drop_notify : Program.t -> rank:int -> nth:int -> Program.t
(** Remove the [nth] Notify instruction (0-based, task order) on
    [rank]: a lost signal. *)

val weaken_waits : Program.t -> rank:int -> delta:int -> Program.t
(** Lower every Wait threshold on [rank] by [delta] (floored at 0):
    consumers stop waiting for the last [delta] signals. *)

val delay_role : Program.t -> rank:int -> role_name:string -> us:float -> Program.t
(** Prepend a fixed delay to every task of one role: timing skew that
    must not affect results. *)

val count_notifies : Program.t -> rank:int -> int
