(* Frontend tile-centric primitives (paper §3.2, Table 3).

   A kernel author writes per-tile statement lists mixing ordinary
   loads/stores/compute with these primitives; the backend ([Lower])
   resolves them against a tile-centric [Mapping] into low-level
   [Instr] streams with acquire/release fences.

   Signal primitives:
   - [Producer_tile_notify]   producer tile done -> consumer channel
   - [Consumer_tile_wait]     block until producer tiles covering a
                              row range are done
   - [Peer_tile_notify/wait]  same-operator tiles across ranks
   - [Rank_notify/wait]       host-side barriers for the copy engine
   Data primitives:
   - [Tile_push_data]         device copy of one tile to a peer
   - [Tile_pull_data]         device copy of one tile from the rank the
                              mapping assigns to the tile id
   - [Rank_copy_data]         host-issued copy-engine transfer *)

type notify_mode =
  | P2p
      (** Notify the single consumer of this tile — the executing rank
          (pull-mode gathers and local producer/consumer chains). *)
  | Owner
      (** Notify the rank owning the tile's data segment (push-mode
          scatters). *)
  | Broadcast  (** Notify every rank (push-mode all-gathers). *)
  | To_rank of int  (** Explicit target. *)

type t =
  | Load of Instr.access
  | Store of Instr.access
  | Compute of {
      label : string;
      cost : Instr.cost;
      reads : Instr.access list;
      writes : Instr.access list;
      action : Instr.action option;
    }
  | Producer_tile_notify of { tid : int; mode : notify_mode }
  | Consumer_tile_wait of {
      lo : int;
      hi : int;  (** global row range the consumer is about to read *)
      buffer : string;  (** gathered buffer the wait guards *)
      col : Instr.range;
    }
  | Consumer_tile_wait_rows of {
      rows : int list;
          (** scattered global rows (dynamic gathers: MoE tokens);
              lowering dedupes the covering channel set *)
      buffer : string;
      col : Instr.range;
    }
  | Peer_tile_notify of {
      tile_key : int;
      dst : int;
      amount : int;
      releases : Instr.access list;
    }
  | Peer_tile_wait of {
      tile_key : int;
      src : int;
      threshold : int;
      guards : Instr.access list;
    }
  | Rank_notify of { dst : int; amount : int }
  | Rank_wait of { src : int; threshold : int }
  | Tile_push_data of {
      src : Instr.access;
      dst_rank : int;
      dst : Instr.access;
    }
  | Tile_pull_data of {
      tid : int;  (** producer tile id; mapping gives rank and rows *)
      src_buffer : string;
      src_view : [ `Shard | `Global ];
          (** [`Shard]: remote buffer indexed shard-locally, rows are
              translated; [`Global]: remote buffer uses global rows. *)
      col : Instr.range;
      dst : Instr.access;
      action : Instr.action option;
    }
  | Rank_copy_data of { src : Instr.access; dst : Instr.access;
                        action : Instr.action option }
  | Sleep of float

let to_string = function
  | Load a -> Instr.to_string (Instr.Load { access = a })
  | Store a -> Instr.to_string (Instr.Store { access = a })
  | Compute { label; _ } -> Printf.sprintf "compute %s" label
  | Producer_tile_notify { tid; _ } ->
    Printf.sprintf "producer_tile_notify(%d)" tid
  | Consumer_tile_wait { lo; hi; _ } ->
    Printf.sprintf "consumer_tile_wait[%d:%d]" lo hi
  | Consumer_tile_wait_rows { rows; _ } ->
    Printf.sprintf "consumer_tile_wait_rows(%d rows)" (List.length rows)
  | Peer_tile_notify { tile_key; dst; _ } ->
    Printf.sprintf "peer_tile_notify(%d -> r%d)" tile_key dst
  | Peer_tile_wait { tile_key; src; _ } ->
    Printf.sprintf "peer_tile_wait(%d <- r%d)" tile_key src
  | Rank_notify { dst; _ } -> Printf.sprintf "rank_notify(r%d)" dst
  | Rank_wait { src; _ } -> Printf.sprintf "rank_wait(r%d)" src
  | Tile_push_data { dst_rank; _ } ->
    Printf.sprintf "tile_push_data(-> r%d)" dst_rank
  | Tile_pull_data { tid; _ } -> Printf.sprintf "tile_pull_data(%d)" tid
  | Rank_copy_data _ -> "rank_copy_data"
  | Sleep d -> Printf.sprintf "sleep %.2f" d

let pp ppf t = Fmt.string ppf (to_string t)
