lib/tilelink/fault.mli: Program
