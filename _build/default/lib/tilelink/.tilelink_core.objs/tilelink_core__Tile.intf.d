lib/tilelink/tile.mli: Format
