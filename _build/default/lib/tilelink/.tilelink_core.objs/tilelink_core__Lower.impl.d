lib/tilelink/lower.ml: Hashtbl Instr List Mapping Primitive Printf Tilelink_machine
