lib/tilelink/memory.mli: Shape Tensor Tilelink_tensor
