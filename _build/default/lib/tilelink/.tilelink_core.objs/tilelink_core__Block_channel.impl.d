lib/tilelink/block_channel.ml: Instr List Lower Mapping
