lib/tilelink/pipeline.mli: Instr Program
