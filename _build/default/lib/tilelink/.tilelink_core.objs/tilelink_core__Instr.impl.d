lib/tilelink/instr.ml: Fmt Memory Printf String
