lib/tilelink/mapping.mli: Format
