lib/tilelink/memory.ml: Array Hashtbl List Printf Tensor Tilelink_tensor
