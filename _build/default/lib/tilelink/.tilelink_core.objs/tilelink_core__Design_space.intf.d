lib/tilelink/design_space.mli: Tile
