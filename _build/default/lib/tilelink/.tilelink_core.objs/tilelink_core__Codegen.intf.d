lib/tilelink/codegen.mli: Instr Program
