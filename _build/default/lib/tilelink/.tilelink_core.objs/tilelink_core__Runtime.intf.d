lib/tilelink/runtime.mli: Channel Memory Program Tilelink_machine
