lib/tilelink/fault.ml: Array Instr List Program
