lib/tilelink/design_space.ml: List Printf Tile
