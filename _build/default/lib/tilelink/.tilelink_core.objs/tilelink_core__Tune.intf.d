lib/tilelink/tune.mli: Design_space Program Tilelink_machine
