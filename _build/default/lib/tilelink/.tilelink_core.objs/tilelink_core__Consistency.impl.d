lib/tilelink/consistency.ml: Array Fmt Instr List Printf Program
