lib/tilelink/codegen.ml: Array Buffer Instr List Lower Option Printf Program String
