lib/tilelink/program.ml: Array Fmt Instr List Printf Tilelink_sim
