lib/tilelink/mapping.ml: Array Fmt Hashtbl List Printf
