lib/tilelink/block_channel.mli: Instr Lower Mapping Primitive
