lib/tilelink/primitive.ml: Fmt Instr List Printf
