lib/tilelink/consistency.mli: Format Instr Program
