lib/tilelink/lower.mli: Instr Mapping Primitive
