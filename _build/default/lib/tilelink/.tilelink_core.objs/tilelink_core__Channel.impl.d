lib/tilelink/channel.ml: Array Printf Tilelink_sim
