lib/tilelink/pipeline.ml: Array Instr List Program
