lib/tilelink/program.mli: Format Instr Tilelink_sim
