lib/tilelink/runtime.ml: Array Channel Cluster Cost Engine Float Fun Instr List Memory Option Process Program Resource Spec Tensor Tilelink_machine Tilelink_sim Tilelink_tensor Trace
