lib/tilelink/tile.ml: Fmt List Printf
