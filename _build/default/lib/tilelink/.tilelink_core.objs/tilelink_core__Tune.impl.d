lib/tilelink/tune.ml: Design_space List Runtime Tilelink_sim
