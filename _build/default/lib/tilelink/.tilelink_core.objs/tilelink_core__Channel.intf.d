lib/tilelink/channel.mli:
