(** Tiles: the unit of work and synchronization, with independent
    grids and visiting orders for communication and computation. *)

type t = { tid_m : int; tid_n : int }

val make : tid_m:int -> tid_n:int -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

type grid = {
  extent_m : int;
  extent_n : int;
  tile_m : int;
  tile_n : int;
}

val grid : extent_m:int -> extent_n:int -> tile_m:int -> tile_n:int -> grid
val tiles_m : grid -> int
val tiles_n : grid -> int
val tile_count : grid -> int

val rows : grid -> t -> int * int
(** Half-open row range covered by the tile (ragged at the edge). *)

val cols : grid -> t -> int * int
val linearize : grid -> t -> int
val of_linear : grid -> int -> t

type order =
  | Row_major
  | Column_major
  | Ring_from_self of { segments : int }
  | Ring_prev_first of { segments : int }

val order_to_string : order -> string

val enumerate : ?rank:int -> grid -> order -> t list
(** All tiles of the grid in the given visiting order for [rank]. *)
