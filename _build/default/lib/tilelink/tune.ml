(* Design-space search.

   TileLink's performance numbers come from picking the best point of
   the decoupled design space under the simulator — exactly the role
   autotuning plays for the real compiler.  Candidates that fail to
   build (invalid tile/extent combinations) or deadlock are skipped. *)

type 'a evaluation = {
  candidate : 'a;
  config : Design_space.config;
  time : float;
}

type 'a outcome = {
  best : 'a evaluation;
  evaluated : 'a evaluation list;
  skipped : int;
}

let search ~configs ~build ~evaluate =
  let evaluated = ref [] in
  let skipped = ref 0 in
  List.iter
    (fun config ->
      match build config with
      | exception Invalid_argument _ -> incr skipped
      | candidate -> (
        match evaluate candidate with
        | exception Invalid_argument _ -> incr skipped
        | exception Tilelink_sim.Engine.Deadlock _ -> incr skipped
        | time -> evaluated := { candidate; config; time } :: !evaluated))
    configs;
  match !evaluated with
  | [] -> None
  | evaluations ->
    let best =
      List.fold_left
        (fun acc e -> if e.time < acc.time then e else acc)
        (List.hd evaluations) evaluations
    in
    Some { best; evaluated = List.rev evaluations; skipped = !skipped }

(* Convenience for program-valued candidates: simulate on a fresh
   cluster per candidate (simulated clusters are single-shot). *)
let search_programs ~configs ~build ~make_cluster =
  search ~configs ~build ~evaluate:(fun program ->
      let cluster = make_cluster () in
      (Runtime.run cluster program).Runtime.makespan)
