(** Program interpreter on a simulated cluster: timing always, real
    tensor data optionally. *)

type result = {
  makespan : float;  (** µs from run start to completion *)
  channels : Channel.t;
  memory : Memory.t;
  notifies : int;
}

val run :
  ?data:bool -> ?memory:Memory.t -> Tilelink_machine.Cluster.t ->
  Program.t -> result
(** Execute the program to completion.  With [~data:true], [Copy] and
    [Compute] instructions also mutate [memory] (defaults to a fresh
    empty memory).  Raises on invalid programs; a schedule with missing
    signals raises {!Tilelink_sim.Engine.Deadlock}. *)
