(** Memory-consistency verification: acquire/release ordering of
    instruction streams (catches broken compiler passes). *)

type violation = {
  position : int;
  instr : string;
  rule : string;
}

val pp_violation : Format.formatter -> violation -> unit

val verify_task : Instr.t list -> (unit, violation) result
val verify_role : Program.role -> (unit, violation) result
val verify_program : Program.t -> (unit, violation) result
