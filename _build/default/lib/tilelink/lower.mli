(** Backend lowering: frontend primitives -> device instructions,
    resolved through a tile-centric mapping. *)

type config = {
  mapping : Mapping.t;
  rank : int;
  world_size : int;
}

val bytes_of_access : Instr.access -> float
val lower_stmt : config -> Primitive.t -> Instr.t list
val lower : config -> Primitive.t list -> Instr.t list
