(* Backend lowering: frontend primitives -> device instructions.

   The tile-centric mapping resolves tile ids into shape ranges, ranks
   and channels (§4.1); notify primitives lower to release [Notify]
   instructions, wait primitives to acquire [Wait] instructions whose
   [guards] carry the protected buffer ranges, and data primitives to
   [Copy] instructions with concrete source/destination ranks. *)

type config = {
  mapping : Mapping.t;
  rank : int;        (* the executing rank the statements belong to *)
  world_size : int;
}

let dtype_bytes = Tilelink_machine.Cost.dtype_bytes

let bytes_of_access (a : Instr.access) =
  let rows = snd a.row - fst a.row and cols = snd a.col - fst a.col in
  float_of_int rows *. float_of_int cols *. dtype_bytes

let lower_stmt config (stmt : Primitive.t) : Instr.t list =
  let mapping = config.mapping in
  match stmt with
  | Primitive.Load access -> [ Instr.Load { access } ]
  | Primitive.Store access -> [ Instr.Store { access } ]
  | Primitive.Compute { label; cost; reads; writes; action } ->
    [ Instr.Compute { label; cost; reads; writes; action } ]
  | Primitive.Sleep d -> [ Instr.Sleep d ]
  | Primitive.Producer_tile_notify { tid; mode } ->
    let channel = Mapping.channel_of mapping ~tid in
    let lo, hi = Mapping.shape_range mapping ~tid in
    let releases =
      [ Instr.access ~buffer:"*" ~row:(lo, hi) ~col:(0, max_int) () ]
    in
    let notify rank =
      Instr.Notify { target = Instr.Pc { rank; channel }; amount = 1; releases }
    in
    (match mode with
    | Primitive.P2p -> [ notify config.rank ]
    | Primitive.Owner ->
      let owner, _local = Mapping.split_channel mapping channel in
      [ notify owner ]
    | Primitive.To_rank rank -> [ notify rank ]
    | Primitive.Broadcast ->
      List.init config.world_size (fun rank -> notify rank))
  | Primitive.Consumer_tile_wait { lo; hi; buffer; col } ->
    let guards = [ Instr.access ~buffer ~row:(lo, hi) ~col () ] in
    Mapping.channels_for_range mapping ~lo ~hi
    |> List.map (fun (channel, threshold) ->
           Instr.Wait
             {
               target = Instr.Pc { rank = config.rank; channel };
               threshold;
               guards;
             })
  | Primitive.Consumer_tile_wait_rows { rows; buffer; col } ->
    (* Dedupe the channels covering every scattered row; guard the full
       enclosing row range (conservative but sound). *)
    let lo = List.fold_left min max_int rows in
    let hi = List.fold_left max 0 rows + 1 in
    let guards = [ Instr.access ~buffer ~row:(lo, hi) ~col () ] in
    let table = Hashtbl.create 8 in
    List.iter
      (fun row ->
        List.iter
          (fun (channel, threshold) ->
            Hashtbl.replace table channel threshold)
          (Mapping.channels_for_range mapping ~lo:row ~hi:(row + 1)))
      rows;
    Hashtbl.fold (fun channel threshold acc -> (channel, threshold) :: acc)
      table []
    |> List.sort compare
    |> List.map (fun (channel, threshold) ->
           Instr.Wait
             {
               target = Instr.Pc { rank = config.rank; channel };
               threshold;
               guards;
             })
  | Primitive.Peer_tile_notify { tile_key; dst; amount; releases } ->
    [
      Instr.Notify
        {
          target =
            Instr.Peer { src = config.rank; dst; channel = tile_key };
          amount;
          releases;
        };
    ]
  | Primitive.Peer_tile_wait { tile_key; src; threshold; guards } ->
    [
      Instr.Wait
        {
          target =
            Instr.Peer { src; dst = config.rank; channel = tile_key };
          threshold;
          guards;
        };
    ]
  | Primitive.Rank_notify { dst; amount } ->
    [
      Instr.Notify
        {
          target = Instr.Host { src = config.rank; dst };
          amount;
          releases = [];
        };
    ]
  | Primitive.Rank_wait { src; threshold } ->
    [
      Instr.Wait
        {
          target = Instr.Host { src; dst = config.rank };
          threshold;
          guards = [];
        };
    ]
  | Primitive.Tile_push_data { src; dst_rank; dst } ->
    let dst = { dst with Instr.mem_rank = Some dst_rank } in
    [
      Instr.Copy
        {
          label = Printf.sprintf "push->r%d" dst_rank;
          src;
          dst;
          bytes = bytes_of_access src;
          action = None;
        };
    ]
  | Primitive.Tile_pull_data { tid; src_buffer; src_view; col; dst; action }
    ->
    let src_rank = Mapping.rank_of mapping ~tid in
    let row =
      match src_view with
      | `Global -> Mapping.shape_range mapping ~tid
      | `Shard -> Mapping.src_shard_range mapping ~tid
    in
    let src =
      Instr.access ~rank:src_rank ~buffer:src_buffer ~row ~col ()
    in
    [
      Instr.Copy
        {
          label = Printf.sprintf "pull<-r%d" src_rank;
          src;
          dst;
          bytes = bytes_of_access src;
          action;
        };
    ]
  | Primitive.Rank_copy_data { src; dst; action } ->
    [
      Instr.Copy
        { label = "rank_copy"; src; dst; bytes = bytes_of_access src; action };
    ]

let lower config stmts = List.concat_map (lower_stmt config) stmts
