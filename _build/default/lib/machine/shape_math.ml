(* Integer helpers shared inside the machine model. *)

let ceil_div a b =
  if b <= 0 then invalid_arg "Shape_math.ceil_div: non-positive divisor";
  (a + b - 1) / b
