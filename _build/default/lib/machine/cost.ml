(* Analytic kernel cost model.

   The discrete-event backend charges *per-tile* durations and lets
   wave quantization, SM contention and link queueing emerge from the
   simulation; this module only prices a single tile or a single
   memory pass.

   Calibration notes:
   - GEMM tile efficiency degrades below 128x128 because tensor-core
     MMA shapes and shared-memory staging under-fill; modeled as
     sqrt(min(1, d/128)) per dimension.  This is the "resource
     quantization inefficiency" that hurts decomposed kernels.
   - Memory-bound kernels saturate HBM with ~1/4 of the SMs; fewer
     SMs get a proportional share. *)

let dtype_bytes = 2.0 (* bf16 *)

let tile_dim_efficiency d = sqrt (Float.min 1.0 (float_of_int d /. 128.0))

let gemm_tile_efficiency ~tm ~tn =
  tile_dim_efficiency tm *. tile_dim_efficiency tn

(* Time for one CTA computing a [tm x tn] output tile over the full K
   reduction, on one SM. *)
let gemm_tile_time (spec : Spec.t) ~tm ~tn ~k =
  let flops = 2.0 *. float_of_int tm *. float_of_int tn *. float_of_int k in
  let rate =
    spec.gpu.flops_per_sm *. spec.gpu.mac_efficiency
    *. gemm_tile_efficiency ~tm ~tn
  in
  (flops /. rate) +. spec.gpu.tile_overhead

(* Attention tile: one CTA holding a [tq x d] query block consuming a
   [tkv x d] KV block (two GEMMs + online softmax; softmax cost folded
   into a 0.85 efficiency factor). *)
let attention_tile_time (spec : Spec.t) ~tq ~tkv ~d =
  let flops =
    4.0 *. float_of_int tq *. float_of_int tkv *. float_of_int d
  in
  let rate =
    spec.gpu.flops_per_sm *. spec.gpu.mac_efficiency *. 0.85
    *. gemm_tile_efficiency ~tm:tq ~tn:tkv
  in
  (flops /. rate) +. spec.gpu.tile_overhead

(* Whole GEMM kernel on [sms] SMs with a [tm x tn] CTA tile: wave
   quantization made explicit — ceil(tiles / sms) waves of one tile
   each.  This is the analytic counterpart of what the discrete-event
   backend produces when it schedules the same tiles on an SM pool. *)
let gemm_kernel_time (spec : Spec.t) ~sms ~m ~n ~k ~tm ~tn =
  if sms <= 0 then invalid_arg "Cost.gemm_kernel_time: sms";
  let tiles_m = (m + tm - 1) / tm and tiles_n = (n + tn - 1) / tn in
  let tiles = tiles_m * tiles_n in
  let waves = (tiles + sms - 1) / sms in
  float_of_int waves *. gemm_tile_time spec ~tm ~tn ~k

(* Effective HBM share for a kernel occupying [sms] SMs: bandwidth
   saturates at about a quarter of the chip. *)
let hbm_share (spec : Spec.t) ~sms =
  let saturating = Float.max 1.0 (float_of_int spec.gpu.num_sms /. 4.0) in
  spec.gpu.hbm_bw *. Float.min 1.0 (float_of_int sms /. saturating)

(* One pass of a memory-bound kernel moving [bytes] through HBM using
   [sms] SMs. *)
let memory_pass_time (spec : Spec.t) ~sms ~bytes =
  bytes /. hbm_share spec ~sms

(* A memory-bound *tile*: [rows x cols] elements, [passes] traversals
   (e.g. reduce = read+read+write = 3). *)
let memory_tile_time (spec : Spec.t) ~sms ~rows ~cols ~passes =
  let bytes =
    float_of_int rows *. float_of_int cols *. dtype_bytes
    *. float_of_int passes
  in
  memory_pass_time spec ~sms ~bytes +. (spec.gpu.tile_overhead /. 2.0)

(* SM-driven copy over NVLink: a communication CTA pushing [bytes] to a
   peer sustains only a slice of the GPU's NVLink egress (roughly
   egress / 16 per CTA before queueing at the link). *)
let sm_copy_rate (spec : Spec.t) =
  spec.interconnect.nvlink_gbps *. 1.0e3 /. 16.0

let sm_copy_time (spec : Spec.t) ~bytes = bytes /. sm_copy_rate spec

let bytes_of ~rows ~cols = float_of_int rows *. float_of_int cols *. dtype_bytes

(* Unfused ("PyTorch eager") attention: materializes the [sq x skv]
   score matrix in HBM, then softmax, then PV — three extra traversals
   of the score matrix on top of the two GEMMs.  This is what makes the
   Torch baseline of Figure 10 memory-bound at long context. *)
let unfused_attention_time (spec : Spec.t) ~batch_heads ~sq ~skv ~d =
  let fbh = float_of_int batch_heads in
  let gemm_flops = 4.0 *. fbh *. float_of_int sq *. float_of_int skv *. float_of_int d in
  let compute =
    gemm_flops
    /. (float_of_int spec.gpu.num_sms *. spec.gpu.flops_per_sm *. 0.7)
  in
  (* Eager PyTorch materializes the score matrix in fp32. *)
  let score_bytes = fbh *. float_of_int sq *. float_of_int skv *. 4.0 in
  (* write S, read S (softmax), write P, read P (PV): 4 traversals. *)
  let memory = 4.0 *. score_bytes /. spec.gpu.hbm_bw in
  compute +. memory +. (3.0 *. spec.overheads.kernel_launch)
