(* Calibrated hardware points.

   [h800] is tuned so that the *non-overlapping* MLP-1 baseline lands
   near the paper's measured 0.676 ms (AG+GEMM) / 0.541 ms (GEMM+RS) on
   8 GPUs; every other number in the evaluation is produced by the
   simulator, not fitted.  See DESIGN.md §5. *)

let h800 : Spec.t =
  {
    gpu =
      {
        gpu_name = "H800-sim";
        num_sms = 132;
        (* 132 SMs x 3.2e6 FLOP/us ~= 422 TFLOP/s sustained bf16 GEMM
           at 128x128 tiles — cuBLAS-level efficiency at the paper's
           tensor-parallel shapes (N per rank is modest). *)
        flops_per_sm = 3.2e6;
        mac_efficiency = 1.0;
        (* 3.35 TB/s HBM3. *)
        hbm_bw = 3.35e6;
        dma_channels = 4;
        tile_overhead = 1.0;
        load_latency = 0.8;
      };
    interconnect =
      {
        (* H800 NVLink is capped at 400 GB/s aggregate; ~250 GB/s
           NCCL-busbw-level effective egress per GPU. *)
        nvlink_gbps = 250.0;
        nvlink_latency = 3.0;
        (* 400 Gb/s IB per GPU pair of a node, ~40 GB/s effective. *)
        nic_gbps = 40.0;
        nic_latency = 8.0;
      };
    overheads =
      {
        kernel_launch = 8.0;
        host_sync = 22.0;
        collective_setup = 16.0;
        signal_notify = 0.8;
        signal_wait = 0.3;
        fusion_interference = 1.10;
      };
    gpus_per_node = 8;
  }

(* A deliberately small machine for unit tests: times stay tiny and
   easy to reason about. *)
let test_machine : Spec.t =
  {
    gpu =
      {
        gpu_name = "test-gpu";
        num_sms = 4;
        flops_per_sm = 1.0e3;
        mac_efficiency = 1.0;
        hbm_bw = 1.0e3;
        dma_channels = 1;
        tile_overhead = 0.5;
        load_latency = 0.0;
      };
    interconnect =
      {
        nvlink_gbps = 1.0;
        nvlink_latency = 1.0;
        nic_gbps = 0.25;
        nic_latency = 4.0;
      };
    overheads =
      {
        kernel_launch = 2.0;
        host_sync = 5.0;
        collective_setup = 3.0;
        signal_notify = 0.0;
        signal_wait = 0.0;
        fusion_interference = 1.0;
      };
    gpus_per_node = 4;
  }
