lib/machine/cluster.ml: Array Engine Printf Process Shape_math Spec Tilelink_sim
