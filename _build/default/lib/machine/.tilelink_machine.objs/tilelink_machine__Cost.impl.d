lib/machine/cost.ml: Float Spec
