lib/machine/calib.ml: Spec
