lib/machine/spec.ml: Fmt
