lib/machine/report.mli: Format Tilelink_sim
