lib/machine/cost.mli: Spec
