lib/machine/report.ml: Float Fmt List Tilelink_sim
