lib/machine/shape_math.ml:
