lib/machine/cluster.mli: Spec Tilelink_sim
