lib/machine/spec.mli: Format
