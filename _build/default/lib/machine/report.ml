(* Overlap accounting from simulation traces.

   The paper's overlap ratio (§7.2) is computed from three separate
   wall-clock measurements; with a trace we can do better and measure
   the overlap *directly*: per rank, the time both a compute lane and a
   communication lane were busy simultaneously. *)

module Trace = Tilelink_sim.Trace

type rank_report = {
  rank : int;
  compute_busy : float;   (* union of compute-lane spans *)
  comm_busy : float;      (* union of comm/dma/host/link spans *)
  overlapped : float;     (* time both were busy *)
  wait_time : float;      (* recorded barrier-wait spans *)
  makespan : float;
}

let is_compute_lane = function
  | Trace.Compute_sm -> true
  | Trace.Comm_sm | Trace.Dma | Trace.Host | Trace.Link | Trace.Wait -> false

let is_comm_lane = function
  | Trace.Comm_sm | Trace.Dma | Trace.Host | Trace.Link -> true
  | Trace.Compute_sm | Trace.Wait -> false

(* Union of intervals as a sorted disjoint list. *)
let merge_intervals intervals =
  let sorted = List.sort compare intervals in
  List.fold_left
    (fun acc (lo, hi) ->
      match acc with
      | (alo, ahi) :: rest when lo <= ahi -> (alo, Float.max hi ahi) :: rest
      | _ -> (lo, hi) :: acc)
    [] sorted
  |> List.rev

let total intervals =
  List.fold_left (fun acc (lo, hi) -> acc +. (hi -. lo)) 0.0 intervals

(* Intersection of two sorted disjoint interval lists. *)
let intersect a b =
  let rec go acc a b =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | (alo, ahi) :: arest, (blo, bhi) :: brest ->
      let lo = Float.max alo blo and hi = Float.min ahi bhi in
      let acc = if lo < hi then (lo, hi) :: acc else acc in
      if ahi < bhi then go acc arest b else go acc a brest
  in
  go [] a b

let rank_report trace ~rank =
  let spans_of pred =
    List.filter_map
      (fun s ->
        if s.Trace.rank = rank && pred s.Trace.lane then
          Some (s.Trace.t0, s.Trace.t1)
        else None)
      (Trace.spans trace)
  in
  let compute = merge_intervals (spans_of is_compute_lane) in
  let comm = merge_intervals (spans_of is_comm_lane) in
  let waits = merge_intervals (spans_of (fun l -> l = Trace.Wait)) in
  {
    rank;
    compute_busy = total compute;
    comm_busy = total comm;
    overlapped = total (intersect compute comm);
    wait_time = total waits;
    makespan = Trace.duration trace;
  }

(* The paper's ratio, measured: comm hidden behind compute, as a
   fraction of all communication time. *)
let overlap_ratio r =
  if r.comm_busy <= 0.0 then 0.0 else r.overlapped /. r.comm_busy

let all_ranks trace ~world_size =
  List.init world_size (fun rank -> rank_report trace ~rank)

let pp ppf r =
  Fmt.pf ppf
    "rank %d: compute %.1fus, comm %.1fus, overlapped %.1fus (ratio %.2f), \
     waits %.1fus"
    r.rank r.compute_busy r.comm_busy r.overlapped (overlap_ratio r)
    r.wait_time
