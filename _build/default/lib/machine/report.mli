(** Overlap accounting measured directly from simulation traces:
    per-rank compute-busy, comm-busy and their intersection. *)

type rank_report = {
  rank : int;
  compute_busy : float;
  comm_busy : float;
  overlapped : float;
  wait_time : float;
  makespan : float;
}

val merge_intervals : (float * float) list -> (float * float) list
val intersect :
  (float * float) list -> (float * float) list -> (float * float) list

val rank_report : Tilelink_sim.Trace.t -> rank:int -> rank_report

val overlap_ratio : rank_report -> float
(** Fraction of communication time hidden behind compute. *)

val all_ranks : Tilelink_sim.Trace.t -> world_size:int -> rank_report list
val pp : Format.formatter -> rank_report -> unit
