(** Analytic per-tile kernel cost model (times in µs, sizes in
    elements unless stated). *)

val dtype_bytes : float

val gemm_tile_efficiency : tm:int -> tn:int -> float
(** Fraction of sustained throughput reached by a [tm x tn] tile; 1.0
    at 128x128 and above, degrading for smaller tiles. *)

val gemm_tile_time : Spec.t -> tm:int -> tn:int -> k:int -> float
(** One CTA computing a [tm x tn] output tile over the full K. *)

val attention_tile_time : Spec.t -> tq:int -> tkv:int -> d:int -> float

val gemm_kernel_time :
  Spec.t -> sms:int -> m:int -> n:int -> k:int -> tm:int -> tn:int -> float
(** Whole GEMM kernel: ceil(tiles/sms) waves of [gemm_tile_time]. *)

val hbm_share : Spec.t -> sms:int -> float
val memory_pass_time : Spec.t -> sms:int -> bytes:float -> float
val memory_tile_time :
  Spec.t -> sms:int -> rows:int -> cols:int -> passes:int -> float

val sm_copy_rate : Spec.t -> float
(** NVLink egress one communication CTA can sustain, bytes/µs. *)

val sm_copy_time : Spec.t -> bytes:float -> float
val bytes_of : rows:int -> cols:int -> float

val unfused_attention_time :
  Spec.t -> batch_heads:int -> sq:int -> skv:int -> d:int -> float
(** Eager (non-flash) attention materializing the score matrix. *)
