(* Non-overlapping baseline: cuBLAS + NCCL.

   Communication and computation run as separate, serialized operators:
   an operator-centric collective (lib/comm), a host sync, then the
   compute kernel on the full chip, with launch overheads in between.
   This is the denominator of every speedup in the paper. *)

open Tilelink_machine
module Collective = Tilelink_comm.Collective

let gemm_time (spec : Spec.t) ~m ~n ~k =
  spec.Spec.overheads.kernel_launch
  +. Cost.gemm_kernel_time spec ~sms:spec.Spec.gpu.num_sms ~m ~n ~k ~tm:128
       ~tn:128

(* AllGather (over M) followed by GEMM: x[m/R, k] gathered, then
   [m, k] x [k, n] on every rank. *)
let ag_gemm_time (spec : Spec.t) ~world_size ~m ~k ~n =
  let bytes_per_shard =
    float_of_int (m / world_size) *. float_of_int k *. Cost.dtype_bytes
  in
  let ag =
    Collective.standalone_time spec ~world_size ~kind:Collective.Allgather
      ~algo:Collective.Ring ~bytes_per_shard
  in
  ag +. gemm_time spec ~m ~n ~k

(* GEMM producing a partial [m, n] on every rank, then ReduceScatter. *)
let gemm_rs_time (spec : Spec.t) ~world_size ~m ~k ~n =
  let bytes_per_shard =
    float_of_int (m / world_size) *. float_of_int n *. Cost.dtype_bytes
  in
  let rs =
    Collective.standalone_time spec ~world_size ~kind:Collective.Reducescatter
      ~algo:Collective.Ring ~bytes_per_shard
  in
  gemm_time spec ~m ~n ~k +. rs

(* Element-wise gated activation between the two MLP halves:
   read [m, 2i], write [m, i]. *)
let activation_time (spec : Spec.t) ~m ~i =
  spec.Spec.overheads.kernel_launch
  +. Cost.memory_pass_time spec ~sms:spec.Spec.gpu.num_sms
       ~bytes:(float_of_int m *. float_of_int (3 * i) *. Cost.dtype_bytes)

(* Full tensor-parallel MLP: AG + GEMM, activation, GEMM + RS
   (Figure 1). *)
let mlp_time (spec : Spec.t) ~world_size ~(shape : Tilelink_workloads.Shapes.mlp) =
  let m = shape.Tilelink_workloads.Shapes.s in
  let h = shape.Tilelink_workloads.Shapes.h in
  let i = shape.Tilelink_workloads.Shapes.i in
  let i_per_rank = i / world_size in
  ag_gemm_time spec ~world_size ~m ~k:h ~n:(2 * i_per_rank)
  +. activation_time spec ~m ~i:i_per_rank
  +. gemm_rs_time spec ~world_size ~m ~k:i_per_rank ~n:h
