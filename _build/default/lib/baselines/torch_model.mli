(** PyTorch end-to-end baseline for Figure 11: every layer component
    non-overlapped, assembled component-for-component like the
    TileLink model. *)

open Tilelink_machine
module Model = Tilelink_workloads.Model

val torch_attention_time : Spec.t -> Model.llm -> world_size:int -> float
val torch_mlp_time :
  Spec.t -> world_size:int -> hidden:int -> intermediate:int -> float
val torch_moe_time :
  Spec.t -> Model.llm -> experts:int -> topk:int -> world_size:int -> float
val torch_layer_time : Spec.t -> Model.llm -> world_size:int -> float
val torch_model_time : Spec.t -> Model.llm -> world_size:int -> float
