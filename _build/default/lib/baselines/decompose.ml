(* Operator-decomposition baseline (Async-TP PyTorch / Dist-Einsum /
   Centauri style).

   The operator is split into [chunks] slices dispatched on two
   streams: communication chunk i on the comm stream, compute chunk i
   on the compute stream once its data has landed.  Every chunk
   boundary costs a host-driven synchronization, and the chunked GEMMs
   lose efficiency to wave quantization — the two effects §2.2 blames
   for decomposition being slower than not overlapping at all. *)

open Tilelink_machine

(* Classic two-stream pipeline makespan: comm chunks serialize on the
   comm stream, compute chunk i starts at
   max(comm_done(i), compute_done(i-1)) + host_sync. *)
let pipeline_makespan ~comm_times ~compute_times ~host_sync ~launch =
  let comm_done = ref 0.0 in
  let compute_done = ref launch in
  List.iter2
    (fun comm compute ->
      comm_done := !comm_done +. launch +. comm;
      let start = Float.max !comm_done !compute_done +. host_sync in
      compute_done := start +. compute)
    comm_times compute_times;
  !compute_done

(* Chunked AG + GEMM: the gather is split rank-by-rank (each chunk
   moves one remote shard), the GEMM into [world_size] row slices. *)
(* Async-TP splits finer than one chunk per rank to create overlap
   opportunities; every chunk boundary costs a record + wait event pair
   on the host. *)
let chunks_of_world world_size = 2 * world_size

let ag_gemm_time (spec : Spec.t) ~world_size ~m ~k ~n =
  let chunks = chunks_of_world world_size in
  let chunk_m = m / chunks in
  let shard_bytes =
    float_of_int chunk_m *. float_of_int k *. Cost.dtype_bytes
  in
  let comm_times =
    (* The local chunks need no transfer, the rest are P2P copies. *)
    List.init chunks (fun i ->
        if i < chunks / world_size then 0.0
        else
          shard_bytes /. (spec.Spec.interconnect.nvlink_gbps *. 1.0e3)
          +. spec.Spec.interconnect.nvlink_latency
          +. spec.Spec.overheads.collective_setup)
  in
  let chunk_gemm =
    Cost.gemm_kernel_time spec ~sms:spec.Spec.gpu.num_sms ~m:chunk_m ~n ~k
      ~tm:128 ~tn:128
  in
  let compute_times = List.init chunks (fun _ -> chunk_gemm) in
  pipeline_makespan ~comm_times ~compute_times
    ~host_sync:(2.0 *. spec.Spec.overheads.host_sync)
    ~launch:spec.Spec.overheads.kernel_launch

(* Chunked GEMM + RS: GEMM row-slice i followed by a reduce-scatter of
   that slice (comm after compute, so the pipeline is mirrored). *)
let gemm_rs_time (spec : Spec.t) ~world_size ~m ~k ~n =
  let chunks = chunks_of_world world_size in
  let chunk_m = m / chunks in
  let chunk_gemm =
    Cost.gemm_kernel_time spec ~sms:spec.Spec.gpu.num_sms ~m:chunk_m ~n ~k
      ~tm:128 ~tn:128
  in
  let chunk_bytes =
    (* each chunk's reduce-scatter moves (R-1)/R of the slice *)
    float_of_int (world_size - 1)
    /. float_of_int world_size
    *. float_of_int chunk_m *. float_of_int n *. Cost.dtype_bytes
  in
  let chunk_comm =
    (chunk_bytes /. (spec.Spec.interconnect.nvlink_gbps *. 1.0e3))
    +. spec.Spec.interconnect.nvlink_latency
    +. spec.Spec.overheads.collective_setup
    +. Cost.memory_pass_time spec ~sms:spec.Spec.gpu.num_sms
         ~bytes:(3.0 *. chunk_bytes)
  in
  (* Mirror the pipeline: compute feeds comm. *)
  pipeline_makespan
    ~comm_times:(List.init chunks (fun _ -> chunk_gemm))
    ~compute_times:(List.init chunks (fun _ -> chunk_comm))
    ~host_sync:(2.0 *. spec.Spec.overheads.host_sync)
    ~launch:spec.Spec.overheads.kernel_launch

let mlp_time (spec : Spec.t) ~world_size ~(shape : Tilelink_workloads.Shapes.mlp) =
  let m = shape.Tilelink_workloads.Shapes.s in
  let h = shape.Tilelink_workloads.Shapes.h in
  let i = shape.Tilelink_workloads.Shapes.i in
  let i_per_rank = i / world_size in
  ag_gemm_time spec ~world_size ~m ~k:h ~n:(2 * i_per_rank)
  +. Nonoverlap.activation_time spec ~m ~i:i_per_rank
  +. gemm_rs_time spec ~world_size ~m ~k:i_per_rank ~n:h
