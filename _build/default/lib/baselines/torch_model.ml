(* PyTorch end-to-end baseline for Figure 11: every layer component
   runs non-overlapped (NCCL collective, host sync, cuBLAS/flash
   kernel), mirroring Model's TileLink assembly component for
   component. *)

open Tilelink_machine
module Model = Tilelink_workloads.Model
module Moe = Tilelink_workloads.Moe
module Attention = Tilelink_workloads.Attention
module Collective = Tilelink_comm.Collective

let torch_attention_time (spec : Spec.t) llm ~world_size =
  (* NCCL AllGather of KV followed by a (flash, SDPA-style) attention
     kernel — fused attention but no communication overlap. *)
  let a = Model.attention_spec llm ~world_size in
  Attention_baselines.kv_allgather_time spec a
  +. Attention.flash_only_time spec a ~config:Model.attention_config
  +. spec.Spec.overheads.host_sync

let torch_mlp_time (spec : Spec.t) ~world_size ~hidden ~intermediate =
  let ipr = intermediate / world_size in
  Nonoverlap.ag_gemm_time spec ~world_size ~m:Model.tokens ~k:hidden
    ~n:(2 * ipr)
  +. Nonoverlap.activation_time spec ~m:Model.tokens ~i:ipr
  +. Nonoverlap.gemm_rs_time spec ~world_size ~m:Model.tokens ~k:ipr
       ~n:hidden

let torch_moe_time (spec : Spec.t) llm ~experts ~topk ~world_size =
  let moe = Model.moe_spec llm ~experts ~topk ~world_size in
  let route = Moe.routing moe ~seed:7 in
  (* PyTorch MoE with a grouped GEMM but unfused gather/scatter (the
     CUTLASS path of Figure 9) — a reasonable production baseline,
     between fully-eager dispatch and vLLM's fused kernels. *)
  Moe_baselines.cutlass_part1 spec moe route
  +. Moe_baselines.act_time spec moe
  +. Moe_baselines.cutlass_part2 spec moe route

let torch_layer_time (spec : Spec.t) llm ~world_size =
  let h = llm.Model.hidden in
  let qkv =
    Nonoverlap.ag_gemm_time spec ~world_size ~m:Model.tokens ~k:h
      ~n:(3 * h / world_size)
  in
  let o_proj =
    Nonoverlap.gemm_rs_time spec ~world_size ~m:Model.tokens
      ~k:(h / world_size) ~n:h
  in
  let attn = torch_attention_time spec llm ~world_size in
  let ffn =
    match llm.Model.ffn with
    | Model.Dense ->
      torch_mlp_time spec ~world_size ~hidden:h
        ~intermediate:llm.Model.intermediate
    | Model.Moe_ffn { experts; topk; shared_i } ->
      let moe = torch_moe_time spec llm ~experts ~topk ~world_size in
      let shared =
        if shared_i = 0 then 0.0
        else torch_mlp_time spec ~world_size ~hidden:h ~intermediate:shared_i
      in
      moe +. shared
  in
  qkv +. attn +. o_proj +. ffn

let torch_model_time spec llm ~world_size =
  float_of_int llm.Model.layers *. torch_layer_time spec llm ~world_size
