(* Attention baselines for Figure 10.

   - [torch_time]: non-overlapping PyTorch — NCCL AllGather of KV
     followed by eager (unfused) attention that materializes the score
     matrix in HBM; memory-bound at long context.
   - [ring_attention_time]: RingAttention — blockwise attention on the
     local KV chunk while the next chunk is exchanged P2P.  Each of the
     R steps is host-coordinated (launch + sync), and the blockwise
     kernels on 1/R-sized chunks run below peak flash efficiency. *)

open Tilelink_machine
module Collective = Tilelink_comm.Collective
module Attention = Tilelink_workloads.Attention

let kv_allgather_time (spec : Spec.t) (a : Attention.spec) =
  let spr = a.Attention.seq / a.Attention.world_size in
  let bytes =
    2.0 (* K and V *)
    *. float_of_int (a.Attention.batch_heads * spr)
    *. float_of_int a.Attention.head_dim *. Cost.dtype_bytes
  in
  Collective.standalone_time spec ~world_size:a.Attention.world_size
    ~kind:Collective.Allgather ~algo:Collective.Ring ~bytes_per_shard:bytes

let torch_time (spec : Spec.t) (a : Attention.spec) =
  let spr = a.Attention.seq / a.Attention.world_size in
  kv_allgather_time spec a
  +. Cost.unfused_attention_time spec ~batch_heads:a.Attention.batch_heads
       ~sq:spr ~skv:a.Attention.seq ~d:a.Attention.head_dim
  +. spec.Spec.overheads.host_sync

(* RingAttention blockwise efficiency relative to a fused single-kernel
   flash implementation. *)
let ring_block_efficiency = 0.6

let ring_attention_time (spec : Spec.t) (a : Attention.spec) =
  let r = a.Attention.world_size in
  let spr = a.Attention.seq / r in
  let z = float_of_int a.Attention.batch_heads in
  let d = float_of_int a.Attention.head_dim in
  (* Per-step blockwise attention: local queries against one KV chunk. *)
  let step_flops = 4.0 *. z *. float_of_int spr *. float_of_int spr *. d in
  let rate =
    float_of_int spec.Spec.gpu.num_sms
    *. spec.Spec.gpu.flops_per_sm *. 0.85 *. ring_block_efficiency
  in
  let step_compute = step_flops /. rate in
  (* Per-step P2P exchange of the KV chunk to the ring neighbor. *)
  let step_bytes = 2.0 *. z *. float_of_int spr *. d *. Cost.dtype_bytes in
  let step_comm =
    (step_bytes /. (spec.Spec.interconnect.nvlink_gbps *. 1.0e3))
    +. spec.Spec.interconnect.nvlink_latency
  in
  (* Each step is a separate host-coordinated kernel: overlap inside a
     step, synchronization between steps. *)
  let per_step =
    Float.max step_compute step_comm
    +. spec.Spec.overheads.kernel_launch
    +. spec.Spec.overheads.host_sync
  in
  (float_of_int r *. per_step) +. spec.Spec.overheads.collective_setup

type overlap_report = {
  comp_only : float;
  comm_only : float;
  overlapped : float;
  ratio : float;  (* (comp + comm - overlapped) / comm *)
}

let overlap_report ~comp_only ~comm_only ~overlapped =
  {
    comp_only;
    comm_only;
    overlapped;
    ratio = (comp_only +. comm_only -. overlapped) /. comm_only;
  }
