(* MoE baselines for Figure 9.

   - [cublas_*]: one GEMM kernel launch per expert, gather/scatter as
     separate memory-bound kernels, NCCL collectives.  With 32 experts
     the per-expert launches and wave-quantization losses dominate —
     this is the 10-20x-slower bar of Figure 9.
   - [cutlass_*]: a single grouped-GEMM kernel (no per-expert
     launches), but gather/scatter still run as separate passes.
   - [vllm_*]: gather/scatter fused into the grouped GEMM (the 9.8x
     fusion win the paper quotes), but no communication overlap.

   All share the operator-centric collectives of lib/comm. *)

open Tilelink_machine
open Tilelink_tensor
module Collective = Tilelink_comm.Collective
module Moe = Tilelink_workloads.Moe
module Sh = Tilelink_workloads.Shapes

let dtype = Cost.dtype_bytes

let spec_of_shape (shape : Sh.moe) ~world_size =
  {
    Moe.tokens = shape.Sh.moe_s;
    hidden = shape.Sh.moe_h;
    intermediate = shape.Sh.moe_i;
    experts = shape.Sh.experts;
    topk = shape.Sh.topk;
    world_size;
  }

let ag_time (spec : Spec.t) (moe : Moe.spec) =
  let bytes =
    float_of_int (moe.Moe.tokens / moe.Moe.world_size)
    *. float_of_int moe.Moe.hidden *. dtype
  in
  Collective.standalone_time spec ~world_size:moe.Moe.world_size
    ~kind:Collective.Allgather ~algo:Collective.Ring ~bytes_per_shard:bytes

let rs_time (spec : Spec.t) (moe : Moe.spec) =
  let bytes =
    float_of_int (moe.Moe.tokens / moe.Moe.world_size)
    *. float_of_int moe.Moe.hidden *. dtype
  in
  Collective.standalone_time spec ~world_size:moe.Moe.world_size
    ~kind:Collective.Reducescatter ~algo:Collective.Ring
    ~bytes_per_shard:bytes

(* A memory-bound gather/scatter pass over the permuted activation
   matrix: read + write. *)
let permute_pass_time (spec : Spec.t) (moe : Moe.spec) ~cols =
  spec.Spec.overheads.kernel_launch
  +. Cost.memory_pass_time spec ~sms:spec.Spec.gpu.num_sms
       ~bytes:
         (2.0
         *. float_of_int (moe.Moe.tokens * moe.Moe.topk)
         *. float_of_int cols *. dtype)

(* Top-k weighted reduction: read topk rows, write one. *)
let topk_reduce_time (spec : Spec.t) (moe : Moe.spec) =
  spec.Spec.overheads.kernel_launch
  +. Cost.memory_pass_time spec ~sms:spec.Spec.gpu.num_sms
       ~bytes:
         (float_of_int ((moe.Moe.topk + 1) * moe.Moe.tokens)
         *. float_of_int moe.Moe.hidden *. dtype)

(* One cuBLAS GEMM per expert, eager-PyTorch style: every expert pays
   mask construction + nonzero + index_select + GEMM + index_add — a
   handful of kernel launches, a host round trip, and two extra memory
   passes over its token batch — plus wave quantization on the (often
   tiny) expert GEMM itself.  This dispatch tax is what makes the
   cuBLAS+NCCL bars of Figure 9 collapse at E = 32. *)
let eager_launches_per_expert = 4.0

let per_expert_gemm_time (spec : Spec.t) route ~n ~k =
  let loads = Routing.expert_load route in
  Array.fold_left
    (fun acc count ->
      if count = 0 then acc
      else
        acc
        +. (eager_launches_per_expert *. spec.Spec.overheads.kernel_launch)
        +. spec.Spec.overheads.host_sync
        +. Cost.memory_pass_time spec ~sms:spec.Spec.gpu.num_sms
             ~bytes:(2.0 *. float_of_int count *. float_of_int k *. dtype)
        +. Cost.gemm_kernel_time spec ~sms:spec.Spec.gpu.num_sms ~m:count ~n
             ~k ~tm:128 ~tn:128)
    0.0 loads

(* Grouped GEMM: a single launch; tiles of all experts share waves. *)
let group_gemm_time (spec : Spec.t) route ~n ~k =
  let loads = Routing.expert_load route in
  let tiles =
    Array.fold_left
      (fun acc count ->
        acc + (((count + 127) / 128) * ((n + 127) / 128)))
      0 loads
  in
  let waves = (tiles + spec.Spec.gpu.num_sms - 1) / spec.Spec.gpu.num_sms in
  spec.Spec.overheads.kernel_launch
  +. (float_of_int waves *. Cost.gemm_tile_time spec ~tm:128 ~tn:128 ~k)

(* ---- Part 1: AG + Gather + GroupGEMM ---- *)

let ipr moe = moe.Moe.intermediate / moe.Moe.world_size

let cublas_part1 (spec : Spec.t) moe route =
  ag_time spec moe
  +. permute_pass_time spec moe ~cols:moe.Moe.hidden
  +. per_expert_gemm_time spec route ~n:(ipr moe) ~k:moe.Moe.hidden
  +. spec.Spec.overheads.host_sync

let cutlass_part1 (spec : Spec.t) moe route =
  ag_time spec moe
  +. permute_pass_time spec moe ~cols:moe.Moe.hidden
  +. group_gemm_time spec route ~n:(ipr moe) ~k:moe.Moe.hidden
  +. spec.Spec.overheads.host_sync

let vllm_part1 (spec : Spec.t) moe route =
  ag_time spec moe
  +. group_gemm_time spec route ~n:(ipr moe) ~k:moe.Moe.hidden
  +. spec.Spec.overheads.host_sync

(* ---- Part 2: GroupGEMM + Scatter + TopkReduce + RS ---- *)

let cublas_part2 (spec : Spec.t) moe route =
  per_expert_gemm_time spec route ~n:moe.Moe.hidden ~k:(ipr moe)
  +. permute_pass_time spec moe ~cols:moe.Moe.hidden
  +. topk_reduce_time spec moe
  +. rs_time spec moe
  +. spec.Spec.overheads.host_sync

let cutlass_part2 (spec : Spec.t) moe route =
  group_gemm_time spec route ~n:moe.Moe.hidden ~k:(ipr moe)
  +. permute_pass_time spec moe ~cols:moe.Moe.hidden
  +. topk_reduce_time spec moe
  +. rs_time spec moe
  +. spec.Spec.overheads.host_sync

let vllm_part2 (spec : Spec.t) moe route =
  group_gemm_time spec route ~n:moe.Moe.hidden ~k:(ipr moe)
  +. topk_reduce_time spec moe
  +. rs_time spec moe
  +. spec.Spec.overheads.host_sync

(* Intermediate activation between the parts (same for all methods). *)
let act_time (spec : Spec.t) moe =
  spec.Spec.overheads.kernel_launch
  +. Cost.memory_pass_time spec ~sms:spec.Spec.gpu.num_sms
       ~bytes:
         (2.0
         *. float_of_int (moe.Moe.tokens * moe.Moe.topk)
         *. float_of_int (ipr moe) *. dtype)

let cublas_full spec moe route =
  cublas_part1 spec moe route +. act_time spec moe
  +. cublas_part2 spec moe route

let cutlass_full spec moe route =
  cutlass_part1 spec moe route +. act_time spec moe
  +. cutlass_part2 spec moe route

let vllm_full spec moe route =
  vllm_part1 spec moe route +. act_time spec moe
  +. vllm_part2 spec moe route
