(** MoE baselines for Figure 9: eager per-expert cuBLAS, unfused
    grouped-GEMM CUTLASS, and vLLM-style fused grouped GEMM — all with
    operator-centric collectives and no overlap. *)

open Tilelink_machine
open Tilelink_tensor
module Moe = Tilelink_workloads.Moe

val spec_of_shape :
  Tilelink_workloads.Shapes.moe -> world_size:int -> Moe.spec

val ag_time : Spec.t -> Moe.spec -> float
val rs_time : Spec.t -> Moe.spec -> float
val permute_pass_time : Spec.t -> Moe.spec -> cols:int -> float
val topk_reduce_time : Spec.t -> Moe.spec -> float
val per_expert_gemm_time : Spec.t -> Routing.t -> n:int -> k:int -> float
val group_gemm_time : Spec.t -> Routing.t -> n:int -> k:int -> float
val act_time : Spec.t -> Moe.spec -> float

val cublas_part1 : Spec.t -> Moe.spec -> Routing.t -> float
val cutlass_part1 : Spec.t -> Moe.spec -> Routing.t -> float
val vllm_part1 : Spec.t -> Moe.spec -> Routing.t -> float

val cublas_part2 : Spec.t -> Moe.spec -> Routing.t -> float
val cutlass_part2 : Spec.t -> Moe.spec -> Routing.t -> float
val vllm_part2 : Spec.t -> Moe.spec -> Routing.t -> float

val cublas_full : Spec.t -> Moe.spec -> Routing.t -> float
val cutlass_full : Spec.t -> Moe.spec -> Routing.t -> float
val vllm_full : Spec.t -> Moe.spec -> Routing.t -> float
