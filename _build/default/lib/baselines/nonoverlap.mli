(** Non-overlapping baseline (cuBLAS + NCCL): serialized operator-
    centric collectives and full-chip compute kernels.  All times in
    µs. *)

open Tilelink_machine

val gemm_time : Spec.t -> m:int -> n:int -> k:int -> float
val ag_gemm_time : Spec.t -> world_size:int -> m:int -> k:int -> n:int -> float
val gemm_rs_time : Spec.t -> world_size:int -> m:int -> k:int -> n:int -> float
val activation_time : Spec.t -> m:int -> i:int -> float
val mlp_time :
  Spec.t -> world_size:int -> shape:Tilelink_workloads.Shapes.mlp -> float
