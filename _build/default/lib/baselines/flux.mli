(** FLUX-style fusion baseline: the *coupled* point of the design
    space (communication inherits the GEMM's tiling and order, data
    movement on SM-resident copy CTAs), executed by the same runtime
    as TileLink, with a hand-tuned mainloop bonus. *)

open Tilelink_core
open Tilelink_machine

val hand_tuned : float
val comm_sms : int
val ag_gemm_config : world_size:int -> Design_space.config
val gemm_rs_config : world_size:int -> Design_space.config

val ag_gemm_time : Spec.t -> world_size:int -> m:int -> k:int -> n:int -> float
val gemm_rs_time : Spec.t -> world_size:int -> m:int -> k:int -> n:int -> float
val mlp_time :
  Spec.t -> world_size:int -> shape:Tilelink_workloads.Shapes.mlp -> float
