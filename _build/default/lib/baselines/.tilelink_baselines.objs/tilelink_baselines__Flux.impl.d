lib/baselines/flux.ml: Cluster Design_space Nonoverlap Runtime Spec Tile Tilelink_core Tilelink_machine Tilelink_workloads
