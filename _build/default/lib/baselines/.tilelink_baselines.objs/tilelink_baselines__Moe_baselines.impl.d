lib/baselines/moe_baselines.ml: Array Cost Routing Spec Tilelink_comm Tilelink_machine Tilelink_tensor Tilelink_workloads
