lib/baselines/decompose.ml: Cost Float List Nonoverlap Spec Tilelink_machine Tilelink_workloads
