lib/baselines/decompose.mli: Spec Tilelink_machine Tilelink_workloads
