lib/baselines/attention_baselines.ml: Cost Float Spec Tilelink_comm Tilelink_machine Tilelink_workloads
