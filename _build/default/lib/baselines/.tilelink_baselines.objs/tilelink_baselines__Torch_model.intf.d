lib/baselines/torch_model.mli: Spec Tilelink_machine Tilelink_workloads
