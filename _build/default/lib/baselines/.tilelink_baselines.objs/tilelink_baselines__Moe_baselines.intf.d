lib/baselines/moe_baselines.mli: Routing Spec Tilelink_machine Tilelink_tensor Tilelink_workloads
