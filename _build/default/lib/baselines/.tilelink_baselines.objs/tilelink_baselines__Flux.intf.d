lib/baselines/flux.mli: Design_space Spec Tilelink_core Tilelink_machine Tilelink_workloads
