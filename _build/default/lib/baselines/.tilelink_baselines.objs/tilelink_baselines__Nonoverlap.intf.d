lib/baselines/nonoverlap.mli: Spec Tilelink_machine Tilelink_workloads
