lib/baselines/nonoverlap.ml: Cost Spec Tilelink_comm Tilelink_machine Tilelink_workloads
