(** Operator-decomposition baseline (Async-TP PyTorch style): chunked
    two-stream pipelines with host-driven synchronization at every
    chunk boundary and wave-quantization losses on the chunked GEMMs. *)

open Tilelink_machine

val chunks_of_world : int -> int

val pipeline_makespan :
  comm_times:float list ->
  compute_times:float list ->
  host_sync:float ->
  launch:float ->
  float
(** Two-stream pipeline: comm chunks serialize, compute chunk i starts
    at [max (comm_done i) (compute_done (i-1)) + host_sync]. *)

val ag_gemm_time : Spec.t -> world_size:int -> m:int -> k:int -> n:int -> float
val gemm_rs_time : Spec.t -> world_size:int -> m:int -> k:int -> n:int -> float
val mlp_time :
  Spec.t -> world_size:int -> shape:Tilelink_workloads.Shapes.mlp -> float
