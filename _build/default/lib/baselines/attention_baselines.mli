(** Attention baselines for Figure 10: eager PyTorch (AG + unfused
    attention) and RingAttention (per-step blockwise attention with
    P2P exchange). *)

open Tilelink_machine
module Attention = Tilelink_workloads.Attention

val kv_allgather_time : Spec.t -> Attention.spec -> float
val torch_time : Spec.t -> Attention.spec -> float
val ring_block_efficiency : float
val ring_attention_time : Spec.t -> Attention.spec -> float

type overlap_report = {
  comp_only : float;
  comm_only : float;
  overlapped : float;
  ratio : float;  (** (comp + comm - overlapped) / comm, §7.2 *)
}

val overlap_report :
  comp_only:float -> comm_only:float -> overlapped:float -> overlap_report
