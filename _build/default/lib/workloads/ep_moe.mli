(** Expert-parallel MoE with overlapped All2All dispatch and combine:
    experts are sharded across ranks, token-slots travel in
    (expert, source-rank) segments, and segment-aligned FFN tiles start
    as soon as their segment lands. *)

open Tilelink_core
open Tilelink_tensor
open Tilelink_machine

type spec = {
  tokens : int;
  hidden : int;
  intermediate : int;
  experts : int;
  topk : int;
  world_size : int;
}

val tokens_per_rank : spec -> int
val experts_per_rank : spec -> int
val expert_owner : spec -> int -> int
val token_owner : spec -> int -> int
val routing : spec -> seed:int -> Routing.t

type segment = {
  expert : int;
  src : int;
  entries : (int * int) list;
  recv_lo : int;
}

type layout = {
  segments_of_rank : segment list array;
  recv_rows : int array;
}

val build_layout : spec -> Routing.t -> layout
val combine_pos : spec -> int * int -> int

val alloc : spec -> Routing.t -> seed:int -> Memory.t * layout
val reference : Memory.t -> spec -> Routing.t -> rank:int -> Tensor.t

type config = {
  tile_rows : int;
  comm_binding : Design_space.resource_binding;
}

val default_config : config

val program : ?config:config -> spec -> Routing.t -> spec_gpu:Spec.t -> Program.t
