(** End-to-end LLM assembly for Figure 11: eight models (five dense,
    three MoE), batch 4 x seq 8192, tensor parallel in a node, data
    parallel across nodes. *)

open Tilelink_machine

type ffn = Dense | Moe_ffn of { experts : int; topk : int; shared_i : int }

type llm = {
  model_name : string;
  layers : int;
  hidden : int;
  intermediate : int;
  heads : int;
  head_dim : int;
  ffn : ffn;
}

val models : llm list
val batch : int
val seq_len : int
val tokens : int
val is_moe : llm -> bool
val layer_params : llm -> float

val attention_spec : llm -> world_size:int -> Attention.spec
val attention_config : Attention.config
val moe_spec : llm -> experts:int -> topk:int -> world_size:int -> Moe.spec

val tilelink_attention_time : Spec.t -> llm -> world_size:int -> float
val tilelink_ag_gemm : Spec.t -> world_size:int -> m:int -> k:int -> n:int -> float
val tilelink_gemm_rs : Spec.t -> world_size:int -> m:int -> k:int -> n:int -> float
val tilelink_mlp_time :
  Spec.t -> world_size:int -> hidden:int -> intermediate:int -> float
val tilelink_moe_time :
  Spec.t -> llm -> experts:int -> topk:int -> world_size:int -> float
val tilelink_layer_time : Spec.t -> llm -> world_size:int -> float
val tilelink_model_time : Spec.t -> llm -> world_size:int -> float

val dp_overhead_per_layer : Spec.t -> llm -> world_size:int -> float
val two_node_time :
  Spec.t -> llm -> world_size:int -> single_node_time:float -> float
