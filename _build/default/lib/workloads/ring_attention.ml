(* RingAttention expressed with tile-centric primitives.

   The paper benchmarks RingAttention as an external library; here it
   is *also* built from the same primitives as everything else, which
   demonstrates that peer signalling expresses KV-rotation schedules
   and gives a numerically-validated implementation:

   - each rank starts from its own KV shard in slot 0 of a double
     buffer and, for R-1 steps, pushes the block it just used to the
     next rank's other slot;
   - block arrival and block consumption are peer signals: the sender
     may not overwrite the destination slot before every consumer tile
     of the *previous* step has read it;
   - flash-attention state accumulates across steps with the correct
     global kv offsets, so causal masking works unchanged.

   Signal layout (peer channels): arrival of step s = channel 2s
   (src = previous rank, or self for s = 0); consumption of step s =
   channel 2s+1 (notified tile-by-tile toward the previous rank, which
   is the next writer of that slot). *)

open Tilelink_core
open Tilelink_tensor
open Tilelink_machine

let access = Instr.access

type config = { q_tile : int; comm_sms : int }

let default_config = { q_tile = 128; comm_sms = 8 }

(* Segment held by [rank] at [step]: blocks rotate toward the next
   rank, so the block at step s originated at (rank - s). *)
let segment_at (spec : Attention.spec) ~rank ~step =
  (rank - step + spec.Attention.world_size) mod spec.Attention.world_size

let buffer_names slot = (Printf.sprintf "k_ring%d" slot, Printf.sprintf "v_ring%d" slot)

let alloc spec ~seed =
  let memory = Attention.alloc spec ~seed in
  let spr = Attention.s_per_rank spec in
  let rows = spec.Attention.batch_heads * spr in
  for rank = 0 to spec.Attention.world_size - 1 do
    for slot = 0 to 1 do
      let k_name, v_name = buffer_names slot in
      ignore
        (Memory.alloc memory ~rank ~name:k_name
           (Shape.of_list [ rows; spec.Attention.head_dim ]));
      ignore
        (Memory.alloc memory ~rank ~name:v_name
           (Shape.of_list [ rows; spec.Attention.head_dim ]))
    done
  done;
  memory

let reference = Attention.reference

let program ?(config = default_config) (spec : Attention.spec)
    ~(spec_gpu : Spec.t) =
  let r = spec.Attention.world_size in
  let spr = Attention.s_per_rank spec in
  let d = spec.Attention.head_dim in
  let z_count = spec.Attention.batch_heads in
  if spr mod config.q_tile <> 0 then
    invalid_arg "Ring_attention.program: q tile must divide the shard";
  let m_tiles = spr / config.q_tile in
  let n_tasks = z_count * m_tiles in
  let arrival step = 2 * step in
  let consumed step = (2 * step) + 1 in
  let rows = z_count * spr in
  let plans =
    Array.init r (fun rank ->
        let next = (rank + 1) mod r in
        let prev = (rank - 1 + r) mod r in
        (* --- communication role --- *)
        let comm_step s =
          let slot = s mod 2 in
          let k_name, v_name = buffer_names slot in
          let dst_slot = (s + 1) mod 2 in
          let dk_name, dv_name = buffer_names dst_slot in
          let seed_copy =
            (* Step 0 stages the local shard into slot 0. *)
            if s > 0 then []
            else
              List.map
                (fun (src, dst) ->
                  Primitive.Rank_copy_data
                    {
                      src = access ~buffer:src ~row:(0, rows) ~col:(0, d) ();
                      dst = access ~buffer:dst ~row:(0, rows) ~col:(0, d) ();
                      action = None;
                    })
                [ ("k_shard", k_name); ("v_shard", v_name) ]
              @ [
                  Primitive.Peer_tile_notify
                    {
                      tile_key = arrival 0;
                      dst = rank;
                      amount = 1;
                      releases =
                        [
                          access ~buffer:k_name ~row:(0, rows) ~col:(0, d) ();
                          access ~buffer:v_name ~row:(0, rows) ~col:(0, d) ();
                        ];
                    };
                ]
          in
          let wait_arrival =
            (* To forward block s we must hold it. *)
            [
              Primitive.Peer_tile_wait
                {
                  tile_key = arrival s;
                  src = (if s = 0 then rank else prev);
                  threshold = 1;
                  guards =
                    [ access ~buffer:k_name ~row:(0, rows) ~col:(0, d) () ];
                };
            ]
          in
          let wait_slot_free =
            (* The destination slot was read by next's step s-1. *)
            if s = 0 then []
            else
              [
                Primitive.Peer_tile_wait
                  {
                    tile_key = consumed (s - 1);
                    src = next;
                    threshold = n_tasks;
                    guards = [];
                  };
              ]
          in
          let pushes =
            List.map
              (fun (src, dst) ->
                Primitive.Tile_push_data
                  {
                    src = access ~buffer:src ~row:(0, rows) ~col:(0, d) ();
                    dst_rank = next;
                    dst = access ~buffer:dst ~row:(0, rows) ~col:(0, d) ();
                  })
              [ (k_name, dk_name); (v_name, dv_name) ]
          in
          let announce =
            [
              Primitive.Peer_tile_notify
                {
                  tile_key = arrival (s + 1);
                  dst = next;
                  amount = 1;
                  releases =
                    [
                      access ~rank:next ~buffer:dk_name ~row:(0, rows)
                        ~col:(0, d) ();
                      access ~rank:next ~buffer:dv_name ~row:(0, rows)
                        ~col:(0, d) ();
                    ];
                };
            ]
          in
          {
            Program.label = Printf.sprintf "ring-send[%d]" s;
            instrs =
              Lower.lower
                {
                  Lower.mapping =
                    Mapping.static ~extent:r ~ranks:r ~channels_per_rank:1
                      ~tile:1 ();
                  rank;
                  world_size = r;
                }
                (seed_copy @ wait_arrival @ wait_slot_free @ pushes
               @ announce);
          }
        in
        let comm_tasks = List.init (r - 1) comm_step in
        (* --- computation role: one task per (z, m-tile, step) so that
           workers never hold a whole ring loop (a looping task would
           deadlock whenever tiles outnumber workers: the consumed
           threshold of a step counts *every* tile).  Flash state
           persists across a tile's step tasks through a shared
           closure; online softmax is arrival-order insensitive, so
           concurrent steps of one tile are safe. --- *)
        let attn_task z mt =
          let qlo = (z * spr) + (mt * config.q_tile) in
          let qhi = qlo + config.q_tile in
          let tile_mask =
            if spec.Attention.causal then
              Nn.Causal
                { q_offset = (rank * spr) + (mt * config.q_tile) }
            else Nn.No_mask
          in
          let state = ref None in
          let get_state () =
            match !state with
            | Some s -> s
            | None ->
              let s = Nn.Flash.create ~mask:tile_mask ~m:config.q_tile ~d () in
              state := Some s;
              s
          in
          let step_stmts s =
            let slot = s mod 2 in
            let k_name, v_name = buffer_names slot in
            let seg = segment_at spec ~rank ~step:s in
            let action memory ~rank =
              let q_block =
                Tensor.row_slice
                  (Memory.find memory ~rank ~name:"q")
                  ~lo:qlo ~hi:qhi
              in
              let k_block =
                Tensor.row_slice
                  (Memory.find memory ~rank ~name:k_name)
                  ~lo:(z * spr)
                  ~hi:((z + 1) * spr)
              in
              let v_block =
                Tensor.row_slice
                  (Memory.find memory ~rank ~name:v_name)
                  ~lo:(z * spr)
                  ~hi:((z + 1) * spr)
              in
              Nn.Flash.update (get_state ()) q_block k_block v_block
                ~kv_offset:(seg * spr)
            in
            [
              Primitive.Peer_tile_wait
                {
                  tile_key = arrival s;
                  src = (if s = 0 then rank else prev);
                  threshold = 1;
                  guards =
                    [ access ~buffer:k_name ~row:(0, rows) ~col:(0, d) () ];
                };
              Primitive.Load
                (access ~buffer:k_name ~row:(z * spr, (z + 1) * spr)
                   ~col:(0, d) ());
              Primitive.Compute
                {
                  label = Printf.sprintf "ring-flash[z%d,m%d,s%d]" z mt s;
                  cost =
                    Instr.Attention_tile { tq = config.q_tile; tkv = spr; d };
                  reads =
                    [
                      access ~buffer:k_name ~row:(z * spr, (z + 1) * spr)
                        ~col:(0, d) ();
                    ];
                  writes = [];
                  action = Some action;
                };
            ]
            @
            if s = r - 1 then []
            else
              [
                Primitive.Peer_tile_notify
                  { tile_key = consumed s; dst = prev; amount = 1;
                    releases = [] };
              ]
          in
          let finish_action memory ~rank =
            Tensor.set_row_slice
              (Memory.find memory ~rank ~name:"o")
              ~lo:qlo
              (Nn.Flash.finish (get_state ()))
          in
          let step_task s =
            let stmts =
              step_stmts s
              @
              if s < r - 1 then []
              else
                [
                  Primitive.Compute
                    {
                      label = Printf.sprintf "ring-finish[z%d,m%d]" z mt;
                      cost =
                        Instr.Memory_tile
                          { rows = config.q_tile; cols = d; passes = 1 };
                      reads = [];
                      writes =
                        [ access ~buffer:"o" ~row:(qlo, qhi) ~col:(0, d) () ];
                      action = Some finish_action;
                    };
                  Primitive.Store
                    (access ~buffer:"o" ~row:(qlo, qhi) ~col:(0, d) ());
                ]
            in
            {
              Program.label = Printf.sprintf "ring-attn[z%d,m%d,s%d]" z mt s;
              instrs =
                Lower.lower
                  {
                    Lower.mapping =
                      Mapping.static ~extent:r ~ranks:r ~channels_per_rank:1
                        ~tile:1 ();
                    rank;
                    world_size = r;
                  }
                  stmts;
            }
          in
          step_task
        in
        (* Stage-major queue: all tiles of step 0, then step 1, ... *)
        let tile_steps =
          List.concat
            (List.init z_count (fun z ->
                 List.init m_tiles (fun mt -> attn_task z mt)))
        in
        let attn_tasks =
          List.concat
            (List.init r (fun s ->
                 List.map (fun step_task -> step_task s) tile_steps))
        in
        [
          {
            Program.role_name = "ring-comm";
            resource = Program.Sm_partition config.comm_sms;
            lane = Tilelink_sim.Trace.Comm_sm;
            tasks = comm_tasks;
          };
          {
            Program.role_name = "ring-flash";
            resource =
              Program.Sm_partition
                (max 1 (spec_gpu.Spec.gpu.num_sms - config.comm_sms));
            lane = Tilelink_sim.Trace.Compute_sm;
            tasks = attn_tasks;
          };
        ])
  in
  Program.create ~name:"ring_attention" ~world_size:r ~pc_channels:1
    ~peer_channels:(2 * r) plans
