(* Sequence-parallel self-attention: AllGather KV + flash attention
   (Figure 6 of the paper).

   Communication uses *host-side* primitives: a host stream issues
   rank_copy_data transfers (copy engine) segment by segment and
   signals producer channels; the flash-attention kernel's consumer
   tiles wait per KV segment and fold blocks into online-softmax state
   in arrival order.

   Layout: (batch x heads) flattens to a leading z index.
   - "q"       [z * s_per_rank, d]   local queries
   - "k_shard" [z * s_per_rank, d]   local KV shards
   - "v_shard" [z * s_per_rank, d]
   - "k_full"  [z * seq, d]          gathered KV (row = z*seq + j)
   - "v_full"  [z * seq, d]
   - "o"       [z * s_per_rank, d]   output *)

open Tilelink_core
open Tilelink_tensor
open Tilelink_machine

type spec = {
  batch_heads : int;  (* z = batch x heads *)
  seq : int;          (* global KV sequence length *)
  head_dim : int;
  world_size : int;
  causal : bool;
}

let access = Instr.access

let s_per_rank spec = spec.seq / spec.world_size

let alloc spec ~seed =
  let memory = Memory.create ~world_size:spec.world_size in
  let spr = s_per_rank spec in
  let local_rows = spec.batch_heads * spr in
  let full_rows = spec.batch_heads * spec.seq in
  for rank = 0 to spec.world_size - 1 do
    List.iteri
      (fun i name ->
        Memory.bind memory ~rank ~name
          (Tensor.random
             ~seed:(seed + (100 * i) + rank)
             (Shape.of_list [ local_rows; spec.head_dim ])))
      [ "q"; "k_shard"; "v_shard" ];
    List.iter
      (fun name ->
        ignore
          (Memory.alloc memory ~rank ~name
             (Shape.of_list [ full_rows; spec.head_dim ])))
      [ "k_full"; "v_full" ];
    ignore
      (Memory.alloc memory ~rank ~name:"o"
         (Shape.of_list [ local_rows; spec.head_dim ]))
  done;
  memory

(* Gathered K (or V) for one z: shard r contributes rows
   [z*spr, (z+1)*spr) into segment r. *)
let gathered memory spec ~name ~z =
  let spr = s_per_rank spec in
  Tensor.concat_rows
    (List.init spec.world_size (fun r ->
         Tensor.row_slice
           (Memory.find memory ~rank:r ~name)
           ~lo:(z * spr) ~hi:((z + 1) * spr)))

let mask spec ~rank =
  if spec.causal then
    Nn.Causal { q_offset = rank * s_per_rank spec }
  else Nn.No_mask

let reference memory spec ~rank =
  let spr = s_per_rank spec in
  let out =
    Tensor.zeros (Shape.of_list [ spec.batch_heads * spr; spec.head_dim ])
  in
  for z = 0 to spec.batch_heads - 1 do
    let q =
      Tensor.row_slice
        (Memory.find memory ~rank ~name:"q")
        ~lo:(z * spr) ~hi:((z + 1) * spr)
    in
    let k = gathered memory spec ~name:"k_shard" ~z in
    let v = gathered memory spec ~name:"v_shard" ~z in
    Tensor.set_row_slice out ~lo:(z * spr)
      (Nn.attention ~mask:(mask spec ~rank) q k v)
  done;
  out

type config = {
  q_tile : int;   (* query rows per consumer tile *)
  kv_tile : int;  (* KV rows consumed per flash step *)
}

let default_config = { q_tile = 128; kv_tile = 512 }

let program ?(config = default_config) spec ~(spec_gpu : Spec.t) =
  let r = spec.world_size in
  let spr = s_per_rank spec in
  if spr mod config.q_tile <> 0 then
    invalid_arg "Attention.program: q tile must divide the query shard";
  if spec.seq mod config.kv_tile <> 0 then
    invalid_arg "Attention.program: kv tile must divide the sequence";
  if config.kv_tile > spr then
    invalid_arg "Attention.program: kv tile larger than a segment";
  (* One producer tile (and one channel) per rank segment of KV. *)
  let mapping =
    Mapping.static ~extent:spec.seq ~ranks:r ~channels_per_rank:1 ~tile:spr
      ()
  in
  let d = spec.head_dim in
  let plans =
    Array.init r (fun rank ->
        let bc = Block_channel.create ~rank ~world_size:r mapping in
        (* --- host stream: copy-engine AllGather of K and V ---
           One rank_copy_data per (tensor, segment): the copy engine
           moves the whole z-strided segment in a single transfer; the
           strided scatter into the full buffer is the custom data
           action. *)
        let copy_segment src_rank =
          let strided_blit ~shard ~full memory ~rank =
            let src = Memory.find memory ~rank:src_rank ~name:shard in
            let dst = Memory.find memory ~rank ~name:full in
            for z = 0 to spec.batch_heads - 1 do
              Tensor.set_row_slice dst
                ~lo:((z * spec.seq) + (src_rank * spr))
                (Tensor.row_slice src ~lo:(z * spr) ~hi:((z + 1) * spr))
            done
          in
          List.map
            (fun (shard, full) ->
              Primitive.Rank_copy_data
                {
                  src =
                    access ~rank:src_rank ~buffer:shard
                      ~row:(0, spec.batch_heads * spr)
                      ~col:(0, d) ();
                  dst =
                    access ~buffer:full
                      ~row:(src_rank * spr, (src_rank + 1) * spr)
                      ~col:(0, d) ();
                  action = Some (strided_blit ~shard ~full);
                })
            [ ("k_shard", "k_full"); ("v_shard", "v_full") ]
          @ [ Primitive.Producer_tile_notify { tid = src_rank; mode = Primitive.P2p } ]
        in
        let host_tasks =
          (* Own segment first (local copies), then ring order. *)
          List.init r (fun step ->
              let src_rank = (rank + step) mod r in
              {
                Program.label = Printf.sprintf "agkv[%d]" src_rank;
                instrs = Block_channel.lower bc (copy_segment src_rank);
              })
        in
        (* --- flash attention consumer --- *)
        let attn_task z mt =
          let qlo = (z * spr) + (mt * config.q_tile) in
          let qhi = qlo + config.q_tile in
          (* Online-softmax state lives across this task's steps. *)
          let state = ref None in
          let tile_mask =
            if spec.causal then
              Nn.Causal { q_offset = (rank * spr) + (mt * config.q_tile) }
            else Nn.No_mask
          in
          let get_state () =
            match !state with
            | Some s -> s
            | None ->
              let s = Nn.Flash.create ~mask:tile_mask ~m:config.q_tile ~d () in
              state := Some s;
              s
          in
          let kv_steps = spec.seq / config.kv_tile in
          let step_stmts step =
            (* Start at the local segment, walk the ring. *)
            let steps_per_segment = spr / config.kv_tile in
            let segment = (rank + (step / steps_per_segment)) mod r in
            let klo =
              (segment * spr) + (step mod steps_per_segment * config.kv_tile)
            in
            let khi = klo + config.kv_tile in
            let action memory ~rank =
              let state = get_state () in
              let q_block =
                Tensor.row_slice
                  (Memory.find memory ~rank ~name:"q")
                  ~lo:qlo ~hi:qhi
              in
              let k_block =
                Tensor.row_slice
                  (Memory.find memory ~rank ~name:"k_full")
                  ~lo:((z * spec.seq) + klo)
                  ~hi:((z * spec.seq) + khi)
              in
              let v_block =
                Tensor.row_slice
                  (Memory.find memory ~rank ~name:"v_full")
                  ~lo:((z * spec.seq) + klo)
                  ~hi:((z * spec.seq) + khi)
              in
              Nn.Flash.update state q_block k_block v_block ~kv_offset:klo
            in
            [
              Primitive.Consumer_tile_wait
                { lo = klo; hi = khi; buffer = "k_full"; col = (0, d) };
              Primitive.Load
                (access ~buffer:"k_full"
                   ~row:((z * spec.seq) + klo, (z * spec.seq) + khi)
                   ~col:(0, d) ());
              Primitive.Load
                (access ~buffer:"v_full"
                   ~row:((z * spec.seq) + klo, (z * spec.seq) + khi)
                   ~col:(0, d) ());
              Primitive.Compute
                {
                  label = Printf.sprintf "flash[z%d,m%d,s%d]" z mt step;
                  cost =
                    Instr.Attention_tile
                      { tq = config.q_tile; tkv = config.kv_tile; d };
                  reads =
                    [
                      access ~buffer:"k_full"
                        ~row:((z * spec.seq) + klo, (z * spec.seq) + khi)
                        ~col:(0, d) ();
                    ];
                  writes = [];
                  action = Some action;
                };
            ]
          in
          let finish_action memory ~rank =
            let state = get_state () in
            Tensor.set_row_slice
              (Memory.find memory ~rank ~name:"o")
              ~lo:qlo (Nn.Flash.finish state)
          in
          let stmts =
            [
              Primitive.Load (access ~buffer:"q" ~row:(qlo, qhi) ~col:(0, d) ());
            ]
            @ List.concat (List.init kv_steps step_stmts)
            @ [
                Primitive.Compute
                  {
                    label = Printf.sprintf "finish[z%d,m%d]" z mt;
                    cost =
                      Instr.Memory_tile
                        { rows = config.q_tile; cols = d; passes = 1 };
                    reads = [];
                    writes =
                      [ access ~buffer:"o" ~row:(qlo, qhi) ~col:(0, d) () ];
                    action = Some finish_action;
                  };
                Primitive.Store (access ~buffer:"o" ~row:(qlo, qhi) ~col:(0, d) ());
              ]
          in
          {
            Program.label = Printf.sprintf "attn[z%d,m%d]" z mt;
            instrs = Block_channel.lower bc stmts;
          }
        in
        let m_tiles = spr / config.q_tile in
        let attn_tasks =
          List.concat
            (List.init spec.batch_heads (fun z ->
                 List.init m_tiles (fun mt -> attn_task z mt)))
        in
        [
          {
            Program.role_name = "agkv-host";
            resource = Program.Host_stream;
            lane = Tilelink_sim.Trace.Dma;
            tasks = host_tasks;
          };
          {
            Program.role_name = "flash-attn";
            resource = Program.Sm_partition spec_gpu.Spec.gpu.num_sms;
            lane = Tilelink_sim.Trace.Compute_sm;
            tasks = attn_tasks;
          };
        ])
  in
  Program.create ~name:"ag_attention" ~world_size:r
    ~pc_channels:(Mapping.num_channels mapping)
    ~peer_channels:1 plans

(* Compute-only flash attention (no communication), for overlap-ratio
   accounting: ceil(tiles / sms) waves over all (z, q-tile, kv-step)
   work. *)
let flash_only_time (spec_gpu : Spec.t) spec ~(config : config) =
  let spr = s_per_rank spec in
  let q_tiles = spec.batch_heads * (spr / config.q_tile) in
  let steps = spec.seq / config.kv_tile in
  let tile_time =
    Cost.attention_tile_time spec_gpu ~tq:config.q_tile ~tkv:config.kv_tile
      ~d:spec.head_dim
  in
  let sms = spec_gpu.Spec.gpu.num_sms in
  let waves = (q_tiles + sms - 1) / sms in
  spec_gpu.Spec.overheads.kernel_launch
  +. (float_of_int waves *. float_of_int steps *. tile_time)

(* Communication-only time: the host-stream AllGather of K and V. *)
let comm_only_time (spec_gpu : Spec.t) spec =
  let spr = s_per_rank spec in
  let bytes =
    2.0 (* K and V *)
    *. float_of_int (spec.world_size - 1)
    *. float_of_int (spec.batch_heads * spr)
    *. float_of_int spec.head_dim *. Cost.dtype_bytes
  in
  spec_gpu.Spec.overheads.kernel_launch
  +. (bytes /. (spec_gpu.Spec.interconnect.nvlink_gbps *. 1.0e3))
