(** Sequence-parallel self-attention (Figure 6): host-side
    rank_copy_data AllGather of KV overlapped with a blockwise
    flash-attention consumer. *)

open Tilelink_core
open Tilelink_tensor
open Tilelink_machine

type spec = {
  batch_heads : int;  (** z = batch x heads *)
  seq : int;          (** global KV sequence length *)
  head_dim : int;
  world_size : int;
  causal : bool;
}

val s_per_rank : spec -> int
val alloc : spec -> seed:int -> Memory.t
val gathered : Memory.t -> spec -> name:string -> z:int -> Tensor.t
val reference : Memory.t -> spec -> rank:int -> Tensor.t

type config = {
  q_tile : int;   (** query rows per consumer tile *)
  kv_tile : int;  (** KV rows consumed per flash step *)
}

val default_config : config

val program : ?config:config -> spec -> spec_gpu:Spec.t -> Program.t

val flash_only_time : Spec.t -> spec -> config:config -> float
(** Compute-only flash attention time (for overlap-ratio accounting). *)

val comm_only_time : Spec.t -> spec -> float
(** Communication-only KV AllGather time. *)
