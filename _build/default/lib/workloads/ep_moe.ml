(* Expert-parallel MoE with overlapped All2All dispatch and combine.

   The paper evaluates tensor-parallel MoE; expert parallelism is the
   other production sharding (experts live on different ranks, tokens
   travel).  It exercises the one collective pattern the TP kernels do
   not — All2All — and shows the primitives cover it:

     dispatch:  every rank pushes, for each remote expert-owner, the
                block of its token-slots routed there (tile_push_data +
                per-segment arrival signals);
     expert FFN: segment-aligned GroupGEMM tiles start as soon as their
                segment has landed (dynamic mapping over the receive
                layout), compute x*W1 -> SiLU -> *W2;
     combine:   finished segments fly back to their token owners, which
                wait per expert and apply gate-weighted top-k reduction.

   Layout.  A *segment* is the (expert, source-rank) block of the
   receive buffer: rows are token-slots of rank [src] routed to expert
   [e], ordered by (token, slot).  Every rank derives the same layout
   from the shared routing, so offsets are consistent without extra
   metadata exchange. *)

open Tilelink_core
open Tilelink_tensor
open Tilelink_machine

type spec = {
  tokens : int;        (* M, sharded M/R per rank *)
  hidden : int;        (* H *)
  intermediate : int;  (* I, full per expert (no TP split) *)
  experts : int;       (* E, sharded E/R per rank *)
  topk : int;
  world_size : int;
}

let access = Instr.access

let tokens_per_rank spec = spec.tokens / spec.world_size
let experts_per_rank spec = spec.experts / spec.world_size
let expert_owner spec e = e / experts_per_rank spec
let token_owner spec t = t / tokens_per_rank spec

let routing spec ~seed =
  Routing.random ~seed ~num_tokens:spec.tokens ~num_experts:spec.experts
    ~topk:spec.topk

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

type segment = {
  expert : int;       (* global expert id *)
  src : int;          (* rank owning the tokens *)
  entries : (int * int) list;  (* (token, slot) in (token, slot) order *)
  recv_lo : int;      (* row offset in the owner's receive buffer *)
}

type layout = {
  (* Segments of each expert-owner rank, ordered (local expert, src). *)
  segments_of_rank : segment list array;
  recv_rows : int array;  (* receive-buffer height per rank *)
}

let build_layout spec route =
  let r = spec.world_size in
  let segments_of_rank = Array.make r [] in
  let recv_rows = Array.make r 0 in
  for owner = 0 to r - 1 do
    let segments = ref [] in
    let offset = ref 0 in
    for e_local = 0 to experts_per_rank spec - 1 do
      let e = (owner * experts_per_rank spec) + e_local in
      for src = 0 to r - 1 do
        let entries =
          List.filter
            (fun (token, _slot) -> token_owner spec token = src)
            (Routing.tokens_of_expert route e)
        in
        segments := { expert = e; src; entries; recv_lo = !offset } :: !segments;
        offset := !offset + List.length entries
      done
    done;
    segments_of_rank.(owner) <- List.rev !segments;
    recv_rows.(owner) <- !offset
  done;
  { segments_of_rank; recv_rows }

(* Position of a (token, slot) pair inside its owner's combine buffer:
   local token index * topk + slot. *)
let combine_pos spec (token, slot) =
  ((token mod tokens_per_rank spec) * spec.topk) + slot

(* ------------------------------------------------------------------ *)
(* Memory + reference                                                  *)
(* ------------------------------------------------------------------ *)

(* Buffers per rank:
   - "tok_shard"   [M/R, H]           local tokens
   - "w1"          [(E/R)*H, I]       local experts' up projections
   - "w2"          [(E/R)*I, H]       local experts' down projections
   - "recv_buf"    [recv_rows, H]     dispatched token-slots
   - "expert_out"  [recv_rows, H]     FFN results per received row
   - "combine_buf" [(M/R)*topk, H]    results returned to token owners
   - "out"         [M/R, H]           gate-weighted top-k sum *)

let alloc spec route ~seed =
  let layout = build_layout spec route in
  let memory = Memory.create ~world_size:spec.world_size in
  let epr = experts_per_rank spec in
  for rank = 0 to spec.world_size - 1 do
    Memory.bind memory ~rank ~name:"tok_shard"
      (Tensor.random ~seed:(seed + rank)
         (Shape.of_list [ tokens_per_rank spec; spec.hidden ]));
    Memory.bind memory ~rank ~name:"w1"
      (Tensor.random ~seed:(seed + 600 + rank)
         (Shape.of_list [ epr * spec.hidden; spec.intermediate ]));
    Memory.bind memory ~rank ~name:"w2"
      (Tensor.random ~seed:(seed + 700 + rank)
         (Shape.of_list [ epr * spec.intermediate; spec.hidden ]));
    List.iter
      (fun name ->
        ignore
          (Memory.alloc memory ~rank ~name
             (Shape.of_list [ max 1 layout.recv_rows.(rank); spec.hidden ])))
      [ "recv_buf"; "expert_out" ];
    ignore
      (Memory.alloc memory ~rank ~name:"combine_buf"
         (Shape.of_list [ tokens_per_rank spec * spec.topk; spec.hidden ]));
    ignore
      (Memory.alloc memory ~rank ~name:"out"
         (Shape.of_list [ tokens_per_rank spec; spec.hidden ]))
  done;
  (memory, layout)

(* FFN of one expert applied to a row block: silu(x W1) W2. *)
let expert_ffn memory ~owner ~e_local rows spec =
  let w1 =
    Tensor.row_slice
      (Memory.find memory ~rank:owner ~name:"w1")
      ~lo:(e_local * spec.hidden)
      ~hi:((e_local + 1) * spec.hidden)
  in
  let w2 =
    Tensor.row_slice
      (Memory.find memory ~rank:owner ~name:"w2")
      ~lo:(e_local * spec.intermediate)
      ~hi:((e_local + 1) * spec.intermediate)
  in
  let mid = Tensor.map Nn.silu (Linalg.gemm rows w1) in
  Linalg.gemm mid w2

let reference memory spec route ~rank =
  let out =
    Tensor.zeros (Shape.of_list [ tokens_per_rank spec; spec.hidden ])
  in
  for local_t = 0 to tokens_per_rank spec - 1 do
    let token = (rank * tokens_per_rank spec) + local_t in
    let x =
      Tensor.row_slice
        (Memory.find memory ~rank ~name:"tok_shard")
        ~lo:local_t ~hi:(local_t + 1)
    in
    let experts = Routing.experts_of_token route token in
    let weights = Routing.weights_of_token route token in
    Array.iteri
      (fun slot e ->
        let owner = expert_owner spec e in
        let e_local = e mod experts_per_rank spec in
        let y = expert_ffn memory ~owner ~e_local x spec in
        Tensor.add_row_slice out ~lo:local_t
          (Tensor.scale weights.(slot) y))
      experts;
    ignore weights
  done;
  out

(* ------------------------------------------------------------------ *)
(* Program                                                             *)
(* ------------------------------------------------------------------ *)

type config = { tile_rows : int; comm_binding : Design_space.resource_binding }

let default_config = { tile_rows = 128; comm_binding = Design_space.Comm_on_dma }

(* Channel spaces (pc channels, per rank):
   link A (arrival of dispatched segments at the expert owner):
     channel = segment index in the owner's segment list;
   link B (expert_out segment completion, local):
     channel = base_b + segment index;
   link C (combined results back at the token owner):
     channel = base_c + global expert id. *)

let program ?(config = default_config) spec route ~(spec_gpu : Spec.t) =
  let r = spec.world_size in
  if spec.tokens mod r <> 0 || spec.experts mod r <> 0 then
    invalid_arg "Ep_moe.program: tokens and experts must divide evenly";
  let layout = build_layout spec route in
  let h = spec.hidden in
  let max_segments =
    Array.fold_left
      (fun acc segs -> max acc (List.length segs))
      0 layout.segments_of_rank
  in
  let base_b = max_segments in
  let base_c = 2 * max_segments in
  let pc_channels = (2 * max_segments) + spec.experts in
  let bytes_of rows = float_of_int rows *. float_of_int h *. Cost.dtype_bytes in
  let plans =
    Array.init r (fun rank ->
        let my_segments = layout.segments_of_rank.(rank) in
        (* --- dispatch: push each of MY tokens' segments to their
           expert owners --- *)
        let dispatch_tasks =
          List.concat
            (List.init r (fun owner ->
                 List.filter_map
                   (fun (seg_index, seg) ->
                     if seg.src <> rank || seg.entries = [] then None
                     else
                       let rows = List.length seg.entries in
                       let gather_action memory ~rank =
                         let shard =
                           Memory.find memory ~rank ~name:"tok_shard"
                         in
                         let dst =
                           Memory.find memory ~rank:owner ~name:"recv_buf"
                         in
                         List.iteri
                           (fun i (token, _slot) ->
                             Tensor.set_row_slice dst ~lo:(seg.recv_lo + i)
                               (Tensor.row_slice shard
                                  ~lo:(token mod tokens_per_rank spec)
                                  ~hi:((token mod tokens_per_rank spec) + 1)))
                           seg.entries
                       in
                       Some
                         {
                           Program.label =
                             Printf.sprintf "dispatch[e%d->r%d]" seg.expert
                               owner;
                           instrs =
                             [
                               Instr.Copy
                                 {
                                   label =
                                     Printf.sprintf "dispatch[e%d]" seg.expert;
                                   src =
                                     access ~buffer:"tok_shard" ~row:(0, rows)
                                       ~col:(0, h) ();
                                   dst =
                                     access ~rank:owner ~buffer:"recv_buf"
                                       ~row:
                                         (seg.recv_lo, seg.recv_lo + rows)
                                       ~col:(0, h) ();
                                   bytes = bytes_of rows;
                                   action = Some gather_action;
                                 };
                               Instr.Notify
                                 {
                                   target =
                                     Instr.Pc { rank = owner; channel = seg_index };
                                   amount = 1;
                                   releases =
                                     [
                                       access ~rank:owner ~buffer:"recv_buf"
                                         ~row:(seg.recv_lo, seg.recv_lo + rows)
                                         ~col:(0, h) ();
                                     ];
                                 };
                             ];
                         })
                   (List.mapi
                      (fun i seg -> (i, seg))
                      layout.segments_of_rank.(owner))))
        in
        (* --- expert FFN: segment-aligned tiles --- *)
        let ffn_tasks =
          List.concat
            (List.mapi
               (fun seg_index seg ->
                 let rows = List.length seg.entries in
                 if rows = 0 then []
                 else begin
                   let tiles = (rows + config.tile_rows - 1) / config.tile_rows in
                   List.init tiles (fun t ->
                       let lo = seg.recv_lo + (t * config.tile_rows) in
                       let hi =
                         min (seg.recv_lo + rows) (lo + config.tile_rows)
                       in
                       let e_local = seg.expert mod experts_per_rank spec in
                       let action memory ~rank =
                         let recv = Memory.find memory ~rank ~name:"recv_buf" in
                         let out =
                           Memory.find memory ~rank ~name:"expert_out"
                         in
                         Tensor.set_row_slice out ~lo
                           (expert_ffn memory ~owner:rank ~e_local
                              (Tensor.row_slice recv ~lo ~hi)
                              spec)
                       in
                       {
                         Program.label =
                           Printf.sprintf "ffn[e%d,t%d]" seg.expert t;
                         instrs =
                           [
                             Instr.Wait
                               {
                                 target = Instr.Pc { rank; channel = seg_index };
                                 threshold = 1;
                                 guards =
                                   [
                                     access ~buffer:"recv_buf" ~row:(lo, hi)
                                       ~col:(0, h) ();
                                   ];
                               };
                             Instr.Load
                               { access = access ~buffer:"recv_buf" ~row:(lo, hi) ~col:(0, h) () };
                             Instr.Compute
                               {
                                 label = Printf.sprintf "ffn-up[e%d,t%d]" seg.expert t;
                                 cost =
                                   Instr.Gemm_tile
                                     { tm = hi - lo; tn = spec.intermediate; k = h };
                                 reads =
                                   [
                                     access ~buffer:"recv_buf" ~row:(lo, hi)
                                       ~col:(0, h) ();
                                   ];
                                 writes = [];
                                 action = None;
                               };
                             Instr.Compute
                               {
                                 label = Printf.sprintf "ffn-down[e%d,t%d]" seg.expert t;
                                 cost =
                                   Instr.Gemm_tile
                                     { tm = hi - lo; tn = h; k = spec.intermediate };
                                 reads = [];
                                 writes =
                                   [
                                     access ~buffer:"expert_out" ~row:(lo, hi)
                                       ~col:(0, h) ();
                                   ];
                                 action = Some action;
                               };
                             Instr.Store
                               { access = access ~buffer:"expert_out" ~row:(lo, hi) ~col:(0, h) () };
                             Instr.Notify
                               {
                                 target =
                                   Instr.Pc { rank; channel = base_b + seg_index };
                                 amount = 1;
                                 releases =
                                   [
                                     access ~buffer:"expert_out" ~row:(lo, hi)
                                       ~col:(0, h) ();
                                   ];
                               };
                           ];
                       })
                 end)
               my_segments)
        in
        (* --- combine: send finished segments back to token owners --- *)
        let combine_tasks =
          List.concat
            (List.mapi
               (fun seg_index seg ->
                 let rows = List.length seg.entries in
                 if rows = 0 then []
                 else begin
                   let tiles = (rows + config.tile_rows - 1) / config.tile_rows in
                   let scatter_action memory ~rank =
                     let src = Memory.find memory ~rank ~name:"expert_out" in
                     let dst =
                       Memory.find memory ~rank:seg.src ~name:"combine_buf"
                     in
                     List.iteri
                       (fun i entry ->
                         Tensor.set_row_slice dst ~lo:(combine_pos spec entry)
                           (Tensor.row_slice src ~lo:(seg.recv_lo + i)
                              ~hi:(seg.recv_lo + i + 1)))
                       seg.entries
                   in
                   [
                     {
                       Program.label =
                         Printf.sprintf "combine[e%d->r%d]" seg.expert seg.src;
                       instrs =
                         [
                           Instr.Wait
                             {
                               target =
                                 Instr.Pc { rank; channel = base_b + seg_index };
                               threshold = tiles;
                               guards =
                                 [
                                   access ~buffer:"expert_out"
                                     ~row:(seg.recv_lo, seg.recv_lo + rows)
                                     ~col:(0, h) ();
                                 ];
                             };
                           Instr.Copy
                             {
                               label = Printf.sprintf "combine[e%d]" seg.expert;
                               src =
                                 access ~buffer:"expert_out"
                                   ~row:(seg.recv_lo, seg.recv_lo + rows)
                                   ~col:(0, h) ();
                               dst =
                                 access ~rank:seg.src ~buffer:"combine_buf"
                                   ~row:(0, tokens_per_rank spec * spec.topk)
                                   ~col:(0, h) ();
                               bytes = bytes_of rows;
                               action = Some scatter_action;
                             };
                           Instr.Notify
                             {
                               target =
                                 Instr.Pc
                                   { rank = seg.src; channel = base_c + seg.expert };
                               amount = 1;
                               releases =
                                 [
                                   access ~rank:seg.src ~buffer:"combine_buf"
                                     ~row:(0, tokens_per_rank spec * spec.topk)
                                     ~col:(0, h) ();
                                 ];
                             };
                         ];
                     };
                   ]
                 end)
               my_segments)
        in
        (* --- final gate-weighted top-k reduction --- *)
        let reduce_tiles =
          (tokens_per_rank spec + config.tile_rows - 1) / config.tile_rows
        in
        let reduce_task ti =
          let tlo = ti * config.tile_rows in
          let thi = min (tokens_per_rank spec) (tlo + config.tile_rows) in
          (* Experts any token of this tile uses (deduped): the tile
             must wait for their combined segments. *)
          let experts_needed =
            let seen = Hashtbl.create 16 in
            for local_t = tlo to thi - 1 do
              Array.iter
                (fun e -> Hashtbl.replace seen e ())
                (Routing.experts_of_token route
                   ((rank * tokens_per_rank spec) + local_t))
            done;
            Hashtbl.fold (fun e () acc -> e :: acc) seen [] |> List.sort compare
          in
          let action memory ~rank =
            let combine = Memory.find memory ~rank ~name:"combine_buf" in
            let out = Memory.find memory ~rank ~name:"out" in
            for local_t = tlo to thi - 1 do
              let token = (rank * tokens_per_rank spec) + local_t in
              let weights = Routing.weights_of_token route token in
              let acc = Tensor.zeros (Shape.of_list [ 1; h ]) in
              Array.iteri
                (fun slot _e ->
                  Tensor.add_inplace acc
                    (Tensor.scale weights.(slot)
                       (Tensor.row_slice combine
                          ~lo:(combine_pos spec (token, slot))
                          ~hi:(combine_pos spec (token, slot) + 1))))
                (Routing.experts_of_token route token);
              Tensor.set_row_slice out ~lo:local_t acc
            done
          in
          {
            Program.label = Printf.sprintf "reduce[%d]" ti;
            instrs =
              List.map
                (fun e ->
                  Instr.Wait
                    {
                      target = Instr.Pc { rank; channel = base_c + e };
                      threshold = 1;
                      guards =
                        [
                          access ~buffer:"combine_buf"
                            ~row:(0, tokens_per_rank spec * spec.topk)
                            ~col:(0, h) ();
                        ];
                    })
                experts_needed
              @ [
                  Instr.Load
                    {
                      access =
                        access ~buffer:"combine_buf"
                          ~row:(0, tokens_per_rank spec * spec.topk)
                          ~col:(0, h) ();
                    };
                  Instr.Compute
                    {
                      label = Printf.sprintf "topk-reduce[%d]" ti;
                      cost =
                        Instr.Memory_tile
                          {
                            rows = (thi - tlo) * spec.topk;
                            cols = h;
                            passes = 2;
                          };
                      reads =
                        [
                          access ~buffer:"combine_buf"
                            ~row:(0, tokens_per_rank spec * spec.topk)
                            ~col:(0, h) ();
                        ];
                      writes =
                        [ access ~buffer:"out" ~row:(tlo, thi) ~col:(0, h) () ];
                      action = Some action;
                    };
                  Instr.Store
                    { access = access ~buffer:"out" ~row:(tlo, thi) ~col:(0, h) () };
                ];
          }
        in
        let reduce_tasks = List.init reduce_tiles reduce_task in
        let comm_resource =
          match config.comm_binding with
          | Design_space.Comm_on_sm sms -> Program.Sm_partition sms
          | Design_space.Comm_on_dma | Design_space.Comm_hybrid _ ->
            Program.Dma_engines (min 2 spec_gpu.Spec.gpu.dma_channels)
        in
        let comm_lane =
          match config.comm_binding with
          | Design_space.Comm_on_sm _ -> Tilelink_sim.Trace.Comm_sm
          | _ -> Tilelink_sim.Trace.Dma
        in
        [
          {
            Program.role_name = "dispatch";
            resource = comm_resource;
            lane = comm_lane;
            tasks = dispatch_tasks;
          };
          {
            Program.role_name = "expert-ffn";
            resource = Program.Sm_partition spec_gpu.Spec.gpu.num_sms;
            lane = Tilelink_sim.Trace.Compute_sm;
            tasks = ffn_tasks;
          };
          {
            Program.role_name = "combine";
            resource = comm_resource;
            lane = comm_lane;
            tasks = combine_tasks;
          };
          {
            Program.role_name = "topk-reduce";
            resource = Program.Sm_partition 16;
            lane = Tilelink_sim.Trace.Compute_sm;
            tasks = reduce_tasks;
          };
        ])
  in
  Program.create ~name:"ep_moe" ~world_size:r ~pc_channels ~peer_channels:1
    plans
