lib/workloads/ring_attention.mli: Attention Memory Program Spec Tilelink_core Tilelink_machine Tilelink_tensor
