lib/workloads/attention.ml: Array Block_channel Cost Instr List Mapping Memory Nn Primitive Printf Program Shape Spec Tensor Tilelink_core Tilelink_machine Tilelink_sim Tilelink_tensor
