lib/workloads/ep_moe.ml: Array Cost Design_space Hashtbl Instr Linalg List Memory Nn Printf Program Routing Shape Spec Tensor Tilelink_core Tilelink_machine Tilelink_sim Tilelink_tensor
