lib/workloads/tuned.mli: Design_space Shapes Spec Tilelink_core Tilelink_machine
