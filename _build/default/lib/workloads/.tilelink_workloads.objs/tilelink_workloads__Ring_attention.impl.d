lib/workloads/ring_attention.ml: Array Attention Instr List Lower Mapping Memory Nn Primitive Printf Program Shape Spec Tensor Tilelink_core Tilelink_machine Tilelink_sim Tilelink_tensor
