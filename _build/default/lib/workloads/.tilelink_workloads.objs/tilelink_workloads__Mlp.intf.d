lib/workloads/mlp.mli: Design_space Memory Program Spec Tilelink_core Tilelink_machine Tilelink_tensor
