lib/workloads/ep_moe.mli: Design_space Memory Program Routing Spec Tensor Tilelink_core Tilelink_machine Tilelink_tensor
