lib/workloads/model.mli: Attention Moe Spec Tilelink_machine
