lib/workloads/pipeline_parallel.mli: Memory Program Spec Tilelink_core Tilelink_machine Tilelink_tensor
