lib/workloads/shapes.mli:
