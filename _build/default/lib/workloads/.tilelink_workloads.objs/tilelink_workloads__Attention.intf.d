lib/workloads/attention.mli: Memory Program Spec Tensor Tilelink_core Tilelink_machine Tilelink_tensor
