lib/workloads/model.ml: Attention Cluster Cost Design_space Mlp Moe Runtime Spec Tile Tilelink_core Tilelink_machine Tuned
