lib/workloads/shapes.ml:
