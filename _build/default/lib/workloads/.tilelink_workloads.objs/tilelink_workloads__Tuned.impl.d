lib/workloads/tuned.ml: Cluster Cost Design_space List Mlp Printf Shapes Spec Tile Tilelink_core Tilelink_machine Tune
