(* Benchmark shapes from Table 4 of the paper. *)

type mlp = {
  mlp_name : string;
  s : int;            (* batch x sequence length *)
  h : int;            (* hidden dimension *)
  i : int;            (* intermediate size *)
  source_model : string;
}

let mlp_configs =
  [
    { mlp_name = "MLP-1"; s = 8192; h = 4096; i = 11008; source_model = "LLaMA-7B" };
    { mlp_name = "MLP-2"; s = 8192; h = 4096; i = 14336; source_model = "LLaMA-3.1-8B" };
    { mlp_name = "MLP-3"; s = 8192; h = 3584; i = 14336; source_model = "Gemma-2-9B" };
    { mlp_name = "MLP-4"; s = 8192; h = 4608; i = 36864; source_model = "Gemma-2-27B" };
    { mlp_name = "MLP-5"; s = 8192; h = 8192; i = 28672; source_model = "LLaMA-3.1-70B" };
    { mlp_name = "MLP-6"; s = 8192; h = 8192; i = 29568; source_model = "Qwen-2-72B" };
  ]

type moe = {
  moe_name : string;
  moe_s : int;
  moe_h : int;
  moe_i : int;
  experts : int;
  topk : int;
}

let moe_configs =
  [
    { moe_name = "MoE-1"; moe_s = 8192; moe_h = 2048; moe_i = 1536; experts = 8; topk = 2 };
    { moe_name = "MoE-2"; moe_s = 8192; moe_h = 2048; moe_i = 1536; experts = 32; topk = 2 };
    { moe_name = "MoE-3"; moe_s = 8192; moe_h = 2048; moe_i = 1536; experts = 32; topk = 5 };
    { moe_name = "MoE-4"; moe_s = 8192; moe_h = 4096; moe_i = 2048; experts = 8; topk = 2 };
    { moe_name = "MoE-5"; moe_s = 8192; moe_h = 4096; moe_i = 2048; experts = 32; topk = 2 };
    { moe_name = "MoE-6"; moe_s = 8192; moe_h = 4096; moe_i = 2048; experts = 32; topk = 5 };
  ]

type attn = {
  attn_name : string;
  heads : int;
  head_dim : int;
  seq_choices : int list;
}

let attn_configs =
  [
    {
      attn_name = "Attn-1";
      heads = 32;
      head_dim = 128;
      seq_choices = [ 16384; 32768; 65536; 131072 ];
    };
    {
      attn_name = "Attn-2";
      heads = 64;
      head_dim = 128;
      seq_choices = [ 16384; 32768; 65536; 131072 ];
    };
  ]
