(* Model-level (pipeline) parallelism from tile-centric primitives —
   the paper's future-work direction (§7.4): "integrate NVSHMEM
   functionalities into tile_push_data and follow the same compilation
   techniques".

   Each rank is one pipeline stage holding one layer (a square GEMM).
   Micro-batches flow through the stages; within a stage the *send* of
   a finished micro-batch tile overlaps the *compute* of the next one:

     arrival link (A): previous stage's pushes -> this stage's GEMM
                       consumer waits (producer notify To_rank next);
     egress link (B):  this stage's GEMM tiles -> this stage's comm
                       role, which pushes to the next stage.

   The very first stage's input is staged locally and announced at
   start; the last stage keeps its output.  The resulting makespan
   shows classic pipelining: (stages + micro_batches - 1) slots rather
   than stages x micro_batches. *)

open Tilelink_core
open Tilelink_tensor
open Tilelink_machine

type spec = {
  stages : int;          (* = world size; one rank per stage *)
  micro_batches : int;
  micro_rows : int;      (* rows per micro-batch *)
  width : int;           (* hidden width (square layers) *)
}

let access = Instr.access

let total_rows spec = spec.micro_batches * spec.micro_rows

(* Buffers per rank (stage): "w" [width, width] layer weights;
   "in_buf"/"out_buf" [micro_batches * micro_rows, width]. *)
let alloc spec ~seed =
  let memory = Memory.create ~world_size:spec.stages in
  let rows = total_rows spec in
  for rank = 0 to spec.stages - 1 do
    Memory.bind memory ~rank ~name:"w"
      (Tensor.random ~seed:(seed + 500 + rank)
         (Shape.of_list [ spec.width; spec.width ]));
    ignore
      (Memory.alloc memory ~rank ~name:"in_buf"
         (Shape.of_list [ rows; spec.width ]));
    ignore
      (Memory.alloc memory ~rank ~name:"out_buf"
         (Shape.of_list [ rows; spec.width ]))
  done;
  (* Global input lives on stage 0. *)
  Memory.bind memory ~rank:0 ~name:"input"
    (Tensor.random ~seed (Shape.of_list [ rows; spec.width ]));
  memory

let reference memory spec =
  let x = ref (Memory.find memory ~rank:0 ~name:"input") in
  for stage = 0 to spec.stages - 1 do
    x := Linalg.gemm !x (Memory.find memory ~rank:stage ~name:"w")
  done;
  !x

type config = { tile_rows : int; comm_sms : int }

let default_config = { tile_rows = 128; comm_sms = 8 }

let program ?(config = default_config) spec ~(spec_gpu : Spec.t) =
  let r = spec.stages in
  let rows = total_rows spec in
  if spec.micro_rows mod config.tile_rows <> 0 then
    invalid_arg "Pipeline_parallel.program: tile must divide a micro-batch";
  (* One channel per tile of each link keeps signalling fine-grained:
     extent = all rows, sharded "per rank" trivially (stage locality is
     expressed by which rank's channel instance gets notified). *)
  let link extent =
    Mapping.static ~extent ~ranks:1 ~channels_per_rank:(extent / config.tile_rows)
      ~tile:config.tile_rows ()
  in
  let mapping_a = link rows in
  let mapping_b = link rows in
  let base_b = Mapping.num_channels mapping_a in
  let tiles = rows / config.tile_rows in
  let plans =
    Array.init r (fun rank ->
        (* The per-link BlockChannels of this stage; note world_size 1
           in the mapping — notify targets cross ranks explicitly. *)
        let bc_a = Block_channel.create ~rank:0 ~world_size:1 mapping_a in
        ignore bc_a;
        let lower_with base stmts =
          let shift = function
            | Instr.Wait { target = Instr.Pc { rank = _; channel }; threshold; guards }
              ->
              Instr.Wait
                {
                  target = Instr.Pc { rank; channel = channel + base };
                  threshold;
                  guards;
                }
            | instr -> instr
          in
          List.map shift
            (Lower.lower
               { Lower.mapping = mapping_a; rank; world_size = r }
               stmts)
        in
        (* --- seeding: stage 0 stages the input and announces it --- *)
        let seed_tasks =
          if rank <> 0 then []
          else
            List.init tiles (fun t ->
                let lo = t * config.tile_rows in
                let hi = lo + config.tile_rows in
                {
                  Program.label = Printf.sprintf "seed[%d]" t;
                  instrs =
                    [
                      Instr.Copy
                        {
                          label = Printf.sprintf "seed[%d]" t;
                          src =
                            access ~buffer:"input" ~row:(lo, hi)
                              ~col:(0, spec.width) ();
                          dst =
                            access ~buffer:"in_buf" ~row:(lo, hi)
                              ~col:(0, spec.width) ();
                          bytes =
                            Lower.bytes_of_access
                              (access ~buffer:"input" ~row:(lo, hi)
                                 ~col:(0, spec.width) ());
                          action = None;
                        };
                      Instr.Notify
                        {
                          target = Instr.Pc { rank = 0; channel = t };
                          amount = 1;
                          releases =
                            [
                              access ~buffer:"in_buf" ~row:(lo, hi)
                                ~col:(0, spec.width) ();
                            ];
                        };
                    ];
                })
        in
        (* --- compute role: 2-D GEMM tiles; each row tile announces
           on link B once per column tile, so the sender's threshold is
           the column-tile count --- *)
        let col_tile = min spec.width 128 in
        let col_tiles = (spec.width + col_tile - 1) / col_tile in
        let gemm_task t c =
          let lo = t * config.tile_rows in
          let hi = lo + config.tile_rows in
          let clo = c * col_tile in
          let chi = min spec.width (clo + col_tile) in
          let action memory ~rank =
            let x = Memory.find memory ~rank ~name:"in_buf" in
            let w = Memory.find memory ~rank ~name:"w" in
            let y = Memory.find memory ~rank ~name:"out_buf" in
            Tensor.set_block y ~row_lo:lo ~col_lo:clo
              (Linalg.gemm
                 (Tensor.row_slice x ~lo ~hi)
                 (Tensor.col_slice w ~lo:clo ~hi:chi))
          in
          let stmts =
            [
              Primitive.Consumer_tile_wait
                { lo; hi; buffer = "in_buf"; col = (0, spec.width) };
              Primitive.Load
                (access ~buffer:"in_buf" ~row:(lo, hi) ~col:(0, spec.width) ());
              Primitive.Load
                (access ~buffer:"w" ~row:(0, spec.width) ~col:(clo, chi) ());
              Primitive.Compute
                {
                  label = Printf.sprintf "stage%d-gemm[%d,%d]" rank t c;
                  cost =
                    Instr.Gemm_tile
                      { tm = config.tile_rows; tn = chi - clo; k = spec.width };
                  reads =
                    [
                      access ~buffer:"in_buf" ~row:(lo, hi)
                        ~col:(0, spec.width) ();
                    ];
                  writes =
                    [
                      access ~buffer:"out_buf" ~row:(lo, hi) ~col:(clo, chi) ();
                    ];
                  action = Some action;
                };
              Primitive.Store
                (access ~buffer:"out_buf" ~row:(lo, hi) ~col:(clo, chi) ());
            ]
          in
          {
            Program.label = Printf.sprintf "gemm[%d,%d]" t c;
            instrs =
              lower_with 0 stmts
              @ [
                  (* Announce the finished tile on link B (egress). *)
                  Instr.Notify
                    {
                      target = Instr.Pc { rank; channel = base_b + t };
                      amount = 1;
                      releases =
                        [
                          access ~buffer:"out_buf" ~row:(lo, hi)
                            ~col:(clo, chi) ();
                        ];
                    };
                ];
          }
        in
        let gemm_tasks =
          List.concat
            (List.init tiles (fun t ->
                 List.init col_tiles (fun c -> gemm_task t c)))
        in
        (* --- comm role: forward finished tiles to the next stage --- *)
        let send_task t =
          let lo = t * config.tile_rows in
          let hi = lo + config.tile_rows in
          {
            Program.label = Printf.sprintf "send[%d]" t;
            instrs =
              [
                Instr.Wait
                  {
                    target = Instr.Pc { rank; channel = base_b + t };
                    threshold = col_tiles;
                    guards =
                      [
                        access ~buffer:"out_buf" ~row:(lo, hi)
                          ~col:(0, spec.width) ();
                      ];
                  };
                Instr.Copy
                  {
                    label = Printf.sprintf "fwd[%d]" t;
                    src =
                      access ~buffer:"out_buf" ~row:(lo, hi)
                        ~col:(0, spec.width) ();
                    dst =
                      access ~rank:(rank + 1) ~buffer:"in_buf" ~row:(lo, hi)
                        ~col:(0, spec.width) ();
                    bytes =
                      Lower.bytes_of_access
                        (access ~buffer:"out_buf" ~row:(lo, hi)
                           ~col:(0, spec.width) ());
                    action = None;
                  };
                Instr.Notify
                  {
                    target = Instr.Pc { rank = rank + 1; channel = t };
                    amount = 1;
                    releases =
                      [
                        access ~rank:(rank + 1) ~buffer:"in_buf" ~row:(lo, hi)
                          ~col:(0, spec.width) ();
                      ];
                  };
              ];
          }
        in
        let send_tasks =
          if rank = r - 1 then [] else List.init tiles send_task
        in
        let comm_role =
          match seed_tasks @ send_tasks with
          | [] -> []
          | tasks ->
            [
              {
                Program.role_name = "stage-comm";
                resource = Program.Dma_engines (min 2 spec_gpu.Spec.gpu.dma_channels);
                lane = Tilelink_sim.Trace.Dma;
                tasks;
              };
            ]
        in
        ignore config.comm_sms;
        comm_role
        @ [
            {
              Program.role_name = "stage-gemm";
              resource = Program.Sm_partition spec_gpu.Spec.gpu.num_sms;
              lane = Tilelink_sim.Trace.Compute_sm;
              tasks = gemm_tasks;
            };
          ])
  in
  Program.create ~name:"pipeline_parallel" ~world_size:r
    ~pc_channels:(Mapping.num_channels mapping_a + Mapping.num_channels mapping_b)
    ~peer_channels:1 plans

(* Serial (non-pipelined) reference time: each stage computes its whole
   batch, then transfers it, stage after stage. *)
let serial_time (spec_gpu : Spec.t) spec =
  let rows = total_rows spec in
  let gemm =
    Cost.gemm_kernel_time spec_gpu ~sms:spec_gpu.Spec.gpu.num_sms ~m:rows
      ~n:spec.width ~k:spec.width ~tm:128 ~tn:128
  in
  let transfer_bytes =
    float_of_int rows *. float_of_int spec.width *. Cost.dtype_bytes
  in
  let transfer =
    transfer_bytes /. (spec_gpu.Spec.interconnect.nvlink_gbps *. 1.0e3)
  in
  float_of_int spec.stages
  *. (gemm +. spec_gpu.Spec.overheads.kernel_launch)
  +. (float_of_int (spec.stages - 1) *. (transfer +. spec_gpu.Spec.overheads.host_sync))
