(** Model-level (pipeline) parallelism from tile-centric primitives —
    the paper's future-work direction (§7.4).  One rank per stage;
    micro-batch tiles flow stage to stage through tile pushes and
    producer/consumer signals, so sends overlap the next tile's
    compute. *)

open Tilelink_core
open Tilelink_machine

type spec = {
  stages : int;
  micro_batches : int;
  micro_rows : int;
  width : int;
}

val total_rows : spec -> int

val alloc : spec -> seed:int -> Memory.t
(** Per-stage weights and buffers; the global input lives on stage 0. *)

val reference : Memory.t -> spec -> Tilelink_tensor.Tensor.t
(** Chained GEMM through every stage's weights. *)

type config = { tile_rows : int; comm_sms : int }

val default_config : config

val program : ?config:config -> spec -> spec_gpu:Spec.t -> Program.t

val serial_time : Spec.t -> spec -> float
(** Non-pipelined stage-after-stage execution, for comparison. *)
