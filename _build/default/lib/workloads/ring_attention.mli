(** RingAttention built from tile-centric primitives: double-buffered
    KV rotation with peer arrival/consumption signals, numerically
    validated against the same references as the AG-based attention. *)

open Tilelink_core
open Tilelink_machine

type config = {
  q_tile : int;
  comm_sms : int;  (** worker cap of the ring-send role *)
}

val default_config : config

val segment_at : Attention.spec -> rank:int -> step:int -> int
(** KV segment held by [rank] at ring [step]. *)

val alloc : Attention.spec -> seed:int -> Memory.t
(** Attention buffers plus the two ring slots per rank. *)

val reference : Memory.t -> Attention.spec -> rank:int -> Tilelink_tensor.Tensor.t

val program : ?config:config -> Attention.spec -> spec_gpu:Spec.t -> Program.t
