(** Benchmark shapes from Table 4 of the paper. *)

type mlp = {
  mlp_name : string;
  s : int;  (** batch x sequence length *)
  h : int;  (** hidden dimension *)
  i : int;  (** intermediate size *)
  source_model : string;
}

val mlp_configs : mlp list

type moe = {
  moe_name : string;
  moe_s : int;
  moe_h : int;
  moe_i : int;
  experts : int;
  topk : int;
}

val moe_configs : moe list

type attn = {
  attn_name : string;
  heads : int;
  head_dim : int;
  seq_choices : int list;
}

val attn_configs : attn list
