(* Beyond the paper's evaluation: the extension workloads built from
   the same primitives — expert-parallel MoE (All2All dispatch/combine)
   and pipeline parallelism (§7.4 future work) — each validated on real
   data, then timed at scale.

     dune exec examples/parallelism_zoo.exe *)

open Tilelink_core
open Tilelink_machine
open Tilelink_tensor
open Tilelink_workloads

let () =
  print_endline "== Parallelism zoo: EP MoE and pipeline parallelism ==";

  (* --- expert parallelism: tokens travel to experts and back --- *)
  let ep =
    {
      Ep_moe.tokens = 32;
      hidden = 4;
      intermediate = 6;
      experts = 8;
      topk = 2;
      world_size = 4;
    }
  in
  let route = Ep_moe.routing ep ~seed:3 in
  let layout = Ep_moe.build_layout ep route in
  Printf.printf
    "EP MoE: %d tokens x top-%d over %d experts on %d ranks; receive \
     heights = [%s]\n"
    ep.Ep_moe.tokens ep.Ep_moe.topk ep.Ep_moe.experts ep.Ep_moe.world_size
    (String.concat "; "
       (Array.to_list (Array.map string_of_int layout.Ep_moe.recv_rows)));
  let memory, _ = Ep_moe.alloc ep route ~seed:4 in
  let cluster = Cluster.create Calib.test_machine ~world_size:4 in
  let program =
    Ep_moe.program ep route ~spec_gpu:Calib.test_machine
      ~config:{ Ep_moe.tile_rows = 2; comm_binding = Design_space.Comm_on_dma }
  in
  ignore (Runtime.run ~data:true ~memory cluster program);
  let ok =
    List.for_all
      (fun rank ->
        Check.close ~atol:1e-8
          (Ep_moe.reference memory ep route ~rank)
          (Memory.find memory ~rank ~name:"out"))
      [ 0; 1; 2; 3 ]
  in
  Printf.printf "EP MoE numerical check (4 ranks): %s\n"
    (if ok then "ok" else "MISMATCH");

  (* --- pipeline parallelism: micro-batches flowing through stages --- *)
  let pp =
    { Pipeline_parallel.stages = 4; micro_batches = 6; micro_rows = 4;
      width = 5 }
  in
  let memory = Pipeline_parallel.alloc pp ~seed:5 in
  let cluster = Cluster.create Calib.test_machine ~world_size:4 in
  let program =
    Pipeline_parallel.program pp ~spec_gpu:Calib.test_machine
      ~config:{ Pipeline_parallel.tile_rows = 4; comm_sms = 1 }
  in
  ignore (Runtime.run ~data:true ~memory cluster program);
  let ok =
    Check.close ~atol:1e-8
      (Pipeline_parallel.reference memory pp)
      (Memory.find memory ~rank:3 ~name:"out_buf")
  in
  Printf.printf "pipeline-parallel numerical check (4 stages): %s\n"
    (if ok then "ok" else "MISMATCH");

  (* At scale: the pipelining curve. *)
  let spec = Calib.h800 in
  print_endline "\npipelining at scale (4 stages, width 4096):";
  List.iter
    (fun micro_batches ->
      let pp =
        { Pipeline_parallel.stages = 4; micro_batches; micro_rows = 512;
          width = 4096 }
      in
      let cluster = Cluster.create spec ~world_size:4 in
      let pipelined =
        (Runtime.run cluster (Pipeline_parallel.program pp ~spec_gpu:spec))
          .Runtime.makespan
      in
      let serial = Pipeline_parallel.serial_time spec pp in
      Printf.printf "  %2d micro-batches: %.2fx over serial\n" micro_batches
        (serial /. pipelined))
    [ 2; 4; 8; 16 ]
