examples/quickstart.mli:
