examples/autotune_demo.ml: Calib Cluster Design_space List Mlp Printf Runtime Tile Tilelink_core Tilelink_machine Tilelink_workloads Tune
