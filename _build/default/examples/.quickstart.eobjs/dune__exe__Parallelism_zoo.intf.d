examples/parallelism_zoo.mli:
