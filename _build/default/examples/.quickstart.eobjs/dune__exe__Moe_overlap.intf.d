examples/moe_overlap.mli:
