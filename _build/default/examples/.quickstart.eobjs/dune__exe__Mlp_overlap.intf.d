examples/mlp_overlap.mli:
