examples/parallelism_zoo.ml: Array Calib Check Cluster Design_space Ep_moe List Memory Pipeline_parallel Printf Runtime String Tilelink_core Tilelink_machine Tilelink_tensor Tilelink_workloads
