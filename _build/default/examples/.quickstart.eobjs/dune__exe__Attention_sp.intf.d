examples/attention_sp.mli:
