(* Mixture-of-experts with dynamic tile-centric mapping (Figure 5):
   the routing decides at runtime which producer channels each
   GroupGEMM tile must wait on; the second half chains three kernels
   (GroupGEMM -> Scatter+TopkReduce -> ring ReduceScatter).

     dune exec examples/moe_overlap.exe *)

open Tilelink_core
open Tilelink_machine
open Tilelink_tensor
open Tilelink_workloads
open Tilelink_baselines

let () =
  print_endline "== MoE with dynamic mapping ==";

  (* Correctness on a small world: both halves against dense
     references, with a routing drawn at runtime. *)
  let small =
    {
      Moe.tokens = 16;
      hidden = 4;
      intermediate = 8;
      experts = 4;
      topk = 2;
      world_size = 4;
    }
  in
  let route = Moe.routing small ~seed:1 in
  Printf.printf "routing: %d tokens onto %d experts (topk %d), loads = [%s]\n"
    (Routing.num_tokens route) (Routing.num_experts route)
    (Routing.topk route)
    (String.concat "; "
       (Array.to_list (Array.map string_of_int (Routing.expert_load route))));

  let memory = Moe.part1_alloc small ~seed:5 in
  let cluster = Cluster.create Calib.test_machine ~world_size:4 in
  let program =
    Moe.part1_program small route ~spec_gpu:Calib.test_machine
      ~config:
        {
          Moe.comm_tile_rows = 2;
          group_tile_rows = 2;
          comm_binding = Design_space.Comm_on_dma;
        }
  in
  ignore (Runtime.run ~data:true ~memory cluster program);
  let part1_ok =
    List.for_all
      (fun rank ->
        Check.close
          (Moe.part1_reference memory small route ~rank)
          (Memory.find memory ~rank ~name:"moe_mid"))
      [ 0; 1; 2; 3 ]
  in
  Printf.printf "part 1 (AG + Gather + GroupGEMM) check: %s\n"
    (if part1_ok then "ok" else "MISMATCH");

  let memory = Moe.part2_alloc small ~seed:6 in
  let cluster = Cluster.create Calib.test_machine ~world_size:4 in
  let program =
    Moe.part2_program small route ~spec_gpu:Calib.test_machine
      ~config:
        {
          Moe.gg_tile_rows = 2;
          reduce_tile_rows = 2;
          rs_tile_rows = 2;
          reduce_sms = 1;
          rs_sms = 1;
        }
  in
  ignore (Runtime.run ~data:true ~memory cluster program);
  let part2_ok =
    List.for_all
      (fun rank ->
        Check.close ~atol:1e-8
          (Moe.part2_reference memory small route ~rank)
          (Memory.find memory ~rank ~name:"out"))
      [ 0; 1; 2; 3 ]
  in
  Printf.printf "part 2 (GroupGEMM + Scatter + TopkReduce + RS) check: %s\n"
    (if part2_ok then "ok" else "MISMATCH");

  (* Performance at the paper's MoE-3 shape (the heaviest routing:
     E=32, topk=5). *)
  let spec = Calib.h800 in
  let world = 8 in
  let shape = List.nth Shapes.moe_configs 2 in
  let moe = Moe_baselines.spec_of_shape shape ~world_size:world in
  let route = Moe.routing moe ~seed:17 in
  let run program =
    let cluster = Cluster.create spec ~world_size:world in
    (Runtime.run cluster program).Runtime.makespan
  in
  let p1 = run (Moe.part1_program moe route ~spec_gpu:spec) in
  let p2 = run (Moe.part2_program moe route ~spec_gpu:spec) in
  let act = Moe_baselines.act_time spec moe in
  let tl = p1 +. act +. p2 in
  let vllm = Moe_baselines.vllm_full spec moe route in
  let cublas = Moe_baselines.cublas_full spec moe route in
  Printf.printf
    "%s on 8xH800-sim: eager cuBLAS %.3f ms | vLLM-fused %.3f ms | tilelink \
     %.3f ms (%.2fx over vLLM, %.2fx over cuBLAS)\n"
    shape.Shapes.moe_name (cublas /. 1e3) (vllm /. 1e3) (tl /. 1e3)
    (vllm /. tl) (cublas /. tl)
