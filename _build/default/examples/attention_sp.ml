(* Sequence-parallel self-attention (Figure 6): host-side
   rank_copy_data primitives drive the copy engine while the
   flash-attention kernel consumes KV segments as they arrive.

     dune exec examples/attention_sp.exe *)

open Tilelink_core
open Tilelink_machine
open Tilelink_tensor
open Tilelink_workloads
open Tilelink_baselines

let () =
  print_endline "== Sequence-parallel attention (AG KV + flash) ==";

  (* Correctness with a causal mask: the blockwise online-softmax
     consumer must match monolithic attention regardless of the order
     KV segments land in. *)
  let small =
    {
      Attention.batch_heads = 3;
      seq = 24;
      head_dim = 4;
      world_size = 4;
      causal = true;
    }
  in
  let memory = Attention.alloc small ~seed:9 in
  let cluster = Cluster.create Calib.test_machine ~world_size:4 in
  let program =
    Attention.program
      ~config:{ Attention.q_tile = 3; kv_tile = 3 }
      small ~spec_gpu:Calib.test_machine
  in
  ignore (Runtime.run ~data:true ~memory cluster program);
  let ok =
    List.for_all
      (fun rank ->
        Check.close ~atol:1e-8
          (Attention.reference memory small ~rank)
          (Memory.find memory ~rank ~name:"o"))
      [ 0; 1; 2; 3 ]
  in
  Printf.printf "causal flash attention check (4 ranks): %s\n"
    (if ok then "ok" else "MISMATCH");

  (* The Figure 10 sweep for one head configuration. *)
  let spec = Calib.h800 in
  let world = 8 in
  Printf.printf "\nAttn-1 (32 heads, head_dim 128) on 8xH800-sim:\n";
  List.iter
    (fun seq ->
      let a =
        {
          Attention.batch_heads = 32;
          seq;
          head_dim = 128;
          world_size = world;
          causal = false;
        }
      in
      let config = { Attention.q_tile = 512; kv_tile = 2048 } in
      let cluster = Cluster.create spec ~world_size:world in
      let tl =
        (Runtime.run cluster (Attention.program ~config a ~spec_gpu:spec))
          .Runtime.makespan
      in
      let torch = Attention_baselines.torch_time spec a in
      let ring = Attention_baselines.ring_attention_time spec a in
      let report =
        Attention_baselines.overlap_report
          ~comp_only:(Attention.flash_only_time spec a ~config)
          ~comm_only:(Attention.comm_only_time spec a) ~overlapped:tl
      in
      Printf.printf
        "  seq %6d: torch %8.1f ms | ring %8.1f ms | tilelink %8.1f ms | \
         overlap ratio %.2f\n"
        seq (torch /. 1e3) (ring /. 1e3) (tl /. 1e3)
        report.Attention_baselines.ratio)
    [ 16384; 32768; 65536 ]
