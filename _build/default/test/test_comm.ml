(* Tests for the operator-centric collectives substrate. *)

open Tilelink_machine
open Tilelink_tensor
open Tilelink_comm

let shape = Shape.of_list

let tensor_close msg expected actual =
  let report = Check.compare expected actual in
  Alcotest.(check bool)
    (Printf.sprintf "%s (%s)" msg
       (Format.asprintf "%a" Check.pp_report report))
    true report.Check.within

(* ------------------------------------------------------------------ *)
(* Data-level semantics                                                *)
(* ------------------------------------------------------------------ *)

let shards seed n =
  List.init n (fun i -> Tensor.random ~seed:(seed + i) (shape [ 4; 3 ]))

let test_allgather_data () =
  let s = shards 1 3 in
  let gathered = Collective.allgather_data s in
  Alcotest.(check int) "rows" 12 (Tensor.rows gathered);
  tensor_close "segment 1"
    (List.nth s 1)
    (Tensor.row_slice gathered ~lo:4 ~hi:8)

let test_reducescatter_data () =
  let s = shards 2 4 in
  let outs = Collective.reducescatter_data s in
  Alcotest.(check int) "4 outputs" 4 (List.length outs);
  let total = Collective.reduce_data s in
  tensor_close "slice 2"
    (Tensor.row_slice total ~lo:2 ~hi:3)
    (List.nth outs 2)

let test_allreduce_data () =
  let s = shards 3 3 in
  let outs = Collective.allreduce_data s in
  let total = Collective.reduce_data s in
  List.iter (fun out -> tensor_close "all equal total" total out) outs

let test_all2all_data () =
  let s = shards 4 2 in
  let outs = Collective.all2all_data s in
  (* Output r = concat over sources of source's slice r. *)
  tensor_close "transposed exchange"
    (Tensor.concat_rows
       [
         Tensor.row_slice (List.nth s 0) ~lo:2 ~hi:4;
         Tensor.row_slice (List.nth s 1) ~lo:2 ~hi:4;
       ])
    (List.nth outs 1)

let test_rs_ag_is_allreduce () =
  let s = shards 5 4 in
  let rs = Collective.reducescatter_data s in
  let ag = Collective.allgather_data rs in
  List.iter2
    (fun expected _ -> tensor_close "rs+ag = allreduce" expected ag)
    (Collective.allreduce_data s)
    s

(* ------------------------------------------------------------------ *)
(* Timed collectives                                                   *)
(* ------------------------------------------------------------------ *)

let spec = Calib.test_machine

let time kind algo bytes =
  Collective.standalone_time spec ~world_size:4 ~kind ~algo
    ~bytes_per_shard:bytes

let test_allgather_scales_with_bytes () =
  let small = time Collective.Allgather Collective.Ring 1.0e3 in
  let big = time Collective.Allgather Collective.Ring 1.0e5 in
  Alcotest.(check bool) "monotonic in size" true (big > small)

let test_ring_allgather_close_to_bandwidth_bound () =
  (* Ring AllGather of B bytes per shard on R ranks moves (R-1)*B per
     rank; at rate 1 GB/s = 1e3 B/us that's the dominant term. *)
  let bytes = 1.0e6 in
  let t = time Collective.Allgather Collective.Ring bytes in
  let wire = 3.0 *. bytes /. 1.0e3 in
  Alcotest.(check bool) "within 30% of wire time" true
    (t >= wire && t < wire *. 1.3)

let test_allreduce_costlier_than_reducescatter () =
  let rs = time Collective.Reducescatter Collective.Ring 1.0e5 in
  let ar = time Collective.Allreduce Collective.Ring 1.0e5 in
  Alcotest.(check bool) "allreduce = rs + ag" true (ar > rs)

let test_mesh_vs_ring_same_volume () =
  let ring = time Collective.Allgather Collective.Ring 1.0e5 in
  let mesh = time Collective.Allgather Collective.Mesh 1.0e5 in
  (* Both move the same volume; they should be within 2x. *)
  Alcotest.(check bool) "same ballpark" true
    (mesh /. ring < 2.0 && ring /. mesh < 2.0)

let test_all2all_cheaper_than_allgather () =
  let ag = time Collective.Allgather Collective.Ring 1.0e5 in
  let a2a = time Collective.All2all Collective.Mesh 1.0e5 in
  (* All2All moves 1/R of the per-pair volume. *)
  Alcotest.(check bool) "all2all cheaper" true (a2a < ag)

let test_missing_participant_deadlocks () =
  let cluster = Cluster.create spec ~world_size:2 in
  let op =
    Collective.create cluster ~kind:Collective.Allgather
      ~algo:Collective.Ring ~bytes_per_shard:100.0
  in
  (* Only rank 0 joins: entry barrier never completes. *)
  Tilelink_sim.Process.spawn (Cluster.engine cluster) (fun () ->
      Collective.run_rank op ~rank:0);
  Alcotest.(check bool) "deadlock" true
    (try
       Tilelink_sim.Engine.run (Cluster.engine cluster);
       false
     with Tilelink_sim.Engine.Deadlock _ -> true)

let prop_data_collectives_preserve_sum =
  QCheck.Test.make ~name:"reducescatter preserves the total sum" ~count:50
    QCheck.(pair (int_range 2 5) (int_range 1 4))
    (fun (world, blocks) ->
      let rows = world * blocks in
      let tensors =
        List.init world (fun i ->
            Tensor.random ~seed:(50 + i) (Shape.of_list [ rows; 2 ]))
      in
      let total_in =
        List.fold_left (fun acc t -> acc +. Tensor.sum t) 0.0 tensors
      in
      let total_out =
        List.fold_left
          (fun acc t -> acc +. Tensor.sum t)
          0.0
          (Collective.reducescatter_data tensors)
      in
      Float.abs (total_in -. total_out) < 1e-6)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "comm"
    [
      ( "data",
        [
          Alcotest.test_case "allgather" `Quick test_allgather_data;
          Alcotest.test_case "reducescatter" `Quick test_reducescatter_data;
          Alcotest.test_case "allreduce" `Quick test_allreduce_data;
          Alcotest.test_case "all2all" `Quick test_all2all_data;
          Alcotest.test_case "rs+ag = allreduce" `Quick
            test_rs_ag_is_allreduce;
          qc prop_data_collectives_preserve_sum;
        ] );
      ( "timing",
        [
          Alcotest.test_case "scales with bytes" `Quick
            test_allgather_scales_with_bytes;
          Alcotest.test_case "ring near bandwidth bound" `Quick
            test_ring_allgather_close_to_bandwidth_bound;
          Alcotest.test_case "allreduce > reducescatter" `Quick
            test_allreduce_costlier_than_reducescatter;
          Alcotest.test_case "mesh vs ring" `Quick
            test_mesh_vs_ring_same_volume;
          Alcotest.test_case "all2all cheaper" `Quick
            test_all2all_cheaper_than_allgather;
          Alcotest.test_case "missing participant deadlocks" `Quick
            test_missing_participant_deadlocks;
        ] );
    ]
