test/test_comm.ml: Alcotest Calib Check Cluster Collective Float Format List Printf QCheck QCheck_alcotest Shape Tensor Tilelink_comm Tilelink_machine Tilelink_sim Tilelink_tensor
