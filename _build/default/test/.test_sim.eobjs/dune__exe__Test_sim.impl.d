test/test_sim.ml: Alcotest Bandwidth Counter Engine Float Gen List Pqueue Process QCheck QCheck_alcotest Resource Stats String Tilelink_sim Trace
