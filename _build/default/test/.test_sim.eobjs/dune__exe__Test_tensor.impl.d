test/test_tensor.ml: Alcotest Array Check Float Format Gen Linalg List Nn Printf QCheck QCheck_alcotest Routing Shape Tensor Tilelink_tensor
